//! `sliq` — a small command-line front end for the simulators.
//!
//! ```text
//! sliq <circuit.qasm|circuit.real> [--backend auto|bitslice|qmdd|dense|stabilizer]
//!      [--superpose-free-inputs] [--shots N] [--seed S] [--probabilities Q1,Q2,…]
//!      [--reorder] [--threads N] [--connect HOST:PORT] [--tenant NAME]
//! ```
//!
//! The circuit format is inferred from the file extension (`.qasm` for the
//! OpenQASM-2 subset, `.real` for RevLib).  Execution goes through the
//! `sliq_exec::Session` layer: `--backend auto` negotiates the backend from
//! the circuit (stabilizer for Clifford-only, bit-sliced otherwise), and
//! `--shots N` draws all N measurement shots from the one simulated state
//! (batched sampling — the circuit is never re-run per shot).
//!
//! With `--connect HOST:PORT` the circuit is not simulated locally: it is
//! shipped to a running `sliq-serve` instance over the wire protocol and
//! the histogram comes back over the socket, printed in the same format as
//! local runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sliqsim::circuit::{qasm, real, Circuit};
use sliqsim::prelude::*;
use std::error::Error;

struct Options {
    path: String,
    backend: String,
    superpose: bool,
    shots: u64,
    seed: u64,
    reorder: bool,
    threads: Option<usize>,
    probability_qubits: Option<Vec<usize>>,
    connect: Option<String>,
    tenant: String,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut options = Options {
        path: String::new(),
        backend: "bitslice".to_string(),
        superpose: false,
        shots: 0,
        seed: 1,
        reorder: false,
        threads: None,
        probability_qubits: None,
        connect: None,
        tenant: String::new(),
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--backend" => {
                options.backend = args.next().ok_or("--backend needs a value")?;
            }
            "--superpose-free-inputs" => options.superpose = true,
            "--reorder" => options.reorder = true,
            "--threads" => {
                options.threads = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--threads needs a number")?,
                );
            }
            "--shots" => {
                options.shots = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--shots needs a number")?;
            }
            "--seed" => {
                options.seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--seed needs a number")?;
            }
            "--probabilities" => {
                let list = args.next().ok_or("--probabilities needs a list")?;
                options.probability_qubits = Some(
                    list.split(',')
                        .filter(|s| !s.is_empty())
                        .map(|s| s.trim().parse().map_err(|_| format!("bad qubit `{s}`")))
                        .collect::<Result<_, _>>()?,
                );
            }
            "--connect" => {
                options.connect = Some(args.next().ok_or("--connect needs HOST:PORT")?);
            }
            "--tenant" => {
                options.tenant = args.next().ok_or("--tenant needs a name")?;
            }
            "--help" | "-h" => {
                return Err("usage: sliq <circuit.qasm|circuit.real> [--backend auto|bitslice|qmdd|dense|stabilizer] [--superpose-free-inputs] [--shots N] [--seed S] [--probabilities Q1,Q2,…] [--reorder] [--threads N] [--connect HOST:PORT] [--tenant NAME]".to_string());
            }
            other if options.path.is_empty() && !other.starts_with('-') => {
                options.path = other.to_string();
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if options.path.is_empty() {
        return Err("missing circuit file (try --help)".to_string());
    }
    Ok(options)
}

fn load_circuit(options: &Options) -> Result<Circuit, Box<dyn Error>> {
    let text = std::fs::read_to_string(&options.path)?;
    if options.path.ends_with(".real") {
        let parsed = real::parse(&text)?;
        if options.superpose {
            let mut circuit = Circuit::new(parsed.circuit.num_qubits());
            for q in parsed.metadata.free_inputs() {
                circuit.h(q);
            }
            circuit.append(&parsed.circuit);
            Ok(circuit)
        } else {
            Ok(parsed.circuit)
        }
    } else {
        Ok(qasm::parse(&text)?)
    }
}

/// Ships the circuit to a running `sliq-serve` instance and prints the
/// result in the same shape as a local run.
fn run_remote(options: &Options, circuit: &Circuit, addr: &str) -> Result<(), Box<dyn Error>> {
    use sliqsim::serve::{Client, RetryPolicy, RunOptions};

    let mut client = Client::connect(addr)?;
    // An `Overloaded` answer is backpressure, not failure: retry with
    // seeded, jittered backoff and only surface the overload once the
    // attempt budget is spent.
    let outcome = client.run_circuit_with_retry(
        circuit,
        &RunOptions {
            backend: backend_kind(&options.backend)?,
            shots: options.shots,
            seed: options.seed,
            tenant: options.tenant.clone(),
        },
        &RetryPolicy {
            seed: options.seed,
            ..RetryPolicy::default()
        },
    )?;
    println!(
        "simulated on `{}` at {addr} in {:.3} s",
        outcome.backend.name(),
        outcome.run_micros as f64 / 1e6
    );
    if let Some(nodes) = outcome.live_nodes {
        println!(
            "representation: {} live nodes ({:.2} MiB peak)",
            nodes, outcome.peak_memory_mib
        );
    }
    if let Some(bits) = &outcome.readout {
        println!("readout: {}", format_readout(bits));
    }
    println!("sum of probabilities = {:.12}", outcome.total_probability);
    if let Some(wire) = outcome.histogram {
        let elapsed_secs = wire.sample_micros as f64 / 1e6;
        let shots_per_sec = if elapsed_secs > 0.0 {
            wire.shots as f64 / elapsed_secs
        } else {
            0.0
        };
        let histogram = Histogram::from_counts(circuit.num_qubits(), wire.counts);
        println!(
            "sampled {} shot(s) in {:.3} ms ({shots_per_sec:.0} shots/s), {} distinct outcomes:",
            wire.shots,
            elapsed_secs * 1e3,
            histogram.counts().len()
        );
        print!("{}", histogram.format_top(16));
    }
    Ok(())
}

/// Formats a classical register in QASM print order: `c[n-1]` leftmost,
/// `c[0]` rightmost.
fn format_readout(bits: &[bool]) -> String {
    let register: String = bits
        .iter()
        .rev()
        .map(|&bit| if bit { '1' } else { '0' })
        .collect();
    format!("c = {register} (c[{}..0])", bits.len().saturating_sub(1))
}

fn backend_kind(name: &str) -> Result<BackendKind, String> {
    match name {
        "auto" => Ok(BackendKind::Auto),
        "bitslice" | "ours" => Ok(BackendKind::BitSlice),
        "qmdd" | "ddsim" => Ok(BackendKind::Qmdd),
        "dense" | "array" => Ok(BackendKind::Dense),
        "stabilizer" | "chp" => Ok(BackendKind::Stabilizer),
        other => Err(format!("unknown backend `{other}`")),
    }
}

fn main() {
    let options = match parse_args() {
        Ok(o) => o,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    if let Err(error) = run(&options) {
        eprintln!("error: {error}");
        std::process::exit(1);
    }
}

fn run(options: &Options) -> Result<(), Box<dyn Error>> {
    let circuit = load_circuit(options)?;
    circuit.validate()?;
    println!(
        "loaded `{}`: {} qubits, {} gates (depth {})",
        options.path,
        circuit.num_qubits(),
        circuit.len(),
        circuit.depth()
    );
    if let Some(addr) = &options.connect {
        return run_remote(options, &circuit, addr);
    }
    let mut config = SessionConfig::with_backend(backend_kind(&options.backend)?)
        .auto_reorder(options.reorder)
        // The one --seed drives both batched sampling and the mid-circuit
        // measurement stream, matching what a server does with the wire
        // seed: (circuit, seed) fully determines a dynamic run.
        .measurement_seed(options.seed);
    if let Some(threads) = options.threads {
        config = config.threads(threads);
    }
    let mut session = Session::for_circuit(&circuit, config)?;
    let result = session.run(&circuit)?;
    println!(
        "simulated on `{}` in {:.3} s",
        session.backend_name(),
        result.elapsed.as_secs_f64()
    );
    if let Some(nodes) = result.stats.live_nodes {
        println!(
            "representation: {} live nodes ({:.2} MiB peak)",
            nodes, result.stats.memory_mib
        );
    }

    if let Some(bits) = &result.readout {
        println!("readout: {}", format_readout(bits));
    }

    let qubits: Vec<usize> = options
        .probability_qubits
        .clone()
        .unwrap_or_else(|| (0..circuit.num_qubits().min(8)).collect());
    for q in qubits {
        println!("Pr[q{q} = 1] = {:.10}", session.probability_of_one(q));
    }
    println!("sum of probabilities = {:.12}", session.total_probability());

    if options.shots > 0 && circuit.num_qubits() <= 64 {
        // Batched sampling: every shot comes from the one simulated state
        // (conditional-probability descent), not from re-running the
        // circuit; identical seeds give identical histograms.
        let sample = session.sample(options.shots, options.seed)?;
        println!(
            "sampled {} shot(s) in {:.3} ms ({:.0} shots/s), {} distinct outcomes:",
            sample.shots,
            sample.elapsed.as_secs_f64() * 1e3,
            sample.shots_per_sec(),
            sample.histogram.counts().len()
        );
        print!("{}", sample.histogram.format_top(16));
    } else if options.shots > 0 {
        // Registers wider than an outcome word: draw shots one at a time by
        // collapsing a checkpoint of the simulated state and rolling back —
        // still no circuit re-simulation per shot.
        let mut rng = StdRng::seed_from_u64(options.seed);
        println!("sampling {} shot(s):", options.shots);
        let checkpoint = session.snapshot();
        for shot in 0..options.shots {
            let outcome: String = (0..circuit.num_qubits())
                .map(|q| {
                    if session.measure_with(q, rng.gen_range(0.0..1.0)) {
                        '1'
                    } else {
                        '0'
                    }
                })
                .collect();
            println!("  shot {shot}: {outcome}");
            session.restore(&checkpoint)?;
        }
        session.discard(checkpoint)?;
    }
    Ok(())
}
