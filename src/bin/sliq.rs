//! `sliq` — a small command-line front end for the simulators.
//!
//! ```text
//! sliq <circuit.qasm|circuit.real> [--backend bitslice|qmdd|dense|stabilizer]
//!      [--superpose-free-inputs] [--shots N] [--seed S] [--probabilities Q1,Q2,…]
//! ```
//!
//! The circuit format is inferred from the file extension (`.qasm` for the
//! OpenQASM-2 subset, `.real` for RevLib).  By default the exact bit-sliced
//! backend is used, the per-qubit |1⟩ probabilities of the first few qubits
//! are printed, and no measurement shots are taken.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sliqsim::circuit::{qasm, real, Circuit, Simulator};
use sliqsim::prelude::*;
use std::error::Error;
use std::time::Instant;

struct Options {
    path: String,
    backend: String,
    superpose: bool,
    shots: usize,
    seed: u64,
    probability_qubits: Option<Vec<usize>>,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut options = Options {
        path: String::new(),
        backend: "bitslice".to_string(),
        superpose: false,
        shots: 0,
        seed: 1,
        probability_qubits: None,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--backend" => {
                options.backend = args.next().ok_or("--backend needs a value")?;
            }
            "--superpose-free-inputs" => options.superpose = true,
            "--shots" => {
                options.shots = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--shots needs a number")?;
            }
            "--seed" => {
                options.seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--seed needs a number")?;
            }
            "--probabilities" => {
                let list = args.next().ok_or("--probabilities needs a list")?;
                options.probability_qubits = Some(
                    list.split(',')
                        .filter(|s| !s.is_empty())
                        .map(|s| s.trim().parse().map_err(|_| format!("bad qubit `{s}`")))
                        .collect::<Result<_, _>>()?,
                );
            }
            "--help" | "-h" => {
                return Err("usage: sliq <circuit.qasm|circuit.real> [--backend bitslice|qmdd|dense|stabilizer] [--superpose-free-inputs] [--shots N] [--seed S] [--probabilities Q1,Q2,…]".to_string());
            }
            other if options.path.is_empty() && !other.starts_with('-') => {
                options.path = other.to_string();
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if options.path.is_empty() {
        return Err("missing circuit file (try --help)".to_string());
    }
    Ok(options)
}

fn load_circuit(options: &Options) -> Result<Circuit, Box<dyn Error>> {
    let text = std::fs::read_to_string(&options.path)?;
    if options.path.ends_with(".real") {
        let parsed = real::parse(&text)?;
        if options.superpose {
            let mut circuit = Circuit::new(parsed.circuit.num_qubits());
            for q in parsed.metadata.free_inputs() {
                circuit.h(q);
            }
            circuit.append(&parsed.circuit);
            Ok(circuit)
        } else {
            Ok(parsed.circuit)
        }
    } else {
        Ok(qasm::parse(&text)?)
    }
}

fn make_backend(name: &str, num_qubits: usize) -> Result<Box<dyn Simulator>, String> {
    match name {
        "bitslice" | "ours" => Ok(Box::new(BitSliceSimulator::new(num_qubits))),
        "qmdd" | "ddsim" => Ok(Box::new(QmddSimulator::new(num_qubits))),
        "dense" | "array" => Ok(Box::new(DenseSimulator::new(num_qubits))),
        "stabilizer" | "chp" => Ok(Box::new(StabilizerSimulator::new(num_qubits))),
        other => Err(format!("unknown backend `{other}`")),
    }
}

fn main() {
    let options = match parse_args() {
        Ok(o) => o,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    if let Err(error) = run(&options) {
        eprintln!("error: {error}");
        std::process::exit(1);
    }
}

fn run(options: &Options) -> Result<(), Box<dyn Error>> {
    let circuit = load_circuit(options)?;
    circuit.validate()?;
    println!(
        "loaded `{}`: {} qubits, {} gates (depth {})",
        options.path,
        circuit.num_qubits(),
        circuit.len(),
        circuit.depth()
    );
    let mut backend = make_backend(&options.backend, circuit.num_qubits())?;
    let start = Instant::now();
    backend.run(&circuit)?;
    println!(
        "simulated on `{}` in {:.3} s",
        backend.name(),
        start.elapsed().as_secs_f64()
    );

    let qubits: Vec<usize> = options
        .probability_qubits
        .clone()
        .unwrap_or_else(|| (0..circuit.num_qubits().min(8)).collect());
    for q in qubits {
        println!("Pr[q{q} = 1] = {:.10}", backend.probability_of_one(q));
    }
    println!("sum of probabilities = {:.12}", backend.total_probability());

    if options.shots > 0 {
        let mut rng = StdRng::seed_from_u64(options.seed);
        println!("sampling {} shot(s):", options.shots);
        for shot in 0..options.shots {
            // Each shot needs a fresh state, so re-run the circuit.
            let mut fresh = make_backend(&options.backend, circuit.num_qubits())?;
            fresh.run(&circuit)?;
            let outcome: String = (0..circuit.num_qubits())
                .map(|q| {
                    if fresh.measure_with(q, rng.gen_range(0.0..1.0)) {
                        '1'
                    } else {
                        '0'
                    }
                })
                .collect();
            println!("  shot {shot}: {outcome}");
        }
    }
    Ok(())
}
