//! # sliqsim
//!
//! Facade crate for the SliQ workspace — a Rust reproduction of
//! *"Bit-Slicing the Hilbert Space: Scaling Up Accurate Quantum Circuit
//! Simulation to a New Level"* (DAC 2021).
//!
//! The heavy lifting lives in the member crates, re-exported here so examples
//! and downstream users only need a single dependency:
//!
//! * [`math`] — exact algebraic amplitudes and complex scalars.
//! * [`bignum`] — arbitrary-precision integers for exact SAT counting.
//! * [`bdd`] — the reduced ordered BDD package.
//! * [`circuit`] — the gate set, circuit IR and parsers.
//! * [`core`] — the bit-sliced BDD simulator (the paper's contribution).
//! * [`dense`], [`qmdd`], [`stabilizer`] — baseline simulators.
//! * [`exec`] — the session/executor layer: backend registry, capability
//!   negotiation, checkpoints, batched multi-shot sampling and the
//!   canonical-circuit result cache.
//! * [`serve`] — the concurrent TCP serving front-end over the session
//!   layer (wire protocol, fair admission queue, client).
//! * [`workloads`] — benchmark circuit generators.
//!
//! The recommended entry point is a [`prelude::Session`]: it owns whichever
//! backend fits the circuit and exposes one API for running, measuring,
//! checkpointing and sampling.
//!
//! ```
//! use sliqsim::prelude::*;
//!
//! // Prepare a 2-qubit Bell state; Auto picks the best backend (the
//! // circuit is Clifford-only, so the stabilizer tableau wins).
//! let mut circuit = Circuit::new(2);
//! circuit.h(0).cx(0, 1);
//! let mut session = Session::for_circuit(&circuit, SessionConfig::default())
//!     .expect("supported circuit");
//! session.run(&circuit).expect("supported gates only");
//! assert!((session.probability_of_basis_state(&[false, false]) - 0.5).abs() < 1e-12);
//! // 1000 measurement shots without re-simulating the circuit.
//! let shots = session.sample(1000, 42).expect("small register");
//! assert_eq!(shots.histogram.shots(), 1000);
//! ```

#![forbid(unsafe_code)]

pub use sliq_bdd as bdd;
pub use sliq_bignum as bignum;
pub use sliq_circuit as circuit;
pub use sliq_core as core;
pub use sliq_dense as dense;
pub use sliq_exec as exec;
pub use sliq_math as math;
pub use sliq_qmdd as qmdd;
pub use sliq_serve as serve;
pub use sliq_stabilizer as stabilizer;
pub use sliq_workloads as workloads;

/// Commonly used items, importable with a single `use sliqsim::prelude::*;`.
pub mod prelude {
    pub use sliq_circuit::{Circuit, Gate, Simulator};
    pub use sliq_core::BitSliceSimulator;
    pub use sliq_dense::DenseSimulator;
    pub use sliq_exec::{
        circuit_fingerprint, BackendKind, ExecError, Histogram, ResultCache, ResultCacheStats,
        RunResult, SampleResult, Session, SessionConfig,
    };
    pub use sliq_math::{Algebraic, Complex};
    pub use sliq_qmdd::QmddSimulator;
    pub use sliq_stabilizer::StabilizerSimulator;
}
