//! Quantum-algorithm benchmark circuits (Table V of the paper): entanglement
//! (GHZ preparation) and the Bernstein–Vazirani algorithm.

use sliq_circuit::Circuit;

/// The entanglement (GHZ-state preparation) circuit used in Table V: one
/// Hadamard followed by a CNOT chain, `#gates = #qubits`.
pub fn entanglement(num_qubits: usize) -> Circuit {
    let mut circuit = Circuit::new(num_qubits);
    if num_qubits == 0 {
        return circuit;
    }
    circuit.h(0);
    for q in 1..num_qubits {
        circuit.cx(q - 1, q);
    }
    circuit
}

/// Alias for [`entanglement`]: the circuit prepares an `n`-qubit GHZ state.
pub fn ghz(num_qubits: usize) -> Circuit {
    entanglement(num_qubits)
}

/// The Bell-state preparation circuit (2-qubit entanglement).
pub fn bell_pair() -> Circuit {
    entanglement(2)
}

/// The Bernstein–Vazirani circuit over `secret.len()` data qubits plus one
/// ancilla (the last qubit).
///
/// Structure: `X`+`H` on the ancilla, `H` on every data qubit, a CNOT from
/// each data qubit whose secret bit is 1 into the ancilla, and a final `H`
/// layer on the data qubits.  Measuring the data qubits afterwards recovers
/// the secret with certainty.
pub fn bernstein_vazirani(secret: &[bool]) -> Circuit {
    let n = secret.len();
    let ancilla = n;
    let mut circuit = Circuit::new(n + 1);
    circuit.x(ancilla).h(ancilla);
    for q in 0..n {
        circuit.h(q);
    }
    for (q, &bit) in secret.iter().enumerate() {
        if bit {
            circuit.cx(q, ancilla);
        }
    }
    for q in 0..n {
        circuit.h(q);
    }
    circuit
}

/// The Bernstein–Vazirani circuit with the all-ones secret over
/// `num_qubits − 1` data qubits (so the circuit has `num_qubits` qubits in
/// total, matching how Table V counts qubits).  The gate count is
/// `3·(num_qubits − 1) + 2`, reproducing the `#gates ≈ 3·#qubits` column.
pub fn bernstein_vazirani_all_ones(num_qubits: usize) -> Circuit {
    assert!(
        num_qubits >= 2,
        "BV needs at least one data qubit plus the ancilla"
    );
    bernstein_vazirani(&vec![true; num_qubits - 1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use sliq_circuit::Simulator;
    use sliq_core::BitSliceSimulator;
    use sliq_stabilizer::StabilizerSimulator;

    #[test]
    fn entanglement_gate_count_matches_table5() {
        for n in [2usize, 10, 100, 500] {
            let c = entanglement(n);
            assert_eq!(c.num_qubits(), n);
            assert_eq!(c.len(), n, "Table V lists #gates = #qubits");
            assert!(c.is_clifford());
        }
    }

    #[test]
    fn bv_gate_count_matches_table5() {
        // Table V: 80 qubits → 239 gates, 100 → 299, 1000 → 2999.
        for (qubits, gates) in [(80usize, 239usize), (100, 299), (1000, 2999)] {
            let c = bernstein_vazirani_all_ones(qubits);
            assert_eq!(c.num_qubits(), qubits);
            assert_eq!(c.len(), gates);
        }
    }

    #[test]
    fn ghz_state_is_maximally_correlated() {
        let c = ghz(5);
        let mut sim = BitSliceSimulator::new(5);
        sim.run(&c).unwrap();
        assert!((sim.probability_of_basis_state(&[false; 5]) - 0.5).abs() < 1e-12);
        assert!((sim.probability_of_basis_state(&[true; 5]) - 0.5).abs() < 1e-12);
        // Mixed-parity outcomes are impossible.
        assert!(sim.probability_of_basis_state(&[true, false, true, false, true]) < 1e-15);
        // The same circuit runs on the stabilizer backend, as in the paper's
        // CHP comparison.
        let mut chp = StabilizerSimulator::new(5);
        chp.run(&c).unwrap();
        assert_eq!(chp.probability_of_one(4), 0.5);
    }

    #[test]
    fn bv_recovers_an_arbitrary_secret() {
        let secret = [true, false, true, true, false, false, true];
        let c = bernstein_vazirani(&secret);
        let mut sim = BitSliceSimulator::new(c.num_qubits());
        sim.run(&c).unwrap();
        for (q, &bit) in secret.iter().enumerate() {
            let p = sim.probability_of_one(q);
            assert!((p - if bit { 1.0 } else { 0.0 }).abs() < 1e-12, "qubit {q}");
        }
        assert!(sim.is_exactly_normalized());
    }

    #[test]
    fn bell_pair_is_the_two_qubit_ghz() {
        assert_eq!(bell_pair(), entanglement(2));
    }
}
