//! RevLib-like reversible benchmark circuits (the paper's second benchmark
//! set, Table IV).
//!
//! The exact RevLib netlists are an external download, so this module
//! synthesises structurally comparable reversible circuits — pure
//! Toffoli/Fredkin/CNOT/NOT networks over a few hundred lines — and applies
//! the paper's modification of inserting a Hadamard on every input whose
//! initial value is unspecified, which turns a classically-simulatable
//! circuit into one with genuine superposition (the regime where DDSIM runs
//! out of memory in Table IV).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sliq_circuit::{Circuit, RealMetadata};

/// A named reversible benchmark: the circuit plus RevLib-style metadata
/// (which inputs are constant, which outputs are garbage).
#[derive(Debug, Clone)]
pub struct ReversibleBenchmark {
    /// Benchmark name (mirrors the RevLib naming style).
    pub name: String,
    /// The reversible circuit.
    pub circuit: Circuit,
    /// Input/garbage metadata.
    pub metadata: RealMetadata,
}

impl ReversibleBenchmark {
    /// The paper's Table IV modification: prepend an H gate on every input
    /// whose initial value is unspecified, creating an initial superposition.
    pub fn with_superposition_inputs(&self) -> Circuit {
        let mut modified = Circuit::new(self.circuit.num_qubits());
        for q in self.metadata.free_inputs() {
            modified.h(q);
        }
        modified.append(&self.circuit);
        modified
    }
}

/// A CDKM-style ripple-carry adder on two `bits`-bit registers plus carry
/// lines, built from Toffoli and CNOT gates.
///
/// Register layout: qubits `0..bits` hold `a`, `bits..2·bits` hold `b`
/// (overwritten with the sum), qubit `2·bits` is the carry ancilla.
pub fn ripple_carry_adder(bits: usize) -> ReversibleBenchmark {
    let n = 2 * bits + 1;
    let carry = 2 * bits;
    let mut circuit = Circuit::new(n);
    let a = |i: usize| i;
    let b = |i: usize| bits + i;
    // A standard MAJ/UMA ladder.
    let mut majs: Vec<(usize, usize, usize)> = Vec::new();
    let mut prev_carry = carry;
    for i in 0..bits {
        // MAJ(prev_carry, b_i, a_i)
        circuit.cx(a(i), b(i));
        circuit.cx(a(i), prev_carry);
        circuit.ccx(prev_carry, b(i), a(i));
        majs.push((prev_carry, b(i), a(i)));
        prev_carry = a(i);
    }
    // Unwind with UMA gates.
    for &(c, bq, aq) in majs.iter().rev() {
        circuit.ccx(c, bq, aq);
        circuit.cx(aq, c);
        circuit.cx(c, bq);
    }
    let metadata = RealMetadata {
        variables: (0..n).map(|i| format!("x{i}")).collect(),
        // The carry ancilla is a constant-0 input; a and b are free inputs.
        constants: (0..n)
            .map(|i| if i == carry { Some(false) } else { None })
            .collect(),
        garbage: (0..n).map(|i| i < bits).collect(),
    };
    ReversibleBenchmark {
        name: format!("add{}_{}", bits, n),
        circuit,
        metadata,
    }
}

/// A reversible equality comparator: computes whether two `bits`-bit
/// registers are equal into a result ancilla (multi-controlled Toffoli over
/// XNOR lines).
pub fn equality_comparator(bits: usize) -> ReversibleBenchmark {
    let n = 2 * bits + 1;
    let result = 2 * bits;
    let mut circuit = Circuit::new(n);
    // b_i ^= a_i, then flip b_i so that b_i == 1 iff original bits matched.
    for i in 0..bits {
        circuit.cx(i, bits + i);
        circuit.x(bits + i);
    }
    circuit.mcx((bits..2 * bits).collect(), result);
    // Uncompute the XNOR lines.
    for i in (0..bits).rev() {
        circuit.x(bits + i);
        circuit.cx(i, bits + i);
    }
    let metadata = RealMetadata {
        variables: (0..n).map(|i| format!("x{i}")).collect(),
        constants: (0..n)
            .map(|i| if i == result { Some(false) } else { None })
            .collect(),
        garbage: (0..n).map(|i| i != result).collect(),
    };
    ReversibleBenchmark {
        name: format!("cmp{}_{}", bits, n),
        circuit,
        metadata,
    }
}

/// A random Toffoli/Fredkin/CNOT network in the style of synthesised RevLib
/// control logic (e.g. the `callif`/`cpu_control_unit` family): a cascade of
/// gates with small control sets over a wide register, with a handful of
/// constant-0 ancilla lines.
pub fn random_control_logic(lines: usize, gates: usize, seed: u64) -> ReversibleBenchmark {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut circuit = Circuit::new(lines);
    for _ in 0..gates {
        let mut qs: Vec<usize> = (0..lines).collect();
        qs.shuffle(&mut rng);
        match rng.gen_range(0..10) {
            0..=1 => {
                circuit.x(qs[0]);
            }
            2..=4 => {
                circuit.cx(qs[0], qs[1]);
            }
            5..=7 => {
                circuit.ccx(qs[0], qs[1], qs[2]);
            }
            8 => {
                circuit.mcx(vec![qs[0], qs[1], qs[2]], qs[3]);
            }
            _ => {
                circuit.cswap(qs[0], qs[1], qs[2]);
            }
        }
    }
    // Roughly a quarter of the lines are constant-0 ancillas, as is typical
    // for synthesised RevLib circuits.
    let metadata = RealMetadata {
        variables: (0..lines).map(|i| format!("x{i}")).collect(),
        constants: (0..lines)
            .map(|i| if i % 4 == 3 { Some(false) } else { None })
            .collect(),
        garbage: vec![false; lines],
    };
    ReversibleBenchmark {
        name: format!("ctrl{lines}_{seed}"),
        circuit,
        metadata,
    }
}

/// A hidden-weighted-bit-style permutation built from controlled cyclic
/// shifts (a classic hard case for decision diagrams).
pub fn hidden_weighted_bit_like(bits: usize) -> ReversibleBenchmark {
    let n = bits;
    let mut circuit = Circuit::new(n);
    // For each qubit treated as a "weight contributor", conditionally rotate
    // the register by one position using controlled swaps.
    for c in 0..n {
        for i in 0..(n - 1) {
            if i != c && (i + 1) != c {
                circuit.cswap(c, i, i + 1);
            }
        }
    }
    let metadata = RealMetadata {
        variables: (0..n).map(|i| format!("x{i}")).collect(),
        constants: vec![None; n],
        garbage: vec![false; n],
    };
    ReversibleBenchmark {
        name: format!("hwb{n}"),
        circuit,
        metadata,
    }
}

/// The default Table IV-like suite: a spread of adders, comparators, control
/// logic and HWB-style permutations with qubit counts in the RevLib range.
pub fn table4_suite() -> Vec<ReversibleBenchmark> {
    vec![
        ripple_carry_adder(8),
        ripple_carry_adder(16),
        equality_comparator(12),
        hidden_weighted_bit_like(9),
        random_control_logic(32, 160, 11),
        random_control_logic(48, 240, 12),
        random_control_logic(64, 320, 13),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sliq_circuit::{Gate, Simulator};
    use sliq_core::BitSliceSimulator;
    use sliq_dense::DenseSimulator;

    #[test]
    fn adder_computes_sums_classically() {
        let bits = 4;
        let bench = ripple_carry_adder(bits);
        assert!(bench.circuit.validate().is_ok());
        for (a_val, b_val) in [(3u32, 5u32), (9, 9), (15, 1), (0, 0), (7, 12)] {
            let mut init = vec![false; 2 * bits + 1];
            for i in 0..bits {
                init[i] = a_val >> i & 1 == 1;
                init[bits + i] = b_val >> i & 1 == 1;
            }
            let mut sim = DenseSimulator::with_initial_bits(&init);
            sim.run(&bench.circuit).unwrap();
            let expected = (a_val + b_val) & 0xf;
            let mut out_bits = init.clone();
            for i in 0..bits {
                out_bits[bits + i] = expected >> i & 1 == 1;
            }
            // a register is restored, b holds the sum (mod 2^bits), carry
            // ancilla back to 0.
            assert!(
                sim.probability_of_basis_state(&out_bits) > 0.99,
                "{a_val}+{b_val}"
            );
        }
    }

    #[test]
    fn comparator_detects_equality() {
        let bits = 3;
        let bench = equality_comparator(bits);
        for (a_val, b_val, equal) in [(5u32, 5u32, true), (5, 3, false), (0, 0, true)] {
            let mut init = vec![false; 2 * bits + 1];
            for i in 0..bits {
                init[i] = a_val >> i & 1 == 1;
                init[bits + i] = b_val >> i & 1 == 1;
            }
            let mut sim = DenseSimulator::with_initial_bits(&init);
            sim.run(&bench.circuit).unwrap();
            assert!(
                (sim.probability_of_one(2 * bits) - if equal { 1.0 } else { 0.0 }).abs() < 1e-9
            );
        }
    }

    #[test]
    fn superposition_modification_prepends_hadamards_on_free_inputs() {
        let bench = ripple_carry_adder(4);
        let modified = bench.with_superposition_inputs();
        let free = bench.metadata.free_inputs().len();
        assert_eq!(modified.len(), bench.circuit.len() + free);
        assert_eq!(modified.gate_counts()["h"], free);
        // The modified circuit still simulates exactly on the BDD backend.
        let mut sim = BitSliceSimulator::new(modified.num_qubits());
        sim.run(&modified).unwrap();
        assert!(sim.is_exactly_normalized());
    }

    #[test]
    fn suite_has_table4_like_sizes() {
        let suite = table4_suite();
        assert!(suite.len() >= 6);
        for bench in &suite {
            assert!(bench.circuit.validate().is_ok(), "{}", bench.name);
            assert!(bench.circuit.num_qubits() >= 9);
            assert!(!bench.circuit.is_empty());
            // Every benchmark is a pure reversible (classical) circuit.
            assert!(bench.circuit.iter().all(|g| matches!(
                g,
                Gate::X(_) | Gate::Cnot { .. } | Gate::Toffoli { .. } | Gate::Fredkin { .. }
            )));
        }
    }

    #[test]
    fn suite_serialises_to_real_format() {
        for bench in table4_suite() {
            let text = sliq_circuit::real::emit(&bench.circuit, &bench.metadata).unwrap();
            let parsed = sliq_circuit::real::parse(&text).unwrap();
            assert_eq!(parsed.circuit, bench.circuit, "{}", bench.name);
        }
    }
}
