//! GRCS-style "quantum supremacy" random circuits on a rectangular qubit
//! lattice (the paper's fourth benchmark set, Table VI).
//!
//! The circuits follow the published generation rules of Boixo et al.
//! ("Characterizing quantum supremacy in near-term devices") for the
//! `rectangular / cz_v2` instances the paper downloads from the GRCS
//! repository:
//!
//! 1. a Hadamard on every qubit in cycle 0;
//! 2. in every later cycle one of eight staggered CZ patterns couples
//!    neighbouring qubits of the grid;
//! 3. a qubit not touched by a CZ in the current cycle receives a
//!    single-qubit gate: a `T` the first time it becomes idle after having
//!    been touched by a CZ, otherwise a random `√X` or `√Y` that differs from
//!    the previous single-qubit gate on that qubit; qubits idle in
//!    consecutive cycles receive no new gate.
//!
//! The paper simplifies the depth-10 instances to depth 5; the generator
//! takes the depth as a parameter so both variants can be produced.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sliq_circuit::Circuit;

/// A rectangular lattice of qubits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lattice {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl Lattice {
    /// Creates a lattice; the circuit has `rows·cols` qubits.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self { rows, cols }
    }

    /// Total number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.rows * self.cols
    }

    fn index(&self, row: usize, col: usize) -> usize {
        row * self.cols + col
    }

    /// The CZ pairs of pattern `p ∈ 0..8`, staggered as in the GRCS layouts:
    /// patterns 0–3 couple horizontal neighbours, 4–7 vertical neighbours,
    /// with alternating offsets so consecutive cycles touch disjoint pairs.
    pub fn cz_pattern(&self, p: usize) -> Vec<(usize, usize)> {
        let mut pairs = Vec::new();
        match p % 8 {
            0..=3 => {
                let (row_parity, col_offset) = match p % 4 {
                    0 => (0, 0),
                    1 => (1, 0),
                    2 => (0, 1),
                    _ => (1, 1),
                };
                for row in 0..self.rows {
                    if row % 2 != row_parity {
                        continue;
                    }
                    let mut col = col_offset;
                    while col + 1 < self.cols {
                        pairs.push((self.index(row, col), self.index(row, col + 1)));
                        col += 2;
                    }
                }
            }
            _ => {
                let (col_parity, row_offset) = match p % 4 {
                    0 => (0, 0),
                    1 => (1, 0),
                    2 => (0, 1),
                    _ => (1, 1),
                };
                for col in 0..self.cols {
                    if col % 2 != col_parity {
                        continue;
                    }
                    let mut row = row_offset;
                    while row + 1 < self.rows {
                        pairs.push((self.index(row, col), self.index(row + 1, col)));
                        row += 2;
                    }
                }
            }
        }
        pairs
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LastSingle {
    None,
    T,
    SqrtX,
    SqrtY,
}

/// Generates a GRCS-style supremacy circuit of `depth` CZ cycles on the
/// lattice (plus the initial Hadamard layer), deterministically from `seed`.
pub fn supremacy_circuit(lattice: Lattice, depth: usize, seed: u64) -> Circuit {
    let n = lattice.num_qubits();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut circuit = Circuit::new(n);
    for q in 0..n {
        circuit.h(q);
    }
    let mut last_single = vec![LastSingle::None; n];
    let mut had_t = vec![false; n];
    let mut touched_by_cz = vec![false; n];
    let mut idle_last_cycle = vec![false; n];

    for cycle in 0..depth {
        let pairs = lattice.cz_pattern(cycle);
        let mut in_cz = vec![false; n];
        for &(a, b) in &pairs {
            circuit.cz(a, b);
            in_cz[a] = true;
            in_cz[b] = true;
        }
        for q in 0..n {
            if in_cz[q] {
                touched_by_cz[q] = true;
                idle_last_cycle[q] = false;
                continue;
            }
            // Single-qubit gate rules.
            if !touched_by_cz[q] || idle_last_cycle[q] {
                // Not yet entangled, or already idle in the previous cycle:
                // leave it alone this cycle.
                idle_last_cycle[q] = true;
                continue;
            }
            if !had_t[q] {
                circuit.t(q);
                had_t[q] = true;
                last_single[q] = LastSingle::T;
            } else {
                let pick_sqrt_x = match last_single[q] {
                    LastSingle::SqrtX => false,
                    LastSingle::SqrtY => true,
                    _ => rng.gen_bool(0.5),
                };
                if pick_sqrt_x {
                    circuit.rx_pi2(q);
                    last_single[q] = LastSingle::SqrtX;
                } else {
                    circuit.ry_pi2(q);
                    last_single[q] = LastSingle::SqrtY;
                }
            }
            idle_last_cycle[q] = true;
        }
    }
    circuit
}

/// The lattice shapes used in Table VI of the paper, keyed by qubit count:
/// 16, 20, 25, 30, 36, 42, 49, 56, 64, 72, 81 and 90 qubits.
pub fn table6_lattices() -> Vec<Lattice> {
    vec![
        Lattice::new(4, 4),
        Lattice::new(4, 5),
        Lattice::new(5, 5),
        Lattice::new(5, 6),
        Lattice::new(6, 6),
        Lattice::new(6, 7),
        Lattice::new(7, 7),
        Lattice::new(7, 8),
        Lattice::new(8, 8),
        Lattice::new(8, 9),
        Lattice::new(9, 9),
        Lattice::new(9, 10),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sliq_circuit::Gate;

    #[test]
    fn qubit_counts_match_table6() {
        let counts: Vec<usize> = table6_lattices().iter().map(Lattice::num_qubits).collect();
        assert_eq!(counts, vec![16, 20, 25, 30, 36, 42, 49, 56, 64, 72, 81, 90]);
    }

    #[test]
    fn cz_patterns_touch_disjoint_pairs() {
        let lattice = Lattice::new(4, 5);
        for p in 0..8 {
            let pairs = lattice.cz_pattern(p);
            let mut seen = std::collections::HashSet::new();
            for (a, b) in pairs {
                assert!(a < lattice.num_qubits() && b < lattice.num_qubits());
                assert!(seen.insert(a), "qubit {a} used twice in pattern {p}");
                assert!(seen.insert(b), "qubit {b} used twice in pattern {p}");
            }
        }
    }

    #[test]
    fn circuit_structure_follows_the_rules() {
        let lattice = Lattice::new(4, 4);
        let c = supremacy_circuit(lattice, 5, 42);
        assert!(c.validate().is_ok());
        // Starts with an H on every qubit.
        for q in 0..16 {
            assert_eq!(c.gates()[q], Gate::H(q));
        }
        // Contains CZ layers and T gates afterwards.
        let counts = c.gate_counts();
        assert!(counts.get("cz").copied().unwrap_or(0) > 0);
        assert!(counts.get("t").copied().unwrap_or(0) > 0);
        // Gate count in the same ballpark as Table VI (61 gates for 16
        // qubits at depth 5 in the paper's simplified instances).
        assert!(c.len() >= 30 && c.len() <= 120, "got {} gates", c.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let lattice = Lattice::new(5, 5);
        assert_eq!(
            supremacy_circuit(lattice, 5, 1),
            supremacy_circuit(lattice, 5, 1)
        );
        assert_ne!(
            supremacy_circuit(lattice, 5, 1),
            supremacy_circuit(lattice, 5, 2)
        );
    }
}
