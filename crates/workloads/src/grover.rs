//! Grover search circuits (an extension workload beyond the paper's four
//! benchmark sets).
//!
//! Grover's algorithm only needs H, X and multi-controlled Z — all inside the
//! paper's gate set once the multi-controlled Z is expressed as
//! `H(target) · MCX · H(target)` — so, unlike QFT-based algorithms, it can be
//! simulated *exactly* by the bit-sliced backend.  It exercises the
//! multi-controlled Toffoli formulas on wide control sets and produces states
//! whose amplitudes are non-trivial algebraic numbers.

use sliq_circuit::Circuit;

/// Appends a multi-controlled Z over all data qubits (phase flip on
/// `|11…1⟩`) using `H · MCX · H` on the last qubit.
fn append_controlled_z_on_all(circuit: &mut Circuit, num_data: usize) {
    let target = num_data - 1;
    let controls: Vec<usize> = (0..target).collect();
    circuit.h(target);
    circuit.mcx(controls, target);
    circuit.h(target);
}

/// Appends the phase oracle marking the basis state `marked`.
fn append_oracle(circuit: &mut Circuit, marked: &[bool]) {
    let n = marked.len();
    for (q, &bit) in marked.iter().enumerate() {
        if !bit {
            circuit.x(q);
        }
    }
    append_controlled_z_on_all(circuit, n);
    for (q, &bit) in marked.iter().enumerate() {
        if !bit {
            circuit.x(q);
        }
    }
}

/// Appends the Grover diffusion operator (inversion about the mean).
fn append_diffusion(circuit: &mut Circuit, num_data: usize) {
    for q in 0..num_data {
        circuit.h(q);
    }
    for q in 0..num_data {
        circuit.x(q);
    }
    append_controlled_z_on_all(circuit, num_data);
    for q in 0..num_data {
        circuit.x(q);
    }
    for q in 0..num_data {
        circuit.h(q);
    }
}

/// The number of Grover iterations that (approximately) maximises the success
/// probability for a single marked item among `2ⁿ`.
pub fn optimal_iterations(num_data: usize) -> usize {
    let angle = (1.0 / (1u64 << num_data) as f64).sqrt().asin();
    ((std::f64::consts::FRAC_PI_4 / angle - 0.5).round() as usize).max(1)
}

/// Builds a Grover search circuit over `marked.len()` qubits that searches
/// for the single basis state `marked`, running `iterations` oracle +
/// diffusion rounds after the initial Hadamard layer.
pub fn grover(marked: &[bool], iterations: usize) -> Circuit {
    let n = marked.len();
    assert!(n >= 2, "Grover search needs at least two qubits");
    let mut circuit = Circuit::new(n);
    for q in 0..n {
        circuit.h(q);
    }
    for _ in 0..iterations {
        append_oracle(&mut circuit, marked);
        append_diffusion(&mut circuit, n);
    }
    circuit
}

/// Grover search with the optimal iteration count for a single marked item.
pub fn grover_optimal(marked: &[bool]) -> Circuit {
    grover(marked, optimal_iterations(marked.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sliq_circuit::Simulator;
    use sliq_core::BitSliceSimulator;
    use sliq_dense::DenseSimulator;

    #[test]
    fn iteration_count_grows_with_register_size() {
        assert_eq!(optimal_iterations(2), 1);
        assert!(optimal_iterations(4) >= 3);
        assert!(optimal_iterations(8) > optimal_iterations(6));
    }

    #[test]
    fn grover_amplifies_the_marked_state() {
        let marked = [true, false, true, true];
        let circuit = grover_optimal(&marked);
        assert!(circuit.validate().is_ok());
        let mut sim = BitSliceSimulator::new(marked.len());
        sim.run(&circuit).unwrap();
        let p_marked = sim.probability_of_basis_state(&marked);
        assert!(
            p_marked > 0.9,
            "optimal Grover should find the marked item with high probability, got {p_marked}"
        );
        assert!(sim.is_exactly_normalized());
    }

    #[test]
    fn two_qubit_grover_is_deterministic() {
        // For n = 2 a single iteration finds the marked item with certainty.
        for index in 0..4usize {
            let marked = [index & 1 == 1, index & 2 == 2];
            let circuit = grover(&marked, 1);
            let mut sim = BitSliceSimulator::new(2);
            sim.run(&circuit).unwrap();
            let p = sim.probability_of_basis_state(&marked);
            assert!((p - 1.0).abs() < 1e-12, "marked {marked:?}: {p}");
        }
    }

    #[test]
    fn bitslice_and_dense_agree_on_grover() {
        let marked = [false, true, true, false, true];
        let circuit = grover(&marked, 2);
        let mut dense = DenseSimulator::new(5);
        let mut exact = BitSliceSimulator::new(5);
        dense.run(&circuit).unwrap();
        exact.run(&circuit).unwrap();
        for basis in 0..32usize {
            let bits: Vec<bool> = (0..5).map(|q| basis >> q & 1 == 1).collect();
            let expected = dense.amplitude(&bits);
            let got = exact.amplitude(&bits).to_complex();
            assert!(expected.approx_eq(&got, 1e-9), "basis {bits:?}");
        }
    }
}
