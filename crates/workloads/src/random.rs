//! Random circuit generation following the recipe of the paper's first
//! benchmark set (Table III).
//!
//! "In building a circuit, we first inserted an H-gate to every qubit (so to
//! impose state superposition in the beginning), and then inserted the
//! targeted number of gates into the circuit by picking every gate uniformly
//! at random from the mentioned gate set and applied it to some qubit(s)
//! selected uniformly at random."  The gate set is Table I minus `Rx(π/2)`
//! and `Ry(π/2)`, and the gate count is three times the qubit count.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sliq_circuit::{Circuit, Gate};

/// Which gates the random generator draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RandomGateSet {
    /// The paper's Table III set: Table I without the π/2 rotations.
    PaperTable3,
    /// Clifford gates only (useful for stabilizer cross-checks).
    CliffordOnly,
    /// The full supported set including `Rx(π/2)` and `Ry(π/2)`.
    Full,
}

/// Configuration of the random circuit generator.
#[derive(Debug, Clone, Copy)]
pub struct RandomCircuitConfig {
    /// Number of qubits.
    pub num_qubits: usize,
    /// Number of gates inserted after the initial H layer.
    pub num_gates: usize,
    /// Whether to start with a Hadamard on every qubit (the paper does).
    pub initial_hadamard_layer: bool,
    /// The gate alphabet.
    pub gate_set: RandomGateSet,
}

impl RandomCircuitConfig {
    /// The paper's Table III configuration: `#gates : #qubits = 3 : 1`.
    pub fn paper_table3(num_qubits: usize) -> Self {
        Self {
            num_qubits,
            num_gates: 3 * num_qubits,
            initial_hadamard_layer: true,
            gate_set: RandomGateSet::PaperTable3,
        }
    }
}

/// Generates a random circuit for `config`, deterministically from `seed`.
pub fn random_circuit(config: &RandomCircuitConfig, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = config.num_qubits;
    let mut circuit = Circuit::new(n);
    if config.initial_hadamard_layer {
        for q in 0..n {
            circuit.h(q);
        }
    }
    let kinds: &[&str] = match config.gate_set {
        RandomGateSet::PaperTable3 => &["x", "y", "z", "h", "s", "t", "cx", "cz", "ccx", "cswap"],
        RandomGateSet::CliffordOnly => &["x", "y", "z", "h", "s", "cx", "cz"],
        RandomGateSet::Full => &[
            "x", "y", "z", "h", "s", "t", "rx", "ry", "cx", "cz", "ccx", "cswap",
        ],
    };
    for _ in 0..config.num_gates {
        circuit.push(random_gate(&mut rng, n, kinds));
    }
    circuit
}

/// The paper's Table III circuit for a given qubit count and seed.
pub fn random_clifford_t(num_qubits: usize, seed: u64) -> Circuit {
    random_circuit(&RandomCircuitConfig::paper_table3(num_qubits), seed)
}

fn distinct_qubits<R: Rng>(rng: &mut R, n: usize, how_many: usize) -> Vec<usize> {
    debug_assert!(how_many <= n);
    let mut all: Vec<usize> = (0..n).collect();
    all.shuffle(rng);
    all.truncate(how_many);
    all
}

fn random_gate<R: Rng>(rng: &mut R, n: usize, kinds: &[&str]) -> Gate {
    loop {
        let kind = kinds[rng.gen_range(0..kinds.len())];
        let needs = match kind {
            "cx" | "cz" => 2,
            "ccx" | "cswap" => 3,
            _ => 1,
        };
        if needs > n {
            continue; // too few qubits for this gate; draw again
        }
        let qs = distinct_qubits(rng, n, needs);
        return match kind {
            "x" => Gate::X(qs[0]),
            "y" => Gate::Y(qs[0]),
            "z" => Gate::Z(qs[0]),
            "h" => Gate::H(qs[0]),
            "s" => Gate::S(qs[0]),
            "t" => Gate::T(qs[0]),
            "rx" => Gate::RxPi2(qs[0]),
            "ry" => Gate::RyPi2(qs[0]),
            "cx" => Gate::Cnot {
                control: qs[0],
                target: qs[1],
            },
            "cz" => Gate::Cz {
                control: qs[0],
                target: qs[1],
            },
            "ccx" => Gate::Toffoli {
                controls: vec![qs[0], qs[1]],
                target: qs[2],
            },
            "cswap" => Gate::Fredkin {
                controls: vec![qs[0]],
                target1: qs[1],
                target2: qs[2],
            },
            other => unreachable!("unknown gate kind {other}"),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_matches_the_recipe() {
        let c = random_clifford_t(40, 7);
        assert_eq!(c.num_qubits(), 40);
        // H prelayer + 3·n random gates.
        assert_eq!(c.len(), 40 + 120);
        assert!(c.validate().is_ok());
        // The Table III set excludes the π/2 rotations.
        assert_eq!(c.gate_counts().get("rx_pi2"), None);
        assert_eq!(c.gate_counts().get("ry_pi2"), None);
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = random_clifford_t(16, 123);
        let b = random_clifford_t(16, 123);
        let c = random_clifford_t(16, 124);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn clifford_only_set_is_clifford() {
        let config = RandomCircuitConfig {
            num_qubits: 8,
            num_gates: 50,
            initial_hadamard_layer: true,
            gate_set: RandomGateSet::CliffordOnly,
        };
        let c = random_circuit(&config, 5);
        assert!(c.is_clifford());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn full_set_small_qubit_counts_still_valid() {
        // With 2 qubits, 3-operand gates must be skipped, not mis-built.
        let config = RandomCircuitConfig {
            num_qubits: 2,
            num_gates: 30,
            initial_hadamard_layer: false,
            gate_set: RandomGateSet::Full,
        };
        let c = random_circuit(&config, 9);
        assert_eq!(c.len(), 30);
        assert!(c.validate().is_ok());
    }
}
