//! # sliq-workloads
//!
//! Generators for the four benchmark families of the paper's evaluation
//! (Section IV), parameterised so the harness can reproduce each table at
//! any scale:
//!
//! * [`random`] — random Clifford+T circuits with the paper's H-prelayer and
//!   3:1 gate/qubit ratio (Table III),
//! * [`revlib_like`] — synthetic RevLib-style reversible circuits and the
//!   "H on unspecified inputs" modification (Table IV),
//! * [`algorithms`] — entanglement/GHZ and Bernstein–Vazirani circuits
//!   (Table V),
//! * [`supremacy`] — GRCS-style rectangular-lattice supremacy circuits
//!   (Table VI).
//!
//! ```
//! use sliq_workloads::algorithms;
//! let bv = algorithms::bernstein_vazirani_all_ones(80);
//! assert_eq!(bv.len(), 239);   // matches the Table V gate count
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod grover;
pub mod random;
pub mod revlib_like;
pub mod supremacy;

pub use algorithms::{
    bell_pair, bernstein_vazirani, bernstein_vazirani_all_ones, entanglement, ghz,
};
pub use grover::{grover, grover_optimal};
pub use random::{random_circuit, random_clifford_t, RandomCircuitConfig, RandomGateSet};
pub use revlib_like::{table4_suite, ReversibleBenchmark};
pub use supremacy::{supremacy_circuit, table6_lattices, Lattice};
