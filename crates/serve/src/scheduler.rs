//! The admission queue: a bounded, connection-fair scheduler.
//!
//! Jobs are queued per connection and drained round-robin, so one
//! connection streaming hundreds of requests cannot starve another that
//! sends one.  Capacity is bounded twice — a global depth and a per
//! connection share — and [`Scheduler::submit`] hands the job back instead
//! of blocking when either bound is hit, which the server turns into an
//! explicit `Overloaded` response.  Nothing here ever queues unboundedly.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// A bounded multi-producer queue with round-robin fairness across
/// connection ids.
pub struct Scheduler<J> {
    state: Mutex<State<J>>,
    available: Condvar,
    capacity: usize,
    per_conn: usize,
}

struct State<J> {
    /// Per-connection FIFO queues in round-robin order; the front
    /// connection is served next.
    queues: VecDeque<(u64, VecDeque<J>)>,
    /// Total queued jobs across every connection.
    queued: usize,
    shutdown: bool,
}

/// Why a submission was refused (the job is handed back in both cases).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Refusal {
    /// The global queue depth is exhausted.
    QueueFull {
        /// The configured global depth.
        capacity: usize,
    },
    /// This connection already holds its full share of the queue.
    ConnectionFull {
        /// The configured per-connection share.
        capacity: usize,
    },
    /// The scheduler is shutting down.
    ShuttingDown,
}

impl<J> Scheduler<J> {
    /// A scheduler holding at most `capacity` jobs in total and at most
    /// `per_conn` jobs per connection (both clamped to at least 1).
    pub fn new(capacity: usize, per_conn: usize) -> Self {
        Self {
            state: Mutex::new(State {
                queues: VecDeque::new(),
                queued: 0,
                shutdown: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
            per_conn: per_conn.max(1).min(capacity.max(1)),
        }
    }

    /// Enqueues `job` for `conn_id`, or hands it back with the reason when
    /// the queue (or this connection's share) is full.  Never blocks.
    pub fn submit(&self, conn_id: u64, job: J) -> Result<(), (J, Refusal)> {
        let mut guard = self.state.lock().unwrap();
        let state = &mut *guard;
        if state.shutdown {
            return Err((job, Refusal::ShuttingDown));
        }
        // Check the per-connection share before the global depth: when both
        // are exhausted, a connection that exceeded its own share must be
        // told so ("drain responses first"), not blamed on global load
        // ("retry later") — clients pick their backoff from the reason.
        let existing = state.queues.iter_mut().find(|(id, _)| *id == conn_id);
        if let Some((_, queue)) = &existing {
            if queue.len() >= self.per_conn {
                return Err((
                    job,
                    Refusal::ConnectionFull {
                        capacity: self.per_conn,
                    },
                ));
            }
        }
        if state.queued >= self.capacity {
            return Err((
                job,
                Refusal::QueueFull {
                    capacity: self.capacity,
                },
            ));
        }
        match existing {
            Some((_, queue)) => queue.push_back(job),
            None => {
                let mut queue = VecDeque::new();
                queue.push_back(job);
                state.queues.push_back((conn_id, queue));
            }
        }
        state.queued += 1;
        drop(guard);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until a job is available and returns it, rotating the served
    /// connection to the back of the round-robin.  Returns `None` once the
    /// scheduler is shut down **and** drained.
    pub fn next(&self) -> Option<J> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some((conn_id, mut queue)) = state.queues.pop_front() {
                let job = queue.pop_front().expect("queues never hold empty entries");
                state.queued -= 1;
                if !queue.is_empty() {
                    state.queues.push_back((conn_id, queue));
                }
                return Some(job);
            }
            if state.shutdown {
                return None;
            }
            state = self.available.wait(state).unwrap();
        }
    }

    /// Drops every queued job of a disconnected connection, returning them
    /// so the caller can account for the shed work.
    pub fn purge(&self, conn_id: u64) -> Vec<J> {
        let mut state = self.state.lock().unwrap();
        let mut dropped = Vec::new();
        if let Some(pos) = state.queues.iter().position(|(id, _)| *id == conn_id) {
            let (_, queue) = state.queues.remove(pos).unwrap();
            state.queued -= queue.len();
            dropped.extend(queue);
        }
        dropped
    }

    /// Jobs currently queued across all connections.
    pub fn queued(&self) -> usize {
        self.state.lock().unwrap().queued
    }

    /// Stops accepting submissions and wakes every waiting worker; queued
    /// jobs are still drained by [`Scheduler::next`].
    pub fn shutdown(&self) {
        self.state.lock().unwrap().shutdown = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn round_robin_interleaves_connections() {
        let s = Scheduler::new(16, 16);
        // Connection 1 floods first, connection 2 adds two jobs after.
        for i in 0..4 {
            s.submit(1, (1, i)).unwrap();
        }
        for i in 0..2 {
            s.submit(2, (2, i)).unwrap();
        }
        let order: Vec<(u64, usize)> = (0..6).map(|_| s.next().unwrap()).collect();
        // Service alternates between the connections until 2 drains.
        assert_eq!(order, vec![(1, 0), (2, 0), (1, 1), (2, 1), (1, 2), (1, 3)]);
    }

    #[test]
    fn capacity_bounds_shed_instead_of_blocking() {
        let s = Scheduler::new(3, 2);
        s.submit(1, "a").unwrap();
        s.submit(1, "b").unwrap();
        // Per-connection share exhausted.
        assert!(matches!(
            s.submit(1, "c"),
            Err(("c", Refusal::ConnectionFull { capacity: 2 }))
        ));
        s.submit(2, "d").unwrap();
        // Global depth exhausted.
        assert!(matches!(
            s.submit(3, "e"),
            Err(("e", Refusal::QueueFull { capacity: 3 }))
        ));
        // Both bounds exhausted: the per-connection reason wins so the
        // flooding connection is told to drain its own responses.
        assert!(matches!(
            s.submit(1, "f"),
            Err(("f", Refusal::ConnectionFull { capacity: 2 }))
        ));
        assert_eq!(s.queued(), 3);
    }

    #[test]
    fn purge_drops_only_the_disconnected_connection() {
        let s = Scheduler::new(8, 8);
        s.submit(1, 10).unwrap();
        s.submit(2, 20).unwrap();
        s.submit(1, 11).unwrap();
        assert_eq!(s.purge(1), vec![10, 11]);
        assert_eq!(s.queued(), 1);
        assert_eq!(s.next(), Some(20));
    }

    #[test]
    fn shutdown_drains_then_releases_workers() {
        let s = Arc::new(Scheduler::new(8, 8));
        s.submit(1, 1).unwrap();
        s.shutdown();
        assert!(matches!(s.submit(1, 2), Err((2, Refusal::ShuttingDown))));
        assert_eq!(s.next(), Some(1));
        assert_eq!(s.next(), None);
        // A worker blocked in next() is woken by shutdown.
        let s2 = Arc::new(Scheduler::<u32>::new(8, 8));
        let waiter = {
            let s2 = Arc::clone(&s2);
            std::thread::spawn(move || s2.next())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        s2.shutdown();
        assert_eq!(waiter.join().unwrap(), None);
    }
}
