//! The TCP server: connection handling, admission control, and the worker
//! pool that executes queued runs.
//!
//! One thread accepts connections; one lightweight thread per connection
//! decodes frames and answers cheap requests (ping, stats, malformed
//! input, capability rejections) inline; heavy work — actually simulating
//! a circuit — is queued on the fair [`Scheduler`] and executed by a fixed
//! pool of worker threads, so a burst of connections cannot spawn
//! unbounded simulation work.  When the queue is full the request is
//! answered with an explicit `Overloaded` frame instead of queueing —
//! memory stays bounded under any load.
//!
//! Responses are written through a per-connection mutex and tagged with the
//! request id, so a connection may pipeline requests and receive responses
//! out of order as workers finish.

use crate::protocol::{
    self, codes, Request, Response, RunOptions, RunOutcome, StatsSnapshot, WireError, WireHistogram,
};
use crate::scheduler::{Refusal, Scheduler};
use sliq_circuit::qasm::{self, ParseLimits};
use sliq_circuit::Circuit;
use sliq_exec::{BackendKind, ExecError, ResultCache, Session, SessionConfig};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Server construction options (builder style).
#[derive(Clone)]
pub struct ServerConfig {
    /// Worker threads executing queued runs.
    pub workers: usize,
    /// Global admission-queue depth; submissions beyond it are shed.
    pub queue_depth: usize,
    /// Per-connection share of the queue (`None` = `queue_depth / 4`).
    pub per_conn_queue: Option<usize>,
    /// Maximum simultaneously open connections; extras are refused.
    pub max_connections: usize,
    /// Byte budget applied to tenants without an explicit budget.
    pub default_max_bytes: Option<usize>,
    /// Explicit per-tenant byte budgets.
    pub tenant_budgets: Vec<(String, usize)>,
    /// Kernel fan-out width per session (`None` = the kernel default).
    pub session_threads: Option<usize>,
    /// Enable automatic variable reordering in sessions.
    pub auto_reorder: bool,
    /// Attach the shared result cache to every session.
    pub use_result_cache: bool,
    /// The cache to attach (`None` = the process-global cache).
    pub result_cache: Option<Arc<ResultCache>>,
    /// Limits applied to QASM text and binary circuit payloads.
    pub parse_limits: ParseLimits,
    /// Maximum accepted frame payload, checked before allocation.
    pub max_frame_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: sliq_bdd::pool::default_threads().max(1),
            queue_depth: 64,
            per_conn_queue: None,
            max_connections: 64,
            default_max_bytes: None,
            tenant_budgets: Vec::new(),
            session_threads: None,
            auto_reorder: false,
            use_result_cache: true,
            result_cache: None,
            parse_limits: ParseLimits::default(),
            max_frame_bytes: protocol::MAX_FRAME_BYTES,
        }
    }
}

impl ServerConfig {
    /// Sets the worker-thread count (clamped to at least 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the global admission-queue depth.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Sets the per-connection queue share.
    pub fn per_conn_queue(mut self, depth: usize) -> Self {
        self.per_conn_queue = Some(depth.max(1));
        self
    }

    /// Sets the open-connection cap.
    pub fn max_connections(mut self, cap: usize) -> Self {
        self.max_connections = cap.max(1);
        self
    }

    /// Sets the default per-tenant byte budget.
    pub fn default_max_bytes(mut self, bytes: usize) -> Self {
        self.default_max_bytes = Some(bytes);
        self
    }

    /// Gives `tenant` an explicit byte budget (overrides the default).
    pub fn tenant_budget(mut self, tenant: impl Into<String>, bytes: usize) -> Self {
        self.tenant_budgets.push((tenant.into(), bytes));
        self
    }

    /// Sets the kernel fan-out width used by every session.
    pub fn session_threads(mut self, threads: usize) -> Self {
        self.session_threads = Some(threads.max(1));
        self
    }

    /// Enables automatic variable reordering in sessions.
    pub fn auto_reorder(mut self, enabled: bool) -> Self {
        self.auto_reorder = enabled;
        self
    }

    /// Enables or disables the shared result cache.
    pub fn result_cache(mut self, enabled: bool) -> Self {
        self.use_result_cache = enabled;
        self
    }

    /// Attaches a specific cache instance instead of the process-global
    /// one (implies enabling the cache).
    pub fn with_result_cache(mut self, cache: Arc<ResultCache>) -> Self {
        self.use_result_cache = true;
        self.result_cache = Some(cache);
        self
    }

    /// Sets the parse limits applied to submitted circuits.
    pub fn parse_limits(mut self, limits: ParseLimits) -> Self {
        self.parse_limits = limits;
        self
    }

    /// Sets the maximum accepted frame size.
    pub fn max_frame_bytes(mut self, bytes: usize) -> Self {
        self.max_frame_bytes = bytes.max(64);
        self
    }

    fn budget_for(&self, tenant: &str) -> Option<usize> {
        self.tenant_budgets
            .iter()
            .find(|(name, _)| name == tenant)
            .map(|(_, bytes)| *bytes)
            .or(self.default_max_bytes)
    }
}

/// Live server counters (all monotone except `connections_open` and the
/// queue gauge, which move both ways).
#[derive(Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections_accepted: AtomicU64,
    /// Connections refused at the open-connection cap.
    pub connections_refused: AtomicU64,
    /// Connections currently open.
    pub connections_open: AtomicU64,
    /// Requests decoded (any type).
    pub requests: AtomicU64,
    /// Run requests answered successfully.
    pub requests_ok: AtomicU64,
    /// Requests answered with an error frame.
    pub requests_error: AtomicU64,
    /// Run requests shed with an overloaded frame.
    pub requests_overloaded: AtomicU64,
    /// Gates applied by completed runs.
    pub gates_applied: AtomicU64,
    /// Measurement shots drawn by completed runs.
    pub shots_sampled: AtomicU64,
    /// Simulation sessions opened by workers.
    pub sessions_opened: AtomicU64,
}

/// The job a connection thread hands to the worker pool.
struct Job {
    writer: Arc<ConnWriter>,
    request_id: u32,
    options: RunOptions,
    circuit: Circuit,
    backend: BackendKind,
    max_bytes: Option<usize>,
}

/// Serialised writer for one connection: workers and the connection thread
/// interleave whole frames, never bytes.
struct ConnWriter {
    stream: Mutex<BufWriter<TcpStream>>,
}

impl ConnWriter {
    fn send(&self, request_id: u32, response: &Response) {
        let frame = protocol::encode_response(request_id, response);
        // A handler thread that panicked mid-send poisons this mutex; the
        // stream state is still a whole number of frames (frames are written
        // with one `write_all`), so later senders can keep using it.
        let mut stream = self
            .stream
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        // The peer may already be gone; workers just drop the result then.
        let _ = stream.write_all(&frame).and_then(|_| stream.flush());
    }
}

struct Shared {
    config: ServerConfig,
    scheduler: Scheduler<Job>,
    stats: ServerStats,
    cache: Arc<ResultCache>,
    shutdown: AtomicBool,
    /// Read-half clones of open connections, shut down to unblock their
    /// threads when the server stops.
    conn_streams: Mutex<HashMap<u64, TcpStream>>,
    handler_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn stats_snapshot(&self) -> StatsSnapshot {
        let s = &self.stats;
        let cache = self.cache.stats();
        let mut fields = vec![
            (
                "connections_accepted".into(),
                s.connections_accepted.load(Ordering::Relaxed),
            ),
            (
                "connections_refused".into(),
                s.connections_refused.load(Ordering::Relaxed),
            ),
            (
                "connections_open".into(),
                s.connections_open.load(Ordering::Relaxed),
            ),
            ("requests".into(), s.requests.load(Ordering::Relaxed)),
            ("requests_ok".into(), s.requests_ok.load(Ordering::Relaxed)),
            (
                "requests_error".into(),
                s.requests_error.load(Ordering::Relaxed),
            ),
            (
                "requests_overloaded".into(),
                s.requests_overloaded.load(Ordering::Relaxed),
            ),
            (
                "gates_applied".into(),
                s.gates_applied.load(Ordering::Relaxed),
            ),
            (
                "shots_sampled".into(),
                s.shots_sampled.load(Ordering::Relaxed),
            ),
            (
                "sessions_opened".into(),
                s.sessions_opened.load(Ordering::Relaxed),
            ),
            ("queue_depth".into(), self.scheduler.queued() as u64),
        ];
        fields.push(("cache_hits".into(), cache.hits));
        fields.push(("cache_misses".into(), cache.misses));
        fields.push(("cache_insertions".into(), cache.insertions));
        fields.push(("cache_evictions".into(), cache.evictions));
        fields.push(("cache_entries".into(), cache.entries as u64));
        fields.push(("cache_bytes".into(), cache.bytes as u64));
        StatsSnapshot { fields }
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) without accepting
    /// anything yet.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let per_conn = config
            .per_conn_queue
            .unwrap_or_else(|| (config.queue_depth / 4).max(1));
        let cache = config
            .result_cache
            .clone()
            .unwrap_or_else(|| Arc::clone(ResultCache::global()));
        let shared = Arc::new(Shared {
            scheduler: Scheduler::new(config.queue_depth, per_conn),
            stats: ServerStats::default(),
            cache,
            shutdown: AtomicBool::new(false),
            conn_streams: Mutex::new(HashMap::new()),
            handler_threads: Mutex::new(Vec::new()),
            config,
        });
        Ok(Self { listener, shared })
    }

    /// The bound address (the concrete port when bound to port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the accept loop on the calling thread, returning only when the
    /// listener fails.  Workers are spawned first.  This is what the
    /// `sliq-serve` binary calls.
    pub fn run(self) -> io::Result<()> {
        let handle = self.spawn()?;
        for worker in handle.worker_threads {
            let _ = worker.join();
        }
        if let Some(accept) = handle.accept_thread {
            let _ = accept.join();
        }
        Ok(())
    }

    /// Spawns the accept loop and worker pool and returns a handle for
    /// tests and in-process load generators.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        let worker_threads = (0..self.shared.config.workers)
            .map(|i| {
                let shared = Arc::clone(&self.shared);
                thread::Builder::new()
                    .name(format!("sliq-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        let accept_shared = Arc::clone(&self.shared);
        let listener = self.listener;
        let accept_thread = thread::Builder::new()
            .name("sliq-serve-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .expect("spawn accept thread");
        Ok(ServerHandle {
            addr,
            shared: self.shared,
            accept_thread: Some(accept_thread),
            worker_threads,
        })
    }
}

impl ServerHandle {
    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time snapshot of the server counters (same fields as the
    /// stats endpoint).
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats_snapshot()
    }

    /// Stops accepting, sheds the queue tail into workers, closes open
    /// connections, and joins every thread.  In-flight runs finish and
    /// their responses are written before workers exit.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection to ourselves.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        if let Some(accept) = self.accept_thread.take() {
            let _ = accept.join();
        }
        // Close open connections so their handler threads stop reading.
        // A panicked handler may have poisoned either registry mutex;
        // shutdown must still complete, so recover the inner value — the
        // registries are only ever mutated with the lock held, so they are
        // structurally intact regardless of where the panic landed.
        for (_, stream) in self
            .shared
            .conn_streams
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .drain()
        {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let handlers: Vec<_> = self
            .shared
            .handler_threads
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .drain(..)
            .collect();
        for handler in handlers {
            let _ = handler.join();
        }
        // Workers drain whatever is still queued, then see None and exit.
        self.shared.scheduler.shutdown();
        for worker in self.worker_threads.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Connection cleanup that runs even when the handler thread panics
/// (e.g. on a request that trips a bug in parsing or execution): the
/// open-connection gauge, the stream-clone registry, and the scheduler
/// must not leak per panic, or `max_connections` panics would wedge the
/// accept loop into refusing everything forever.
struct ConnGuard {
    conn_id: u64,
    shared: Arc<Shared>,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        // Never panic in drop (it would abort): recover poisoned mutexes.
        let mut streams = self
            .shared
            .conn_streams
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        streams.remove(&self.conn_id);
        drop(streams);
        self.shared
            .stats
            .connections_open
            .fetch_sub(1, Ordering::SeqCst);
        // Queued jobs of a gone connection would only waste workers;
        // drop them.
        let _ = self.shared.scheduler.purge(self.conn_id);
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut next_conn_id: u64 = 1;
    for incoming in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match incoming {
            Ok(stream) => stream,
            Err(_) => continue,
        };
        let open = shared.stats.connections_open.load(Ordering::SeqCst);
        if open >= shared.config.max_connections as u64 {
            shared
                .stats
                .connections_refused
                .fetch_add(1, Ordering::Relaxed);
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        }
        let conn_id = next_conn_id;
        next_conn_id += 1;
        shared
            .stats
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
        shared.stats.connections_open.fetch_add(1, Ordering::SeqCst);
        if let Ok(clone) = stream.try_clone() {
            shared
                .conn_streams
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .insert(conn_id, clone);
        }
        let conn_shared = Arc::clone(shared);
        let handler = thread::Builder::new()
            .name(format!("sliq-serve-conn-{conn_id}"))
            .spawn(move || {
                let _guard = ConnGuard {
                    conn_id,
                    shared: Arc::clone(&conn_shared),
                };
                connection_loop(conn_id, stream, &conn_shared);
            })
            .expect("spawn connection thread");
        // Reap finished handlers while appending the new one, so a
        // long-running server accepting many short connections does not
        // accumulate join handles without bound.  Joining a finished
        // thread never blocks; a panicked handler yields Err, which the
        // ConnGuard already cleaned up after.
        let mut handlers = shared
            .handler_threads
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let mut live = Vec::with_capacity(handlers.len() + 1);
        for h in handlers.drain(..) {
            if h.is_finished() {
                let _ = h.join();
            } else {
                live.push(h);
            }
        }
        live.push(handler);
        *handlers = live;
    }
}

fn connection_loop(conn_id: u64, stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let writer = match stream.try_clone() {
        Ok(clone) => Arc::new(ConnWriter {
            stream: Mutex::new(BufWriter::new(clone)),
        }),
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let (request_id, request) = match protocol::read_request(
            &mut reader,
            shared.config.max_frame_bytes,
            &shared.config.parse_limits,
        ) {
            Ok(decoded) => decoded,
            Err(WireError::Closed) | Err(WireError::Io(_)) => return,
            Err(error) => {
                // Protocol violation: report it (request id 0 — the frame
                // may be too mangled to know the real one) and hang up,
                // since framing can no longer be trusted.
                let code = match &error {
                    WireError::Version(_) => codes::UNSUPPORTED_VERSION,
                    WireError::FrameTooLarge { .. } => codes::FRAME_TOO_LARGE,
                    _ => codes::MALFORMED,
                };
                shared.stats.requests_error.fetch_add(1, Ordering::Relaxed);
                writer.send(
                    0,
                    &Response::Error {
                        code,
                        message: error.to_string(),
                    },
                );
                return;
            }
        };
        shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        match request {
            Request::Ping => writer.send(request_id, &Response::Pong),
            Request::Stats => {
                writer.send(request_id, &Response::Stats(shared.stats_snapshot()));
            }
            Request::RunQasm { options, source } => {
                match qasm::parse_with_limits(&source, shared.config.parse_limits) {
                    Ok(circuit) => admit(conn_id, &writer, request_id, options, circuit, shared),
                    Err(parse_error) => {
                        shared.stats.requests_error.fetch_add(1, Ordering::Relaxed);
                        writer.send(
                            request_id,
                            &Response::Error {
                                code: codes::PARSE,
                                message: parse_error.to_string(),
                            },
                        );
                    }
                }
            }
            Request::RunGates { options, circuit } => {
                admit(conn_id, &writer, request_id, options, circuit, shared);
            }
        }
    }
}

/// Validates and queues a run request, answering rejections inline so no
/// worker slot is spent on work that is known to fail.
fn admit(
    conn_id: u64,
    writer: &Arc<ConnWriter>,
    request_id: u32,
    options: RunOptions,
    circuit: Circuit,
    shared: &Arc<Shared>,
) {
    let reject = |error: ExecError| {
        shared.stats.requests_error.fetch_add(1, Ordering::Relaxed);
        writer.send(
            request_id,
            &Response::Error {
                code: error.wire_code(),
                message: error.to_string(),
            },
        );
    };
    if let Err(circuit_error) = circuit.validate() {
        reject(ExecError::from(circuit_error));
        return;
    }
    let backend = options.backend.resolve(&circuit);
    if let Err(error) = options.backend.check_circuit(&circuit) {
        reject(error);
        return;
    }
    let max_bytes = shared.config.budget_for(&options.tenant);
    if let Err(error) = backend.check_capacity(circuit.num_qubits(), max_bytes) {
        reject(error);
        return;
    }
    if options.shots > 0 && circuit.num_qubits() > 64 {
        // Sampling packs an outcome into a u64; fail at admission instead
        // of after a full (wasted) run.
        reject(ExecError::Unsupported {
            backend: backend.name(),
            what: format!(
                "sampling {} qubits (outcomes are 64-bit words)",
                circuit.num_qubits()
            ),
        });
        return;
    }
    let job = Job {
        writer: Arc::clone(writer),
        request_id,
        options,
        circuit,
        backend,
        max_bytes,
    };
    if let Err((job, refusal)) = shared.scheduler.submit(conn_id, job) {
        shared
            .stats
            .requests_overloaded
            .fetch_add(1, Ordering::Relaxed);
        let message = match refusal {
            Refusal::QueueFull { capacity } => {
                format!("admission queue full (depth {capacity}); retry later")
            }
            Refusal::ConnectionFull { capacity } => format!(
                "connection already holds its queue share ({capacity}); drain responses first"
            ),
            Refusal::ShuttingDown => "server is shutting down".into(),
        };
        job.writer
            .send(job.request_id, &Response::Overloaded { message });
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.scheduler.next() {
        execute(shared, job);
    }
}

/// Runs one admitted job on a fresh session and writes the response.
fn execute(shared: &Arc<Shared>, job: Job) {
    let mut config = SessionConfig::with_backend(job.backend)
        .auto_reorder(shared.config.auto_reorder)
        // One request seed drives both the batched sampler and the
        // mid-circuit measurement stream, so a remote dynamic run is fully
        // reproducible from (circuit, seed).
        .measurement_seed(job.options.seed);
    if let Some(bytes) = job.max_bytes {
        config = config.max_bytes(bytes);
    }
    if let Some(threads) = shared.config.session_threads {
        config = config.threads(threads);
    }
    let fail = |error: ExecError| {
        shared.stats.requests_error.fetch_add(1, Ordering::Relaxed);
        job.writer.send(
            job.request_id,
            &Response::Error {
                code: error.wire_code(),
                message: error.to_string(),
            },
        );
    };
    let mut session = match Session::for_circuit(&job.circuit, config) {
        Ok(session) => session,
        Err(error) => return fail(error),
    };
    if shared.config.use_result_cache {
        session.attach_result_cache(Arc::clone(&shared.cache));
    }
    shared.stats.sessions_opened.fetch_add(1, Ordering::Relaxed);
    let run = match session.run(&job.circuit) {
        Ok(run) => run,
        Err(error) => return fail(error),
    };
    let histogram = if job.options.shots > 0 {
        match session.sample(job.options.shots, job.options.seed) {
            Ok(sample) => Some(WireHistogram {
                shots: sample.shots,
                sample_micros: sample.elapsed.as_micros() as u64,
                counts: sample
                    .histogram
                    .counts()
                    .iter()
                    .map(|(&outcome, &count)| (outcome, count))
                    .collect(),
            }),
            Err(error) => return fail(error),
        }
    } else {
        None
    };
    shared
        .stats
        .gates_applied
        .fetch_add(run.gates_applied as u64, Ordering::Relaxed);
    shared
        .stats
        .shots_sampled
        .fetch_add(job.options.shots, Ordering::Relaxed);
    shared.stats.requests_ok.fetch_add(1, Ordering::Relaxed);
    job.writer.send(
        job.request_id,
        &Response::Run(RunOutcome {
            backend: run.backend,
            gates_applied: run.gates_applied as u64,
            run_micros: run.elapsed.as_micros() as u64,
            total_probability: run.total_probability,
            live_nodes: run.stats.live_nodes.map(|n| n as u64),
            peak_memory_mib: run.stats.memory_mib,
            histogram,
            readout: run.readout,
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A connection handler that panics poisons the shared registry
    /// mutexes.  Shutdown must still drain them and join every thread —
    /// a wedged `shutdown()` here turns one buggy request into a stuck
    /// server that can never be stopped cleanly.
    #[test]
    fn shutdown_completes_after_a_handler_panic_poisons_the_registries() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default().workers(1)).unwrap();
        let handle = server.spawn().unwrap();
        // Keep a live connection open so shutdown() has streams to drain.
        let conn = TcpStream::connect(handle.addr()).unwrap();
        // Simulate a handler panicking while holding each registry mutex.
        let shared = Arc::clone(&handle.shared);
        for poisoner in [
            thread::spawn({
                let shared = Arc::clone(&shared);
                move || {
                    let _guard = shared.conn_streams.lock().unwrap();
                    panic!("deliberate poison");
                }
            }),
            thread::spawn({
                let shared = Arc::clone(&shared);
                move || {
                    let _guard = shared.handler_threads.lock().unwrap();
                    panic!("deliberate poison");
                }
            }),
        ] {
            assert!(poisoner.join().is_err(), "poisoner must panic");
        }
        assert!(
            shared.conn_streams.lock().is_err(),
            "mutex must be poisoned"
        );
        assert!(
            shared.handler_threads.lock().is_err(),
            "mutex must be poisoned"
        );
        // The fix under test: shutdown recovers the poisoned registries
        // instead of panicking (and thereby leaking every thread).
        handle.shutdown();
        drop(conn);
    }
}
