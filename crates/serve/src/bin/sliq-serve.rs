//! The `sliq-serve` binary: bind a TCP simulation service and run until
//! the process is killed.
//!
//! ```text
//! sliq-serve [--addr HOST:PORT] [--workers N] [--queue N] [--threads N]
//!            [--max-bytes BYTES] [--tenant NAME=BYTES]... [--no-cache]
//!            [--auto-reorder]
//! ```

use sliq_serve::{Server, ServerConfig};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: sliq-serve [--addr HOST:PORT] [--workers N] [--queue N] [--threads N]\n\
         \x20                 [--max-bytes BYTES] [--tenant NAME=BYTES]... [--no-cache]\n\
         \x20                 [--auto-reorder]\n\
         \n\
         Serve simulation requests over the sliq wire protocol (see PROTOCOL.md).\n\
         \n\
         \x20 --addr HOST:PORT     listen address (default 127.0.0.1:7878)\n\
         \x20 --workers N          simulation worker threads (default: kernel threads)\n\
         \x20 --queue N            admission queue depth (default 64)\n\
         \x20 --threads N          kernel fan-out width per session\n\
         \x20 --max-bytes BYTES    default per-tenant byte budget\n\
         \x20 --tenant NAME=BYTES  explicit byte budget for one tenant (repeatable)\n\
         \x20 --no-cache           do not attach the shared result cache\n\
         \x20 --auto-reorder       enable automatic variable reordering"
    );
    std::process::exit(2)
}

fn parse_number(value: Option<String>, flag: &str) -> usize {
    match value.and_then(|v| v.parse().ok()) {
        Some(n) => n,
        None => {
            eprintln!("sliq-serve: {flag} needs a number");
            usage()
        }
    }
}

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(value) => addr = value,
                None => usage(),
            },
            "--workers" => config = config.workers(parse_number(args.next(), "--workers")),
            "--queue" => config = config.queue_depth(parse_number(args.next(), "--queue")),
            "--threads" => {
                config = config.session_threads(parse_number(args.next(), "--threads"));
            }
            "--max-bytes" => {
                config = config.default_max_bytes(parse_number(args.next(), "--max-bytes"));
            }
            "--tenant" => {
                let spec = args.next().unwrap_or_else(|| usage());
                match spec.split_once('=').and_then(|(name, bytes)| {
                    bytes.parse::<usize>().ok().map(|b| (name.to_string(), b))
                }) {
                    Some((name, bytes)) => config = config.tenant_budget(name, bytes),
                    None => {
                        eprintln!("sliq-serve: --tenant wants NAME=BYTES, got {spec:?}");
                        usage()
                    }
                }
            }
            "--no-cache" => config = config.result_cache(false),
            "--auto-reorder" => config = config.auto_reorder(true),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("sliq-serve: unknown flag {other:?}");
                usage()
            }
        }
    }
    let workers = config.workers;
    let queue = config.queue_depth;
    let server = match Server::bind(&addr, config) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("sliq-serve: cannot bind {addr}: {error}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(local) => {
            eprintln!("sliq-serve: listening on {local} ({workers} workers, queue depth {queue})")
        }
        Err(_) => eprintln!("sliq-serve: listening on {addr}"),
    }
    if let Err(error) = server.run() {
        eprintln!("sliq-serve: server failed: {error}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
