//! The wire protocol: length-prefixed frames over a byte stream.
//!
//! Every message is one frame: a 4-byte big-endian payload length, then the
//! payload.  The payload starts with a fixed 6-byte header — protocol
//! version, message type, and a 4-byte request id the server echoes in the
//! matching response (connections may pipeline requests; responses complete
//! in any order and are correlated by id) — followed by a type-specific
//! body.  All integers are big-endian; floats travel as the big-endian bits
//! of their `f64`.  The full normative description lives in `PROTOCOL.md`
//! at the workspace root.
//!
//! Error codes come in two disjoint ranges: protocol-level codes below 16
//! ([`codes`]: malformed frames, parse rejections, load shedding) and the
//! execution-layer taxonomy at 16 and up ([`sliq_exec::wire`], produced by
//! [`sliq_exec::ExecError::wire_code`]).

use sliq_circuit::qasm::ParseLimits;
use sliq_circuit::{Circuit, Gate};
use sliq_exec::BackendKind;
use std::io::{self, Read, Write};

/// The protocol version this build speaks (payload byte 0 of every frame).
pub const PROTOCOL_VERSION: u8 = 1;

/// Default cap on a frame's payload length; [`read_frame`] rejects larger
/// frames before allocating their buffer.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Protocol-level error codes (the sub-16 range reserved by
/// [`sliq_exec::wire`]; execution errors reuse their [`sliq_exec::wire`]
/// codes verbatim).
pub mod codes {
    /// The frame or body could not be decoded.
    pub const MALFORMED: u16 = 1;
    /// The frame's version byte is not supported by this server.
    pub const UNSUPPORTED_VERSION: u16 = 2;
    /// The QASM source was rejected by the parser (message carries
    /// line/column).
    pub const PARSE: u16 = 3;
    /// The admission queue is full; retry later (sent as a distinct
    /// `Overloaded` message type, never silently dropped).
    pub const OVERLOADED: u16 = 4;
    /// The server failed internally (a bug; the message says what broke).
    pub const INTERNAL: u16 = 5;
    /// The frame exceeds the server's size cap.
    pub const FRAME_TOO_LARGE: u16 = 6;
}

// Message type bytes (requests < 0x80 <= responses).
const MSG_RUN_QASM: u8 = 0x01;
const MSG_RUN_GATES: u8 = 0x02;
const MSG_STATS: u8 = 0x03;
const MSG_PING: u8 = 0x04;
const MSG_RUN_OK: u8 = 0x81;
const MSG_ERROR: u8 = 0x82;
const MSG_OVERLOADED: u8 = 0x83;
const MSG_STATS_OK: u8 = 0x84;
const MSG_PONG: u8 = 0x85;

/// Per-request execution options carried in both run request shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOptions {
    /// Requested backend ([`BackendKind::Auto`] lets the server negotiate).
    pub backend: BackendKind,
    /// Measurement shots to sample after the run (0 = none).
    pub shots: u64,
    /// Seed for the batched sampler (same seed ⇒ same histogram).
    pub seed: u64,
    /// Tenant name for per-tenant budgets (empty = the default tenant).
    pub tenant: String,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            backend: BackendKind::Auto,
            shots: 0,
            seed: 0,
            tenant: String::new(),
        }
    }
}

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run a circuit submitted as OpenQASM 2.0 text.
    RunQasm {
        /// Execution options.
        options: RunOptions,
        /// The QASM program.
        source: String,
    },
    /// Run a circuit submitted in the compact binary gate encoding.
    RunGates {
        /// Execution options.
        options: RunOptions,
        /// The decoded circuit.
        circuit: Circuit,
    },
    /// Fetch the server's counters.
    Stats,
    /// Liveness probe.
    Ping,
}

/// A sampling histogram on the wire: outcome/count pairs sorted by outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireHistogram {
    /// Shots drawn.
    pub shots: u64,
    /// Wall-clock microseconds of the batched sampling.
    pub sample_micros: u64,
    /// `(outcome, count)` pairs, ascending by outcome.
    pub counts: Vec<(u64, u64)>,
}

/// The successful result of a run request.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// The concrete backend that executed the circuit.
    pub backend: BackendKind,
    /// Gates applied by the run.
    pub gates_applied: u64,
    /// Wall-clock microseconds of the run (a cache hit reports the lookup).
    pub run_micros: u64,
    /// Sum of all outcome probabilities after the run.
    pub total_probability: f64,
    /// Live representation nodes (symbolic backends only).
    pub live_nodes: Option<u64>,
    /// Peak memory of the state representation in MiB.
    pub peak_memory_mib: f64,
    /// The sampling histogram, when shots were requested.
    pub histogram: Option<WireHistogram>,
    /// Final classical-register contents for dynamic circuits (bit `i` is
    /// clbit `i`), `None` for static circuits.  Deterministic in the
    /// request's seed.
    pub readout: Option<Vec<bool>>,
}

/// The server's counters, as ordered name/value pairs (forward-compatible:
/// clients ignore names they do not know).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// `(name, value)` pairs in server order.
    pub fields: Vec<(String, u64)>,
}

impl StatsSnapshot {
    /// The value of a named counter, if the server reported it.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.fields
            .iter()
            .find(|(key, _)| key == name)
            .map(|(_, value)| *value)
    }
}

/// A decoded server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The run completed; here is the result.
    Run(RunOutcome),
    /// The request failed; `code` is a [`codes`] or [`sliq_exec::wire`]
    /// code.
    Error {
        /// Stable numeric error code.
        code: u16,
        /// Human-readable detail.
        message: String,
    },
    /// The admission queue was full and the request was shed (code
    /// [`codes::OVERLOADED`]); the client should back off and retry.
    Overloaded {
        /// Human-readable detail (queue capacity at shed time).
        message: String,
    },
    /// Server counters.
    Stats(StatsSnapshot),
    /// Liveness reply.
    Pong,
}

/// Decoding failures.
#[derive(Debug)]
pub enum WireError {
    /// The underlying stream failed.
    Io(io::Error),
    /// The peer closed the stream cleanly at a frame boundary.
    Closed,
    /// The frame or body violates the protocol.
    Malformed(String),
    /// The peer speaks an unsupported protocol version.
    Version(u8),
    /// The frame exceeds the configured size cap.
    FrameTooLarge {
        /// Declared payload length.
        len: usize,
        /// The configured cap.
        limit: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Closed => write!(f, "peer closed the connection"),
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
            WireError::Version(v) => write!(f, "unsupported protocol version {v}"),
            WireError::FrameTooLarge { len, limit } => {
                write!(f, "frame of {len} bytes exceeds the {limit}-byte cap")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(value: io::Error) -> Self {
        WireError::Io(value)
    }
}

// ---------------------------------------------------------------------- //
// Primitive encoding
// ---------------------------------------------------------------------- //

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// A bounds-checked cursor over a frame body.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Malformed(format!(
                "truncated {what}: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8, WireError> {
        Ok(self.bytes(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes(self.bytes(2, what)?.try_into().unwrap()))
    }

    fn u32(&mut self, what: &str) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.bytes(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.bytes(8, what)?.try_into().unwrap()))
    }

    fn f64(&mut self, what: &str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn rest_utf8(&mut self, what: &str) -> Result<String, WireError> {
        let slice = &self.buf[self.pos..];
        self.pos = self.buf.len();
        String::from_utf8(slice.to_vec())
            .map_err(|_| WireError::Malformed(format!("{what} is not valid UTF-8")))
    }

    fn done(&self, what: &str) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::Malformed(format!(
                "{} trailing bytes after {what}",
                self.remaining()
            )));
        }
        Ok(())
    }
}

fn backend_byte(kind: BackendKind) -> u8 {
    match kind {
        BackendKind::Auto => 0,
        BackendKind::BitSlice => 1,
        BackendKind::Qmdd => 2,
        BackendKind::Dense => 3,
        BackendKind::Stabilizer => 4,
    }
}

fn backend_from_byte(byte: u8) -> Result<BackendKind, WireError> {
    Ok(match byte {
        0 => BackendKind::Auto,
        1 => BackendKind::BitSlice,
        2 => BackendKind::Qmdd,
        3 => BackendKind::Dense,
        4 => BackendKind::Stabilizer,
        other => {
            return Err(WireError::Malformed(format!(
                "unknown backend byte {other}"
            )))
        }
    })
}

// ---------------------------------------------------------------------- //
// Circuit encoding (the compact binary gate format)
// ---------------------------------------------------------------------- //

const OP_X: u8 = 0;
const OP_Y: u8 = 1;
const OP_Z: u8 = 2;
const OP_H: u8 = 3;
const OP_S: u8 = 4;
const OP_SDG: u8 = 5;
const OP_T: u8 = 6;
const OP_TDG: u8 = 7;
const OP_RX_PI2: u8 = 8;
const OP_RY_PI2: u8 = 9;
const OP_CNOT: u8 = 10;
const OP_CZ: u8 = 11;
const OP_TOFFOLI: u8 = 12;
const OP_FREDKIN: u8 = 13;
const OP_MEASURE: u8 = 14;
const OP_RESET: u8 = 15;
const OP_COND: u8 = 16;

/// Appends the compact encoding of `circuit` (`u32` qubit count, `u32`
/// classical-bit count, `u32` gate count, then one opcode + operands per
/// gate) to `out`.
pub fn encode_circuit(out: &mut Vec<u8>, circuit: &Circuit) {
    put_u32(out, circuit.num_qubits() as u32);
    put_u32(out, circuit.num_clbits() as u32);
    put_u32(out, circuit.len() as u32);
    for gate in circuit.iter() {
        encode_gate(out, gate);
    }
}

fn encode_gate(out: &mut Vec<u8>, gate: &Gate) {
    match gate {
        Gate::X(q) => single(out, OP_X, *q),
        Gate::Y(q) => single(out, OP_Y, *q),
        Gate::Z(q) => single(out, OP_Z, *q),
        Gate::H(q) => single(out, OP_H, *q),
        Gate::S(q) => single(out, OP_S, *q),
        Gate::Sdg(q) => single(out, OP_SDG, *q),
        Gate::T(q) => single(out, OP_T, *q),
        Gate::Tdg(q) => single(out, OP_TDG, *q),
        Gate::RxPi2(q) => single(out, OP_RX_PI2, *q),
        Gate::RyPi2(q) => single(out, OP_RY_PI2, *q),
        Gate::Cnot { control, target } => {
            out.push(OP_CNOT);
            put_u32(out, *control as u32);
            put_u32(out, *target as u32);
        }
        Gate::Cz { control, target } => {
            out.push(OP_CZ);
            put_u32(out, *control as u32);
            put_u32(out, *target as u32);
        }
        Gate::Toffoli { controls, target } => {
            out.push(OP_TOFFOLI);
            out.push(controls.len() as u8);
            for c in controls {
                put_u32(out, *c as u32);
            }
            put_u32(out, *target as u32);
        }
        Gate::Fredkin {
            controls,
            target1,
            target2,
        } => {
            out.push(OP_FREDKIN);
            out.push(controls.len() as u8);
            for c in controls {
                put_u32(out, *c as u32);
            }
            put_u32(out, *target1 as u32);
            put_u32(out, *target2 as u32);
        }
        Gate::Measure { qubit, clbit } => {
            out.push(OP_MEASURE);
            put_u32(out, *qubit as u32);
            put_u32(out, *clbit as u32);
        }
        Gate::Reset { qubit } => single(out, OP_RESET, *qubit),
        Gate::Conditional {
            offset,
            width,
            value,
            gate,
        } => {
            out.push(OP_COND);
            put_u32(out, *offset as u32);
            put_u32(out, *width as u32);
            put_u64(out, *value);
            encode_gate(out, gate);
        }
    }
}

fn single(out: &mut Vec<u8>, op: u8, q: usize) {
    out.push(op);
    put_u32(out, q as u32);
}

/// Decodes a compact circuit, rejecting declared sizes beyond `limits`
/// before allocating anything proportional to them.
fn decode_circuit(cur: &mut Cursor<'_>, limits: &ParseLimits) -> Result<Circuit, WireError> {
    let num_qubits = cur.u32("qubit count")? as usize;
    let num_clbits = cur.u32("clbit count")? as usize;
    let num_gates = cur.u32("gate count")? as usize;
    if num_qubits > limits.max_qubits {
        return Err(WireError::Malformed(format!(
            "{num_qubits} qubits exceeds the limit ({})",
            limits.max_qubits
        )));
    }
    if num_clbits > limits.max_clbits {
        return Err(WireError::Malformed(format!(
            "{num_clbits} classical bits exceeds the limit ({})",
            limits.max_clbits
        )));
    }
    if num_gates > limits.max_gates {
        return Err(WireError::Malformed(format!(
            "{num_gates} gates exceeds the limit ({})",
            limits.max_gates
        )));
    }
    // 5 bytes is the smallest gate encoding, so the declared count can be
    // sanity-checked against the body before reserving the vector.
    if num_gates > cur.remaining() / 5 + 1 {
        return Err(WireError::Malformed(format!(
            "{num_gates} gates declared but only {} body bytes remain",
            cur.remaining()
        )));
    }
    let mut circuit = Circuit::with_clbits(num_qubits, num_clbits);
    for _ in 0..num_gates {
        let gate = decode_gate(cur, true)?;
        circuit.push(gate);
    }
    Ok(circuit)
}

/// Decodes one gate record.  `allow_dynamic` is false inside an `OP_COND`
/// body: conditionals must wrap a plain unitary, and rejecting nested
/// dynamic records here also bounds the decoder's recursion at depth one.
fn decode_gate(cur: &mut Cursor<'_>, allow_dynamic: bool) -> Result<Gate, WireError> {
    let op = cur.u8("gate opcode")?;
    if !allow_dynamic && op >= OP_MEASURE {
        return Err(WireError::Malformed(format!(
            "opcode {op} cannot appear inside a conditional body"
        )));
    }
    Ok(match op {
        OP_X => Gate::X(cur.u32("target")? as usize),
        OP_Y => Gate::Y(cur.u32("target")? as usize),
        OP_Z => Gate::Z(cur.u32("target")? as usize),
        OP_H => Gate::H(cur.u32("target")? as usize),
        OP_S => Gate::S(cur.u32("target")? as usize),
        OP_SDG => Gate::Sdg(cur.u32("target")? as usize),
        OP_T => Gate::T(cur.u32("target")? as usize),
        OP_TDG => Gate::Tdg(cur.u32("target")? as usize),
        OP_RX_PI2 => Gate::RxPi2(cur.u32("target")? as usize),
        OP_RY_PI2 => Gate::RyPi2(cur.u32("target")? as usize),
        OP_CNOT => Gate::Cnot {
            control: cur.u32("control")? as usize,
            target: cur.u32("target")? as usize,
        },
        OP_CZ => Gate::Cz {
            control: cur.u32("control")? as usize,
            target: cur.u32("target")? as usize,
        },
        OP_TOFFOLI => {
            let n = cur.u8("control count")? as usize;
            let mut controls = Vec::with_capacity(n);
            for _ in 0..n {
                controls.push(cur.u32("control")? as usize);
            }
            Gate::Toffoli {
                controls,
                target: cur.u32("target")? as usize,
            }
        }
        OP_FREDKIN => {
            let n = cur.u8("control count")? as usize;
            let mut controls = Vec::with_capacity(n);
            for _ in 0..n {
                controls.push(cur.u32("control")? as usize);
            }
            Gate::Fredkin {
                controls,
                target1: cur.u32("target1")? as usize,
                target2: cur.u32("target2")? as usize,
            }
        }
        OP_MEASURE => Gate::Measure {
            qubit: cur.u32("measure qubit")? as usize,
            clbit: cur.u32("measure clbit")? as usize,
        },
        OP_RESET => Gate::Reset {
            qubit: cur.u32("reset qubit")? as usize,
        },
        OP_COND => Gate::Conditional {
            offset: cur.u32("condition offset")? as usize,
            width: cur.u32("condition width")? as usize,
            value: cur.u64("condition value")?,
            gate: Box::new(decode_gate(cur, false)?),
        },
        other => {
            return Err(WireError::Malformed(format!("unknown gate opcode {other}")));
        }
    })
}

// ---------------------------------------------------------------------- //
// Message encoding
// ---------------------------------------------------------------------- //

fn encode_run_options(out: &mut Vec<u8>, options: &RunOptions) -> Result<(), WireError> {
    out.push(backend_byte(options.backend));
    out.push(0); // flags, reserved
    put_u64(out, options.shots);
    put_u64(out, options.seed);
    let tenant = options.tenant.as_bytes();
    if tenant.len() > u8::MAX as usize {
        return Err(WireError::Malformed(format!(
            "tenant name of {} bytes exceeds 255",
            tenant.len()
        )));
    }
    out.push(tenant.len() as u8);
    out.extend_from_slice(tenant);
    Ok(())
}

fn decode_run_options(cur: &mut Cursor<'_>) -> Result<RunOptions, WireError> {
    let backend = backend_from_byte(cur.u8("backend")?)?;
    let flags = cur.u8("flags")?;
    if flags != 0 {
        return Err(WireError::Malformed(format!("unknown flags {flags:#04x}")));
    }
    let shots = cur.u64("shots")?;
    let seed = cur.u64("seed")?;
    let tenant_len = cur.u8("tenant length")? as usize;
    let tenant = String::from_utf8(cur.bytes(tenant_len, "tenant name")?.to_vec())
        .map_err(|_| WireError::Malformed("tenant name is not valid UTF-8".into()))?;
    Ok(RunOptions {
        backend,
        shots,
        seed,
        tenant,
    })
}

fn frame(message_type: u8, request_id: u32, body: &[u8]) -> Vec<u8> {
    let payload_len = 6 + body.len();
    let mut out = Vec::with_capacity(4 + payload_len);
    put_u32(&mut out, payload_len as u32);
    out.push(PROTOCOL_VERSION);
    out.push(message_type);
    put_u32(&mut out, request_id);
    out.extend_from_slice(body);
    out
}

/// Encodes a request into one complete frame.
pub fn encode_request(request_id: u32, request: &Request) -> Result<Vec<u8>, WireError> {
    let mut body = Vec::new();
    let message_type = match request {
        Request::RunQasm { options, source } => {
            encode_run_options(&mut body, options)?;
            body.extend_from_slice(source.as_bytes());
            MSG_RUN_QASM
        }
        Request::RunGates { options, circuit } => {
            encode_run_options(&mut body, options)?;
            encode_circuit(&mut body, circuit);
            MSG_RUN_GATES
        }
        Request::Stats => MSG_STATS,
        Request::Ping => MSG_PING,
    };
    Ok(frame(message_type, request_id, &body))
}

/// Encodes a response into one complete frame.
pub fn encode_response(request_id: u32, response: &Response) -> Vec<u8> {
    let mut body = Vec::new();
    let message_type = match response {
        Response::Run(outcome) => {
            body.push(backend_byte(outcome.backend));
            put_u64(&mut body, outcome.gates_applied);
            put_u64(&mut body, outcome.run_micros);
            put_f64(&mut body, outcome.total_probability);
            put_u64(
                &mut body,
                outcome.live_nodes.map_or(u64::MAX, |n| n.min(u64::MAX - 1)),
            );
            put_f64(&mut body, outcome.peak_memory_mib);
            match &outcome.histogram {
                Some(histogram) => {
                    body.push(1);
                    put_u64(&mut body, histogram.shots);
                    put_u64(&mut body, histogram.sample_micros);
                    put_u32(&mut body, histogram.counts.len() as u32);
                    for (outcome, count) in &histogram.counts {
                        put_u64(&mut body, *outcome);
                        put_u64(&mut body, *count);
                    }
                }
                None => body.push(0),
            }
            match &outcome.readout {
                Some(bits) => {
                    body.push(1);
                    put_u32(&mut body, bits.len() as u32);
                    for bit in bits {
                        body.push(u8::from(*bit));
                    }
                }
                None => body.push(0),
            }
            MSG_RUN_OK
        }
        Response::Error { code, message } => {
            put_u16(&mut body, *code);
            body.extend_from_slice(message.as_bytes());
            MSG_ERROR
        }
        Response::Overloaded { message } => {
            put_u16(&mut body, codes::OVERLOADED);
            body.extend_from_slice(message.as_bytes());
            MSG_OVERLOADED
        }
        Response::Stats(snapshot) => {
            put_u16(&mut body, snapshot.fields.len() as u16);
            for (name, value) in &snapshot.fields {
                let bytes = name.as_bytes();
                body.push(bytes.len().min(u8::MAX as usize) as u8);
                body.extend_from_slice(&bytes[..bytes.len().min(u8::MAX as usize)]);
                put_u64(&mut body, *value);
            }
            MSG_STATS_OK
        }
        Response::Pong => MSG_PONG,
    };
    frame(message_type, request_id, &body)
}

/// Reads one raw frame: `(version, message type, request id, body)`.
fn read_frame(
    reader: &mut impl Read,
    max_frame: usize,
) -> Result<(u8, u8, u32, Vec<u8>), WireError> {
    let mut len_bytes = [0u8; 4];
    // Distinguish a clean close (EOF before any byte) from truncation.
    let mut filled = 0;
    while filled < 4 {
        match reader.read(&mut len_bytes[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Err(WireError::Closed);
                }
                return Err(WireError::Malformed("truncated frame length".into()));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > max_frame {
        return Err(WireError::FrameTooLarge {
            len,
            limit: max_frame,
        });
    }
    if len < 6 {
        return Err(WireError::Malformed(format!(
            "payload of {len} bytes is shorter than the header"
        )));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Malformed("truncated frame payload".into())
        } else {
            WireError::Io(e)
        }
    })?;
    let version = payload[0];
    if version != PROTOCOL_VERSION {
        return Err(WireError::Version(version));
    }
    let message_type = payload[1];
    let request_id = u32::from_be_bytes(payload[2..6].try_into().unwrap());
    payload.drain(..6);
    Ok((version, message_type, request_id, payload))
}

/// Reads and decodes one request frame.  Binary circuit payloads are
/// bounds-checked against `limits` before any size-proportional allocation.
pub fn read_request(
    reader: &mut impl Read,
    max_frame: usize,
    limits: &ParseLimits,
) -> Result<(u32, Request), WireError> {
    let (_, message_type, request_id, body) = read_frame(reader, max_frame)?;
    let mut cur = Cursor::new(&body);
    let request = match message_type {
        MSG_RUN_QASM => {
            let options = decode_run_options(&mut cur)?;
            let source = cur.rest_utf8("qasm source")?;
            Request::RunQasm { options, source }
        }
        MSG_RUN_GATES => {
            let options = decode_run_options(&mut cur)?;
            let circuit = decode_circuit(&mut cur, limits)?;
            cur.done("circuit")?;
            Request::RunGates { options, circuit }
        }
        MSG_STATS => {
            cur.done("stats request")?;
            Request::Stats
        }
        MSG_PING => {
            cur.done("ping")?;
            Request::Ping
        }
        other => {
            return Err(WireError::Malformed(format!(
                "unknown request type {other:#04x}"
            )));
        }
    };
    Ok((request_id, request))
}

/// Reads and decodes one response frame.
pub fn read_response(
    reader: &mut impl Read,
    max_frame: usize,
) -> Result<(u32, Response), WireError> {
    let (_, message_type, request_id, body) = read_frame(reader, max_frame)?;
    let mut cur = Cursor::new(&body);
    let response = match message_type {
        MSG_RUN_OK => {
            let backend = backend_from_byte(cur.u8("backend")?)?;
            let gates_applied = cur.u64("gates applied")?;
            let run_micros = cur.u64("run micros")?;
            let total_probability = cur.f64("total probability")?;
            let live_nodes = match cur.u64("live nodes")? {
                u64::MAX => None,
                n => Some(n),
            };
            let peak_memory_mib = cur.f64("peak memory")?;
            let histogram = match cur.u8("histogram flag")? {
                0 => None,
                1 => {
                    let shots = cur.u64("histogram shots")?;
                    let sample_micros = cur.u64("sample micros")?;
                    let entries = cur.u32("histogram entries")? as usize;
                    if entries > cur.remaining() / 16 {
                        return Err(WireError::Malformed(format!(
                            "{entries} histogram entries declared but only {} bytes remain",
                            cur.remaining()
                        )));
                    }
                    let mut counts = Vec::with_capacity(entries);
                    for _ in 0..entries {
                        let outcome = cur.u64("outcome")?;
                        let count = cur.u64("count")?;
                        counts.push((outcome, count));
                    }
                    Some(WireHistogram {
                        shots,
                        sample_micros,
                        counts,
                    })
                }
                other => {
                    return Err(WireError::Malformed(format!("bad histogram flag {other}")));
                }
            };
            let readout = match cur.u8("readout flag")? {
                0 => None,
                1 => {
                    let nbits = cur.u32("readout bits")? as usize;
                    if nbits > cur.remaining() {
                        return Err(WireError::Malformed(format!(
                            "{nbits} readout bits declared but only {} bytes remain",
                            cur.remaining()
                        )));
                    }
                    let mut bits = Vec::with_capacity(nbits);
                    for byte in cur.bytes(nbits, "readout")? {
                        match byte {
                            0 => bits.push(false),
                            1 => bits.push(true),
                            other => {
                                return Err(WireError::Malformed(format!(
                                    "bad readout bit {other}"
                                )));
                            }
                        }
                    }
                    Some(bits)
                }
                other => {
                    return Err(WireError::Malformed(format!("bad readout flag {other}")));
                }
            };
            cur.done("run result")?;
            Response::Run(RunOutcome {
                backend,
                gates_applied,
                run_micros,
                total_probability,
                live_nodes,
                peak_memory_mib,
                histogram,
                readout,
            })
        }
        MSG_ERROR => {
            let code = cur.u16("error code")?;
            let message = cur.rest_utf8("error message")?;
            Response::Error { code, message }
        }
        MSG_OVERLOADED => {
            let _code = cur.u16("overload code")?;
            let message = cur.rest_utf8("overload message")?;
            Response::Overloaded { message }
        }
        MSG_STATS_OK => {
            let count = cur.u16("stats field count")? as usize;
            let mut fields = Vec::with_capacity(count.min(256));
            for _ in 0..count {
                let name_len = cur.u8("stat name length")? as usize;
                let name = String::from_utf8(cur.bytes(name_len, "stat name")?.to_vec())
                    .map_err(|_| WireError::Malformed("stat name is not valid UTF-8".into()))?;
                let value = cur.u64("stat value")?;
                fields.push((name, value));
            }
            cur.done("stats")?;
            Response::Stats(StatsSnapshot { fields })
        }
        MSG_PONG => {
            cur.done("pong")?;
            Response::Pong
        }
        other => {
            return Err(WireError::Malformed(format!(
                "unknown response type {other:#04x}"
            )));
        }
    };
    Ok((request_id, response))
}

/// Writes pre-encoded frame bytes to a stream and flushes.
pub fn write_all(writer: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    writer.write_all(frame)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(request: Request) -> Request {
        let bytes = encode_request(7, &request).expect("encodable");
        let mut reader = &bytes[..];
        let (id, decoded) =
            read_request(&mut reader, MAX_FRAME_BYTES, &ParseLimits::default()).expect("decodable");
        assert_eq!(id, 7);
        decoded
    }

    fn roundtrip_response(response: Response) -> Response {
        let bytes = encode_response(9, &response);
        let mut reader = &bytes[..];
        let (id, decoded) = read_response(&mut reader, MAX_FRAME_BYTES).expect("decodable");
        assert_eq!(id, 9);
        decoded
    }

    fn full_gate_set_circuit() -> Circuit {
        let mut c = Circuit::new(5);
        c.x(0)
            .y(1)
            .z(2)
            .h(3)
            .s(4)
            .sdg(0)
            .t(1)
            .tdg(2)
            .rx_pi2(3)
            .ry_pi2(4)
            .cx(0, 1)
            .cz(1, 2)
            .ccx(0, 1, 2)
            .mcx(vec![0, 1, 2], 3)
            .cswap(0, 1, 2)
            .mcswap(vec![0, 3], 1, 2)
            .swap(2, 4)
            .measure(0, 0)
            .reset(1)
            .if_bit(0, Gate::Z(3))
            .conditional(
                0,
                2,
                0b10,
                Gate::Cnot {
                    control: 1,
                    target: 4,
                },
            );
        c
    }

    #[test]
    fn requests_round_trip() {
        let options = RunOptions {
            backend: BackendKind::Qmdd,
            shots: 1024,
            seed: 42,
            tenant: "acme".into(),
        };
        let qasm = Request::RunQasm {
            options: options.clone(),
            source: "qreg q[2]; h q[0]; cx q[0], q[1];".into(),
        };
        assert_eq!(roundtrip_request(qasm.clone()), qasm);
        let gates = Request::RunGates {
            options,
            circuit: full_gate_set_circuit(),
        };
        assert_eq!(roundtrip_request(gates.clone()), gates);
        assert_eq!(roundtrip_request(Request::Stats), Request::Stats);
        assert_eq!(roundtrip_request(Request::Ping), Request::Ping);
    }

    #[test]
    fn responses_round_trip() {
        let run = Response::Run(RunOutcome {
            backend: BackendKind::BitSlice,
            gates_applied: 17,
            run_micros: 1234,
            total_probability: 1.0 - 1e-15,
            live_nodes: Some(421),
            peak_memory_mib: 1.5,
            histogram: Some(WireHistogram {
                shots: 1000,
                sample_micros: 77,
                counts: vec![(0, 493), (7, 507)],
            }),
            readout: Some(vec![true, false, true]),
        });
        assert_eq!(roundtrip_response(run.clone()), run);
        let nohist = Response::Run(RunOutcome {
            backend: BackendKind::Stabilizer,
            gates_applied: 2,
            run_micros: 3,
            total_probability: 1.0,
            live_nodes: None,
            peak_memory_mib: 0.25,
            histogram: None,
            readout: None,
        });
        assert_eq!(roundtrip_response(nohist.clone()), nohist);
        let error = Response::Error {
            code: sliq_exec::wire::CAPACITY_BYTES,
            message: "bitslice exceeded its memory budget".into(),
        };
        assert_eq!(roundtrip_response(error.clone()), error);
        let overloaded = Response::Overloaded {
            message: "queue full (depth 64)".into(),
        };
        assert_eq!(roundtrip_response(overloaded.clone()), overloaded);
        let stats = Response::Stats(StatsSnapshot {
            fields: vec![("requests".into(), 10), ("overloaded".into(), 2)],
        });
        assert_eq!(roundtrip_response(stats.clone()), stats);
        assert_eq!(roundtrip_response(Response::Pong), Response::Pong);
    }

    #[test]
    fn malformed_frames_are_rejected_structurally() {
        // Truncated length prefix.
        let mut r: &[u8] = &[0, 0];
        assert!(matches!(
            read_request(&mut r, MAX_FRAME_BYTES, &ParseLimits::default()),
            Err(WireError::Malformed(_))
        ));
        // Clean close.
        let mut r: &[u8] = &[];
        assert!(matches!(
            read_request(&mut r, MAX_FRAME_BYTES, &ParseLimits::default()),
            Err(WireError::Closed)
        ));
        // Oversized frame is rejected before allocation.
        let mut oversized = Vec::new();
        put_u32(&mut oversized, u32::MAX);
        let mut r: &[u8] = &oversized;
        assert!(matches!(
            read_request(&mut r, 1024, &ParseLimits::default()),
            Err(WireError::FrameTooLarge { .. })
        ));
        // Wrong version byte.
        let mut bytes = encode_request(1, &Request::Ping).unwrap();
        bytes[4] = 99;
        let mut r: &[u8] = &bytes;
        assert!(matches!(
            read_request(&mut r, MAX_FRAME_BYTES, &ParseLimits::default()),
            Err(WireError::Version(99))
        ));
        // Unknown message type.
        let mut bytes = encode_request(1, &Request::Ping).unwrap();
        bytes[5] = 0x7f;
        let mut r: &[u8] = &bytes;
        assert!(matches!(
            read_request(&mut r, MAX_FRAME_BYTES, &ParseLimits::default()),
            Err(WireError::Malformed(_))
        ));
        // Truncated payload: declared length claims more than is present.
        let mut long = encode_request(
            1,
            &Request::RunQasm {
                options: RunOptions::default(),
                source: "qreg q[1];".into(),
            },
        )
        .unwrap();
        long.truncate(long.len() - 4);
        // Fix up the declared length to claim more than is present.
        let mut r: &[u8] = &long;
        assert!(matches!(
            read_request(&mut r, MAX_FRAME_BYTES, &ParseLimits::default()),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn binary_circuit_limits_reject_absurd_declarations() {
        let limits = ParseLimits {
            max_qubits: 8,
            max_gates: 4,
            ..ParseLimits::default()
        };
        let mut big = Circuit::new(16);
        big.h(0);
        let request = Request::RunGates {
            options: RunOptions::default(),
            circuit: big,
        };
        let bytes = encode_request(1, &request).unwrap();
        let mut r: &[u8] = &bytes;
        assert!(matches!(
            read_request(&mut r, MAX_FRAME_BYTES, &limits),
            Err(WireError::Malformed(_))
        ));
        let mut many = Circuit::new(2);
        for _ in 0..5 {
            many.h(0);
        }
        let request = Request::RunGates {
            options: RunOptions::default(),
            circuit: many,
        };
        let bytes = encode_request(1, &request).unwrap();
        let mut r: &[u8] = &bytes;
        assert!(matches!(
            read_request(&mut r, MAX_FRAME_BYTES, &limits),
            Err(WireError::Malformed(_))
        ));
        // A declared gate count wildly beyond the body is caught before the
        // gates vector is reserved.
        let mut body = Vec::new();
        encode_run_options(&mut body, &RunOptions::default()).unwrap();
        put_u32(&mut body, 2); // qubits
        put_u32(&mut body, 0); // clbits
        put_u32(&mut body, 1_000_000); // gates
        let framed = frame(MSG_RUN_GATES, 1, &body);
        let mut r: &[u8] = &framed;
        assert!(matches!(
            read_request(&mut r, MAX_FRAME_BYTES, &ParseLimits::default()),
            Err(WireError::Malformed(_))
        ));
    }
}
