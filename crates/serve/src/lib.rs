//! # sliq-serve
//!
//! The serving front-end of the workspace: a concurrent TCP simulation
//! service over the shared session layer, turning the kernel into
//! something a fleet of clients can hit.  Everything is `std`-only —
//! `std::net` sockets, `std::thread` workers — because the serving story
//! of the paper's kernel is about the *simulator* scaling, not an async
//! runtime.
//!
//! * [`protocol`] — the length-prefixed wire protocol (see `PROTOCOL.md`
//!   at the workspace root for the normative spec): QASM or compact
//!   binary circuits in, run results with sampling histograms out, stable
//!   numeric error codes shared with [`sliq_exec::wire`].
//! * [`Scheduler`] — bounded, connection-fair admission queue; when it is
//!   full the server answers `Overloaded` instead of queueing, so memory
//!   stays bounded under any load.
//! * [`Server`] / [`ServerConfig`] — the accept loop, per-connection
//!   decoding threads, a fixed worker pool executing runs, per-tenant
//!   byte budgets enforced through [`sliq_exec::SessionConfig`], and a
//!   process-wide [`sliq_exec::ResultCache`] attached to every session so
//!   repeated circuits are served from memory.
//! * [`Client`] — a small blocking client (used by `sliq --connect`, the
//!   load generator, and the differential tests), with a pipelining
//!   escape hatch.
//!
//! ```no_run
//! use sliq_serve::{Client, RunOptions, Server, ServerConfig};
//!
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default())?;
//! let handle = server.spawn()?;
//! let mut client = Client::connect(handle.addr())?;
//! let outcome = client.run_qasm(
//!     "qreg q[2]; h q[0]; cx q[0], q[1];",
//!     RunOptions { shots: 1000, ..RunOptions::default() },
//! )?;
//! assert_eq!(outcome.histogram.unwrap().shots, 1000);
//! handle.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod scheduler;
pub mod server;

pub use client::{Client, ClientError, RetryPolicy};
pub use protocol::{
    codes, Request, Response, RunOptions, RunOutcome, StatsSnapshot, WireError, WireHistogram,
    PROTOCOL_VERSION,
};
pub use scheduler::{Refusal, Scheduler};
pub use server::{Server, ServerConfig, ServerHandle, ServerStats};

#[cfg(test)]
mod tests {
    use super::*;
    use sliq_circuit::Circuit;
    use sliq_exec::BackendKind;

    fn spawn_server(config: ServerConfig) -> ServerHandle {
        Server::bind("127.0.0.1:0", config)
            .expect("bind ephemeral port")
            .spawn()
            .expect("spawn server")
    }

    #[test]
    fn ping_run_stats_over_a_live_socket() {
        let handle = spawn_server(ServerConfig::default().workers(2));
        let mut client = Client::connect(handle.addr()).unwrap();
        client.ping().unwrap();

        let outcome = client
            .run_qasm(
                "qreg q[3]; h q[0]; cx q[0], q[1]; cx q[1], q[2]; t q[2];",
                RunOptions {
                    shots: 500,
                    seed: 7,
                    ..RunOptions::default()
                },
            )
            .unwrap();
        assert_eq!(outcome.backend, BackendKind::BitSlice);
        assert_eq!(outcome.gates_applied, 4);
        assert!((outcome.total_probability - 1.0).abs() < 1e-9);
        let histogram = outcome.histogram.expect("shots were requested");
        assert_eq!(histogram.shots, 500);
        assert_eq!(histogram.counts.iter().map(|(_, c)| c).sum::<u64>(), 500);
        // GHZ (up to the T phase): only |000⟩ and |111⟩ occur.
        for (outcome, _) in &histogram.counts {
            assert!(*outcome == 0 || *outcome == 0b111);
        }

        let stats = client.server_stats().unwrap();
        assert_eq!(stats.get("requests_ok"), Some(1));
        assert!(stats.get("gates_applied").unwrap() >= 4);
        handle.shutdown();
    }

    #[test]
    fn binary_circuits_match_qasm_submissions() {
        let handle = spawn_server(ServerConfig::default().workers(1));
        let mut client = Client::connect(handle.addr()).unwrap();
        let mut circuit = Circuit::new(2);
        circuit.h(0).cx(0, 1).t(1);
        let options = RunOptions {
            shots: 300,
            seed: 3,
            ..RunOptions::default()
        };
        let binary = client.run_circuit(&circuit, options.clone()).unwrap();
        let qasm = client
            .run_qasm("qreg q[2]; h q[0]; cx q[0], q[1]; t q[1];", options)
            .unwrap();
        assert_eq!(binary.gates_applied, qasm.gates_applied);
        assert_eq!(
            binary.total_probability.to_bits(),
            qasm.total_probability.to_bits()
        );
        let binary_hist = binary.histogram.unwrap();
        let qasm_hist = qasm.histogram.unwrap();
        assert_eq!(binary_hist.shots, qasm_hist.shots);
        assert_eq!(binary_hist.counts, qasm_hist.counts);
        handle.shutdown();
    }

    #[test]
    fn parse_and_capability_failures_come_back_as_stable_codes() {
        let handle = spawn_server(ServerConfig::default().workers(1));
        let mut client = Client::connect(handle.addr()).unwrap();
        // Garbage QASM → protocol-level parse code, with the position.
        let err = client
            .run_qasm("qreg q[2]; frobnicate q[0];", RunOptions::default())
            .unwrap_err();
        match err {
            ClientError::Remote { code, message } => {
                assert_eq!(code, codes::PARSE);
                assert!(message.contains("line 1"), "{message}");
            }
            other => panic!("expected a remote parse error, got {other}"),
        }
        // A non-Clifford circuit forced onto the stabilizer backend →
        // execution-layer code.
        let mut circuit = Circuit::new(2);
        circuit.h(0).t(0);
        let err = client
            .run_circuit(
                &circuit,
                RunOptions {
                    backend: BackendKind::Stabilizer,
                    ..RunOptions::default()
                },
            )
            .unwrap_err();
        match err {
            ClientError::Remote { code, .. } => {
                assert_eq!(code, sliq_exec::wire::UNSUPPORTED);
            }
            other => panic!("expected a remote capability error, got {other}"),
        }
        // The connection survives both rejections.
        client.ping().unwrap();
        handle.shutdown();
    }

    #[test]
    fn tenant_byte_budgets_reject_dense_sessions_at_admission() {
        let handle = spawn_server(
            ServerConfig::default()
                .workers(1)
                .tenant_budget("cramped", 1024),
        );
        let mut client = Client::connect(handle.addr()).unwrap();
        let mut circuit = Circuit::new(12);
        circuit.h(0).t(0);
        // 16·2¹² bytes of dense amplitudes blows a 1 KiB budget at
        // admission time.
        let err = client
            .run_circuit(
                &circuit,
                RunOptions {
                    backend: BackendKind::Dense,
                    tenant: "cramped".into(),
                    ..RunOptions::default()
                },
            )
            .unwrap_err();
        match err {
            ClientError::Remote { code, .. } => {
                assert_eq!(code, sliq_exec::wire::CAPACITY_BYTES);
            }
            other => panic!("expected a capacity rejection, got {other}"),
        }
        // An unbudgeted tenant runs the same circuit fine.
        client
            .run_circuit(
                &circuit,
                RunOptions {
                    backend: BackendKind::Dense,
                    ..RunOptions::default()
                },
            )
            .unwrap();
        handle.shutdown();
    }

    #[test]
    fn full_queue_sheds_with_an_explicit_overloaded_response() {
        // One worker, queue depth 1: pipeline enough cheap requests that
        // some must be shed while the worker is busy.
        let handle = spawn_server(
            ServerConfig::default()
                .workers(1)
                .queue_depth(1)
                .per_conn_queue(1)
                .result_cache(false),
        );
        let mut client = Client::connect(handle.addr()).unwrap();
        let mut slow = Circuit::new(14);
        for q in 0..14 {
            slow.h(q);
        }
        for q in 0..13 {
            slow.cx(q, q + 1);
            slow.t(q);
        }
        let mut sent = Vec::new();
        for _ in 0..24 {
            sent.push(
                client
                    .send_run_circuit(&slow, RunOptions::default())
                    .unwrap(),
            );
        }
        let mut ok = 0u32;
        let mut overloaded = 0u32;
        for _ in 0..sent.len() {
            match client.receive().unwrap().1 {
                Response::Run(_) => ok += 1,
                Response::Overloaded { .. } => overloaded += 1,
                other => panic!("unexpected response {other:?}"),
            }
        }
        assert!(ok >= 1, "at least the first request must complete");
        assert!(
            overloaded >= 1,
            "a 1-deep queue under 24 pipelined requests must shed"
        );
        let stats = handle.stats();
        assert_eq!(stats.get("requests_overloaded"), Some(overloaded as u64));
        handle.shutdown();
    }

    #[test]
    fn result_cache_serves_repeated_circuits() {
        let cache = sliq_exec::ResultCache::shared(8 << 20);
        let handle = spawn_server(
            ServerConfig::default()
                .workers(2)
                .with_result_cache(Arc::clone(&cache)),
        );
        let mut client = Client::connect(handle.addr()).unwrap();
        let mut circuit = Circuit::new(10);
        circuit.h(0).t(0);
        for q in 1..10 {
            circuit.cx(q - 1, q);
        }
        let options = RunOptions {
            shots: 200,
            seed: 5,
            ..RunOptions::default()
        };
        let cold = client.run_circuit(&circuit, options.clone()).unwrap();
        let warm = client.run_circuit(&circuit, options).unwrap();
        assert_eq!(
            cold.histogram.unwrap().counts,
            warm.histogram.unwrap().counts
        );
        let stats = cache.stats();
        assert!(stats.hits >= 1, "second submission must hit: {stats:?}");
        handle.shutdown();
    }

    use std::sync::Arc;
}
