//! A small blocking client for the wire protocol, used by the `sliq`
//! CLI's `--connect` mode, the load generator, and the differential tests.

use crate::protocol::{self, Request, Response, RunOptions, RunOutcome, StatsSnapshot, WireError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sliq_circuit::Circuit;
use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Backoff policy for retrying runs the server sheds with an `Overloaded`
/// frame.  An overloaded server is asking for time, not reporting a bug, so
/// the retrying client honours backpressure: exponential delays with
/// seeded jitter (a fleet of clients sharing a start time must not retry in
/// lockstep, and a given client must still be reproducible), capped at
/// [`RetryPolicy::max_attempts`] before the overload is surfaced as the
/// final [`ClientError::Overloaded`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts (first try included); at least 1.
    pub max_attempts: u32,
    /// Delay before the first retry; doubles every further retry.
    pub base_delay: Duration,
    /// Upper bound on the un-jittered delay.
    pub max_delay: Duration,
    /// Seed of the jitter stream (same seed ⇒ same delays).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 5,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_secs(1),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The delay before retry number `retry` (0-based), or `None` when the
    /// attempt budget is spent and the overload should be surfaced.  The
    /// exponential delay is scaled by a jitter factor in `[0.5, 1.5)` drawn
    /// from `rng`.
    fn backoff(&self, retry: u32, rng: &mut StdRng) -> Option<Duration> {
        if retry + 1 >= self.max_attempts.max(1) {
            return None;
        }
        let exponential = self
            .base_delay
            .saturating_mul(1u32.checked_shl(retry).unwrap_or(u32::MAX))
            .min(self.max_delay);
        Some(exponential.mul_f64(0.5 + rng.gen_range(0.0..1.0)))
    }
}

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// The transport or codec failed.
    Wire(WireError),
    /// The server answered with an error frame.
    Remote {
        /// Stable numeric code (`protocol::codes` or `sliq_exec::wire`).
        code: u16,
        /// Human-readable detail.
        message: String,
    },
    /// The server shed the request; back off and retry.
    Overloaded {
        /// Human-readable detail.
        message: String,
    },
    /// The server answered with a response type that does not match the
    /// request.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Remote { code, message } => match sliq_exec::wire::name(*code) {
                Some(name) => write!(f, "server error {code} ({name}): {message}"),
                None => write!(f, "server error {code}: {message}"),
            },
            ClientError::Overloaded { message } => write!(f, "server overloaded: {message}"),
            ClientError::Unexpected(what) => write!(f, "unexpected response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(value: WireError) -> Self {
        ClientError::Wire(value)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(value: std::io::Error) -> Self {
        ClientError::Wire(WireError::Io(value))
    }
}

/// One connection to a server.  Methods are synchronous; for pipelining,
/// use the split [`Client::send_run_circuit`] / [`Client::receive`] pair.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    next_request_id: u32,
    max_frame_bytes: usize,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            writer: stream,
            reader,
            next_request_id: 1,
            max_frame_bytes: protocol::MAX_FRAME_BYTES,
        })
    }

    fn send(&mut self, request: &Request) -> Result<u32, ClientError> {
        let request_id = self.next_request_id;
        self.next_request_id = self.next_request_id.wrapping_add(1).max(1);
        let frame = protocol::encode_request(request_id, request)?;
        protocol::write_all(&mut self.writer, &frame)?;
        Ok(request_id)
    }

    /// Receives the next response frame, whatever request it answers.
    pub fn receive(&mut self) -> Result<(u32, Response), ClientError> {
        Ok(protocol::read_response(
            &mut self.reader,
            self.max_frame_bytes,
        )?)
    }

    fn expect_run(&mut self, sent_id: u32) -> Result<RunOutcome, ClientError> {
        let (request_id, response) = self.receive()?;
        if request_id != sent_id {
            return Err(ClientError::Unexpected(format!(
                "response for request {request_id}, expected {sent_id}"
            )));
        }
        match response {
            Response::Run(outcome) => Ok(outcome),
            Response::Error { code, message } => Err(ClientError::Remote { code, message }),
            Response::Overloaded { message } => Err(ClientError::Overloaded { message }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Checks liveness.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let sent_id = self.send(&Request::Ping)?;
        let (request_id, response) = self.receive()?;
        match response {
            Response::Pong if request_id == sent_id => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Runs a QASM program and waits for the result.
    pub fn run_qasm(
        &mut self,
        source: &str,
        options: RunOptions,
    ) -> Result<RunOutcome, ClientError> {
        let sent_id = self.send(&Request::RunQasm {
            options,
            source: source.to_string(),
        })?;
        self.expect_run(sent_id)
    }

    /// Runs a circuit (compact binary encoding) and waits for the result.
    pub fn run_circuit(
        &mut self,
        circuit: &Circuit,
        options: RunOptions,
    ) -> Result<RunOutcome, ClientError> {
        let sent_id = self.send(&Request::RunGates {
            options,
            circuit: circuit.clone(),
        })?;
        self.expect_run(sent_id)
    }

    /// Like [`Client::run_qasm`], but an `Overloaded` answer is retried
    /// under `policy` instead of failing outright; only a spent attempt
    /// budget surfaces [`ClientError::Overloaded`].
    pub fn run_qasm_with_retry(
        &mut self,
        source: &str,
        options: &RunOptions,
        policy: &RetryPolicy,
    ) -> Result<RunOutcome, ClientError> {
        self.run_with_retry(policy, |client| client.run_qasm(source, options.clone()))
    }

    /// Like [`Client::run_circuit`], but an `Overloaded` answer is retried
    /// under `policy` instead of failing outright.
    pub fn run_circuit_with_retry(
        &mut self,
        circuit: &Circuit,
        options: &RunOptions,
        policy: &RetryPolicy,
    ) -> Result<RunOutcome, ClientError> {
        self.run_with_retry(policy, |client| {
            client.run_circuit(circuit, options.clone())
        })
    }

    fn run_with_retry(
        &mut self,
        policy: &RetryPolicy,
        mut attempt: impl FnMut(&mut Self) -> Result<RunOutcome, ClientError>,
    ) -> Result<RunOutcome, ClientError> {
        let mut rng = StdRng::seed_from_u64(policy.seed);
        let mut retry = 0u32;
        loop {
            match attempt(self) {
                Err(ClientError::Overloaded { message }) => match policy.backoff(retry, &mut rng) {
                    Some(delay) => {
                        std::thread::sleep(delay);
                        retry += 1;
                    }
                    None => return Err(ClientError::Overloaded { message }),
                },
                other => return other,
            }
        }
    }

    /// Sends a run without waiting, returning the request id to match
    /// against [`Client::receive`] — this is how a connection pipelines.
    pub fn send_run_circuit(
        &mut self,
        circuit: &Circuit,
        options: RunOptions,
    ) -> Result<u32, ClientError> {
        self.send(&Request::RunGates {
            options,
            circuit: circuit.clone(),
        })
    }

    /// Fetches the server's counters.
    pub fn server_stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        let sent_id = self.send(&Request::Stats)?;
        let (request_id, response) = self.receive()?;
        if request_id != sent_id {
            return Err(ClientError::Unexpected(format!(
                "response for request {request_id}, expected {sent_id}"
            )));
        }
        match response {
            Response::Stats(snapshot) => Ok(snapshot),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_seeded_bounded_and_capped() {
        let policy = RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(40),
            seed: 7,
        };
        let delays: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(policy.seed);
            (0..4)
                .map(|retry| policy.backoff(retry, &mut rng))
                .collect()
        };
        // max_attempts = 4 means 3 retries; the 4th asks to give up.
        assert!(delays[..3].iter().all(Option::is_some));
        assert_eq!(delays[3], None);
        for (retry, delay) in delays[..3].iter().enumerate() {
            let exponential = Duration::from_millis(10 << retry).min(Duration::from_millis(40));
            let delay = delay.unwrap();
            assert!(
                delay >= exponential.mul_f64(0.5),
                "jitter floor at retry {retry}"
            );
            assert!(
                delay < exponential.mul_f64(1.5),
                "jitter ceiling at retry {retry}"
            );
        }
        // Same seed ⇒ same delays: the jitter is reproducible.
        let replay: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(policy.seed);
            (0..4)
                .map(|retry| policy.backoff(retry, &mut rng))
                .collect()
        };
        assert_eq!(delays, replay);
    }

    #[test]
    fn a_single_attempt_policy_never_sleeps() {
        let policy = RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        };
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(policy.backoff(0, &mut rng), None);
        // max_attempts = 0 is clamped to 1 rather than retrying forever.
        let zero = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        assert_eq!(zero.backoff(0, &mut rng), None);
    }
}
