//! A small blocking client for the wire protocol, used by the `sliq`
//! CLI's `--connect` mode, the load generator, and the differential tests.

use crate::protocol::{self, Request, Response, RunOptions, RunOutcome, StatsSnapshot, WireError};
use sliq_circuit::Circuit;
use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// The transport or codec failed.
    Wire(WireError),
    /// The server answered with an error frame.
    Remote {
        /// Stable numeric code (`protocol::codes` or `sliq_exec::wire`).
        code: u16,
        /// Human-readable detail.
        message: String,
    },
    /// The server shed the request; back off and retry.
    Overloaded {
        /// Human-readable detail.
        message: String,
    },
    /// The server answered with a response type that does not match the
    /// request.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Remote { code, message } => match sliq_exec::wire::name(*code) {
                Some(name) => write!(f, "server error {code} ({name}): {message}"),
                None => write!(f, "server error {code}: {message}"),
            },
            ClientError::Overloaded { message } => write!(f, "server overloaded: {message}"),
            ClientError::Unexpected(what) => write!(f, "unexpected response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(value: WireError) -> Self {
        ClientError::Wire(value)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(value: std::io::Error) -> Self {
        ClientError::Wire(WireError::Io(value))
    }
}

/// One connection to a server.  Methods are synchronous; for pipelining,
/// use the split [`Client::send_run_circuit`] / [`Client::receive`] pair.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    next_request_id: u32,
    max_frame_bytes: usize,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            writer: stream,
            reader,
            next_request_id: 1,
            max_frame_bytes: protocol::MAX_FRAME_BYTES,
        })
    }

    fn send(&mut self, request: &Request) -> Result<u32, ClientError> {
        let request_id = self.next_request_id;
        self.next_request_id = self.next_request_id.wrapping_add(1).max(1);
        let frame = protocol::encode_request(request_id, request)?;
        protocol::write_all(&mut self.writer, &frame)?;
        Ok(request_id)
    }

    /// Receives the next response frame, whatever request it answers.
    pub fn receive(&mut self) -> Result<(u32, Response), ClientError> {
        Ok(protocol::read_response(
            &mut self.reader,
            self.max_frame_bytes,
        )?)
    }

    fn expect_run(&mut self, sent_id: u32) -> Result<RunOutcome, ClientError> {
        let (request_id, response) = self.receive()?;
        if request_id != sent_id {
            return Err(ClientError::Unexpected(format!(
                "response for request {request_id}, expected {sent_id}"
            )));
        }
        match response {
            Response::Run(outcome) => Ok(outcome),
            Response::Error { code, message } => Err(ClientError::Remote { code, message }),
            Response::Overloaded { message } => Err(ClientError::Overloaded { message }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Checks liveness.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let sent_id = self.send(&Request::Ping)?;
        let (request_id, response) = self.receive()?;
        match response {
            Response::Pong if request_id == sent_id => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Runs a QASM program and waits for the result.
    pub fn run_qasm(
        &mut self,
        source: &str,
        options: RunOptions,
    ) -> Result<RunOutcome, ClientError> {
        let sent_id = self.send(&Request::RunQasm {
            options,
            source: source.to_string(),
        })?;
        self.expect_run(sent_id)
    }

    /// Runs a circuit (compact binary encoding) and waits for the result.
    pub fn run_circuit(
        &mut self,
        circuit: &Circuit,
        options: RunOptions,
    ) -> Result<RunOutcome, ClientError> {
        let sent_id = self.send(&Request::RunGates {
            options,
            circuit: circuit.clone(),
        })?;
        self.expect_run(sent_id)
    }

    /// Sends a run without waiting, returning the request id to match
    /// against [`Client::receive`] — this is how a connection pipelines.
    pub fn send_run_circuit(
        &mut self,
        circuit: &Circuit,
        options: RunOptions,
    ) -> Result<u32, ClientError> {
        self.send(&Request::RunGates {
            options,
            circuit: circuit.clone(),
        })
    }

    /// Fetches the server's counters.
    pub fn server_stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        let sent_id = self.send(&Request::Stats)?;
        let (request_id, response) = self.receive()?;
        if request_id != sent_id {
            return Err(ClientError::Unexpected(format!(
                "response for request {request_id}, expected {sent_id}"
            )));
        }
        match response {
            Response::Stats(snapshot) => Ok(snapshot),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }
}
