//! A parser and writer for the OpenQASM 2.0 subset covering the supported
//! gate set, including dynamic-circuit statements.
//!
//! Supported statements: `OPENQASM`, `include`, `qreg`, `creg`,
//! `measure q[i] -> c[j]` (and the whole-register form `measure q -> c`),
//! `reset q[i]` (and `reset q`), classically-conditioned gates
//! `if (c == v) <gate>`, `barrier` (a semantic no-op for simulation —
//! tolerated and dropped), and the gates
//! `x y z h s sdg t tdg rx(pi/2) ry(pi/2) cx cz ccx cswap swap`.
//!
//! Measurement, reset and `if` parse into the dynamic IR operations
//! ([`Gate::Measure`], [`Gate::Reset`], [`Gate::Conditional`]) and execute
//! with seeded randomness in the session layer.  Any statement outside this
//! list is a structured [`ParseError`] with the offending line and column —
//! nothing is ever silently skipped, so a program either simulates with
//! exactly the semantics written or fails to parse.
//!
//! As a documented extension for round-tripping sub-register conditions,
//! the condition may also name a single classical bit (`if (c[2] == 1) …`)
//! or a bit range (`if (c[2+:3] == 5) …`, meaning bits `c[2..5]`
//! little-endian).

use crate::circuit::Circuit;
use crate::error::ParseError;
use crate::gate::Gate;
use std::collections::BTreeMap;

/// Input limits enforced by [`parse_with_limits`] *before* any allocation
/// proportional to the declared sizes happens.
///
/// The parser is exposed to adversarial input when it sits behind a service
/// front-end: a one-line `qreg q[9999999999]` or an endless stream of gate
/// statements must be rejected structurally, not by exhausting memory.  The
/// defaults are generous for every legitimate workload in the workspace;
/// servers tighten them per deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseLimits {
    /// Maximum total qubits over all `qreg` declarations.
    pub max_qubits: usize,
    /// Maximum total classical bits over all `creg` declarations.
    pub max_clbits: usize,
    /// Maximum number of gate statements.
    pub max_gates: usize,
    /// Maximum source length in bytes (checked up front).
    pub max_source_bytes: usize,
}

impl Default for ParseLimits {
    fn default() -> Self {
        Self {
            max_qubits: 1 << 16,
            max_clbits: 1 << 16,
            max_gates: 1 << 22,
            max_source_bytes: 64 << 20,
        }
    }
}

/// Parses an OpenQASM 2.0 program into a [`Circuit`] under the default
/// [`ParseLimits`].
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first offending statement, with
/// its 1-based line and column.
///
/// ```
/// use sliq_circuit::qasm;
/// let src = r#"
///     OPENQASM 2.0;
///     include "qelib1.inc";
///     qreg q[2];
///     h q[0];
///     cx q[0], q[1];
/// "#;
/// let circuit = qasm::parse(src)?;
/// assert_eq!(circuit.num_qubits(), 2);
/// assert_eq!(circuit.len(), 2);
/// # Ok::<(), sliq_circuit::ParseError>(())
/// ```
pub fn parse(source: &str) -> Result<Circuit, ParseError> {
    parse_with_limits(source, ParseLimits::default())
}

/// Parses an OpenQASM 2.0 program with explicit [`ParseLimits`].
///
/// Declared register sizes and the gate count are checked against the
/// limits as they are encountered — an absurd declaration is rejected
/// before the parser allocates anything proportional to it.
pub fn parse_with_limits(source: &str, limits: ParseLimits) -> Result<Circuit, ParseError> {
    if source.len() > limits.max_source_bytes {
        return Err(ParseError::new(
            0,
            format!(
                "source is {} bytes, limit {}",
                source.len(),
                limits.max_source_bytes
            ),
        ));
    }
    let mut state = ParserState {
        registers: BTreeMap::new(),
        cregs: BTreeMap::new(),
        total_qubits: 0,
        total_clbits: 0,
        gates: Vec::new(),
    };

    // Statements are ';'-terminated; keep track of line numbers (and the
    // column each statement starts at) for errors.
    for (line_no, raw_line) in source.lines().enumerate() {
        let line_no = line_no + 1;
        let line = match raw_line.find("//") {
            Some(pos) => &raw_line[..pos],
            None => raw_line,
        };
        let mut offset = 0usize;
        for stmt in line.split(';') {
            let leading = stmt.len() - stmt.trim_start().len();
            let column = offset + leading + 1;
            let piece_len = stmt.len();
            let stmt = stmt.trim();
            offset += piece_len + 1;
            if stmt.is_empty() {
                continue;
            }
            parse_statement(stmt, line_no, column, limits, &mut state)?;
        }
    }

    let mut circuit = Circuit::with_clbits(state.total_qubits, state.total_clbits);
    circuit.extend(state.gates);
    Ok(circuit)
}

/// Registers and gates accumulated while parsing one program.
struct ParserState {
    /// Quantum registers: name → (global offset, size).
    registers: BTreeMap<String, (usize, usize)>,
    /// Classical registers: name → (global offset, size).
    cregs: BTreeMap<String, (usize, usize)>,
    total_qubits: usize,
    total_clbits: usize,
    gates: Vec<Gate>,
}

fn parse_statement(
    stmt: &str,
    line: usize,
    column: usize,
    limits: ParseLimits,
    state: &mut ParserState,
) -> Result<(), ParseError> {
    let lower = stmt.to_ascii_lowercase();
    // Header/metadata statements with no simulation semantics.  A `barrier`
    // constrains optimisation on hardware but never changes the simulated
    // state, so dropping it preserves the written semantics exactly.
    if lower.starts_with("openqasm") || lower.starts_with("include") || lower.starts_with("barrier")
    {
        return Ok(());
    }
    if let Some(rest) = lower.strip_prefix("qreg") {
        let rest = rest.trim();
        let (name, size) = parse_register_decl(rest, line, column)?;
        if size > limits.max_qubits || state.total_qubits + size > limits.max_qubits {
            return Err(ParseError::at(
                line,
                column,
                format!(
                    "register `{name}[{size}]` exceeds the qubit limit ({} total, limit {})",
                    state.total_qubits + size,
                    limits.max_qubits
                ),
            ));
        }
        state.registers.insert(name, (state.total_qubits, size));
        state.total_qubits += size;
        return Ok(());
    }
    if let Some(rest) = lower.strip_prefix("creg") {
        let rest = rest.trim();
        let (name, size) = parse_register_decl(rest, line, column)?;
        if size > limits.max_clbits || state.total_clbits + size > limits.max_clbits {
            return Err(ParseError::at(
                line,
                column,
                format!(
                    "classical register `{name}[{size}]` exceeds the clbit limit ({} total, limit {})",
                    state.total_clbits + size,
                    limits.max_clbits
                ),
            ));
        }
        state.cregs.insert(name, (state.total_clbits, size));
        state.total_clbits += size;
        return Ok(());
    }
    if state.gates.len() >= limits.max_gates {
        return Err(ParseError::at(
            line,
            column,
            format!("gate count exceeds the limit ({})", limits.max_gates),
        ));
    }
    if lower.starts_with("measure") {
        return parse_measure(stmt, line, column, limits, state);
    }
    if lower.starts_with("reset") {
        return parse_reset(stmt, line, column, limits, state);
    }
    if is_if_statement(&lower) {
        return parse_if(stmt, line, column, state);
    }

    let gate = parse_gate(stmt, line, column, &state.registers)?;
    state.gates.push(gate);
    Ok(())
}

/// `measure q[i] -> c[j]` or the whole-register form `measure q -> c`
/// (which expands to one [`Gate::Measure`] per bit; sizes must match).
fn parse_measure(
    stmt: &str,
    line: usize,
    column: usize,
    limits: ParseLimits,
    state: &mut ParserState,
) -> Result<(), ParseError> {
    let rest = stmt["measure".len()..].trim();
    let (qubit_text, clbit_text) = rest.split_once("->").ok_or_else(|| {
        ParseError::at(
            line,
            column,
            format!("measure statement `{stmt}` is missing `->`"),
        )
    })?;
    let (q_offset, q_count) =
        resolve_operand_or_register(qubit_text.trim(), &state.registers, line, column)?;
    let (c_offset, c_count) =
        resolve_operand_or_register(clbit_text.trim(), &state.cregs, line, column)?;
    if q_count != c_count {
        return Err(ParseError::at(
            line,
            column,
            format!(
                "measure maps {q_count} qubit(s) onto {c_count} classical bit(s); sizes must match"
            ),
        ));
    }
    if state.gates.len() + q_count > limits.max_gates {
        return Err(ParseError::at(
            line,
            column,
            format!("gate count exceeds the limit ({})", limits.max_gates),
        ));
    }
    for k in 0..q_count {
        state.gates.push(Gate::Measure {
            qubit: q_offset + k,
            clbit: c_offset + k,
        });
    }
    Ok(())
}

/// `reset q[i]` or the whole-register form `reset q`.
fn parse_reset(
    stmt: &str,
    line: usize,
    column: usize,
    limits: ParseLimits,
    state: &mut ParserState,
) -> Result<(), ParseError> {
    let rest = stmt["reset".len()..].trim();
    if rest.is_empty() {
        return Err(ParseError::at(
            line,
            column,
            "reset statement is missing its qubit operand".to_string(),
        ));
    }
    let (offset, count) = resolve_operand_or_register(rest, &state.registers, line, column)?;
    if state.gates.len() + count > limits.max_gates {
        return Err(ParseError::at(
            line,
            column,
            format!("gate count exceeds the limit ({})", limits.max_gates),
        ));
    }
    for k in 0..count {
        state.gates.push(Gate::Reset { qubit: offset + k });
    }
    Ok(())
}

/// Returns `true` if the (lowercased) statement is an `if` conditional —
/// the keyword must be followed by `(` or whitespace so identifiers like
/// `iffy` are not mistaken for it.
fn is_if_statement(lower: &str) -> bool {
    match lower.strip_prefix("if") {
        Some(rest) => rest.starts_with('(') || rest.starts_with(char::is_whitespace),
        None => false,
    }
}

/// `if (c == v) <gate>`, with the documented single-bit (`c[j]`) and
/// bit-range (`c[j+:w]`) condition extensions.
fn parse_if(
    stmt: &str,
    line: usize,
    column: usize,
    state: &mut ParserState,
) -> Result<(), ParseError> {
    let rest = stmt["if".len()..].trim_start();
    let inner_start = rest
        .strip_prefix('(')
        .ok_or_else(|| ParseError::at(line, column, "if condition is missing `(`".to_string()))?;
    let close = inner_start
        .find(')')
        .ok_or_else(|| ParseError::at(line, column, "if condition is missing `)`".to_string()))?;
    let condition = &inner_start[..close];
    let body = inner_start[close + 1..].trim();

    let (lhs, rhs) = condition.split_once("==").ok_or_else(|| {
        ParseError::at(
            line,
            column,
            format!("if condition `{condition}` must have the form `creg == value`"),
        )
    })?;
    let (offset, width) = resolve_condition_range(lhs.trim(), &state.cregs, line, column)?;
    let value: u64 = rhs.trim().parse().map_err(|_| {
        ParseError::at(
            line,
            column,
            format!("bad condition value `{}`", rhs.trim()),
        )
    })?;
    if width < 64 && value >> width != 0 {
        return Err(ParseError::at(
            line,
            column,
            format!("condition value {value} does not fit in {width} bit(s)"),
        ));
    }
    if body.is_empty() {
        return Err(ParseError::at(
            line,
            column,
            "if condition is missing its gate statement".to_string(),
        ));
    }
    let body_lower = body.to_ascii_lowercase();
    if body_lower.starts_with("measure")
        || body_lower.starts_with("reset")
        || is_if_statement(&body_lower)
    {
        return Err(ParseError::at(
            line,
            column,
            format!("`{body}` cannot be classically conditioned; only unitary gates can"),
        ));
    }
    let gate = parse_gate(body, line, column, &state.registers)?;
    state.gates.push(Gate::Conditional {
        offset,
        width,
        value,
        gate: Box::new(gate),
    });
    Ok(())
}

/// Parses one gate application: `<mnemonic>[(params)] operand {, operand}`.
fn parse_gate(
    stmt: &str,
    line: usize,
    column: usize,
    registers: &BTreeMap<String, (usize, usize)>,
) -> Result<Gate, ParseError> {
    let (head, operand_text) = match stmt.find(|c: char| c.is_whitespace()) {
        Some(pos) => (&stmt[..pos], &stmt[pos..]),
        None => {
            return Err(ParseError::at(
                line,
                column,
                format!("cannot parse statement `{stmt}`"),
            ))
        }
    };
    let head = head.trim().to_ascii_lowercase();
    let operands: Vec<usize> = operand_text
        .split(',')
        .map(|op| resolve_operand(op.trim(), registers, line, column))
        .collect::<Result<_, _>>()?;

    let need = |n: usize| -> Result<(), ParseError> {
        if operands.len() == n {
            Ok(())
        } else {
            Err(ParseError::at(
                line,
                column,
                format!(
                    "gate `{head}` expects {n} operand(s), got {}",
                    operands.len()
                ),
            ))
        }
    };

    let (mnemonic, param) = match head.find('(') {
        Some(pos) => {
            // Search for `)` strictly after the `(` so reversed delimiters
            // (`rx)pi/2(`) are a structured error, not a slice panic.
            let close = pos
                + 1
                + head[pos + 1..].rfind(')').ok_or_else(|| {
                    ParseError::at(line, column, format!("missing `)` in gate `{head}`"))
                })?;
            (
                head[..pos].to_string(),
                Some(head[pos + 1..close].to_string()),
            )
        }
        None => (head.clone(), None),
    };

    let gate = match mnemonic.as_str() {
        "x" => {
            need(1)?;
            Gate::X(operands[0])
        }
        "y" => {
            need(1)?;
            Gate::Y(operands[0])
        }
        "z" => {
            need(1)?;
            Gate::Z(operands[0])
        }
        "h" => {
            need(1)?;
            Gate::H(operands[0])
        }
        "s" => {
            need(1)?;
            Gate::S(operands[0])
        }
        "sdg" => {
            need(1)?;
            Gate::Sdg(operands[0])
        }
        "t" => {
            need(1)?;
            Gate::T(operands[0])
        }
        "tdg" => {
            need(1)?;
            Gate::Tdg(operands[0])
        }
        "rx" | "ry" => {
            need(1)?;
            let param = param.unwrap_or_default();
            if !is_half_pi(&param) {
                return Err(ParseError::at(
                    line,
                    column,
                    format!("only {mnemonic}(pi/2) is supported, got `{param}`"),
                ));
            }
            if mnemonic == "rx" {
                Gate::RxPi2(operands[0])
            } else {
                Gate::RyPi2(operands[0])
            }
        }
        "cx" | "cnot" => {
            need(2)?;
            Gate::Cnot {
                control: operands[0],
                target: operands[1],
            }
        }
        "cz" => {
            need(2)?;
            Gate::Cz {
                control: operands[0],
                target: operands[1],
            }
        }
        "ccx" | "toffoli" => {
            need(3)?;
            Gate::Toffoli {
                controls: vec![operands[0], operands[1]],
                target: operands[2],
            }
        }
        "cswap" | "fredkin" => {
            need(3)?;
            Gate::Fredkin {
                controls: vec![operands[0]],
                target1: operands[1],
                target2: operands[2],
            }
        }
        "swap" => {
            need(2)?;
            Gate::Fredkin {
                controls: Vec::new(),
                target1: operands[0],
                target2: operands[1],
            }
        }
        other => {
            return Err(ParseError::at(
                line,
                column,
                format!("unsupported gate `{other}`"),
            ));
        }
    };
    Ok(gate)
}

/// Resolves an operand that is either one element (`q[i]` → `(index, 1)`)
/// or a whole register (`q` → `(offset, size)`).
fn resolve_operand_or_register(
    op: &str,
    registers: &BTreeMap<String, (usize, usize)>,
    line: usize,
    column: usize,
) -> Result<(usize, usize), ParseError> {
    if op.contains('[') || op.contains(']') {
        let index = resolve_operand(op, registers, line, column)?;
        Ok((index, 1))
    } else {
        let (offset, size) = registers
            .get(op)
            .ok_or_else(|| ParseError::at(line, column, format!("unknown register `{op}`")))?;
        Ok((*offset, *size))
    }
}

/// Resolves the left-hand side of an `if` condition to a clbit range:
/// `c` (whole register), `c[j]` (one bit), or `c[j+:w]` (a range —
/// emit/parse extension).
fn resolve_condition_range(
    lhs: &str,
    cregs: &BTreeMap<String, (usize, usize)>,
    line: usize,
    column: usize,
) -> Result<(usize, usize), ParseError> {
    if !lhs.contains('[') && !lhs.contains(']') {
        let (offset, size) = cregs.get(lhs).ok_or_else(|| {
            ParseError::at(line, column, format!("unknown classical register `{lhs}`"))
        })?;
        if *size > 64 {
            return Err(ParseError::at(
                line,
                column,
                format!(
                    "classical register `{lhs}[{size}]` is too wide for a condition (max 64 bits)"
                ),
            ));
        }
        return Ok((*offset, *size));
    }
    let (open, close) = bracket_span(lhs)
        .ok_or_else(|| ParseError::at(line, column, format!("malformed condition `{lhs}`")))?;
    let name = lhs[..open].trim();
    let (offset, size) = cregs.get(name).ok_or_else(|| {
        ParseError::at(line, column, format!("unknown classical register `{name}`"))
    })?;
    let index_text = lhs[open + 1..close].trim();
    let (start, width) =
        match index_text.split_once("+:") {
            Some((start, width)) => {
                let start: usize = start.trim().parse().map_err(|_| {
                    ParseError::at(line, column, format!("bad bit index in `{lhs}`"))
                })?;
                let width: usize = width.trim().parse().map_err(|_| {
                    ParseError::at(line, column, format!("bad bit width in `{lhs}`"))
                })?;
                (start, width)
            }
            None => {
                let start: usize = index_text.parse().map_err(|_| {
                    ParseError::at(line, column, format!("bad bit index in `{lhs}`"))
                })?;
                (start, 1)
            }
        };
    if width == 0 || width > 64 {
        return Err(ParseError::at(
            line,
            column,
            format!("condition width {width} is outside 1..=64"),
        ));
    }
    if start.checked_add(width).is_none_or(|end| end > *size) {
        return Err(ParseError::at(
            line,
            column,
            format!("bits {start}+:{width} out of range for register `{name}[{size}]`"),
        ));
    }
    Ok((offset + start, width))
}

fn parse_register_decl(
    decl: &str,
    line: usize,
    column: usize,
) -> Result<(String, usize), ParseError> {
    // e.g. `q[5]`
    let (open, close) = bracket_span(decl)
        .ok_or_else(|| ParseError::at(line, column, format!("malformed register `{decl}`")))?;
    let name = decl[..open].trim().to_string();
    let size: usize = decl[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| ParseError::at(line, column, format!("bad register size in `{decl}`")))?;
    Ok((name, size))
}

fn resolve_operand(
    op: &str,
    registers: &BTreeMap<String, (usize, usize)>,
    line: usize,
    column: usize,
) -> Result<usize, ParseError> {
    let (open, close) = bracket_span(op)
        .ok_or_else(|| ParseError::at(line, column, format!("malformed operand `{op}`")))?;
    let name = op[..open].trim();
    let index: usize = op[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| ParseError::at(line, column, format!("bad qubit index in `{op}`")))?;
    let (offset, size) = registers
        .get(name)
        .ok_or_else(|| ParseError::at(line, column, format!("unknown register `{name}`")))?;
    if index >= *size {
        return Err(ParseError::at(
            line,
            column,
            format!("index {index} out of range for register `{name}[{size}]`"),
        ));
    }
    Ok(offset + index)
}

/// Byte offsets of a `[` and the first `]` *after* it.  Returns `None`
/// when either is missing or they are reversed (`q]1[`), which would
/// otherwise panic as an out-of-order slice.
fn bracket_span(text: &str) -> Option<(usize, usize)> {
    let open = text.find('[')?;
    let close = open + 1 + text[open + 1..].find(']')?;
    Some((open, close))
}

fn is_half_pi(expr: &str) -> bool {
    let e = expr.replace(' ', "").to_ascii_lowercase();
    if e == "pi/2" || e == "π/2" || e == "0.5*pi" || e == "pi*0.5" {
        return true;
    }
    e.parse::<f64>()
        .map(|v| (v - std::f64::consts::FRAC_PI_2).abs() < 1e-9)
        .unwrap_or(false)
}

/// Serialises a [`Circuit`] as an OpenQASM 2.0 program using a single `q`
/// quantum register (and a single `c` classical register when the circuit
/// has classical bits).
pub fn emit(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    out.push_str(&format!("qreg q[{}];\n", circuit.num_qubits()));
    if circuit.num_clbits() > 0 {
        out.push_str(&format!("creg c[{}];\n", circuit.num_clbits()));
    }
    for gate in circuit.iter() {
        out.push_str(&emit_statement(gate, circuit.num_clbits()));
        out.push_str(";\n");
    }
    out
}

fn emit_statement(gate: &Gate, num_clbits: usize) -> String {
    let operands: Vec<String> = gate.qubits().iter().map(|q| format!("q[{q}]")).collect();
    match gate {
        Gate::RxPi2(_) => format!("rx(pi/2) {}", operands.join(", ")),
        Gate::RyPi2(_) => format!("ry(pi/2) {}", operands.join(", ")),
        Gate::Fredkin { controls, .. } if controls.is_empty() => {
            format!("swap {}", operands.join(", "))
        }
        Gate::Measure { qubit, clbit } => format!("measure q[{qubit}] -> c[{clbit}]"),
        Gate::Reset { qubit } => format!("reset q[{qubit}]"),
        Gate::Conditional {
            offset,
            width,
            value,
            gate: inner,
        } => {
            // Whole-register conditions use standard OpenQASM 2 syntax;
            // sub-ranges use the documented `c[j]` / `c[j+:w]` extension so
            // every circuit round-trips exactly.
            let lhs = if *offset == 0 && *width == num_clbits {
                "c".to_string()
            } else if *width == 1 {
                format!("c[{offset}]")
            } else {
                format!("c[{offset}+:{width}]")
            };
            format!(
                "if ({lhs} == {value}) {}",
                emit_statement(inner, num_clbits)
            )
        }
        _ => format!("{} {}", gate.name(), operands.join(", ")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_simple_program() {
        let src = r#"
            OPENQASM 2.0;
            include "qelib1.inc";
            qreg q[3];
            creg c[3];
            h q[0];
            cx q[0], q[1]; ccx q[0], q[1], q[2];
            t q[2];           // a trailing comment
            rx(pi/2) q[1];
            measure q -> c;
        "#;
        let c = parse(src).expect("valid program");
        assert_eq!(c.num_qubits(), 3);
        assert_eq!(c.num_clbits(), 3);
        assert_eq!(
            c.gates(),
            &[
                Gate::H(0),
                Gate::Cnot {
                    control: 0,
                    target: 1
                },
                Gate::Toffoli {
                    controls: vec![0, 1],
                    target: 2
                },
                Gate::T(2),
                Gate::RxPi2(1),
                Gate::Measure { qubit: 0, clbit: 0 },
                Gate::Measure { qubit: 1, clbit: 1 },
                Gate::Measure { qubit: 2, clbit: 2 },
            ]
        );
    }

    #[test]
    fn parses_dynamic_statements() {
        let src = r#"
            qreg q[2];
            creg c[2];
            h q[0];
            measure q[0] -> c[0];
            if (c[0] == 1) x q[1];
            reset q[0];
            measure q[1] -> c[1];
            if (c == 3) z q[0];
        "#;
        let c = parse(src).expect("valid program");
        assert_eq!(c.num_qubits(), 2);
        assert_eq!(c.num_clbits(), 2);
        assert!(c.is_dynamic());
        assert!(c.validate().is_ok());
        assert_eq!(
            c.gates(),
            &[
                Gate::H(0),
                Gate::Measure { qubit: 0, clbit: 0 },
                Gate::Conditional {
                    offset: 0,
                    width: 1,
                    value: 1,
                    gate: Box::new(Gate::X(1)),
                },
                Gate::Reset { qubit: 0 },
                Gate::Measure { qubit: 1, clbit: 1 },
                Gate::Conditional {
                    offset: 0,
                    width: 2,
                    value: 3,
                    gate: Box::new(Gate::Z(0)),
                },
            ]
        );
        // Whole-register reset expands per qubit.
        let r = parse("qreg q[3]; reset q;").expect("valid");
        assert_eq!(
            r.gates(),
            &[
                Gate::Reset { qubit: 0 },
                Gate::Reset { qubit: 1 },
                Gate::Reset { qubit: 2 },
            ]
        );
    }

    #[test]
    fn malformed_dynamic_statements_are_structured_errors() {
        // Silent skipping is gone: every malformed or unsupported statement
        // carries a line/column.
        let cases: &[(&str, &str)] = &[
            ("qreg q[1]; measure q[0];", "missing `->`"),
            ("qreg q[2]; creg c[1]; measure q -> c;", "sizes must match"),
            ("qreg q[1]; measure q[0] -> c[0];", "unknown register"),
            ("qreg q[1]; creg c[1]; if c[0] == 1 x q[0];", "missing `(`"),
            ("qreg q[1]; creg c[1]; if (c[0] == 1 x q[0];", "missing `)`"),
            ("qreg q[1]; creg c[1]; if (c[0] = 1) x q[0];", "form"),
            (
                "qreg q[1]; creg c[1]; if (d == 1) x q[0];",
                "unknown classical register",
            ),
            ("qreg q[1]; creg c[1]; if (c == 2) x q[0];", "does not fit"),
            (
                "qreg q[1]; creg c[1]; if (c == 1) measure q[0] -> c[0];",
                "conditioned",
            ),
            (
                "qreg q[1]; creg c[1]; if (c == 1) reset q[0];",
                "conditioned",
            ),
            (
                "qreg q[1]; creg c[1]; if (c == 1) if (c == 1) x q[0];",
                "conditioned",
            ),
            ("qreg q[1]; creg c[1]; if (c == 1);", "missing its gate"),
            ("qreg q[1]; reset;", "missing its qubit"),
            ("qreg q[1]; opaque foo q[0];", "unknown register"),
            ("qreg q[1]; gate mygate a { }", "malformed operand"),
        ];
        for (src, needle) in cases {
            let err = parse(src).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{src:?}: expected {needle:?} in {err}"
            );
            assert!(err.line >= 1, "{src:?} lost its position: {err:?}");
        }
    }

    #[test]
    fn multiple_registers_get_distinct_offsets() {
        let src = "qreg a[2]; qreg b[2]; cx a[1], b[0];";
        let c = parse(src).expect("valid");
        assert_eq!(c.num_qubits(), 4);
        assert_eq!(
            c.gates(),
            &[Gate::Cnot {
                control: 1,
                target: 2
            }]
        );
    }

    #[test]
    fn rejects_unknown_gates_and_bad_operands() {
        assert!(parse("qreg q[1]; u3(0.1,0.2,0.3) q[0];").is_err());
        assert!(parse("qreg q[1]; rx(0.3) q[0];").is_err());
        assert!(parse("qreg q[2]; cx q[0], q[5];").is_err());
        assert!(parse("qreg q[2]; cx q[0], r[1];").is_err());
        let err = parse("qreg q[1]; foo q[0];").unwrap_err();
        assert!(err.to_string().contains("foo"));
    }

    #[test]
    fn roundtrip_through_emit() {
        let mut c = Circuit::new(4);
        c.h(0)
            .t(1)
            .sdg(2)
            .cx(0, 1)
            .cz(1, 2)
            .ccx(0, 1, 3)
            .cswap(0, 2, 3)
            .swap(1, 2)
            .rx_pi2(3)
            .ry_pi2(0);
        let text = emit(&c);
        let back = parse(&text).expect("emitted text parses");
        assert_eq!(back, c);
    }

    #[test]
    fn dynamic_circuits_roundtrip_through_emit() {
        let mut c = Circuit::with_clbits(3, 4);
        c.h(0)
            .measure(0, 0)
            .if_bit(0, Gate::X(1))
            .reset(0)
            .measure(1, 2)
            .conditional(0, 4, 9, Gate::Z(2))
            .conditional(1, 2, 2, Gate::H(1));
        let text = emit(&c);
        assert!(text.contains("creg c[4];"), "{text}");
        assert!(text.contains("measure q[0] -> c[0];"), "{text}");
        assert!(text.contains("reset q[0];"), "{text}");
        assert!(text.contains("if (c == 9) z q[2];"), "{text}");
        assert!(text.contains("if (c[1+:2] == 2) h q[1];"), "{text}");
        let back = parse(&text).expect("emitted text parses");
        assert_eq!(back, c);
    }

    #[test]
    fn accepts_numeric_half_pi() {
        let src = "qreg q[1]; rx(1.5707963267948966) q[0];";
        let c = parse(src).expect("valid");
        assert_eq!(c.gates(), &[Gate::RxPi2(0)]);
    }

    #[test]
    fn errors_carry_line_and_column() {
        // `foo` starts at column 12 of line 1 (after `qreg q[1]; `).
        let err = parse("qreg q[1]; foo q[0];").unwrap_err();
        assert_eq!(err.line, 1);
        assert_eq!(err.column, 12);
        assert!(err.to_string().contains("column 12"), "{err}");
        // Second line, indented statement.
        let err = parse("qreg q[2];\n   cx q[0], q[9];").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.column, 4);
    }

    #[test]
    fn absurd_register_sizes_are_rejected_before_allocation() {
        // One register over the limit.
        let err = parse("qreg q[99999999];").unwrap_err();
        assert!(err.to_string().contains("qubit limit"), "{err}");
        // Many registers accumulating past the limit.
        let limits = ParseLimits {
            max_qubits: 8,
            ..ParseLimits::default()
        };
        assert!(parse_with_limits("qreg a[5]; qreg b[5];", limits).is_err());
        assert!(parse_with_limits("qreg a[5]; qreg b[3];", limits).is_ok());
        // A size too big for usize stays a structured error, not a panic.
        let err = parse("qreg q[999999999999999999999999999];").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("bad register size"), "{err}");
    }

    #[test]
    fn gate_count_limit_rejects_endless_gate_streams() {
        let limits = ParseLimits {
            max_gates: 4,
            ..ParseLimits::default()
        };
        let src = "qreg q[1]; x q[0]; x q[0]; x q[0]; x q[0];";
        assert!(parse_with_limits(src, limits).is_ok());
        let src = "qreg q[1]; x q[0]; x q[0]; x q[0]; x q[0]; x q[0];";
        let err = parse_with_limits(src, limits).unwrap_err();
        assert!(err.to_string().contains("gate count"), "{err}");
    }

    #[test]
    fn source_byte_limit_is_checked_up_front() {
        let limits = ParseLimits {
            max_source_bytes: 16,
            ..ParseLimits::default()
        };
        let err = parse_with_limits("qreg q[1]; x q[0];", limits).unwrap_err();
        assert!(err.to_string().contains("bytes"), "{err}");
    }

    #[test]
    fn reversed_delimiters_are_rejected_not_panics() {
        // Each of these used to panic on an out-of-order str slice.
        let err = parse("qreg q]1[;").unwrap_err();
        assert!(err.to_string().contains("malformed register"), "{err}");
        let err = parse("qreg q[1]; x q]0[;").unwrap_err();
        assert!(err.to_string().contains("malformed operand"), "{err}");
        let err = parse("qreg q[1]; rx)pi/2( q[0];").unwrap_err();
        assert!(err.to_string().contains("missing `)`"), "{err}");
    }

    #[test]
    fn truncated_and_garbage_inputs_error_instead_of_panicking() {
        // Fuzz-style corpus: every prefix of a valid program plus assorted
        // garbage must parse or fail with a structured error — never panic,
        // never allocate absurdly.
        let valid = "OPENQASM 2.0;\nqreg q[3];\nh q[0];\ncx q[0], q[1];\nccx q[0], q[1], q[2];\n";
        for end in 0..=valid.len() {
            let _ = parse(&valid[..end]);
        }
        let garbage: &[&str] = &[
            "",
            ";",
            ";;;;;",
            "qreg",
            "qreg ;",
            "qreg q",
            "qreg q[",
            "qreg q[];",
            "qreg q[-1];",
            "qreg q[1]; h",
            "qreg q[1]; h ;",
            "qreg q[1]; h q;",
            "qreg q[1]; h q[;",
            "qreg q[1]; h q[]",
            "qreg q[1]; rx( q[0];",
            "qreg q[1]; rx() q[0];",
            "qreg q[1]; cx q[0],;",
            "qreg q[1]; cx q[0], q[0], q[0], q[0];",
            "qreg [3]; x [0];",
            "qreg q]1[;",
            "x q]0[;",
            "qreg q[1]; x q]0[;",
            "qreg q[1]; rx)pi/2( q[0];",
            "qreg q[1]; rx(pi/2) q]0[;",
            "qreg ]q[1];",
            "\u{0}\u{1}\u{2}",
            "qreg q[1]; x q[0]\u{335};",
            "κρεγ q[2]; h q[0];",
            "qreg q[18446744073709551616];",
        ];
        for src in garbage {
            // The outcome may be Ok (header statements, empty input) or Err,
            // but must be structured either way.
            if let Err(err) = parse(src) {
                assert!(!err.message.is_empty(), "empty message for {src:?}");
            }
        }
    }
}
