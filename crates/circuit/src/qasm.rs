//! A parser and writer for the OpenQASM 2.0 subset covering the supported
//! gate set.
//!
//! Supported statements: `OPENQASM`, `include`, `qreg`, `creg` (ignored),
//! `barrier` (ignored), `measure` (ignored — measurement is driven through
//! the simulator API), and the gates
//! `x y z h s sdg t tdg rx(pi/2) ry(pi/2) cx cz ccx cswap swap`.

use crate::circuit::Circuit;
use crate::error::ParseError;
use crate::gate::Gate;
use std::collections::BTreeMap;

/// Input limits enforced by [`parse_with_limits`] *before* any allocation
/// proportional to the declared sizes happens.
///
/// The parser is exposed to adversarial input when it sits behind a service
/// front-end: a one-line `qreg q[9999999999]` or an endless stream of gate
/// statements must be rejected structurally, not by exhausting memory.  The
/// defaults are generous for every legitimate workload in the workspace;
/// servers tighten them per deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseLimits {
    /// Maximum total qubits over all `qreg` declarations.
    pub max_qubits: usize,
    /// Maximum number of gate statements.
    pub max_gates: usize,
    /// Maximum source length in bytes (checked up front).
    pub max_source_bytes: usize,
}

impl Default for ParseLimits {
    fn default() -> Self {
        Self {
            max_qubits: 1 << 16,
            max_gates: 1 << 22,
            max_source_bytes: 64 << 20,
        }
    }
}

/// Parses an OpenQASM 2.0 program into a [`Circuit`] under the default
/// [`ParseLimits`].
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first offending statement, with
/// its 1-based line and column.
///
/// ```
/// use sliq_circuit::qasm;
/// let src = r#"
///     OPENQASM 2.0;
///     include "qelib1.inc";
///     qreg q[2];
///     h q[0];
///     cx q[0], q[1];
/// "#;
/// let circuit = qasm::parse(src)?;
/// assert_eq!(circuit.num_qubits(), 2);
/// assert_eq!(circuit.len(), 2);
/// # Ok::<(), sliq_circuit::ParseError>(())
/// ```
pub fn parse(source: &str) -> Result<Circuit, ParseError> {
    parse_with_limits(source, ParseLimits::default())
}

/// Parses an OpenQASM 2.0 program with explicit [`ParseLimits`].
///
/// Declared register sizes and the gate count are checked against the
/// limits as they are encountered — an absurd declaration is rejected
/// before the parser allocates anything proportional to it.
pub fn parse_with_limits(source: &str, limits: ParseLimits) -> Result<Circuit, ParseError> {
    if source.len() > limits.max_source_bytes {
        return Err(ParseError::new(
            0,
            format!(
                "source is {} bytes, limit {}",
                source.len(),
                limits.max_source_bytes
            ),
        ));
    }
    let mut registers: BTreeMap<String, (usize, usize)> = BTreeMap::new(); // name -> (offset, size)
    let mut total_qubits = 0usize;
    let mut gates: Vec<Gate> = Vec::new();

    // Statements are ';'-terminated; keep track of line numbers (and the
    // column each statement starts at) for errors.
    for (line_no, raw_line) in source.lines().enumerate() {
        let line_no = line_no + 1;
        let line = match raw_line.find("//") {
            Some(pos) => &raw_line[..pos],
            None => raw_line,
        };
        let mut offset = 0usize;
        for stmt in line.split(';') {
            let leading = stmt.len() - stmt.trim_start().len();
            let column = offset + leading + 1;
            let piece_len = stmt.len();
            let stmt = stmt.trim();
            offset += piece_len + 1;
            if stmt.is_empty() {
                continue;
            }
            parse_statement(
                stmt,
                line_no,
                column,
                limits,
                &mut registers,
                &mut total_qubits,
                &mut gates,
            )?;
        }
    }

    let mut circuit = Circuit::new(total_qubits);
    circuit.extend(gates);
    Ok(circuit)
}

fn parse_statement(
    stmt: &str,
    line: usize,
    column: usize,
    limits: ParseLimits,
    registers: &mut BTreeMap<String, (usize, usize)>,
    total_qubits: &mut usize,
    gates: &mut Vec<Gate>,
) -> Result<(), ParseError> {
    let lower = stmt.to_ascii_lowercase();
    if lower.starts_with("openqasm")
        || lower.starts_with("include")
        || lower.starts_with("creg")
        || lower.starts_with("barrier")
        || lower.starts_with("measure")
    {
        return Ok(());
    }
    if let Some(rest) = lower.strip_prefix("qreg") {
        let rest = rest.trim();
        let (name, size) = parse_register_decl(rest, line, column)?;
        if size > limits.max_qubits || *total_qubits + size > limits.max_qubits {
            return Err(ParseError::at(
                line,
                column,
                format!(
                    "register `{name}[{size}]` exceeds the qubit limit ({} total, limit {})",
                    *total_qubits + size,
                    limits.max_qubits
                ),
            ));
        }
        registers.insert(name, (*total_qubits, size));
        *total_qubits += size;
        return Ok(());
    }
    if gates.len() >= limits.max_gates {
        return Err(ParseError::at(
            line,
            column,
            format!("gate count exceeds the limit ({})", limits.max_gates),
        ));
    }

    // Gate application: `<mnemonic>[(params)] operand {, operand}`.
    let (head, operand_text) = match stmt.find(|c: char| c.is_whitespace()) {
        Some(pos) => (&stmt[..pos], &stmt[pos..]),
        None => {
            return Err(ParseError::at(
                line,
                column,
                format!("cannot parse statement `{stmt}`"),
            ))
        }
    };
    let head = head.trim().to_ascii_lowercase();
    let operands: Vec<usize> = operand_text
        .split(',')
        .map(|op| resolve_operand(op.trim(), registers, line, column))
        .collect::<Result<_, _>>()?;

    let need = |n: usize| -> Result<(), ParseError> {
        if operands.len() == n {
            Ok(())
        } else {
            Err(ParseError::at(
                line,
                column,
                format!(
                    "gate `{head}` expects {n} operand(s), got {}",
                    operands.len()
                ),
            ))
        }
    };

    let (mnemonic, param) = match head.find('(') {
        Some(pos) => {
            // Search for `)` strictly after the `(` so reversed delimiters
            // (`rx)pi/2(`) are a structured error, not a slice panic.
            let close = pos
                + 1
                + head[pos + 1..].rfind(')').ok_or_else(|| {
                    ParseError::at(line, column, format!("missing `)` in gate `{head}`"))
                })?;
            (
                head[..pos].to_string(),
                Some(head[pos + 1..close].to_string()),
            )
        }
        None => (head.clone(), None),
    };

    let gate = match mnemonic.as_str() {
        "x" => {
            need(1)?;
            Gate::X(operands[0])
        }
        "y" => {
            need(1)?;
            Gate::Y(operands[0])
        }
        "z" => {
            need(1)?;
            Gate::Z(operands[0])
        }
        "h" => {
            need(1)?;
            Gate::H(operands[0])
        }
        "s" => {
            need(1)?;
            Gate::S(operands[0])
        }
        "sdg" => {
            need(1)?;
            Gate::Sdg(operands[0])
        }
        "t" => {
            need(1)?;
            Gate::T(operands[0])
        }
        "tdg" => {
            need(1)?;
            Gate::Tdg(operands[0])
        }
        "rx" | "ry" => {
            need(1)?;
            let param = param.unwrap_or_default();
            if !is_half_pi(&param) {
                return Err(ParseError::at(
                    line,
                    column,
                    format!("only {mnemonic}(pi/2) is supported, got `{param}`"),
                ));
            }
            if mnemonic == "rx" {
                Gate::RxPi2(operands[0])
            } else {
                Gate::RyPi2(operands[0])
            }
        }
        "cx" | "cnot" => {
            need(2)?;
            Gate::Cnot {
                control: operands[0],
                target: operands[1],
            }
        }
        "cz" => {
            need(2)?;
            Gate::Cz {
                control: operands[0],
                target: operands[1],
            }
        }
        "ccx" | "toffoli" => {
            need(3)?;
            Gate::Toffoli {
                controls: vec![operands[0], operands[1]],
                target: operands[2],
            }
        }
        "cswap" | "fredkin" => {
            need(3)?;
            Gate::Fredkin {
                controls: vec![operands[0]],
                target1: operands[1],
                target2: operands[2],
            }
        }
        "swap" => {
            need(2)?;
            Gate::Fredkin {
                controls: Vec::new(),
                target1: operands[0],
                target2: operands[1],
            }
        }
        other => {
            return Err(ParseError::at(
                line,
                column,
                format!("unsupported gate `{other}`"),
            ));
        }
    };
    gates.push(gate);
    Ok(())
}

fn parse_register_decl(
    decl: &str,
    line: usize,
    column: usize,
) -> Result<(String, usize), ParseError> {
    // e.g. `q[5]`
    let (open, close) = bracket_span(decl)
        .ok_or_else(|| ParseError::at(line, column, format!("malformed register `{decl}`")))?;
    let name = decl[..open].trim().to_string();
    let size: usize = decl[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| ParseError::at(line, column, format!("bad register size in `{decl}`")))?;
    Ok((name, size))
}

fn resolve_operand(
    op: &str,
    registers: &BTreeMap<String, (usize, usize)>,
    line: usize,
    column: usize,
) -> Result<usize, ParseError> {
    let (open, close) = bracket_span(op)
        .ok_or_else(|| ParseError::at(line, column, format!("malformed operand `{op}`")))?;
    let name = op[..open].trim();
    let index: usize = op[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| ParseError::at(line, column, format!("bad qubit index in `{op}`")))?;
    let (offset, size) = registers
        .get(name)
        .ok_or_else(|| ParseError::at(line, column, format!("unknown register `{name}`")))?;
    if index >= *size {
        return Err(ParseError::at(
            line,
            column,
            format!("index {index} out of range for register `{name}[{size}]`"),
        ));
    }
    Ok(offset + index)
}

/// Byte offsets of a `[` and the first `]` *after* it.  Returns `None`
/// when either is missing or they are reversed (`q]1[`), which would
/// otherwise panic as an out-of-order slice.
fn bracket_span(text: &str) -> Option<(usize, usize)> {
    let open = text.find('[')?;
    let close = open + 1 + text[open + 1..].find(']')?;
    Some((open, close))
}

fn is_half_pi(expr: &str) -> bool {
    let e = expr.replace(' ', "").to_ascii_lowercase();
    if e == "pi/2" || e == "π/2" || e == "0.5*pi" || e == "pi*0.5" {
        return true;
    }
    e.parse::<f64>()
        .map(|v| (v - std::f64::consts::FRAC_PI_2).abs() < 1e-9)
        .unwrap_or(false)
}

/// Serialises a [`Circuit`] as an OpenQASM 2.0 program using a single `q`
/// register.
pub fn emit(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    out.push_str(&format!("qreg q[{}];\n", circuit.num_qubits()));
    for gate in circuit.iter() {
        let operands: Vec<String> = gate.qubits().iter().map(|q| format!("q[{q}]")).collect();
        let stmt = match gate {
            Gate::RxPi2(_) => format!("rx(pi/2) {}", operands.join(", ")),
            Gate::RyPi2(_) => format!("ry(pi/2) {}", operands.join(", ")),
            Gate::Fredkin { controls, .. } if controls.is_empty() => {
                format!("swap {}", operands.join(", "))
            }
            _ => format!("{} {}", gate.name(), operands.join(", ")),
        };
        out.push_str(&stmt);
        out.push_str(";\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_simple_program() {
        let src = r#"
            OPENQASM 2.0;
            include "qelib1.inc";
            qreg q[3];
            creg c[3];
            h q[0];
            cx q[0], q[1]; ccx q[0], q[1], q[2];
            t q[2];           // a trailing comment
            rx(pi/2) q[1];
            measure q -> c;
        "#;
        let c = parse(src).expect("valid program");
        assert_eq!(c.num_qubits(), 3);
        assert_eq!(
            c.gates(),
            &[
                Gate::H(0),
                Gate::Cnot {
                    control: 0,
                    target: 1
                },
                Gate::Toffoli {
                    controls: vec![0, 1],
                    target: 2
                },
                Gate::T(2),
                Gate::RxPi2(1),
            ]
        );
    }

    #[test]
    fn multiple_registers_get_distinct_offsets() {
        let src = "qreg a[2]; qreg b[2]; cx a[1], b[0];";
        let c = parse(src).expect("valid");
        assert_eq!(c.num_qubits(), 4);
        assert_eq!(
            c.gates(),
            &[Gate::Cnot {
                control: 1,
                target: 2
            }]
        );
    }

    #[test]
    fn rejects_unknown_gates_and_bad_operands() {
        assert!(parse("qreg q[1]; u3(0.1,0.2,0.3) q[0];").is_err());
        assert!(parse("qreg q[1]; rx(0.3) q[0];").is_err());
        assert!(parse("qreg q[2]; cx q[0], q[5];").is_err());
        assert!(parse("qreg q[2]; cx q[0], r[1];").is_err());
        let err = parse("qreg q[1]; foo q[0];").unwrap_err();
        assert!(err.to_string().contains("foo"));
    }

    #[test]
    fn roundtrip_through_emit() {
        let mut c = Circuit::new(4);
        c.h(0)
            .t(1)
            .sdg(2)
            .cx(0, 1)
            .cz(1, 2)
            .ccx(0, 1, 3)
            .cswap(0, 2, 3)
            .swap(1, 2)
            .rx_pi2(3)
            .ry_pi2(0);
        let text = emit(&c);
        let back = parse(&text).expect("emitted text parses");
        assert_eq!(back, c);
    }

    #[test]
    fn accepts_numeric_half_pi() {
        let src = "qreg q[1]; rx(1.5707963267948966) q[0];";
        let c = parse(src).expect("valid");
        assert_eq!(c.gates(), &[Gate::RxPi2(0)]);
    }

    #[test]
    fn errors_carry_line_and_column() {
        // `foo` starts at column 12 of line 1 (after `qreg q[1]; `).
        let err = parse("qreg q[1]; foo q[0];").unwrap_err();
        assert_eq!(err.line, 1);
        assert_eq!(err.column, 12);
        assert!(err.to_string().contains("column 12"), "{err}");
        // Second line, indented statement.
        let err = parse("qreg q[2];\n   cx q[0], q[9];").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.column, 4);
    }

    #[test]
    fn absurd_register_sizes_are_rejected_before_allocation() {
        // One register over the limit.
        let err = parse("qreg q[99999999];").unwrap_err();
        assert!(err.to_string().contains("qubit limit"), "{err}");
        // Many registers accumulating past the limit.
        let limits = ParseLimits {
            max_qubits: 8,
            ..ParseLimits::default()
        };
        assert!(parse_with_limits("qreg a[5]; qreg b[5];", limits).is_err());
        assert!(parse_with_limits("qreg a[5]; qreg b[3];", limits).is_ok());
        // A size too big for usize stays a structured error, not a panic.
        let err = parse("qreg q[999999999999999999999999999];").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("bad register size"), "{err}");
    }

    #[test]
    fn gate_count_limit_rejects_endless_gate_streams() {
        let limits = ParseLimits {
            max_gates: 4,
            ..ParseLimits::default()
        };
        let src = "qreg q[1]; x q[0]; x q[0]; x q[0]; x q[0];";
        assert!(parse_with_limits(src, limits).is_ok());
        let src = "qreg q[1]; x q[0]; x q[0]; x q[0]; x q[0]; x q[0];";
        let err = parse_with_limits(src, limits).unwrap_err();
        assert!(err.to_string().contains("gate count"), "{err}");
    }

    #[test]
    fn source_byte_limit_is_checked_up_front() {
        let limits = ParseLimits {
            max_source_bytes: 16,
            ..ParseLimits::default()
        };
        let err = parse_with_limits("qreg q[1]; x q[0];", limits).unwrap_err();
        assert!(err.to_string().contains("bytes"), "{err}");
    }

    #[test]
    fn reversed_delimiters_are_rejected_not_panics() {
        // Each of these used to panic on an out-of-order str slice.
        let err = parse("qreg q]1[;").unwrap_err();
        assert!(err.to_string().contains("malformed register"), "{err}");
        let err = parse("qreg q[1]; x q]0[;").unwrap_err();
        assert!(err.to_string().contains("malformed operand"), "{err}");
        let err = parse("qreg q[1]; rx)pi/2( q[0];").unwrap_err();
        assert!(err.to_string().contains("missing `)`"), "{err}");
    }

    #[test]
    fn truncated_and_garbage_inputs_error_instead_of_panicking() {
        // Fuzz-style corpus: every prefix of a valid program plus assorted
        // garbage must parse or fail with a structured error — never panic,
        // never allocate absurdly.
        let valid = "OPENQASM 2.0;\nqreg q[3];\nh q[0];\ncx q[0], q[1];\nccx q[0], q[1], q[2];\n";
        for end in 0..=valid.len() {
            let _ = parse(&valid[..end]);
        }
        let garbage: &[&str] = &[
            "",
            ";",
            ";;;;;",
            "qreg",
            "qreg ;",
            "qreg q",
            "qreg q[",
            "qreg q[];",
            "qreg q[-1];",
            "qreg q[1]; h",
            "qreg q[1]; h ;",
            "qreg q[1]; h q;",
            "qreg q[1]; h q[;",
            "qreg q[1]; h q[]",
            "qreg q[1]; rx( q[0];",
            "qreg q[1]; rx() q[0];",
            "qreg q[1]; cx q[0],;",
            "qreg q[1]; cx q[0], q[0], q[0], q[0];",
            "qreg [3]; x [0];",
            "qreg q]1[;",
            "x q]0[;",
            "qreg q[1]; x q]0[;",
            "qreg q[1]; rx)pi/2( q[0];",
            "qreg q[1]; rx(pi/2) q]0[;",
            "qreg ]q[1];",
            "\u{0}\u{1}\u{2}",
            "qreg q[1]; x q[0]\u{335};",
            "κρεγ q[2]; h q[0];",
            "qreg q[18446744073709551616];",
        ];
        for src in garbage {
            // The outcome may be Ok (ignored statements) or Err, but must be
            // structured either way.
            if let Err(err) = parse(src) {
                assert!(!err.message.is_empty(), "empty message for {src:?}");
            }
        }
    }
}
