//! Peephole circuit optimisation.
//!
//! Benchmark circuits (randomly generated ones in particular) contain many
//! trivially redundant gate pairs; removing them before simulation reduces
//! work for every backend without changing the state.  Two rewrite rules are
//! applied until a fixed point is reached:
//!
//! 1. **Inverse-pair cancellation** — a gate immediately followed (on exactly
//!    the same qubits, with no interfering gate in between) by its inverse is
//!    removed, e.g. `H·H`, `X·X`, `CNOT·CNOT`, `S·S†`, `T·T†`.
//! 2. **Phase merging** — two adjacent identical phase gates merge into the
//!    stronger one: `S·S → Z`, `S†·S† → Z`, `T·T → S`, `T†·T† → S†`.
//!
//! A single left-to-right pass is conservative: cancelling a pair clears the
//! per-qubit "last gate" tracking, so gates that become adjacent only
//! *because* an inner pair vanished (e.g. the outer `H…H` of `H·X·X·H`) are
//! not rewritten in the same pass.  [`optimize`] therefore iterates
//! [`one_pass`] until a full pass changes nothing and reports the number of
//! passes in [`OptimizeStats::passes`].  This fixed-point iteration is what
//! makes the output usable as a **canonical form**: circuits that differ
//! only by nested redundant pairs (at any depth) converge to the same gate
//! list, which is what the executor's result cache fingerprints
//! (`sliq_exec::cache`).

use crate::circuit::Circuit;
use crate::gate::Gate;

/// Statistics reported by [`optimize`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptimizeStats {
    /// Number of gates removed by inverse-pair cancellation (counts both
    /// gates of each pair).
    pub cancelled: usize,
    /// Number of gate pairs merged into a single stronger phase gate.
    pub merged: usize,
    /// Number of rewrite passes executed before the fixed point, including
    /// the final pass that confirmed nothing changed (so the minimum is 1).
    pub passes: usize,
}

fn merge_phases(a: &Gate, b: &Gate) -> Option<Gate> {
    match (a, b) {
        (Gate::S(p), Gate::S(q)) | (Gate::Sdg(p), Gate::Sdg(q)) if p == q => Some(Gate::Z(*p)),
        (Gate::T(p), Gate::T(q)) if p == q => Some(Gate::S(*p)),
        (Gate::Tdg(p), Gate::Tdg(q)) if p == q => Some(Gate::Sdg(*p)),
        _ => None,
    }
}

/// Applies one left-to-right pass of the rewrite rules.  Returns the new gate
/// list and the statistics of this pass.
fn one_pass(gates: &[Gate], num_qubits: usize) -> (Vec<Gate>, OptimizeStats) {
    let mut stats = OptimizeStats::default();
    // `output` holds kept gates; `last_touch[q]` is the index in `output` of
    // the most recent kept gate acting on qubit q.
    let mut output: Vec<Option<Gate>> = Vec::with_capacity(gates.len());
    let mut last_touch: Vec<Option<usize>> = vec![None; num_qubits];
    for gate in gates {
        // Dynamic operations (measurement, reset, conditionals) are
        // optimisation barriers: collapse and feed-forward make the
        // state observable mid-circuit, so no gate may be cancelled or
        // merged across them.  Conservatively clear *all* tracking —
        // a conditional's effective support depends on runtime classical
        // state, not just its static qubit list.
        if gate.is_dynamic() {
            output.push(Some(gate.clone()));
            for touch in last_touch.iter_mut() {
                *touch = None;
            }
            continue;
        }
        let qubits = gate.qubits();
        // Find the unique previous gate touching any of this gate's qubits,
        // if all those qubits last saw the *same* gate (otherwise something
        // interferes and no rewrite is safe).
        let previous: Option<usize> = {
            let indices: Vec<Option<usize>> = qubits.iter().map(|&q| last_touch[q]).collect();
            match indices.first() {
                Some(&first) if indices.iter().all(|&i| i == first) => first,
                _ => None,
            }
        };
        if let Some(index) = previous {
            if let Some(prev_gate) = output[index].clone() {
                let same_operands = prev_gate.qubits() == qubits;
                if same_operands {
                    if prev_gate.inverse().as_ref() == Some(gate) {
                        // Cancel the pair.
                        output[index] = None;
                        for &q in &qubits {
                            last_touch[q] = None;
                        }
                        stats.cancelled += 2;
                        continue;
                    }
                    if let Some(merged) = merge_phases(&prev_gate, gate) {
                        output[index] = Some(merged);
                        stats.merged += 1;
                        continue;
                    }
                }
            }
        }
        let index = output.len();
        output.push(Some(gate.clone()));
        for q in qubits {
            last_touch[q] = Some(index);
        }
    }
    (output.into_iter().flatten().collect(), stats)
}

/// Optimises `circuit` by repeatedly applying the rewrite rules until a full
/// pass changes nothing (the fixed point), returning the optimised circuit
/// and cumulative statistics.
///
/// Because every rewrite strictly shrinks the gate list, the iteration
/// terminates after at most `len/2 + 1` passes, and the result is a
/// *canonical form* with respect to the rewrite rules: two circuits that
/// differ only by redundant inverse pairs or unmerged phase pairs — nested
/// to any depth — produce the same output gate list.
pub fn optimize(circuit: &Circuit) -> (Circuit, OptimizeStats) {
    let mut gates: Vec<Gate> = circuit.gates().to_vec();
    let mut total = OptimizeStats::default();
    loop {
        let (next, stats) = one_pass(&gates, circuit.num_qubits());
        total.cancelled += stats.cancelled;
        total.merged += stats.merged;
        total.passes += 1;
        let changed = next.len() != gates.len() || stats.merged > 0;
        gates = next;
        if !changed {
            break;
        }
    }
    let mut optimized = Circuit::with_clbits(circuit.num_qubits(), circuit.num_clbits());
    optimized.extend(gates);
    (optimized, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancels_adjacent_self_inverse_pairs() {
        let mut c = Circuit::new(2);
        c.h(0).h(0).x(1).cx(0, 1).cx(0, 1).x(1);
        let (optimized, stats) = optimize(&c);
        assert!(optimized.is_empty(), "{optimized}");
        assert_eq!(stats.cancelled, 6);
    }

    #[test]
    fn cancels_dagger_pairs_and_merges_phases() {
        let mut c = Circuit::new(1);
        c.s(0).sdg(0).t(0).t(0).t(0).t(0);
        let (optimized, stats) = optimize(&c);
        // S·S† cancels; T·T → S twice, then S·S → Z.
        assert_eq!(optimized.gates(), &[Gate::Z(0)]);
        assert!(stats.cancelled >= 2);
        assert!(stats.merged >= 3);
    }

    #[test]
    fn does_not_cancel_across_interfering_gates() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).h(0);
        let (optimized, _) = optimize(&c);
        assert_eq!(optimized.len(), 3, "the CNOT blocks the cancellation");

        let mut d = Circuit::new(2);
        d.cx(0, 1).x(0).cx(0, 1);
        let (optimized, _) = optimize(&d);
        assert_eq!(optimized.len(), 3, "the X on the control interferes");
    }

    #[test]
    fn does_not_confuse_gates_with_different_operands() {
        let mut c = Circuit::new(3);
        c.cx(0, 1).cx(1, 0);
        let (optimized, _) = optimize(&c);
        assert_eq!(optimized.len(), 2);
        let mut d = Circuit::new(3);
        d.ccx(0, 1, 2).ccx(1, 0, 2);
        let (optimized_d, _) = optimize(&d);
        // Control lists [0,1] and [1,0] describe the same operation but with
        // different operand order; the conservative pass keeps them.
        assert_eq!(optimized_d.len(), 2);
    }

    #[test]
    fn rx_pairs_are_left_alone() {
        // Rx(π/2) is not self-inverse and has no inverse in the gate set.
        let mut c = Circuit::new(1);
        c.rx_pi2(0).rx_pi2(0);
        let (optimized, stats) = optimize(&c);
        assert_eq!(optimized.len(), 2);
        assert_eq!(stats.cancelled, 0);
        assert_eq!(stats.merged, 0);
        // An already-canonical circuit is confirmed in a single pass.
        assert_eq!(stats.passes, 1);
    }

    #[test]
    fn nested_pairs_need_and_get_multiple_passes() {
        // H·(X·X)·H on one qubit: the outer H pair only becomes adjacent
        // once the inner X pair is gone, which a single conservative pass
        // cannot see — the fixed-point loop must run again.
        let mut c = Circuit::new(1);
        c.h(0).x(0).x(0).h(0);
        let (optimized, stats) = optimize(&c);
        assert!(optimized.is_empty(), "{optimized}");
        assert_eq!(stats.cancelled, 4);
        assert!(
            stats.passes >= 3,
            "two rewriting passes plus the confirming pass: {stats:?}"
        );

        // Three levels of nesting converge too.
        let mut d = Circuit::new(2);
        d.cx(0, 1).h(0).s(1).sdg(1).h(0).cx(0, 1);
        let (optimized_d, stats_d) = optimize(&d);
        assert!(optimized_d.is_empty(), "{optimized_d}");
        assert_eq!(stats_d.cancelled, 6);
    }

    #[test]
    fn dynamic_operations_are_optimisation_barriers() {
        // H…H around a measurement must NOT cancel: the measurement
        // collapses the state in between.
        let mut c = Circuit::new(1);
        c.h(0).measure(0, 0).h(0);
        let (optimized, stats) = optimize(&c);
        assert_eq!(optimized.len(), 3, "{optimized}");
        assert_eq!(stats.cancelled, 0);
        assert_eq!(optimized.num_clbits(), 1, "clbits survive optimisation");

        // Same for reset and for conditionals — even on *other* qubits,
        // since feed-forward couples them through the classical register.
        let mut d = Circuit::new(2);
        d.x(1).reset(0).x(1);
        let (optimized_d, _) = optimize(&d);
        assert_eq!(optimized_d.len(), 3);

        let mut e = Circuit::new(2);
        e.measure(0, 0).x(1).if_bit(0, Gate::Z(0)).x(1);
        let (optimized_e, _) = optimize(&e);
        assert_eq!(optimized_e.len(), 4);

        // Redundancy strictly between barriers still cancels.
        let mut f = Circuit::new(1);
        f.measure(0, 0).h(0).h(0).measure(0, 0);
        let (optimized_f, stats_f) = optimize(&f);
        assert_eq!(optimized_f.len(), 2);
        assert_eq!(stats_f.cancelled, 2);
    }

    #[test]
    fn equivalent_redundant_circuits_share_a_canonical_form() {
        // The executor's result cache keys on the canonical gate list, so
        // circuits written with different redundant padding must converge
        // to the identical output.
        let mut plain = Circuit::new(2);
        plain.h(0).cx(0, 1).t(1);
        let mut padded = Circuit::new(2);
        padded
            .h(0)
            .x(1)
            .h(1)
            .h(1) // nested: H·H cancels, exposing X·X
            .x(1)
            .cx(0, 1)
            .t(1)
            .tdg(1) // T·T† cancels, leaving the trailing T
            .t(1);
        let (canon_plain, _) = optimize(&plain);
        let (canon_padded, _) = optimize(&padded);
        assert_eq!(canon_plain.gates(), canon_padded.gates());
    }
}
