//! Peephole circuit optimisation.
//!
//! Benchmark circuits (randomly generated ones in particular) contain many
//! trivially redundant gate pairs; removing them before simulation reduces
//! work for every backend without changing the state.  Two rewrite rules are
//! applied until a fixed point is reached:
//!
//! 1. **Inverse-pair cancellation** — a gate immediately followed (on exactly
//!    the same qubits, with no interfering gate in between) by its inverse is
//!    removed, e.g. `H·H`, `X·X`, `CNOT·CNOT`, `S·S†`, `T·T†`.
//! 2. **Phase merging** — two adjacent identical phase gates merge into the
//!    stronger one: `S·S → Z`, `S†·S† → Z`, `T·T → S`, `T†·T† → S†`.

use crate::circuit::Circuit;
use crate::gate::Gate;

/// Statistics reported by [`optimize`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptimizeStats {
    /// Number of gates removed by inverse-pair cancellation (counts both
    /// gates of each pair).
    pub cancelled: usize,
    /// Number of gate pairs merged into a single stronger phase gate.
    pub merged: usize,
}

fn merge_phases(a: &Gate, b: &Gate) -> Option<Gate> {
    match (a, b) {
        (Gate::S(p), Gate::S(q)) | (Gate::Sdg(p), Gate::Sdg(q)) if p == q => Some(Gate::Z(*p)),
        (Gate::T(p), Gate::T(q)) if p == q => Some(Gate::S(*p)),
        (Gate::Tdg(p), Gate::Tdg(q)) if p == q => Some(Gate::Sdg(*p)),
        _ => None,
    }
}

/// Applies one left-to-right pass of the rewrite rules.  Returns the new gate
/// list and the statistics of this pass.
fn one_pass(gates: &[Gate], num_qubits: usize) -> (Vec<Gate>, OptimizeStats) {
    let mut stats = OptimizeStats::default();
    // `output` holds kept gates; `last_touch[q]` is the index in `output` of
    // the most recent kept gate acting on qubit q.
    let mut output: Vec<Option<Gate>> = Vec::with_capacity(gates.len());
    let mut last_touch: Vec<Option<usize>> = vec![None; num_qubits];
    for gate in gates {
        let qubits = gate.qubits();
        // Find the unique previous gate touching any of this gate's qubits,
        // if all those qubits last saw the *same* gate (otherwise something
        // interferes and no rewrite is safe).
        let previous: Option<usize> = {
            let indices: Vec<Option<usize>> = qubits.iter().map(|&q| last_touch[q]).collect();
            match indices.first() {
                Some(&first) if indices.iter().all(|&i| i == first) => first,
                _ => None,
            }
        };
        if let Some(index) = previous {
            if let Some(prev_gate) = output[index].clone() {
                let same_operands = prev_gate.qubits() == qubits;
                if same_operands {
                    if prev_gate.inverse().as_ref() == Some(gate) {
                        // Cancel the pair.
                        output[index] = None;
                        for &q in &qubits {
                            last_touch[q] = None;
                        }
                        stats.cancelled += 2;
                        continue;
                    }
                    if let Some(merged) = merge_phases(&prev_gate, gate) {
                        output[index] = Some(merged);
                        stats.merged += 1;
                        continue;
                    }
                }
            }
        }
        let index = output.len();
        output.push(Some(gate.clone()));
        for q in qubits {
            last_touch[q] = Some(index);
        }
    }
    (output.into_iter().flatten().collect(), stats)
}

/// Optimises `circuit` by repeatedly applying the rewrite rules until no more
/// apply, returning the optimised circuit and cumulative statistics.
pub fn optimize(circuit: &Circuit) -> (Circuit, OptimizeStats) {
    let mut gates: Vec<Gate> = circuit.gates().to_vec();
    let mut total = OptimizeStats::default();
    loop {
        let (next, stats) = one_pass(&gates, circuit.num_qubits());
        total.cancelled += stats.cancelled;
        total.merged += stats.merged;
        let changed = next.len() != gates.len() || stats.merged > 0;
        gates = next;
        if !changed {
            break;
        }
    }
    let mut optimized = Circuit::new(circuit.num_qubits());
    optimized.extend(gates);
    (optimized, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancels_adjacent_self_inverse_pairs() {
        let mut c = Circuit::new(2);
        c.h(0).h(0).x(1).cx(0, 1).cx(0, 1).x(1);
        let (optimized, stats) = optimize(&c);
        assert!(optimized.is_empty(), "{optimized}");
        assert_eq!(stats.cancelled, 6);
    }

    #[test]
    fn cancels_dagger_pairs_and_merges_phases() {
        let mut c = Circuit::new(1);
        c.s(0).sdg(0).t(0).t(0).t(0).t(0);
        let (optimized, stats) = optimize(&c);
        // S·S† cancels; T·T → S twice, then S·S → Z.
        assert_eq!(optimized.gates(), &[Gate::Z(0)]);
        assert!(stats.cancelled >= 2);
        assert!(stats.merged >= 3);
    }

    #[test]
    fn does_not_cancel_across_interfering_gates() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).h(0);
        let (optimized, _) = optimize(&c);
        assert_eq!(optimized.len(), 3, "the CNOT blocks the cancellation");

        let mut d = Circuit::new(2);
        d.cx(0, 1).x(0).cx(0, 1);
        let (optimized, _) = optimize(&d);
        assert_eq!(optimized.len(), 3, "the X on the control interferes");
    }

    #[test]
    fn does_not_confuse_gates_with_different_operands() {
        let mut c = Circuit::new(3);
        c.cx(0, 1).cx(1, 0);
        let (optimized, _) = optimize(&c);
        assert_eq!(optimized.len(), 2);
        let mut d = Circuit::new(3);
        d.ccx(0, 1, 2).ccx(1, 0, 2);
        let (optimized_d, _) = optimize(&d);
        // Control lists [0,1] and [1,0] describe the same operation but with
        // different operand order; the conservative pass keeps them.
        assert_eq!(optimized_d.len(), 2);
    }

    #[test]
    fn rx_pairs_are_left_alone() {
        // Rx(π/2) is not self-inverse and has no inverse in the gate set.
        let mut c = Circuit::new(1);
        c.rx_pi2(0).rx_pi2(0);
        let (optimized, stats) = optimize(&c);
        assert_eq!(optimized.len(), 2);
        assert_eq!(stats, OptimizeStats::default());
    }
}
