//! A parser and writer for the RevLib `.real` reversible-circuit format.
//!
//! The paper's second benchmark set consists of RevLib circuits; this module
//! lets real `.real` files be used directly and is also used by the
//! RevLib-like workload generator to serialise its synthetic circuits.
//!
//! Supported gate lines: `t1 a` (NOT), `t2 a b` (CNOT), `tN c… t`
//! (multi-controlled Toffoli), `f2 a b` (SWAP) and `fN c… a b`
//! (multi-controlled Fredkin).

use crate::circuit::Circuit;
use crate::error::ParseError;
use crate::gate::Gate;
use std::collections::BTreeMap;

/// Metadata carried by a `.real` file in addition to the gate list.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RealMetadata {
    /// Variable (line) names in declaration order.
    pub variables: Vec<String>,
    /// Constant input values per variable: `Some(bit)` for constant inputs,
    /// `None` for free (primary) inputs.
    pub constants: Vec<Option<bool>>,
    /// Garbage flags per variable (outputs that are not observed).
    pub garbage: Vec<bool>,
}

impl RealMetadata {
    /// Indices of inputs whose initial value is unspecified ("free" inputs).
    ///
    /// The paper's Table IV modification inserts an H gate on exactly these
    /// qubits to create an initial superposition.
    pub fn free_inputs(&self) -> Vec<usize> {
        self.constants
            .iter()
            .enumerate()
            .filter_map(|(i, c)| if c.is_none() { Some(i) } else { None })
            .collect()
    }
}

/// The result of parsing a `.real` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RealCircuit {
    /// The reversible circuit as a gate list.
    pub circuit: Circuit,
    /// Declared metadata.
    pub metadata: RealMetadata,
}

/// Parses RevLib `.real` text.
///
/// # Errors
///
/// Returns a [`ParseError`] for malformed headers, unknown gate kinds
/// (e.g. the controlled-√X `v` gates, which are outside the paper's gate
/// set), or references to undeclared variables.
pub fn parse(source: &str) -> Result<RealCircuit, ParseError> {
    let mut num_vars: Option<usize> = None;
    let mut names: Vec<String> = Vec::new();
    let mut name_to_index: BTreeMap<String, usize> = BTreeMap::new();
    let mut constants: Vec<Option<bool>> = Vec::new();
    let mut garbage: Vec<bool> = Vec::new();
    let mut gates: Vec<Gate> = Vec::new();
    let mut in_body = false;

    for (line_no, raw) in source.lines().enumerate() {
        let line_no = line_no + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('.') {
            let mut parts = rest.split_whitespace();
            let key = parts.next().unwrap_or("").to_ascii_lowercase();
            match key.as_str() {
                "version" | "inputs" | "outputs" | "inputbus" | "outputbus" | "state"
                | "module" => {}
                "numvars" => {
                    let n: usize = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| ParseError::new(line_no, "bad .numvars"))?;
                    num_vars = Some(n);
                }
                "variables" => {
                    for (i, name) in parts.enumerate() {
                        name_to_index.insert(name.to_string(), i);
                        names.push(name.to_string());
                    }
                }
                "constants" => {
                    let spec = parts.next().unwrap_or("");
                    constants = spec
                        .chars()
                        .map(|c| match c {
                            '0' => Some(false),
                            '1' => Some(true),
                            _ => None,
                        })
                        .collect();
                }
                "garbage" => {
                    let spec = parts.next().unwrap_or("");
                    garbage = spec.chars().map(|c| c == '1').collect();
                }
                "begin" => in_body = true,
                "end" => in_body = false,
                other => {
                    return Err(ParseError::new(
                        line_no,
                        format!("unknown directive `.{other}`"),
                    ))
                }
            }
            continue;
        }
        if !in_body {
            return Err(ParseError::new(
                line_no,
                format!("gate line `{line}` outside .begin/.end"),
            ));
        }
        gates.push(parse_gate_line(line, line_no, &name_to_index)?);
    }

    let n = num_vars.unwrap_or(names.len());
    if n == 0 {
        return Err(ParseError::new(0, "missing .numvars / .variables header"));
    }
    if names.is_empty() {
        // Synthesise names x0..x{n-1} when .variables is absent.
        for i in 0..n {
            names.push(format!("x{i}"));
        }
    }
    constants.resize(n, None);
    garbage.resize(n, false);

    let mut circuit = Circuit::new(n);
    circuit.extend(gates);
    Ok(RealCircuit {
        circuit,
        metadata: RealMetadata {
            variables: names,
            constants,
            garbage,
        },
    })
}

fn parse_gate_line(
    line: &str,
    line_no: usize,
    names: &BTreeMap<String, usize>,
) -> Result<Gate, ParseError> {
    let mut parts = line.split_whitespace();
    let kind = parts.next().unwrap_or("").to_ascii_lowercase();
    let operands: Vec<usize> = parts
        .map(|name| {
            names
                .get(name)
                .copied()
                .ok_or_else(|| ParseError::new(line_no, format!("unknown variable `{name}`")))
        })
        .collect::<Result<_, _>>()?;

    let expect_arity = |k: &str| -> Result<usize, ParseError> {
        k[1..]
            .parse::<usize>()
            .map_err(|_| ParseError::new(line_no, format!("bad gate kind `{k}`")))
    };

    if let Some(stripped) = kind.strip_prefix('t') {
        if stripped.is_empty() {
            return Err(ParseError::new(line_no, "bare `t` gate line"));
        }
        let arity = expect_arity(&kind)?;
        if operands.len() != arity {
            return Err(ParseError::new(
                line_no,
                format!("`{kind}` expects {arity} operands, got {}", operands.len()),
            ));
        }
        let (controls, target) = operands.split_at(arity - 1);
        // Canonicalise the small cases to their dedicated gate variants so
        // that emit → parse round-trips structurally.
        return Ok(match controls.len() {
            0 => Gate::X(target[0]),
            1 => Gate::Cnot {
                control: controls[0],
                target: target[0],
            },
            _ => Gate::Toffoli {
                controls: controls.to_vec(),
                target: target[0],
            },
        });
    }
    if kind.starts_with('f') {
        let arity = expect_arity(&kind)?;
        if operands.len() != arity || arity < 2 {
            return Err(ParseError::new(
                line_no,
                format!(
                    "`{kind}` expects {arity} (≥2) operands, got {}",
                    operands.len()
                ),
            ));
        }
        let (controls, targets) = operands.split_at(arity - 2);
        return Ok(Gate::Fredkin {
            controls: controls.to_vec(),
            target1: targets[0],
            target2: targets[1],
        });
    }
    Err(ParseError::new(
        line_no,
        format!(
            "unsupported RevLib gate kind `{kind}` (only t*/f* lines are in the paper's gate set)"
        ),
    ))
}

/// Serialises a reversible circuit (Toffoli/Fredkin family gates only) as
/// `.real` text.
///
/// # Errors
///
/// Returns a [`ParseError`] (with line 0) if the circuit contains gates the
/// format cannot express, e.g. Hadamard.
pub fn emit(circuit: &Circuit, metadata: &RealMetadata) -> Result<String, ParseError> {
    let n = circuit.num_qubits();
    let names: Vec<String> = if metadata.variables.len() == n {
        metadata.variables.clone()
    } else {
        (0..n).map(|i| format!("x{i}")).collect()
    };
    let mut out = String::new();
    out.push_str(".version 2.0\n");
    out.push_str(&format!(".numvars {n}\n"));
    out.push_str(&format!(".variables {}\n", names.join(" ")));
    let constants: String = metadata
        .constants
        .iter()
        .chain(std::iter::repeat(&None))
        .take(n)
        .map(|c| match c {
            Some(false) => '0',
            Some(true) => '1',
            None => '-',
        })
        .collect();
    out.push_str(&format!(".constants {constants}\n"));
    let garbage: String = metadata
        .garbage
        .iter()
        .chain(std::iter::repeat(&false))
        .take(n)
        .map(|g| if *g { '1' } else { '-' })
        .collect();
    out.push_str(&format!(".garbage {garbage}\n"));
    out.push_str(".begin\n");
    for gate in circuit.iter() {
        match gate {
            Gate::X(t) => out.push_str(&format!("t1 {}\n", names[*t])),
            Gate::Cnot { control, target } => {
                out.push_str(&format!("t2 {} {}\n", names[*control], names[*target]))
            }
            Gate::Toffoli { controls, target } => {
                let ops: Vec<&str> = controls
                    .iter()
                    .chain(std::iter::once(target))
                    .map(|q| names[*q].as_str())
                    .collect();
                out.push_str(&format!("t{} {}\n", ops.len(), ops.join(" ")));
            }
            Gate::Fredkin {
                controls,
                target1,
                target2,
            } => {
                let ops: Vec<&str> = controls
                    .iter()
                    .chain([target1, target2])
                    .map(|q| names[*q].as_str())
                    .collect();
                out.push_str(&format!("f{} {}\n", ops.len(), ops.join(" ")));
            }
            other => {
                return Err(ParseError::new(
                    0,
                    format!("gate `{other}` cannot be expressed in .real format"),
                ))
            }
        }
    }
    out.push_str(".end\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# a tiny adder-like circuit
.version 2.0
.numvars 4
.variables a b c d
.inputs a b c d
.outputs a b c d
.constants --0-
.garbage ---1
.begin
t1 a
t2 a b
t3 a b c
f3 a c d
.end
"#;

    #[test]
    fn parses_header_and_gates() {
        let parsed = parse(SAMPLE).expect("valid file");
        assert_eq!(parsed.circuit.num_qubits(), 4);
        assert_eq!(
            parsed.circuit.gates(),
            &[
                Gate::X(0),
                Gate::Cnot {
                    control: 0,
                    target: 1
                },
                Gate::Toffoli {
                    controls: vec![0, 1],
                    target: 2
                },
                Gate::Fredkin {
                    controls: vec![0],
                    target1: 2,
                    target2: 3
                },
            ]
        );
        assert_eq!(
            parsed.metadata.constants,
            vec![None, None, Some(false), None]
        );
        assert_eq!(parsed.metadata.free_inputs(), vec![0, 1, 3]);
        assert_eq!(parsed.metadata.garbage, vec![false, false, false, true]);
    }

    #[test]
    fn rejects_v_gates_and_unknown_variables() {
        let bad = ".numvars 2\n.variables a b\n.begin\nv a b\n.end\n";
        assert!(parse(bad).is_err());
        let bad2 = ".numvars 2\n.variables a b\n.begin\nt2 a z\n.end\n";
        assert!(parse(bad2).is_err());
    }

    #[test]
    fn emit_roundtrips() {
        let parsed = parse(SAMPLE).expect("valid file");
        let text = emit(&parsed.circuit, &parsed.metadata).expect("serialisable");
        let back = parse(&text).expect("round trip parses");
        assert_eq!(back.circuit, parsed.circuit);
        assert_eq!(back.metadata.constants, parsed.metadata.constants);
    }

    #[test]
    fn emit_rejects_non_reversible_gates() {
        let mut c = Circuit::new(1);
        c.h(0);
        assert!(emit(&c, &RealMetadata::default()).is_err());
    }

    #[test]
    fn missing_variables_are_synthesised() {
        let src = ".numvars 3\n.begin\n.end\n";
        let parsed = parse(src).expect("header only");
        assert_eq!(parsed.metadata.variables, vec!["x0", "x1", "x2"]);
        assert!(parsed.circuit.is_empty());
    }
}
