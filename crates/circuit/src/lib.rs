//! # sliq-circuit
//!
//! The quantum circuit intermediate representation shared by every simulator
//! in the SliQ workspace:
//!
//! * [`Gate`] — the gate set of the paper's Table I (plus the documented
//!   S†/T† extensions),
//! * [`Circuit`] — an ordered gate list with a fluent builder, validation and
//!   analysis helpers,
//! * [`qasm`] — an OpenQASM 2.0 subset parser/writer,
//! * [`real`] — a RevLib `.real` parser/writer for reversible circuits,
//! * [`Simulator`] — the trait all backends implement, so benchmarks can
//!   drive them interchangeably.
//!
//! ```
//! use sliq_circuit::{Circuit, Gate};
//! let mut ghz = Circuit::new(3);
//! ghz.h(0).cx(0, 1).cx(1, 2);
//! assert!(ghz.is_clifford());
//! assert_eq!(ghz.depth(), 3);
//! assert_eq!(ghz.gates()[2], Gate::Cnot { control: 1, target: 2 });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circuit;
mod error;
mod gate;
pub mod optimize;
pub mod qasm;
pub mod real;
mod sim;

pub use circuit::Circuit;
pub use error::{CircuitError, ParseError, SimulationError};
pub use gate::Gate;
pub use optimize::{optimize, OptimizeStats};
pub use qasm::ParseLimits;
pub use real::{RealCircuit, RealMetadata};
pub use sim::Simulator;
