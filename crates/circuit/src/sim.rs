//! The common simulator interface implemented by every backend in the
//! workspace (bit-sliced BDD, dense state vector, QMDD, stabilizer tableau).
//!
//! The benchmark harness drives all backends through this trait so that a
//! single sweep definition reproduces each table of the paper for every
//! simulator.

use crate::circuit::Circuit;
use crate::error::SimulationError;
use crate::gate::Gate;

/// A quantum circuit simulator backend.
///
/// Query methods take `&mut self` because symbolic backends (BDD, QMDD) may
/// need to build auxiliary diagrams and update caches while answering.
pub trait Simulator {
    /// A short human-readable backend name (used in benchmark reports).
    fn name(&self) -> &'static str;

    /// The number of qubits the simulator was constructed with.
    fn num_qubits(&self) -> usize;

    /// Applies a single gate to the current state.
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError::UnsupportedGate`] if the backend cannot
    /// represent the gate, or [`SimulationError::ResourceLimit`] if a
    /// configured limit is exceeded.
    fn apply_gate(&mut self, gate: &Gate) -> Result<(), SimulationError>;

    /// Applies every gate of `circuit` in order.
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`Simulator::apply_gate`].
    fn run(&mut self, circuit: &Circuit) -> Result<(), SimulationError> {
        for gate in circuit.iter() {
            self.apply_gate(gate)?;
        }
        Ok(())
    }

    /// The probability of measuring `|1⟩` on `qubit` in the current state
    /// (without collapsing it).
    fn probability_of_one(&mut self, qubit: usize) -> f64;

    /// The probability of observing the full basis state `bits`
    /// (`bits[q]` is the value of qubit `q`).
    fn probability_of_basis_state(&mut self, bits: &[bool]) -> f64;

    /// Measures `qubit` in the computational basis using the supplied random
    /// value `u ∈ [0, 1)`, collapses the state and returns the outcome.
    fn measure_with(&mut self, qubit: usize, u: f64) -> bool;

    /// The sum of all outcome probabilities.  Exactly 1 for exact backends;
    /// floating point backends may drift, which is precisely the numerical
    /// error the paper's Table III/V "error" columns report.
    ///
    /// The default implementation sums [`Simulator::probability_of_basis_state`]
    /// over every basis state, so it actually observes normalization drift —
    /// a `p0 + p1` shortcut over one qubit would be identically 1 and hide
    /// it.  The enumeration is exponential, so it is limited to 16 qubits;
    /// every real backend overrides this with a representation-native sum.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits() > 16` and the backend did not override.
    fn total_probability(&mut self) -> f64 {
        let n = self.num_qubits();
        assert!(
            n <= 16,
            "the default total_probability enumerates all 2^n basis states; \
             backends with more than 16 qubits must override it"
        );
        let mut total = 0.0;
        let mut bits = vec![false; n];
        for i in 0..(1usize << n) {
            for (q, bit) in bits.iter_mut().enumerate() {
                *bit = i >> q & 1 == 1;
            }
            total += self.probability_of_basis_state(&bits);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial classical backend used to exercise the trait's provided
    /// methods: it only supports X/CNOT/Toffoli on basis states.
    struct ClassicalSim {
        bits: Vec<bool>,
    }

    impl Simulator for ClassicalSim {
        fn name(&self) -> &'static str {
            "classical"
        }
        fn num_qubits(&self) -> usize {
            self.bits.len()
        }
        fn apply_gate(&mut self, gate: &Gate) -> Result<(), SimulationError> {
            match gate {
                Gate::X(q) => {
                    self.bits[*q] = !self.bits[*q];
                    Ok(())
                }
                Gate::Cnot { control, target } => {
                    if self.bits[*control] {
                        self.bits[*target] = !self.bits[*target];
                    }
                    Ok(())
                }
                Gate::Toffoli { controls, target } => {
                    if controls.iter().all(|c| self.bits[*c]) {
                        self.bits[*target] = !self.bits[*target];
                    }
                    Ok(())
                }
                other => Err(SimulationError::UnsupportedGate {
                    backend: "classical",
                    gate: other.to_string(),
                }),
            }
        }
        fn probability_of_one(&mut self, qubit: usize) -> f64 {
            if self.bits[qubit] {
                1.0
            } else {
                0.0
            }
        }
        fn probability_of_basis_state(&mut self, bits: &[bool]) -> f64 {
            if bits == self.bits.as_slice() {
                1.0
            } else {
                0.0
            }
        }
        fn measure_with(&mut self, qubit: usize, _u: f64) -> bool {
            self.bits[qubit]
        }
    }

    #[test]
    fn default_run_applies_all_gates() {
        let mut circuit = Circuit::new(3);
        circuit.x(0).cx(0, 1).ccx(0, 1, 2);
        let mut sim = ClassicalSim {
            bits: vec![false; 3],
        };
        sim.run(&circuit).expect("classical gates only");
        assert_eq!(sim.bits, vec![true, true, true]);
        assert_eq!(sim.probability_of_basis_state(&[true, true, true]), 1.0);
        assert_eq!(sim.total_probability(), 1.0);
    }

    #[test]
    fn default_run_stops_on_unsupported_gate() {
        let mut circuit = Circuit::new(1);
        circuit.h(0).x(0);
        let mut sim = ClassicalSim { bits: vec![false] };
        let err = sim.run(&circuit).unwrap_err();
        assert!(matches!(err, SimulationError::UnsupportedGate { .. }));
        // The X after the failing H must not have been applied.
        assert_eq!(sim.bits, vec![false]);
    }
}
