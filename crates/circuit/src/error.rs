//! Error types shared by the circuit IR, the parsers and the simulators.

use std::error::Error;
use std::fmt;

/// Errors arising while building or validating a circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// A gate references a qubit index that does not exist in the circuit.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: usize,
        /// The number of qubits in the circuit.
        num_qubits: usize,
        /// Position of the gate in the circuit.
        gate_index: usize,
    },
    /// A gate uses the same qubit for two different operands.
    DuplicateOperands {
        /// Position of the gate in the circuit.
        gate_index: usize,
        /// Human-readable gate description.
        gate: String,
    },
    /// A gate has no inverse within the supported gate set.
    NotInvertible {
        /// Human-readable gate description.
        gate: String,
    },
    /// A dynamic operation references a classical bit outside the circuit's
    /// classical register.
    ClbitOutOfRange {
        /// The offending classical bit index.
        clbit: usize,
        /// The number of classical bits in the circuit.
        num_clbits: usize,
        /// Position of the gate in the circuit.
        gate_index: usize,
    },
    /// A classically-conditioned gate is malformed: zero-width condition,
    /// width above 64 bits, a value that does not fit the width, or a nested
    /// dynamic operation in the body.
    InvalidConditional {
        /// Position of the gate in the circuit.
        gate_index: usize,
        /// What is wrong with it.
        detail: String,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange {
                qubit,
                num_qubits,
                gate_index,
            } => write!(
                f,
                "gate {gate_index} references qubit {qubit} but the circuit has {num_qubits} qubits"
            ),
            CircuitError::DuplicateOperands { gate_index, gate } => {
                write!(f, "gate {gate_index} ({gate}) uses a qubit twice")
            }
            CircuitError::NotInvertible { gate } => {
                write!(f, "gate {gate} has no inverse in the supported gate set")
            }
            CircuitError::ClbitOutOfRange {
                clbit,
                num_clbits,
                gate_index,
            } => write!(
                f,
                "gate {gate_index} references classical bit {clbit} but the circuit has {num_clbits} classical bits"
            ),
            CircuitError::InvalidConditional { gate_index, detail } => {
                write!(f, "gate {gate_index} is an invalid conditional: {detail}")
            }
        }
    }
}

impl Error for CircuitError {}

/// Errors arising while parsing a circuit description.
///
/// Carries a structured source position (1-based line and column, 0 when
/// unknown) so service front-ends can report the offending token to remote
/// callers instead of a bare string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending input line (0 if not applicable).
    pub line: usize,
    /// 1-based column of the offending statement within the line (0 if not
    /// applicable).
    pub column: usize,
    /// Explanation of the problem.
    pub message: String,
}

impl ParseError {
    /// Creates a parse error for a given line (column unknown).
    pub fn new(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            column: 0,
            message: message.into(),
        }
    }

    /// Creates a parse error for a given line and column.
    pub fn at(line: usize, column: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            column,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.column > 0 {
            write!(
                f,
                "parse error at line {}, column {}: {}",
                self.line, self.column, self.message
            )
        } else {
            write!(f, "parse error at line {}: {}", self.line, self.message)
        }
    }
}

impl Error for ParseError {}

/// Errors reported by a simulator backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimulationError {
    /// The backend does not support this gate (e.g. T on the stabilizer
    /// simulator).
    UnsupportedGate {
        /// Which backend rejected the gate.
        backend: &'static str,
        /// Human-readable gate description.
        gate: String,
    },
    /// The circuit failed validation before simulation started.
    InvalidCircuit(CircuitError),
    /// A configured resource limit (nodes, amplitudes, time) was exceeded.
    ResourceLimit {
        /// Which backend hit the limit.
        backend: &'static str,
        /// Description of the limit.
        detail: String,
    },
    /// A configured memory budget was exceeded.  Unlike
    /// [`SimulationError::ResourceLimit`] this carries the byte counts so
    /// harnesses can report the overshoot as a memory-out row, and the
    /// backend guarantees the state is still queryable (and restorable to a
    /// pre-limit snapshot) after returning it.
    CapacityExceeded {
        /// Which backend hit the budget.
        backend: &'static str,
        /// Bytes in use when the budget check fired.
        used_bytes: usize,
        /// The configured budget.
        limit_bytes: usize,
    },
}

impl fmt::Display for SimulationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimulationError::UnsupportedGate { backend, gate } => {
                write!(f, "{backend} does not support gate {gate}")
            }
            SimulationError::InvalidCircuit(e) => write!(f, "invalid circuit: {e}"),
            SimulationError::ResourceLimit { backend, detail } => {
                write!(f, "{backend} exceeded a resource limit: {detail}")
            }
            SimulationError::CapacityExceeded {
                backend,
                used_bytes,
                limit_bytes,
            } => write!(
                f,
                "{backend} exceeded its memory budget: {used_bytes} bytes in use, limit {limit_bytes}"
            ),
        }
    }
}

impl Error for SimulationError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimulationError::InvalidCircuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CircuitError> for SimulationError {
    fn from(value: CircuitError) -> Self {
        SimulationError::InvalidCircuit(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = CircuitError::QubitOutOfRange {
            qubit: 9,
            num_qubits: 4,
            gate_index: 2,
        };
        assert!(e.to_string().contains("qubit 9"));
        assert!(e.to_string().contains("4 qubits"));
        let p = ParseError::new(7, "unknown gate `foo`");
        assert!(p.to_string().contains("line 7"));
        let s = SimulationError::UnsupportedGate {
            backend: "stabilizer",
            gate: "t q[0]".into(),
        };
        assert!(s.to_string().contains("stabilizer"));
        let c = CircuitError::ClbitOutOfRange {
            clbit: 3,
            num_clbits: 2,
            gate_index: 1,
        };
        assert!(c.to_string().contains("classical bit 3"));
        let i = CircuitError::InvalidConditional {
            gate_index: 0,
            detail: "condition width 0".into(),
        };
        assert!(i.to_string().contains("invalid conditional"));
    }

    #[test]
    fn simulation_error_wraps_circuit_error() {
        let inner = CircuitError::DuplicateOperands {
            gate_index: 0,
            gate: "cx q[1], q[1]".into(),
        };
        let outer: SimulationError = inner.clone().into();
        assert_eq!(outer, SimulationError::InvalidCircuit(inner));
        assert!(std::error::Error::source(&outer).is_some());
    }
}
