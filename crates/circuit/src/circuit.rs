//! The circuit intermediate representation and its builder API.

use crate::error::CircuitError;
use crate::gate::Gate;
use std::collections::BTreeMap;
use std::fmt;

/// A quantum circuit: a number of qubits and an ordered list of gates.
///
/// The builder methods return `&mut Self` so circuits can be written fluently:
///
/// ```
/// use sliq_circuit::Circuit;
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// assert_eq!(bell.len(), 2);
/// assert!(bell.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Circuit {
    num_qubits: usize,
    num_clbits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits (and no classical
    /// bits — see [`Circuit::with_clbits`]).
    pub fn new(num_qubits: usize) -> Self {
        Self {
            num_qubits,
            num_clbits: 0,
            gates: Vec::new(),
        }
    }

    /// Creates an empty circuit over `num_qubits` qubits and `num_clbits`
    /// classical bits (the measurement/feed-forward register).
    pub fn with_clbits(num_qubits: usize, num_clbits: usize) -> Self {
        Self {
            num_qubits,
            num_clbits,
            gates: Vec::new(),
        }
    }

    /// The number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The number of classical bits.
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// Grows the classical register to at least `num_clbits` bits.
    pub fn ensure_clbits(&mut self, num_clbits: usize) -> &mut Self {
        self.num_clbits = self.num_clbits.max(num_clbits);
        self
    }

    /// The number of gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Returns `true` if the circuit contains no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gate list.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Iterates over the gates in application order.
    pub fn iter(&self) -> std::slice::Iter<'_, Gate> {
        self.gates.iter()
    }

    /// Appends a gate.
    pub fn push(&mut self, gate: Gate) -> &mut Self {
        self.gates.push(gate);
        self
    }

    /// Appends all gates of `other` (which must act on at most as many
    /// qubits as `self`).  The classical register grows to cover both.
    pub fn append(&mut self, other: &Circuit) -> &mut Self {
        debug_assert!(other.num_qubits <= self.num_qubits);
        self.num_clbits = self.num_clbits.max(other.num_clbits);
        self.gates.extend_from_slice(&other.gates);
        self
    }

    // ------------------------------------------------------------------ //
    // Fluent builders, one per supported gate.
    // ------------------------------------------------------------------ //

    /// Pauli-X.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.push(Gate::X(q))
    }

    /// Pauli-Y.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Y(q))
    }

    /// Pauli-Z.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Z(q))
    }

    /// Hadamard.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.push(Gate::H(q))
    }

    /// Phase gate S.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.push(Gate::S(q))
    }

    /// Inverse phase gate S†.
    pub fn sdg(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Sdg(q))
    }

    /// T gate.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.push(Gate::T(q))
    }

    /// Inverse T gate T†.
    pub fn tdg(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Tdg(q))
    }

    /// X-axis π/2 rotation.
    pub fn rx_pi2(&mut self, q: usize) -> &mut Self {
        self.push(Gate::RxPi2(q))
    }

    /// Y-axis π/2 rotation.
    pub fn ry_pi2(&mut self, q: usize) -> &mut Self {
        self.push(Gate::RyPi2(q))
    }

    /// Controlled-NOT.
    pub fn cx(&mut self, control: usize, target: usize) -> &mut Self {
        self.push(Gate::Cnot { control, target })
    }

    /// Controlled-Z.
    pub fn cz(&mut self, control: usize, target: usize) -> &mut Self {
        self.push(Gate::Cz { control, target })
    }

    /// Toffoli (doubly-controlled X).
    pub fn ccx(&mut self, c0: usize, c1: usize, target: usize) -> &mut Self {
        self.push(Gate::Toffoli {
            controls: vec![c0, c1],
            target,
        })
    }

    /// Multi-controlled X with an arbitrary number of controls.
    pub fn mcx(&mut self, controls: Vec<usize>, target: usize) -> &mut Self {
        self.push(Gate::Toffoli { controls, target })
    }

    /// Fredkin (controlled SWAP).
    pub fn cswap(&mut self, control: usize, target1: usize, target2: usize) -> &mut Self {
        self.push(Gate::Fredkin {
            controls: vec![control],
            target1,
            target2,
        })
    }

    /// Multi-controlled SWAP with an arbitrary number of controls.
    pub fn mcswap(&mut self, controls: Vec<usize>, target1: usize, target2: usize) -> &mut Self {
        self.push(Gate::Fredkin {
            controls,
            target1,
            target2,
        })
    }

    /// Unconditional SWAP (a Fredkin gate with no controls).
    pub fn swap(&mut self, target1: usize, target2: usize) -> &mut Self {
        self.push(Gate::Fredkin {
            controls: Vec::new(),
            target1,
            target2,
        })
    }

    /// Mid-circuit measurement of `qubit` into classical bit `clbit`
    /// (growing the classical register if needed).
    pub fn measure(&mut self, qubit: usize, clbit: usize) -> &mut Self {
        self.ensure_clbits(clbit + 1);
        self.push(Gate::Measure { qubit, clbit })
    }

    /// Reset of `qubit` to |0⟩.
    pub fn reset(&mut self, qubit: usize) -> &mut Self {
        self.push(Gate::Reset { qubit })
    }

    /// Classical feed-forward: apply `gate` iff clbits
    /// `offset..offset + width` equal `value` (growing the classical
    /// register if needed).
    pub fn conditional(
        &mut self,
        offset: usize,
        width: usize,
        value: u64,
        gate: Gate,
    ) -> &mut Self {
        self.ensure_clbits(offset + width);
        self.push(Gate::Conditional {
            offset,
            width,
            value,
            gate: Box::new(gate),
        })
    }

    /// Shorthand for a single-bit condition: apply `gate` iff `clbit` is 1.
    pub fn if_bit(&mut self, clbit: usize, gate: Gate) -> &mut Self {
        self.conditional(clbit, 1, 1, gate)
    }

    // ------------------------------------------------------------------ //
    // Analysis
    // ------------------------------------------------------------------ //

    /// Checks that every gate addresses existing, distinct qubits, that
    /// dynamic operations stay inside the classical register, and that
    /// conditionals are well-formed.
    ///
    /// # Errors
    ///
    /// Returns the first [`CircuitError`] encountered, if any.
    pub fn validate(&self) -> Result<(), CircuitError> {
        for (i, gate) in self.gates.iter().enumerate() {
            for q in gate.qubits() {
                if q >= self.num_qubits {
                    return Err(CircuitError::QubitOutOfRange {
                        qubit: q,
                        num_qubits: self.num_qubits,
                        gate_index: i,
                    });
                }
            }
            if !gate.operands_distinct() {
                return Err(CircuitError::DuplicateOperands {
                    gate_index: i,
                    gate: gate.to_string(),
                });
            }
            if let Gate::Conditional {
                width,
                value,
                gate: inner,
                ..
            } = gate
            {
                if *width == 0 || *width > 64 {
                    return Err(CircuitError::InvalidConditional {
                        gate_index: i,
                        detail: format!("condition width {width} is outside 1..=64"),
                    });
                }
                if *width < 64 && value >> width != 0 {
                    return Err(CircuitError::InvalidConditional {
                        gate_index: i,
                        detail: format!("value {value} does not fit in {width} bits"),
                    });
                }
                if inner.is_dynamic() {
                    return Err(CircuitError::InvalidConditional {
                        gate_index: i,
                        detail: format!("conditioned body `{inner}` is itself dynamic"),
                    });
                }
            }
            if let Some((offset, width)) = gate.clbit_range() {
                let end = offset.saturating_add(width);
                if end > self.num_clbits {
                    return Err(CircuitError::ClbitOutOfRange {
                        clbit: end.saturating_sub(1),
                        num_clbits: self.num_clbits,
                        gate_index: i,
                    });
                }
            }
        }
        Ok(())
    }

    /// Number of gates per gate name.
    pub fn gate_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for g in &self.gates {
            *counts.entry(g.name()).or_insert(0) += 1;
        }
        counts
    }

    /// The number of T/T† gates (a common cost metric).
    pub fn t_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| matches!(g, Gate::T(_) | Gate::Tdg(_)))
            .count()
    }

    /// Returns `true` if every gate is a Clifford gate (simulatable by the
    /// stabilizer baseline).
    pub fn is_clifford(&self) -> bool {
        self.gates.iter().all(Gate::is_clifford)
    }

    /// Returns `true` if the circuit contains any dynamic operation
    /// (measurement, reset, or a classically-conditioned gate).
    pub fn is_dynamic(&self) -> bool {
        self.gates.iter().any(Gate::is_dynamic)
    }

    /// Circuit depth: the length of the longest chain of gates that share
    /// qubits (gates on disjoint qubits count as parallel).
    pub fn depth(&self) -> usize {
        let mut level_of_qubit = vec![0usize; self.num_qubits];
        let mut depth = 0;
        for gate in &self.gates {
            let level = gate
                .qubits()
                .iter()
                .map(|&q| level_of_qubit[q])
                .max()
                .unwrap_or(0)
                + 1;
            for q in gate.qubits() {
                level_of_qubit[q] = level;
            }
            depth = depth.max(level);
        }
        depth
    }

    /// The inverse circuit (gates reversed and individually inverted).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::NotInvertible`] if the circuit contains
    /// `Rx(π/2)` or `Ry(π/2)`, whose inverses fall outside the gate set.
    pub fn inverse(&self) -> Result<Circuit, CircuitError> {
        let mut inv = Circuit::with_clbits(self.num_qubits, self.num_clbits);
        for gate in self.gates.iter().rev() {
            match gate.inverse() {
                Some(g) => {
                    inv.push(g);
                }
                None => {
                    return Err(CircuitError::NotInvertible {
                        gate: gate.to_string(),
                    })
                }
            }
        }
        Ok(inv)
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit on {} qubits, {} gates:",
            self.num_qubits,
            self.len()
        )?;
        for g in &self.gates {
            writeln!(f, "  {g}")?;
        }
        Ok(())
    }
}

impl Extend<Gate> for Circuit {
    fn extend<T: IntoIterator<Item = Gate>>(&mut self, iter: T) {
        self.gates.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Gate;
    type IntoIter = std::slice::Iter<'a, Gate>;
    fn into_iter(self) -> Self::IntoIter {
        self.gates.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ghz(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 1..n {
            c.cx(q - 1, q);
        }
        c
    }

    #[test]
    fn builder_and_accessors() {
        let mut c = Circuit::new(3);
        c.h(0).t(1).ccx(0, 1, 2).swap(1, 2);
        assert_eq!(c.len(), 4);
        assert_eq!(c.num_qubits(), 3);
        assert!(!c.is_empty());
        assert_eq!(c.gates()[0], Gate::H(0));
        assert_eq!(c.iter().count(), 4);
    }

    #[test]
    fn validation_catches_bad_indices_and_duplicates() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 5);
        assert!(matches!(
            c.validate(),
            Err(CircuitError::QubitOutOfRange { qubit: 5, .. })
        ));
        let mut d = Circuit::new(2);
        d.cx(1, 1);
        assert!(matches!(
            d.validate(),
            Err(CircuitError::DuplicateOperands { .. })
        ));
        assert!(ghz(5).validate().is_ok());
    }

    #[test]
    fn gate_counts_and_t_count() {
        let mut c = Circuit::new(2);
        c.h(0).t(0).t(1).tdg(0).cx(0, 1);
        let counts = c.gate_counts();
        assert_eq!(counts["t"], 2);
        assert_eq!(counts["tdg"], 1);
        assert_eq!(counts["cx"], 1);
        assert_eq!(c.t_count(), 3);
    }

    #[test]
    fn clifford_detection() {
        assert!(ghz(4).is_clifford());
        let mut c = ghz(4);
        c.t(2);
        assert!(!c.is_clifford());
    }

    #[test]
    fn depth_counts_parallel_gates_once() {
        let mut c = Circuit::new(4);
        c.h(0).h(1).h(2).h(3); // all parallel
        assert_eq!(c.depth(), 1);
        c.cx(0, 1).cx(2, 3); // still parallel with each other
        assert_eq!(c.depth(), 2);
        c.cx(1, 2); // serialises
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn inverse_reverses_and_daggers() {
        let mut c = Circuit::new(2);
        c.h(0).s(0).t(1).cx(0, 1);
        let inv = c.inverse().expect("invertible");
        assert_eq!(
            inv.gates(),
            &[
                Gate::Cnot {
                    control: 0,
                    target: 1
                },
                Gate::Tdg(1),
                Gate::Sdg(0),
                Gate::H(0),
            ]
        );
        let mut with_rx = Circuit::new(1);
        with_rx.rx_pi2(0);
        assert!(with_rx.inverse().is_err());
    }

    #[test]
    fn append_and_extend() {
        let mut c = ghz(3);
        let mut d = Circuit::new(3);
        d.t(2);
        c.append(&d);
        assert_eq!(c.len(), 4);
        c.extend(vec![Gate::X(0), Gate::Z(1)]);
        assert_eq!(c.len(), 6);
    }

    #[test]
    fn display_lists_gates() {
        let text = ghz(2).to_string();
        assert!(text.contains("h q[0]"));
        assert!(text.contains("cx q[0], q[1]"));
    }

    #[test]
    fn dynamic_builders_grow_the_classical_register() {
        let mut c = Circuit::new(2);
        c.h(0).measure(0, 1).if_bit(1, Gate::X(1)).reset(0);
        assert_eq!(c.num_clbits(), 2);
        assert!(c.is_dynamic());
        assert!(c.validate().is_ok());
        assert!(!ghz(2).is_dynamic());
        let mut d = Circuit::new(3);
        d.append(&c);
        assert_eq!(d.num_clbits(), 2);
    }

    #[test]
    fn validation_catches_bad_clbits_and_conditionals() {
        let mut c = Circuit::with_clbits(2, 1);
        c.push(Gate::Measure { qubit: 0, clbit: 4 });
        assert!(matches!(
            c.validate(),
            Err(CircuitError::ClbitOutOfRange { clbit: 4, .. })
        ));

        let mut zero_width = Circuit::with_clbits(1, 1);
        zero_width.push(Gate::Conditional {
            offset: 0,
            width: 0,
            value: 0,
            gate: Box::new(Gate::X(0)),
        });
        assert!(matches!(
            zero_width.validate(),
            Err(CircuitError::InvalidConditional { .. })
        ));

        let mut oversized_value = Circuit::with_clbits(1, 2);
        oversized_value.push(Gate::Conditional {
            offset: 0,
            width: 2,
            value: 5,
            gate: Box::new(Gate::X(0)),
        });
        assert!(matches!(
            oversized_value.validate(),
            Err(CircuitError::InvalidConditional { .. })
        ));

        let mut nested = Circuit::with_clbits(1, 1);
        nested.push(Gate::Conditional {
            offset: 0,
            width: 1,
            value: 1,
            gate: Box::new(Gate::Reset { qubit: 0 }),
        });
        assert!(matches!(
            nested.validate(),
            Err(CircuitError::InvalidConditional { .. })
        ));

        // Conditional bodies still get qubit-range checking.
        let mut bad_qubit = Circuit::with_clbits(1, 1);
        bad_qubit.if_bit(0, Gate::X(7));
        assert!(matches!(
            bad_qubit.validate(),
            Err(CircuitError::QubitOutOfRange { qubit: 7, .. })
        ));
    }
}
