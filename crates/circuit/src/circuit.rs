//! The circuit intermediate representation and its builder API.

use crate::error::CircuitError;
use crate::gate::Gate;
use std::collections::BTreeMap;
use std::fmt;

/// A quantum circuit: a number of qubits and an ordered list of gates.
///
/// The builder methods return `&mut Self` so circuits can be written fluently:
///
/// ```
/// use sliq_circuit::Circuit;
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// assert_eq!(bell.len(), 2);
/// assert!(bell.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Circuit {
    num_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Self {
            num_qubits,
            gates: Vec::new(),
        }
    }

    /// The number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The number of gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Returns `true` if the circuit contains no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gate list.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Iterates over the gates in application order.
    pub fn iter(&self) -> std::slice::Iter<'_, Gate> {
        self.gates.iter()
    }

    /// Appends a gate.
    pub fn push(&mut self, gate: Gate) -> &mut Self {
        self.gates.push(gate);
        self
    }

    /// Appends all gates of `other` (which must act on at most as many
    /// qubits as `self`).
    pub fn append(&mut self, other: &Circuit) -> &mut Self {
        debug_assert!(other.num_qubits <= self.num_qubits);
        self.gates.extend_from_slice(&other.gates);
        self
    }

    // ------------------------------------------------------------------ //
    // Fluent builders, one per supported gate.
    // ------------------------------------------------------------------ //

    /// Pauli-X.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.push(Gate::X(q))
    }

    /// Pauli-Y.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Y(q))
    }

    /// Pauli-Z.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Z(q))
    }

    /// Hadamard.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.push(Gate::H(q))
    }

    /// Phase gate S.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.push(Gate::S(q))
    }

    /// Inverse phase gate S†.
    pub fn sdg(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Sdg(q))
    }

    /// T gate.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.push(Gate::T(q))
    }

    /// Inverse T gate T†.
    pub fn tdg(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Tdg(q))
    }

    /// X-axis π/2 rotation.
    pub fn rx_pi2(&mut self, q: usize) -> &mut Self {
        self.push(Gate::RxPi2(q))
    }

    /// Y-axis π/2 rotation.
    pub fn ry_pi2(&mut self, q: usize) -> &mut Self {
        self.push(Gate::RyPi2(q))
    }

    /// Controlled-NOT.
    pub fn cx(&mut self, control: usize, target: usize) -> &mut Self {
        self.push(Gate::Cnot { control, target })
    }

    /// Controlled-Z.
    pub fn cz(&mut self, control: usize, target: usize) -> &mut Self {
        self.push(Gate::Cz { control, target })
    }

    /// Toffoli (doubly-controlled X).
    pub fn ccx(&mut self, c0: usize, c1: usize, target: usize) -> &mut Self {
        self.push(Gate::Toffoli {
            controls: vec![c0, c1],
            target,
        })
    }

    /// Multi-controlled X with an arbitrary number of controls.
    pub fn mcx(&mut self, controls: Vec<usize>, target: usize) -> &mut Self {
        self.push(Gate::Toffoli { controls, target })
    }

    /// Fredkin (controlled SWAP).
    pub fn cswap(&mut self, control: usize, target1: usize, target2: usize) -> &mut Self {
        self.push(Gate::Fredkin {
            controls: vec![control],
            target1,
            target2,
        })
    }

    /// Multi-controlled SWAP with an arbitrary number of controls.
    pub fn mcswap(&mut self, controls: Vec<usize>, target1: usize, target2: usize) -> &mut Self {
        self.push(Gate::Fredkin {
            controls,
            target1,
            target2,
        })
    }

    /// Unconditional SWAP (a Fredkin gate with no controls).
    pub fn swap(&mut self, target1: usize, target2: usize) -> &mut Self {
        self.push(Gate::Fredkin {
            controls: Vec::new(),
            target1,
            target2,
        })
    }

    // ------------------------------------------------------------------ //
    // Analysis
    // ------------------------------------------------------------------ //

    /// Checks that every gate addresses existing, distinct qubits.
    ///
    /// # Errors
    ///
    /// Returns the first [`CircuitError`] encountered, if any.
    pub fn validate(&self) -> Result<(), CircuitError> {
        for (i, gate) in self.gates.iter().enumerate() {
            for q in gate.qubits() {
                if q >= self.num_qubits {
                    return Err(CircuitError::QubitOutOfRange {
                        qubit: q,
                        num_qubits: self.num_qubits,
                        gate_index: i,
                    });
                }
            }
            if !gate.operands_distinct() {
                return Err(CircuitError::DuplicateOperands {
                    gate_index: i,
                    gate: gate.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Number of gates per gate name.
    pub fn gate_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for g in &self.gates {
            *counts.entry(g.name()).or_insert(0) += 1;
        }
        counts
    }

    /// The number of T/T† gates (a common cost metric).
    pub fn t_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| matches!(g, Gate::T(_) | Gate::Tdg(_)))
            .count()
    }

    /// Returns `true` if every gate is a Clifford gate (simulatable by the
    /// stabilizer baseline).
    pub fn is_clifford(&self) -> bool {
        self.gates.iter().all(Gate::is_clifford)
    }

    /// Circuit depth: the length of the longest chain of gates that share
    /// qubits (gates on disjoint qubits count as parallel).
    pub fn depth(&self) -> usize {
        let mut level_of_qubit = vec![0usize; self.num_qubits];
        let mut depth = 0;
        for gate in &self.gates {
            let level = gate
                .qubits()
                .iter()
                .map(|&q| level_of_qubit[q])
                .max()
                .unwrap_or(0)
                + 1;
            for q in gate.qubits() {
                level_of_qubit[q] = level;
            }
            depth = depth.max(level);
        }
        depth
    }

    /// The inverse circuit (gates reversed and individually inverted).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::NotInvertible`] if the circuit contains
    /// `Rx(π/2)` or `Ry(π/2)`, whose inverses fall outside the gate set.
    pub fn inverse(&self) -> Result<Circuit, CircuitError> {
        let mut inv = Circuit::new(self.num_qubits);
        for gate in self.gates.iter().rev() {
            match gate.inverse() {
                Some(g) => {
                    inv.push(g);
                }
                None => {
                    return Err(CircuitError::NotInvertible {
                        gate: gate.to_string(),
                    })
                }
            }
        }
        Ok(inv)
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit on {} qubits, {} gates:",
            self.num_qubits,
            self.len()
        )?;
        for g in &self.gates {
            writeln!(f, "  {g}")?;
        }
        Ok(())
    }
}

impl Extend<Gate> for Circuit {
    fn extend<T: IntoIterator<Item = Gate>>(&mut self, iter: T) {
        self.gates.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Gate;
    type IntoIter = std::slice::Iter<'a, Gate>;
    fn into_iter(self) -> Self::IntoIter {
        self.gates.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ghz(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 1..n {
            c.cx(q - 1, q);
        }
        c
    }

    #[test]
    fn builder_and_accessors() {
        let mut c = Circuit::new(3);
        c.h(0).t(1).ccx(0, 1, 2).swap(1, 2);
        assert_eq!(c.len(), 4);
        assert_eq!(c.num_qubits(), 3);
        assert!(!c.is_empty());
        assert_eq!(c.gates()[0], Gate::H(0));
        assert_eq!(c.iter().count(), 4);
    }

    #[test]
    fn validation_catches_bad_indices_and_duplicates() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 5);
        assert!(matches!(
            c.validate(),
            Err(CircuitError::QubitOutOfRange { qubit: 5, .. })
        ));
        let mut d = Circuit::new(2);
        d.cx(1, 1);
        assert!(matches!(
            d.validate(),
            Err(CircuitError::DuplicateOperands { .. })
        ));
        assert!(ghz(5).validate().is_ok());
    }

    #[test]
    fn gate_counts_and_t_count() {
        let mut c = Circuit::new(2);
        c.h(0).t(0).t(1).tdg(0).cx(0, 1);
        let counts = c.gate_counts();
        assert_eq!(counts["t"], 2);
        assert_eq!(counts["tdg"], 1);
        assert_eq!(counts["cx"], 1);
        assert_eq!(c.t_count(), 3);
    }

    #[test]
    fn clifford_detection() {
        assert!(ghz(4).is_clifford());
        let mut c = ghz(4);
        c.t(2);
        assert!(!c.is_clifford());
    }

    #[test]
    fn depth_counts_parallel_gates_once() {
        let mut c = Circuit::new(4);
        c.h(0).h(1).h(2).h(3); // all parallel
        assert_eq!(c.depth(), 1);
        c.cx(0, 1).cx(2, 3); // still parallel with each other
        assert_eq!(c.depth(), 2);
        c.cx(1, 2); // serialises
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn inverse_reverses_and_daggers() {
        let mut c = Circuit::new(2);
        c.h(0).s(0).t(1).cx(0, 1);
        let inv = c.inverse().expect("invertible");
        assert_eq!(
            inv.gates(),
            &[
                Gate::Cnot {
                    control: 0,
                    target: 1
                },
                Gate::Tdg(1),
                Gate::Sdg(0),
                Gate::H(0),
            ]
        );
        let mut with_rx = Circuit::new(1);
        with_rx.rx_pi2(0);
        assert!(with_rx.inverse().is_err());
    }

    #[test]
    fn append_and_extend() {
        let mut c = ghz(3);
        let mut d = Circuit::new(3);
        d.t(2);
        c.append(&d);
        assert_eq!(c.len(), 4);
        c.extend(vec![Gate::X(0), Gate::Z(1)]);
        assert_eq!(c.len(), 6);
    }

    #[test]
    fn display_lists_gates() {
        let text = ghz(2).to_string();
        assert!(text.contains("h q[0]"));
        assert!(text.contains("cx q[0], q[1]"));
    }
}
