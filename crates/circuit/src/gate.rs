//! The quantum gate library.
//!
//! The gate set is exactly Table I of the paper — a superset of both the
//! Clifford+T and the Toffoli+Hadamard universal gate sets — plus the
//! inverse phase gates S† and T† as documented extensions (their update rules
//! are the inverse permutations of S and T and they keep the algebraic
//! representation closed).

use std::fmt;

/// A quantum gate applied to specific qubits.
///
/// Qubit indices are zero-based.  Multi-controlled gates carry their full
/// control list; a [`Gate::Toffoli`] with zero controls degenerates to
/// [`Gate::X`] and a [`Gate::Fredkin`] with zero controls is a plain SWAP.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Gate {
    /// Pauli-X (NOT) on the target qubit.
    X(usize),
    /// Pauli-Y on the target qubit.
    Y(usize),
    /// Pauli-Z on the target qubit.
    Z(usize),
    /// Hadamard on the target qubit.
    H(usize),
    /// Phase gate S = diag(1, i).
    S(usize),
    /// Inverse phase gate S† = diag(1, −i) (extension).
    Sdg(usize),
    /// T gate = diag(1, ω) with ω = e^{iπ/4}.
    T(usize),
    /// Inverse T gate T† = diag(1, ω⁻¹) (extension).
    Tdg(usize),
    /// X-axis π/2 rotation, `Rx(π/2) = (1/√2)[[1, −i], [−i, 1]]`.
    RxPi2(usize),
    /// Y-axis π/2 rotation, `Ry(π/2) = (1/√2)[[1, −1], [1, 1]]`.
    RyPi2(usize),
    /// Controlled-NOT.
    Cnot {
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
    },
    /// Controlled-Z.
    Cz {
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
    },
    /// Multi-controlled X (Toffoli for two controls).
    Toffoli {
        /// Control qubits (any number, including zero or one).
        controls: Vec<usize>,
        /// Target qubit.
        target: usize,
    },
    /// Multi-controlled SWAP (Fredkin for one control).
    Fredkin {
        /// Control qubits (any number, including zero).
        controls: Vec<usize>,
        /// First swap target.
        target1: usize,
        /// Second swap target.
        target2: usize,
    },
    /// Mid-circuit computational-basis measurement: collapse `qubit` and
    /// record the outcome in classical bit `clbit`.
    Measure {
        /// Qubit to measure.
        qubit: usize,
        /// Classical bit receiving the outcome.
        clbit: usize,
    },
    /// Reset `qubit` to |0⟩ (measure, then flip on outcome 1).
    Reset {
        /// Qubit to reset.
        qubit: usize,
    },
    /// Classical feed-forward: apply `gate` iff the classical bits
    /// `offset..offset + width` (little-endian, bit `j` of `value` compared
    /// against clbit `offset + j`) currently equal `value`.
    Conditional {
        /// First classical bit of the condition register.
        offset: usize,
        /// Number of classical bits compared (1..=64).
        width: usize,
        /// The register value that enables the gate.
        value: u64,
        /// The conditioned gate (never itself dynamic).
        gate: Box<Gate>,
    },
}

impl Gate {
    /// A short lowercase mnemonic (matches the OpenQASM spelling where one
    /// exists).
    pub fn name(&self) -> &'static str {
        match self {
            Gate::X(_) => "x",
            Gate::Y(_) => "y",
            Gate::Z(_) => "z",
            Gate::H(_) => "h",
            Gate::S(_) => "s",
            Gate::Sdg(_) => "sdg",
            Gate::T(_) => "t",
            Gate::Tdg(_) => "tdg",
            Gate::RxPi2(_) => "rx_pi2",
            Gate::RyPi2(_) => "ry_pi2",
            Gate::Cnot { .. } => "cx",
            Gate::Cz { .. } => "cz",
            Gate::Toffoli { .. } => "ccx",
            Gate::Fredkin { .. } => "cswap",
            Gate::Measure { .. } => "measure",
            Gate::Reset { .. } => "reset",
            Gate::Conditional { .. } => "if",
        }
    }

    /// All qubits this gate touches (controls before targets).
    pub fn qubits(&self) -> Vec<usize> {
        match self {
            Gate::X(q)
            | Gate::Y(q)
            | Gate::Z(q)
            | Gate::H(q)
            | Gate::S(q)
            | Gate::Sdg(q)
            | Gate::T(q)
            | Gate::Tdg(q)
            | Gate::RxPi2(q)
            | Gate::RyPi2(q) => vec![*q],
            Gate::Cnot { control, target } | Gate::Cz { control, target } => {
                vec![*control, *target]
            }
            Gate::Toffoli { controls, target } => {
                let mut v = controls.clone();
                v.push(*target);
                v
            }
            Gate::Fredkin {
                controls,
                target1,
                target2,
            } => {
                let mut v = controls.clone();
                v.push(*target1);
                v.push(*target2);
                v
            }
            Gate::Measure { qubit, .. } | Gate::Reset { qubit } => vec![*qubit],
            Gate::Conditional { gate, .. } => gate.qubits(),
        }
    }

    /// The largest qubit index used by the gate.
    pub fn max_qubit(&self) -> usize {
        self.qubits().into_iter().max().unwrap_or(0)
    }

    /// Returns `true` if the gate belongs to the Clifford group (and can be
    /// simulated by the stabilizer baseline).
    ///
    /// Measurement and reset are Clifford operations (the tableau tracks
    /// collapse natively); a conditional is Clifford iff its body is.
    pub fn is_clifford(&self) -> bool {
        match self {
            Gate::X(_)
            | Gate::Y(_)
            | Gate::Z(_)
            | Gate::H(_)
            | Gate::S(_)
            | Gate::Sdg(_)
            | Gate::Cnot { .. }
            | Gate::Cz { .. }
            | Gate::Measure { .. }
            | Gate::Reset { .. } => true,
            Gate::Conditional { gate, .. } => gate.is_clifford(),
            _ => false,
        }
    }

    /// Returns `true` for the dynamic-circuit operations — measurement,
    /// reset, and classically-conditioned gates — which are interpreted by
    /// the executor rather than applied as unitaries by a backend.
    pub fn is_dynamic(&self) -> bool {
        matches!(
            self,
            Gate::Measure { .. } | Gate::Reset { .. } | Gate::Conditional { .. }
        )
    }

    /// The classical bits this operation reads or writes, as a
    /// `(offset, width)` range (`None` for purely quantum gates).
    pub fn clbit_range(&self) -> Option<(usize, usize)> {
        match self {
            Gate::Measure { clbit, .. } => Some((*clbit, 1)),
            Gate::Conditional { offset, width, .. } => Some((*offset, *width)),
            _ => None,
        }
    }

    /// Returns `true` if the gate matrix contains imaginary entries, i.e. the
    /// four bit-slice vector families become mutually dependent (see the
    /// discussion under Table II in the paper).
    pub fn involves_imaginary(&self) -> bool {
        match self {
            Gate::Y(_) | Gate::S(_) | Gate::Sdg(_) | Gate::T(_) | Gate::Tdg(_) | Gate::RxPi2(_) => {
                true
            }
            Gate::Conditional { gate, .. } => gate.involves_imaginary(),
            _ => false,
        }
    }

    /// Returns `true` if applying the gate multiplies the state by a `1/√2`
    /// factor (i.e. increments the algebraic `k` parameter).
    pub fn scales_by_inv_sqrt2(&self) -> bool {
        match self {
            Gate::H(_) | Gate::RxPi2(_) | Gate::RyPi2(_) => true,
            Gate::Conditional { gate, .. } => gate.scales_by_inv_sqrt2(),
            _ => false,
        }
    }

    /// The inverse gate, when it exists inside the supported set.
    ///
    /// `Rx(π/2)` and `Ry(π/2)` have inverses outside the supported gate set
    /// and return `None`; measurement, reset and conditionals are not
    /// unitary and have no inverse.
    pub fn inverse(&self) -> Option<Gate> {
        match self {
            Gate::S(q) => Some(Gate::Sdg(*q)),
            Gate::Sdg(q) => Some(Gate::S(*q)),
            Gate::T(q) => Some(Gate::Tdg(*q)),
            Gate::Tdg(q) => Some(Gate::T(*q)),
            Gate::RxPi2(_) | Gate::RyPi2(_) => None,
            Gate::Measure { .. } | Gate::Reset { .. } | Gate::Conditional { .. } => None,
            other => Some(other.clone()),
        }
    }

    /// Returns `true` if no two operand qubits coincide.
    pub fn operands_distinct(&self) -> bool {
        let mut qs = self.qubits();
        qs.sort_unstable();
        qs.windows(2).all(|w| w[0] != w[1])
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gate::Measure { qubit, clbit } => write!(f, "measure q[{qubit}] -> c[{clbit}]"),
            Gate::Reset { qubit } => write!(f, "reset q[{qubit}]"),
            Gate::Conditional {
                offset,
                width,
                value,
                gate,
            } => write!(f, "if (c[{offset}+:{width}]=={value}) {gate}"),
            _ => {
                let qs: Vec<String> = self.qubits().iter().map(|q| format!("q[{q}]")).collect();
                write!(f, "{} {}", self.name(), qs.join(", "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_lists() {
        assert_eq!(Gate::H(3).qubits(), vec![3]);
        assert_eq!(
            Gate::Cnot {
                control: 1,
                target: 4
            }
            .qubits(),
            vec![1, 4]
        );
        assert_eq!(
            Gate::Toffoli {
                controls: vec![0, 1, 2],
                target: 5
            }
            .qubits(),
            vec![0, 1, 2, 5]
        );
        assert_eq!(
            Gate::Fredkin {
                controls: vec![7],
                target1: 2,
                target2: 3
            }
            .max_qubit(),
            7
        );
    }

    #[test]
    fn clifford_classification() {
        assert!(Gate::H(0).is_clifford());
        assert!(Gate::Cz {
            control: 0,
            target: 1
        }
        .is_clifford());
        assert!(!Gate::T(0).is_clifford());
        assert!(!Gate::Toffoli {
            controls: vec![0, 1],
            target: 2
        }
        .is_clifford());
    }

    #[test]
    fn imaginary_and_scaling_flags_match_the_paper() {
        // "quantum gates Y, S, T, and Rx(π/2) involve imaginary parts"
        for g in [Gate::Y(0), Gate::S(0), Gate::T(0), Gate::RxPi2(0)] {
            assert!(g.involves_imaginary(), "{g}");
        }
        for g in [Gate::X(0), Gate::Z(0), Gate::H(0), Gate::RyPi2(0)] {
            assert!(!g.involves_imaginary(), "{g}");
        }
        // "k … incremented by 1 for Hadamard, Rx(π/2), and Ry(π/2)"
        for g in [Gate::H(0), Gate::RxPi2(0), Gate::RyPi2(0)] {
            assert!(g.scales_by_inv_sqrt2(), "{g}");
        }
        assert!(!Gate::S(0).scales_by_inv_sqrt2());
    }

    #[test]
    fn inverses() {
        assert_eq!(Gate::S(2).inverse(), Some(Gate::Sdg(2)));
        assert_eq!(Gate::Tdg(2).inverse(), Some(Gate::T(2)));
        assert_eq!(Gate::H(2).inverse(), Some(Gate::H(2)));
        assert_eq!(Gate::RxPi2(2).inverse(), None);
    }

    #[test]
    fn operand_distinctness() {
        assert!(Gate::Cnot {
            control: 0,
            target: 1
        }
        .operands_distinct());
        assert!(!Gate::Cnot {
            control: 1,
            target: 1
        }
        .operands_distinct());
        assert!(!Gate::Fredkin {
            controls: vec![2],
            target1: 2,
            target2: 3
        }
        .operands_distinct());
    }

    #[test]
    fn display_is_readable() {
        let g = Gate::Cnot {
            control: 0,
            target: 1,
        };
        assert_eq!(g.to_string(), "cx q[0], q[1]");
        assert_eq!(
            Gate::Measure { qubit: 0, clbit: 1 }.to_string(),
            "measure q[0] -> c[1]"
        );
        assert_eq!(Gate::Reset { qubit: 3 }.to_string(), "reset q[3]");
    }

    #[test]
    fn dynamic_operations_classify_and_delegate() {
        let m = Gate::Measure { qubit: 2, clbit: 0 };
        let r = Gate::Reset { qubit: 2 };
        let cond_x = Gate::Conditional {
            offset: 0,
            width: 1,
            value: 1,
            gate: Box::new(Gate::X(1)),
        };
        let cond_t = Gate::Conditional {
            offset: 0,
            width: 2,
            value: 3,
            gate: Box::new(Gate::T(1)),
        };
        for g in [&m, &r, &cond_x, &cond_t] {
            assert!(g.is_dynamic(), "{g}");
            assert_eq!(g.inverse(), None, "{g}");
        }
        assert!(!Gate::H(0).is_dynamic());
        // Measurement/reset are Clifford; a conditional is Clifford iff its
        // body is (so dynamic Clifford circuits route to the stabilizer).
        assert!(m.is_clifford() && r.is_clifford() && cond_x.is_clifford());
        assert!(!cond_t.is_clifford());
        assert!(cond_t.involves_imaginary() && !cond_x.involves_imaginary());
        assert_eq!(m.qubits(), vec![2]);
        assert_eq!(cond_x.qubits(), vec![1]);
        assert_eq!(m.clbit_range(), Some((0, 1)));
        assert_eq!(cond_t.clbit_range(), Some((0, 2)));
        assert_eq!(r.clbit_range(), None);
    }
}
