//! The complex-number table.
//!
//! QMDD-based simulators (DDSIM and its relatives) keep edge weights in a
//! global table and merge values that differ by less than a tolerance so that
//! structurally equal nodes hash to the same unique-table entry.  This
//! rounding is exactly the source of the numerical errors the paper reports
//! for DDSIM on deep circuits ("error" columns of Tables III and V), so the
//! mechanism is reproduced faithfully here.

use sliq_math::Complex;
use std::collections::HashMap;

/// Index of a canonical complex value inside a [`ComplexTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CIdx(u32);

impl CIdx {
    /// The canonical zero value (always index 0).
    pub const ZERO: CIdx = CIdx(0);
    /// The canonical one value (always index 1).
    pub const ONE: CIdx = CIdx(1);

    /// Raw index value.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A table of canonical complex values with tolerance-based merging.
#[derive(Debug, Clone)]
pub struct ComplexTable {
    values: Vec<Complex>,
    buckets: HashMap<(i64, i64), Vec<u32>>,
    tolerance: f64,
}

impl ComplexTable {
    /// Creates a table with the given merge tolerance.
    pub fn new(tolerance: f64) -> Self {
        let mut table = Self {
            values: Vec::new(),
            buckets: HashMap::new(),
            tolerance,
        };
        let zero = table.lookup(Complex::zero());
        let one = table.lookup(Complex::one());
        debug_assert_eq!(zero, CIdx::ZERO);
        debug_assert_eq!(one, CIdx::ONE);
        table
    }

    /// The merge tolerance.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// The number of distinct canonical values stored.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the table holds no values (never the case after
    /// construction, which interns 0 and 1).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The complex value behind an index.
    pub fn value(&self, idx: CIdx) -> Complex {
        self.values[idx.index()]
    }

    fn bucket_key(&self, c: Complex) -> (i64, i64) {
        (
            (c.re / self.tolerance).round() as i64,
            (c.im / self.tolerance).round() as i64,
        )
    }

    /// Finds the canonical index for `c`, inserting it if no existing value is
    /// within the tolerance.
    pub fn lookup(&mut self, c: Complex) -> CIdx {
        let key = self.bucket_key(c);
        // Search this bucket and the 8 neighbouring buckets so that values
        // straddling a bucket boundary still merge.
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(ids) = self.buckets.get(&(key.0 + dx, key.1 + dy)) {
                    for &id in ids {
                        if self.values[id as usize].approx_eq(&c, self.tolerance) {
                            return CIdx(id);
                        }
                    }
                }
            }
        }
        let id = self.values.len() as u32;
        self.values.push(c);
        self.buckets.entry(key).or_default().push(id);
        CIdx(id)
    }

    /// Interns the product of two stored values.
    pub fn mul(&mut self, a: CIdx, b: CIdx) -> CIdx {
        if a == CIdx::ZERO || b == CIdx::ZERO {
            return CIdx::ZERO;
        }
        if a == CIdx::ONE {
            return b;
        }
        if b == CIdx::ONE {
            return a;
        }
        let p = self.value(a) * self.value(b);
        self.lookup(p)
    }

    /// Interns the sum of two stored values.
    pub fn add(&mut self, a: CIdx, b: CIdx) -> CIdx {
        if a == CIdx::ZERO {
            return b;
        }
        if b == CIdx::ZERO {
            return a;
        }
        let s = self.value(a) + self.value(b);
        self.lookup(s)
    }

    /// Interns the quotient `a / b`.
    pub fn div(&mut self, a: CIdx, b: CIdx) -> CIdx {
        if a == CIdx::ZERO {
            return CIdx::ZERO;
        }
        if b == CIdx::ONE {
            return a;
        }
        let q = self.value(a) / self.value(b);
        self.lookup(q)
    }
}

impl Default for ComplexTable {
    fn default() -> Self {
        Self::new(1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_merges_close_values() {
        let mut t = ComplexTable::new(1e-9);
        let a = t.lookup(Complex::new(0.5, 0.25));
        let b = t.lookup(Complex::new(0.5 + 1e-12, 0.25 - 1e-12));
        assert_eq!(a, b, "values within tolerance share an index");
        let c = t.lookup(Complex::new(0.5 + 1e-3, 0.25));
        assert_ne!(a, c);
    }

    #[test]
    fn zero_and_one_are_fixed_indices() {
        let mut t = ComplexTable::default();
        assert_eq!(t.lookup(Complex::zero()), CIdx::ZERO);
        assert_eq!(t.lookup(Complex::one()), CIdx::ONE);
        assert_eq!(t.value(CIdx::ZERO), Complex::zero());
        assert_eq!(t.value(CIdx::ONE), Complex::one());
    }

    #[test]
    fn arithmetic_through_the_table() {
        let mut t = ComplexTable::default();
        let half = t.lookup(Complex::new(0.5, 0.0));
        let i = t.lookup(Complex::i());
        assert_eq!(t.mul(half, CIdx::ZERO), CIdx::ZERO);
        assert_eq!(t.mul(half, CIdx::ONE), half);
        let half_i = t.mul(half, i);
        assert!(t.value(half_i).approx_eq(&Complex::new(0.0, 0.5), 1e-12));
        let one = t.add(half, half);
        assert_eq!(one, CIdx::ONE);
        let back = t.div(half_i, i);
        assert_eq!(back, half);
    }

    #[test]
    fn tolerance_merging_loses_precision_by_design() {
        // With an aggressive tolerance, repeatedly adding a tiny value is
        // swallowed — this is the DDSIM failure mode the paper exploits.
        let mut t = ComplexTable::new(1e-4);
        let tiny = t.lookup(Complex::new(1e-6, 0.0));
        assert_eq!(tiny, CIdx::ZERO, "value below tolerance folds into zero");
    }
}
