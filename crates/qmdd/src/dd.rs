//! The QMDD state-vector decision diagram and its operations.
//!
//! A state vector over `n` qubits is a rooted DAG whose nodes branch on one
//! qubit each (qubit 0 at the top) and whose edges carry complex weights; the
//! amplitude of a basis state is the product of the edge weights along its
//! path.  Nodes are normalised (the child weight of largest magnitude is
//! factored out) and hash-consed, mirroring the QMDD data structure behind
//! DDSIM [Niemann et al. 2016; Zulehner & Wille 2019].

use crate::ctable::{CIdx, ComplexTable};
use sliq_math::Complex;
use std::collections::HashMap;

/// Index of a DD node; index 0 is the shared terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeIdx(u32);

impl NodeIdx {
    /// The terminal node (below the last qubit level).
    pub const TERMINAL: NodeIdx = NodeIdx(0);

    /// Returns `true` for the terminal node.
    pub fn is_terminal(self) -> bool {
        self == Self::TERMINAL
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

/// A weighted edge into the DD.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Canonical index of the complex weight.
    pub weight: CIdx,
    /// Target node.
    pub node: NodeIdx,
}

impl Edge {
    /// The all-zero vector (weight 0 into the terminal).
    pub const ZERO: Edge = Edge {
        weight: CIdx::ZERO,
        node: NodeIdx::TERMINAL,
    };

    /// Returns `true` if the edge represents the zero vector.
    pub fn is_zero(self) -> bool {
        self.weight == CIdx::ZERO
    }
}

#[derive(Debug, Clone, Copy)]
struct Node {
    level: u32,
    children: [Edge; 2],
}

/// Level value assigned to the terminal node (below every qubit).
const TERMINAL_LEVEL: u32 = u32::MAX;

/// A 2×2 complex matrix used for single-qubit operations.
pub type Matrix2 = [[Complex; 2]; 2];

/// The QMDD manager: node storage, complex table and operation caches.
#[derive(Debug)]
pub struct DdManager {
    nodes: Vec<Node>,
    unique: HashMap<(u32, Edge, Edge), NodeIdx>,
    free: Vec<u32>,
    /// The complex value table shared by all edges.
    pub ctable: ComplexTable,
    add_cache: HashMap<(Edge, Edge), Edge>,
    apply_cache: HashMap<(usize, NodeIdx), Edge>,
    select_cache: HashMap<(NodeIdx, u32, bool), Edge>,
    num_qubits: usize,
    apply_epoch: usize,
    peak_nodes: usize,
}

impl DdManager {
    /// Creates a manager for `num_qubits` qubits with the given complex
    /// merge tolerance.
    pub fn new(num_qubits: usize, tolerance: f64) -> Self {
        Self {
            nodes: vec![Node {
                level: TERMINAL_LEVEL,
                children: [Edge::ZERO; 2],
            }],
            unique: HashMap::new(),
            free: Vec::new(),
            ctable: ComplexTable::new(tolerance),
            add_cache: HashMap::new(),
            apply_cache: HashMap::new(),
            select_cache: HashMap::new(),
            num_qubits,
            apply_epoch: 0,
            peak_nodes: 0,
        }
    }

    /// The number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The number of currently allocated DD nodes (terminal excluded).
    pub fn allocated_nodes(&self) -> usize {
        self.nodes.len() - 1 - self.free.len()
    }

    /// The largest number of allocated nodes observed so far.
    pub fn peak_nodes(&self) -> usize {
        self.peak_nodes
    }

    fn level(&self, n: NodeIdx) -> u32 {
        self.nodes[n.index()].level
    }

    fn children(&self, n: NodeIdx) -> [Edge; 2] {
        self.nodes[n.index()].children
    }

    /// The DD of the computational basis state given by `bits`.
    pub fn basis_state(&mut self, bits: &[bool]) -> Edge {
        let mut edge = Edge {
            weight: CIdx::ONE,
            node: NodeIdx::TERMINAL,
        };
        for (q, &bit) in bits.iter().enumerate().rev() {
            let children = if bit {
                [Edge::ZERO, edge]
            } else {
                [edge, Edge::ZERO]
            };
            edge = self.make_node(q as u32, children);
        }
        edge
    }

    /// Creates (or reuses) a normalised node and returns the edge into it.
    pub fn make_node(&mut self, level: u32, children: [Edge; 2]) -> Edge {
        let [e0, e1] = children;
        if e0.is_zero() && e1.is_zero() {
            return Edge::ZERO;
        }
        // Normalise: factor out the child weight with the largest magnitude.
        let w0 = self.ctable.value(e0.weight);
        let w1 = self.ctable.value(e1.weight);
        let norm_idx = if w0.norm_sqr() >= w1.norm_sqr() {
            e0.weight
        } else {
            e1.weight
        };
        let c0 = Edge {
            weight: self.ctable.div(e0.weight, norm_idx),
            node: if e0.is_zero() {
                NodeIdx::TERMINAL
            } else {
                e0.node
            },
        };
        let c1 = Edge {
            weight: self.ctable.div(e1.weight, norm_idx),
            node: if e1.is_zero() {
                NodeIdx::TERMINAL
            } else {
                e1.node
            },
        };
        let key = (level, c0, c1);
        let node = match self.unique.get(&key) {
            Some(&n) => n,
            None => {
                let node = Node {
                    level,
                    children: [c0, c1],
                };
                let idx = match self.free.pop() {
                    Some(slot) => {
                        self.nodes[slot as usize] = node;
                        NodeIdx(slot)
                    }
                    None => {
                        self.nodes.push(node);
                        NodeIdx((self.nodes.len() - 1) as u32)
                    }
                };
                self.unique.insert(key, idx);
                self.peak_nodes = self.peak_nodes.max(self.allocated_nodes());
                idx
            }
        };
        Edge {
            weight: norm_idx,
            node,
        }
    }

    /// Scales a DD by a complex constant.
    pub fn scale(&mut self, e: Edge, factor: CIdx) -> Edge {
        if e.is_zero() || factor == CIdx::ZERO {
            return Edge::ZERO;
        }
        Edge {
            weight: self.ctable.mul(e.weight, factor),
            node: e.node,
        }
    }

    /// Pointwise sum of two state vectors.
    pub fn add(&mut self, a: Edge, b: Edge) -> Edge {
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        if a.node.is_terminal() && b.node.is_terminal() {
            return Edge {
                weight: self.ctable.add(a.weight, b.weight),
                node: NodeIdx::TERMINAL,
            };
        }
        if let Some(&r) = self.add_cache.get(&(a, b)) {
            return r;
        }
        let level = self.level(a.node).min(self.level(b.node));
        let cof = |mgr: &mut Self, e: Edge, c: usize| -> Edge {
            if mgr.level(e.node) == level {
                let child = mgr.children(e.node)[c];
                Edge {
                    weight: mgr.ctable.mul(e.weight, child.weight),
                    node: child.node,
                }
            } else {
                // The qubit at `level` is skipped: the sub-vector is uniform.
                e
            }
        };
        let a0 = cof(self, a, 0);
        let b0 = cof(self, b, 0);
        let a1 = cof(self, a, 1);
        let b1 = cof(self, b, 1);
        let r0 = self.add(a0, b0);
        let r1 = self.add(a1, b1);
        let r = self.make_node(level, [r0, r1]);
        self.add_cache.insert((a, b), r);
        r
    }

    /// Starts a new gate application (invalidates the per-gate caches).
    pub fn begin_gate(&mut self) {
        self.add_cache.clear();
        self.apply_cache.clear();
        self.select_cache.clear();
        self.apply_epoch += 1;
    }

    /// Applies a single-qubit unitary `u` to qubit `target`.
    pub fn apply_single(&mut self, e: Edge, u: &Matrix2, target: usize) -> Edge {
        self.apply_epoch += 1;
        self.apply_cache.clear();
        let u_interned = [
            [self.ctable.lookup(u[0][0]), self.ctable.lookup(u[0][1])],
            [self.ctable.lookup(u[1][0]), self.ctable.lookup(u[1][1])],
        ];
        let r = self.apply_single_rec(e.node, &u_interned, target as u32);
        self.scale(r, e.weight)
    }

    fn apply_single_rec(&mut self, node: NodeIdx, u: &[[CIdx; 2]; 2], target: u32) -> Edge {
        let key = (self.apply_epoch, node);
        if let Some(&r) = self.apply_cache.get(&key) {
            return r;
        }
        let level = self.level(node);
        let result = if level < target {
            // Descend: the operation is linear, so it maps each child
            // independently.
            let [c0, c1] = self.children(node);
            let r0 = {
                let sub = self.apply_single_rec(c0.node, u, target);
                self.scale(sub, c0.weight)
            };
            let r1 = {
                let sub = self.apply_single_rec(c1.node, u, target);
                self.scale(sub, c1.weight)
            };
            self.make_node(level, [r0, r1])
        } else {
            // The target level: fetch the two cofactors (handling a skipped
            // level, where both cofactors equal the node itself).
            let (f0, f1) = if level == target {
                let [c0, c1] = self.children(node);
                (c0, c1)
            } else {
                let here = Edge {
                    weight: CIdx::ONE,
                    node,
                };
                (here, here)
            };
            let t00 = self.scale(f0, u[0][0]);
            let t01 = self.scale(f1, u[0][1]);
            let t10 = self.scale(f0, u[1][0]);
            let t11 = self.scale(f1, u[1][1]);
            let new0 = self.add(t00, t01);
            let new1 = self.add(t10, t11);
            self.make_node(target, [new0, new1])
        };
        self.apply_cache.insert(key, result);
        result
    }

    /// Projects onto the subspace where qubit `q` has value `value`
    /// (amplitudes elsewhere become zero; no renormalisation).
    pub fn select(&mut self, e: Edge, q: usize, value: bool) -> Edge {
        let r = self.select_rec(e.node, q as u32, value);
        self.scale(r, e.weight)
    }

    fn select_rec(&mut self, node: NodeIdx, q: u32, value: bool) -> Edge {
        if let Some(&r) = self.select_cache.get(&(node, q, value)) {
            return r;
        }
        let level = self.level(node);
        let result = if level < q {
            let [c0, c1] = self.children(node);
            let r0 = {
                let sub = self.select_rec(c0.node, q, value);
                self.scale(sub, c0.weight)
            };
            let r1 = {
                let sub = self.select_rec(c1.node, q, value);
                self.scale(sub, c1.weight)
            };
            self.make_node(level, [r0, r1])
        } else {
            let (f0, f1) = if level == q {
                let [c0, c1] = self.children(node);
                (c0, c1)
            } else {
                let here = Edge {
                    weight: CIdx::ONE,
                    node,
                };
                (here, here)
            };
            let children = if value {
                [Edge::ZERO, f1]
            } else {
                [f0, Edge::ZERO]
            };
            self.make_node(q, children)
        };
        self.select_cache.insert((node, q, value), result);
        result
    }

    /// The amplitude of the basis state described by `bits`.
    pub fn amplitude(&self, e: Edge, bits: &[bool]) -> Complex {
        let mut weight = self.ctable.value(e.weight);
        let mut node = e.node;
        for (q, &bit) in bits.iter().enumerate() {
            if node.is_terminal() {
                break;
            }
            if self.level(node) == q as u32 {
                let child = self.children(node)[bit as usize];
                weight *= self.ctable.value(child.weight);
                node = child.node;
                if weight.is_approx_zero(0.0) {
                    return Complex::zero();
                }
            }
            // Skipped level: the amplitude does not depend on this qubit.
        }
        weight
    }

    /// The squared 2-norm `Σ|amplitude|²` of the vector.
    pub fn norm_sqr(&self, e: Edge) -> f64 {
        let mut memo: HashMap<NodeIdx, f64> = HashMap::new();
        let body = self.norm_sqr_rec(e.node, &mut memo);
        let skip_above = if e.node.is_terminal() {
            self.num_qubits as u32
        } else {
            self.level(e.node)
        };
        self.ctable.value(e.weight).norm_sqr() * body * 2f64.powi(skip_above as i32)
    }

    fn norm_sqr_rec(&self, node: NodeIdx, memo: &mut HashMap<NodeIdx, f64>) -> f64 {
        if node.is_terminal() {
            return 1.0;
        }
        if let Some(&v) = memo.get(&node) {
            return v;
        }
        let level = self.level(node);
        let mut total = 0.0;
        for child in self.children(node) {
            if child.is_zero() {
                continue;
            }
            let child_level = if child.node.is_terminal() {
                self.num_qubits as u32
            } else {
                self.level(child.node)
            };
            let skipped = child_level - level - 1;
            total += self.ctable.value(child.weight).norm_sqr()
                * self.norm_sqr_rec(child.node, memo)
                * 2f64.powi(skipped as i32);
        }
        memo.insert(node, total);
        total
    }

    /// The number of DD nodes reachable from `e` (terminal excluded).
    pub fn node_count(&self, e: Edge) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![e.node];
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !seen.insert(n) {
                continue;
            }
            for c in self.children(n) {
                stack.push(c.node);
            }
        }
        seen.len()
    }

    /// Mark-and-sweep garbage collection keeping only nodes reachable from
    /// `root`.  Returns the number of freed nodes.
    pub fn collect_garbage(&mut self, root: Edge) -> usize {
        self.collect_garbage_many(&[root])
    }

    /// Mark-and-sweep garbage collection keeping every node reachable from
    /// any of `roots` (e.g. the live state plus pinned snapshot edges).
    /// Returns the number of freed nodes.
    pub fn collect_garbage_many(&mut self, roots: &[Edge]) -> usize {
        let mut marked = vec![false; self.nodes.len()];
        marked[0] = true;
        let mut stack: Vec<NodeIdx> = roots.iter().map(|e| e.node).collect();
        while let Some(n) = stack.pop() {
            if marked[n.index()] {
                continue;
            }
            marked[n.index()] = true;
            for c in self.children(n) {
                stack.push(c.node);
            }
        }
        let already_free: std::collections::HashSet<u32> = self.free.iter().copied().collect();
        let mut freed = 0;
        for (idx, &is_live) in marked.iter().enumerate().skip(1) {
            if !is_live && !already_free.contains(&(idx as u32)) {
                self.free.push(idx as u32);
                freed += 1;
            }
        }
        self.unique.retain(|_, n| marked[n.index()]);
        self.add_cache.clear();
        self.apply_cache.clear();
        self.select_cache.clear();
        freed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h_matrix() -> Matrix2 {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        [
            [Complex::new(s, 0.0), Complex::new(s, 0.0)],
            [Complex::new(s, 0.0), Complex::new(-s, 0.0)],
        ]
    }

    fn x_matrix() -> Matrix2 {
        [
            [Complex::zero(), Complex::one()],
            [Complex::one(), Complex::zero()],
        ]
    }

    #[test]
    fn basis_state_amplitudes() {
        let mut dd = DdManager::new(3, 1e-12);
        let e = dd.basis_state(&[true, false, true]);
        assert!(dd
            .amplitude(e, &[true, false, true])
            .approx_eq(&Complex::one(), 1e-12));
        assert!(dd
            .amplitude(e, &[false, false, true])
            .approx_eq(&Complex::zero(), 1e-12));
        assert!((dd.norm_sqr(e) - 1.0).abs() < 1e-12);
        assert_eq!(dd.node_count(e), 3);
    }

    #[test]
    fn hadamard_then_x_on_basis_state() {
        let mut dd = DdManager::new(2, 1e-12);
        let zero = dd.basis_state(&[false, false]);
        dd.begin_gate();
        let plus = dd.apply_single(zero, &h_matrix(), 0);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!(dd
            .amplitude(plus, &[false, false])
            .approx_eq(&Complex::new(s, 0.0), 1e-9));
        assert!(dd
            .amplitude(plus, &[true, false])
            .approx_eq(&Complex::new(s, 0.0), 1e-9));
        assert!((dd.norm_sqr(plus) - 1.0).abs() < 1e-9);
        dd.begin_gate();
        let flipped = dd.apply_single(plus, &x_matrix(), 1);
        assert!(dd
            .amplitude(flipped, &[false, true])
            .approx_eq(&Complex::new(s, 0.0), 1e-9));
        assert!(dd.amplitude(flipped, &[false, false]).is_approx_zero(1e-9));
    }

    #[test]
    fn select_projects_amplitudes() {
        let mut dd = DdManager::new(1, 1e-12);
        let zero = dd.basis_state(&[false]);
        dd.begin_gate();
        let plus = dd.apply_single(zero, &h_matrix(), 0);
        let only_one = dd.select(plus, 0, true);
        assert!(dd.amplitude(only_one, &[false]).is_approx_zero(1e-12));
        assert!((dd.norm_sqr(only_one) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn add_is_pointwise() {
        let mut dd = DdManager::new(2, 1e-12);
        let a = dd.basis_state(&[false, false]);
        let b = dd.basis_state(&[true, true]);
        let sum = dd.add(a, b);
        assert!(dd
            .amplitude(sum, &[false, false])
            .approx_eq(&Complex::one(), 1e-12));
        assert!(dd
            .amplitude(sum, &[true, true])
            .approx_eq(&Complex::one(), 1e-12));
        assert!((dd.norm_sqr(sum) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_superposition_is_a_single_chain_of_nodes() {
        // H on every qubit of |0…0⟩ gives a fully uniform vector; thanks to
        // normalisation and sharing it needs only one node per level.
        let n = 8;
        let mut dd = DdManager::new(n, 1e-12);
        let mut e = dd.basis_state(&vec![false; n]);
        for q in 0..n {
            dd.begin_gate();
            e = dd.apply_single(e, &h_matrix(), q);
        }
        assert!((dd.norm_sqr(e) - 1.0).abs() < 1e-9);
        assert_eq!(dd.node_count(e), n);
        let uniform = dd.amplitude(e, &vec![false; n]);
        assert!((uniform.norm() - (1.0 / (1u64 << n) as f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn garbage_collection_keeps_the_root() {
        let mut dd = DdManager::new(4, 1e-12);
        let mut e = dd.basis_state(&[false; 4]);
        for q in 0..4 {
            dd.begin_gate();
            e = dd.apply_single(e, &h_matrix(), q);
        }
        let freed = dd.collect_garbage(e);
        assert!(freed > 0);
        assert!((dd.norm_sqr(e) - 1.0).abs() < 1e-9);
        // New operations still work after GC.
        dd.begin_gate();
        let e2 = dd.apply_single(e, &h_matrix(), 0);
        assert!((dd.norm_sqr(e2) - 1.0).abs() < 1e-9);
    }
}
