//! The [`Simulator`] facade over the QMDD decision diagram.

use crate::dd::{DdManager, Edge, Matrix2};
use sliq_circuit::{Gate, SimulationError, Simulator};
use sliq_math::Complex;

const S2: f64 = std::f64::consts::FRAC_1_SQRT_2;

fn matrix_of(gate: &Gate) -> Option<Matrix2> {
    let m = match gate {
        Gate::X(_) => [
            [Complex::zero(), Complex::one()],
            [Complex::one(), Complex::zero()],
        ],
        Gate::Y(_) => [
            [Complex::zero(), Complex::new(0.0, -1.0)],
            [Complex::i(), Complex::zero()],
        ],
        Gate::Z(_) => [
            [Complex::one(), Complex::zero()],
            [Complex::zero(), Complex::new(-1.0, 0.0)],
        ],
        Gate::H(_) => [
            [Complex::new(S2, 0.0), Complex::new(S2, 0.0)],
            [Complex::new(S2, 0.0), Complex::new(-S2, 0.0)],
        ],
        Gate::S(_) => [
            [Complex::one(), Complex::zero()],
            [Complex::zero(), Complex::i()],
        ],
        Gate::Sdg(_) => [
            [Complex::one(), Complex::zero()],
            [Complex::zero(), Complex::new(0.0, -1.0)],
        ],
        Gate::T(_) => [
            [Complex::one(), Complex::zero()],
            [
                Complex::zero(),
                Complex::from_polar(1.0, std::f64::consts::FRAC_PI_4),
            ],
        ],
        Gate::Tdg(_) => [
            [Complex::one(), Complex::zero()],
            [
                Complex::zero(),
                Complex::from_polar(1.0, -std::f64::consts::FRAC_PI_4),
            ],
        ],
        Gate::RxPi2(_) => [
            [Complex::new(S2, 0.0), Complex::new(0.0, -S2)],
            [Complex::new(0.0, -S2), Complex::new(S2, 0.0)],
        ],
        Gate::RyPi2(_) => [
            [Complex::new(S2, 0.0), Complex::new(-S2, 0.0)],
            [Complex::new(S2, 0.0), Complex::new(S2, 0.0)],
        ],
        _ => return None,
    };
    Some(m)
}

/// Configuration limits emulating the memory-out behaviour of DDSIM runs in
/// the paper (2 GB per case).
#[derive(Debug, Clone, Copy, Default)]
pub struct QmddLimits {
    /// Maximum number of live DD nodes before simulation aborts with a
    /// resource-limit error (`None` = unlimited).
    pub max_nodes: Option<usize>,
}

/// A QMDD-based state-vector simulator with floating-point edge weights —
/// the DDSIM-like baseline the paper compares against.
///
/// ```
/// use sliq_circuit::{Circuit, Simulator};
/// use sliq_qmdd::QmddSimulator;
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// let mut sim = QmddSimulator::new(2);
/// sim.run(&bell)?;
/// assert!((sim.probability_of_basis_state(&[true, true]) - 0.5).abs() < 1e-9);
/// # Ok::<(), sliq_circuit::SimulationError>(())
/// ```
#[derive(Debug)]
pub struct QmddSimulator {
    dd: DdManager,
    root: Edge,
    num_qubits: usize,
    limits: QmddLimits,
    /// Snapshot edges pinned against garbage collection (slot-addressed so
    /// snapshots can be released out of order).
    pinned: Vec<Option<Edge>>,
}

/// A checkpoint of a [`QmddSimulator`] state taken by
/// [`QmddSimulator::snapshot`]: the root edge at snapshot time, pinned
/// against the simulator's garbage collector until released.
#[derive(Debug)]
pub struct QmddSnapshot {
    edge: Edge,
    slot: usize,
}

impl QmddSimulator {
    /// Creates the simulator in the all-zeros state with the default complex
    /// tolerance (`1e-12`) and no node limit.
    pub fn new(num_qubits: usize) -> Self {
        Self::with_tolerance(num_qubits, 1e-12)
    }

    /// Creates the simulator with an explicit complex-table merge tolerance
    /// (larger values trade accuracy for node sharing, as DDSIM does).
    pub fn with_tolerance(num_qubits: usize, tolerance: f64) -> Self {
        let mut dd = DdManager::new(num_qubits, tolerance);
        let root = dd.basis_state(&vec![false; num_qubits]);
        Self {
            dd,
            root,
            num_qubits,
            limits: QmddLimits::default(),
            pinned: Vec::new(),
        }
    }

    /// Creates the simulator in an arbitrary basis state.
    pub fn with_initial_bits(bits: &[bool]) -> Self {
        let mut sim = Self::new(bits.len());
        sim.root = sim.dd.basis_state(bits);
        sim
    }

    /// Sets the resource limits (returns `self` for chaining).
    pub fn with_limits(mut self, limits: QmddLimits) -> Self {
        self.limits = limits;
        self
    }

    /// The amplitude of a basis state.
    pub fn amplitude(&self, bits: &[bool]) -> Complex {
        self.dd.amplitude(self.root, bits)
    }

    /// The number of DD nodes in the current state representation.
    pub fn node_count(&self) -> usize {
        self.dd.node_count(self.root)
    }

    /// The peak number of allocated DD nodes over the whole simulation.
    pub fn peak_nodes(&self) -> usize {
        self.dd.peak_nodes()
    }

    /// The number of live DD nodes right now (allocation slots minus the
    /// free list) — the quantity the node limit and GC heuristics compare
    /// against.
    pub fn allocated_nodes(&self) -> usize {
        self.dd.allocated_nodes()
    }

    /// Captures the current state as a pinned checkpoint: the returned
    /// snapshot's root edge survives every later gate, measurement and
    /// garbage collection until [`QmddSimulator::release`] is called.
    pub fn snapshot(&mut self) -> QmddSnapshot {
        let slot = self
            .pinned
            .iter()
            .position(Option::is_none)
            .unwrap_or_else(|| {
                self.pinned.push(None);
                self.pinned.len() - 1
            });
        self.pinned[slot] = Some(self.root);
        QmddSnapshot {
            edge: self.root,
            slot,
        }
    }

    /// Rolls the state back to `snapshot` (which stays pinned and can be
    /// restored again).
    pub fn restore(&mut self, snapshot: &QmddSnapshot) {
        self.root = snapshot.edge;
    }

    /// Releases a checkpoint, unpinning its edge.
    pub fn release(&mut self, snapshot: QmddSnapshot) {
        self.pinned[snapshot.slot] = None;
    }

    /// The root edge of the current state (for read-only DD traversals; the
    /// edge is only guaranteed live until the next gate or GC).
    pub fn root_edge(&self) -> Edge {
        self.root
    }

    /// Projects `e` onto the subspace where `qubit` reads `value`, without
    /// renormalising: the squared norm of the result is the joint probability
    /// of the projections applied so far.  Building block for non-collapsing
    /// conditional-probability descent (batched sampling).
    pub fn project(&mut self, e: Edge, qubit: usize, value: bool) -> Edge {
        self.dd.select(e, qubit, value)
    }

    /// The squared 2-norm of the vector rooted at `e`.
    pub fn edge_norm_sqr(&self, e: Edge) -> f64 {
        self.dd.norm_sqr(e)
    }

    /// Runs a garbage collection keeping the current root, every pinned
    /// snapshot and every edge in `extra` alive.  Returns freed node count.
    pub fn collect_garbage_keeping(&mut self, extra: &[Edge]) -> usize {
        let roots = self.gc_roots(extra);
        self.dd.collect_garbage_many(&roots)
    }

    fn gc_roots(&self, extra: &[Edge]) -> Vec<Edge> {
        let mut roots = vec![self.root];
        roots.extend(self.pinned.iter().flatten().copied());
        roots.extend_from_slice(extra);
        roots
    }

    /// Applies `base` only on the subspace where all `controls` are 1 and
    /// keeps the complementary subspace untouched.
    fn apply_controlled<F>(&mut self, controls: &[usize], base: F) -> Edge
    where
        F: FnOnce(&mut DdManager, Edge) -> Edge,
    {
        let mut rest_parts = Vec::with_capacity(controls.len());
        let mut active = self.root;
        for &c in controls {
            rest_parts.push(self.dd.select(active, c, false));
            active = self.dd.select(active, c, true);
        }
        let mut result = base(&mut self.dd, active);
        for part in rest_parts {
            result = self.dd.add(result, part);
        }
        result
    }

    fn check_limits(&self) -> Result<(), SimulationError> {
        if let Some(max) = self.limits.max_nodes {
            if self.dd.allocated_nodes() > max {
                return Err(SimulationError::ResourceLimit {
                    backend: "qmdd",
                    detail: format!(
                        "live DD nodes {} exceed the configured limit {max}",
                        self.dd.allocated_nodes()
                    ),
                });
            }
        }
        Ok(())
    }
}

impl Simulator for QmddSimulator {
    fn name(&self) -> &'static str {
        "qmdd"
    }

    fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    fn apply_gate(&mut self, gate: &Gate) -> Result<(), SimulationError> {
        self.dd.begin_gate();
        self.root = match gate {
            // Uncontrolled single-qubit gates.
            Gate::X(q)
            | Gate::Y(q)
            | Gate::Z(q)
            | Gate::H(q)
            | Gate::S(q)
            | Gate::Sdg(q)
            | Gate::T(q)
            | Gate::Tdg(q)
            | Gate::RxPi2(q)
            | Gate::RyPi2(q) => {
                let m = matrix_of(gate).expect("single-qubit gate has a matrix");
                self.dd.apply_single(self.root, &m, *q)
            }
            Gate::Cnot { control, target } => {
                let m = matrix_of(&Gate::X(*target)).expect("x matrix");
                let t = *target;
                self.apply_controlled(&[*control], |dd, act| dd.apply_single(act, &m, t))
            }
            Gate::Cz { control, target } => {
                let m = matrix_of(&Gate::Z(*target)).expect("z matrix");
                let t = *target;
                self.apply_controlled(&[*control], |dd, act| dd.apply_single(act, &m, t))
            }
            Gate::Toffoli { controls, target } => {
                let m = matrix_of(&Gate::X(*target)).expect("x matrix");
                let t = *target;
                self.apply_controlled(controls, |dd, act| dd.apply_single(act, &m, t))
            }
            Gate::Fredkin {
                controls,
                target1,
                target2,
            } => {
                let m = matrix_of(&Gate::X(0)).expect("x matrix");
                let (t1, t2) = (*target1, *target2);
                // SWAP = CX(t1→t2) · CX(t2→t1) · CX(t1→t2), each restricted to
                // the control subspace.
                self.apply_controlled(controls, |dd, act| {
                    let cx = |dd: &mut DdManager, state: Edge, c: usize, t: usize| {
                        let rest = dd.select(state, c, false);
                        let on = dd.select(state, c, true);
                        let flipped = dd.apply_single(on, &m, t);
                        dd.add(rest, flipped)
                    };
                    let s1 = cx(dd, act, t1, t2);
                    let s2 = cx(dd, s1, t2, t1);
                    cx(dd, s2, t1, t2)
                })
            }
            // Dynamic operations are interpreted by the session layer via
            // `measure_with`; they are not unitaries.
            Gate::Measure { .. } | Gate::Reset { .. } | Gate::Conditional { .. } => {
                return Err(SimulationError::UnsupportedGate {
                    backend: "qmdd",
                    gate: gate.to_string(),
                });
            }
        };
        if self.dd.allocated_nodes() > 4 * self.dd.node_count(self.root) + 1024 {
            let roots = self.gc_roots(&[]);
            self.dd.collect_garbage_many(&roots);
        }
        self.check_limits()
    }

    fn probability_of_one(&mut self, qubit: usize) -> f64 {
        let projected = self.dd.select(self.root, qubit, true);
        self.dd.norm_sqr(projected)
    }

    fn probability_of_basis_state(&mut self, bits: &[bool]) -> f64 {
        self.dd.amplitude(self.root, bits).norm_sqr()
    }

    fn measure_with(&mut self, qubit: usize, u: f64) -> bool {
        let p1 = self.probability_of_one(qubit);
        let outcome = u < p1;
        let p = if outcome { p1 } else { 1.0 - p1 };
        let projected = self.dd.select(self.root, qubit, outcome);
        let scale = self.dd.ctable.lookup(Complex::new(1.0 / p.sqrt(), 0.0));
        self.root = self.dd.scale(projected, scale);
        let roots = self.gc_roots(&[]);
        self.dd.collect_garbage_many(&roots);
        outcome
    }

    fn total_probability(&mut self) -> f64 {
        self.dd.norm_sqr(self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sliq_circuit::Circuit;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn bell_state() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut sim = QmddSimulator::new(2);
        sim.run(&c).unwrap();
        assert!(close(sim.probability_of_basis_state(&[false, false]), 0.5));
        assert!(close(sim.probability_of_basis_state(&[true, true]), 0.5));
        assert!(close(sim.probability_of_basis_state(&[true, false]), 0.0));
        assert!(close(sim.total_probability(), 1.0));
    }

    #[test]
    fn ghz_needs_linear_nodes() {
        let n = 30;
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 1..n {
            c.cx(q - 1, q);
        }
        let mut sim = QmddSimulator::new(n);
        sim.run(&c).unwrap();
        assert!(close(sim.probability_of_one(n - 1), 0.5));
        // The GHZ DD needs roughly two nodes per level (one for the
        // "remaining qubits all 0" branch, one for "all 1"), i.e. linear size.
        assert!(sim.node_count() <= 2 * n, "GHZ states stay compact in a DD");
        assert!(close(sim.total_probability(), 1.0));
    }

    #[test]
    fn toffoli_and_fredkin_on_basis_states() {
        let mut sim = QmddSimulator::with_initial_bits(&[true, true, false]);
        sim.apply_gate(&Gate::Toffoli {
            controls: vec![0, 1],
            target: 2,
        })
        .unwrap();
        assert!(close(
            sim.probability_of_basis_state(&[true, true, true]),
            1.0
        ));
        sim.apply_gate(&Gate::X(1)).unwrap();
        sim.apply_gate(&Gate::Fredkin {
            controls: vec![0],
            target1: 1,
            target2: 2,
        })
        .unwrap();
        assert!(close(
            sim.probability_of_basis_state(&[true, true, false]),
            1.0
        ));
    }

    #[test]
    fn control_below_target_works() {
        // CNOT with control qubit 1 (lower level) and target qubit 0 (upper
        // level) — the case that is awkward for naive DD recursions.
        let mut sim = QmddSimulator::with_initial_bits(&[false, true]);
        sim.apply_gate(&Gate::Cnot {
            control: 1,
            target: 0,
        })
        .unwrap();
        assert!(close(sim.probability_of_basis_state(&[true, true]), 1.0));
    }

    #[test]
    fn measurement_collapses_and_renormalises() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut sim = QmddSimulator::new(2);
        sim.run(&c).unwrap();
        let outcome = sim.measure_with(0, 0.99); // u ≥ 0.5 ⇒ outcome 0
        assert!(!outcome);
        assert!(close(sim.total_probability(), 1.0));
        assert!(close(sim.probability_of_one(1), 0.0));
    }

    #[test]
    fn node_limit_triggers_resource_error() {
        let mut c = Circuit::new(12);
        // A random-ish non-Clifford circuit that entangles everything.
        for q in 0..12 {
            c.h(q);
        }
        for q in 0..11 {
            c.cx(q, q + 1);
            c.t(q);
            c.h(q);
        }
        for q in 0..11 {
            c.cz(q, (q + 3) % 12);
            c.t((q + 5) % 12);
            c.h(q);
        }
        let mut sim = QmddSimulator::new(12).with_limits(QmddLimits {
            max_nodes: Some(16),
        });
        let result = sim.run(&c);
        assert!(matches!(result, Err(SimulationError::ResourceLimit { .. })));
    }

    #[test]
    fn phase_gates_accumulate_correctly() {
        // T⁸ = identity.
        let mut sim = QmddSimulator::new(1);
        sim.apply_gate(&Gate::H(0)).unwrap();
        for _ in 0..8 {
            sim.apply_gate(&Gate::T(0)).unwrap();
        }
        sim.apply_gate(&Gate::H(0)).unwrap();
        assert!(close(sim.probability_of_one(0), 0.0));
    }
}
