//! # sliq-qmdd
//!
//! A QMDD-based quantum circuit simulator — the DDSIM-like baseline that the
//! paper compares its bit-sliced BDD simulator against.
//!
//! The state vector is a decision diagram whose edges carry floating-point
//! complex weights kept in a tolerance-merged [`ComplexTable`]; nodes are
//! normalised and hash-consed.  Because the weights are `f64` pairs and the
//! table merges nearby values, deep circuits accumulate rounding error — the
//! "error" rows of Tables III and V in the paper — whereas the bit-sliced
//! backend stays exact by construction.
//!
//! ```
//! use sliq_circuit::{Circuit, Simulator};
//! use sliq_qmdd::QmddSimulator;
//! let mut ghz = Circuit::new(50);
//! ghz.h(0);
//! for q in 1..50 { ghz.cx(q - 1, q); }
//! let mut sim = QmddSimulator::new(50);
//! sim.run(&ghz)?;
//! assert!((sim.probability_of_one(49) - 0.5).abs() < 1e-9);
//! # Ok::<(), sliq_circuit::SimulationError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ctable;
mod dd;
mod simulator;

pub use ctable::{CIdx, ComplexTable};
pub use dd::{DdManager, Edge, NodeIdx};
pub use simulator::{QmddLimits, QmddSimulator, QmddSnapshot};
