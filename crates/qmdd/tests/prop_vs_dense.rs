//! Property test: the QMDD backend must agree with the dense oracle on
//! random circuits drawn from the full supported gate set.

use proptest::prelude::*;
use sliq_circuit::{Circuit, Gate, Simulator};
use sliq_dense::DenseSimulator;
use sliq_qmdd::QmddSimulator;

const NQ: usize = 4;

fn any_gate() -> impl Strategy<Value = Gate> {
    let distinct2 = (0..NQ, 0..NQ).prop_filter("distinct", |(a, b)| a != b);
    let distinct3 =
        (0..NQ, 0..NQ, 0..NQ).prop_filter("distinct", |(a, b, c)| a != b && b != c && a != c);
    prop_oneof![
        (0..NQ).prop_map(Gate::X),
        (0..NQ).prop_map(Gate::Y),
        (0..NQ).prop_map(Gate::Z),
        (0..NQ).prop_map(Gate::H),
        (0..NQ).prop_map(Gate::S),
        (0..NQ).prop_map(Gate::Sdg),
        (0..NQ).prop_map(Gate::T),
        (0..NQ).prop_map(Gate::Tdg),
        (0..NQ).prop_map(Gate::RxPi2),
        (0..NQ).prop_map(Gate::RyPi2),
        distinct2
            .clone()
            .prop_map(|(control, target)| Gate::Cnot { control, target }),
        distinct2.prop_map(|(control, target)| Gate::Cz { control, target }),
        distinct3
            .clone()
            .prop_map(|(c0, c1, target)| Gate::Toffoli {
                controls: vec![c0, c1],
                target
            }),
        distinct3.prop_map(|(c, target1, target2)| Gate::Fredkin {
            controls: vec![c],
            target1,
            target2
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn amplitudes_match_dense(gates in proptest::collection::vec(any_gate(), 0..30)) {
        let mut circuit = Circuit::new(NQ);
        circuit.extend(gates);
        let mut dense = DenseSimulator::new(NQ);
        let mut qmdd = QmddSimulator::new(NQ);
        dense.run(&circuit).unwrap();
        qmdd.run(&circuit).unwrap();
        for basis in 0..(1usize << NQ) {
            let bits: Vec<bool> = (0..NQ).map(|q| basis >> q & 1 == 1).collect();
            let expected = dense.amplitude(&bits);
            let got = qmdd.amplitude(&bits);
            prop_assert!(
                expected.approx_eq(&got, 1e-6),
                "basis {:?}: dense {} vs qmdd {}", bits, expected, got
            );
        }
        prop_assert!((qmdd.total_probability() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn marginals_and_measurement_match_dense(gates in proptest::collection::vec(any_gate(), 0..25), q in 0..NQ, u in 0.0f64..1.0) {
        let mut circuit = Circuit::new(NQ);
        circuit.extend(gates);
        let mut dense = DenseSimulator::new(NQ);
        let mut qmdd = QmddSimulator::new(NQ);
        dense.run(&circuit).unwrap();
        qmdd.run(&circuit).unwrap();
        let pd = dense.probability_of_one(q);
        let pq = qmdd.probability_of_one(q);
        prop_assert!((pd - pq).abs() < 1e-6, "qubit {}: dense {} qmdd {}", q, pd, pq);
        // Avoid comparing outcomes when u sits essentially on the boundary.
        if (u - pd).abs() > 1e-6 {
            let od = dense.measure_with(q, u);
            let oq = qmdd.measure_with(q, u);
            prop_assert_eq!(od, oq);
            for k in 0..NQ {
                prop_assert!((dense.probability_of_one(k) - qmdd.probability_of_one(k)).abs() < 1e-6);
            }
        }
    }
}
