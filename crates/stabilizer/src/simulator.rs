//! The [`Simulator`] facade over the stabilizer tableau.

use crate::tableau::Tableau;
use sliq_circuit::{Gate, SimulationError, Simulator};

/// A CHP-style stabilizer simulator.
///
/// Supports only Clifford gates (X, Y, Z, H, S, S†, CNOT, CZ and
/// control-free SWAP); everything else returns
/// [`SimulationError::UnsupportedGate`], mirroring the paper's observation
/// that CHP cannot simulate the Bernstein–Vazirani benchmarks while it beats
/// every general-purpose simulator on the entanglement benchmark.
///
/// ```
/// use sliq_circuit::{Circuit, Simulator};
/// use sliq_stabilizer::StabilizerSimulator;
/// let mut ghz = Circuit::new(1000);
/// ghz.h(0);
/// for q in 1..1000 { ghz.cx(q - 1, q); }
/// let mut sim = StabilizerSimulator::new(1000);
/// sim.run(&ghz)?;
/// assert_eq!(sim.probability_of_one(999), 0.5);
/// # Ok::<(), sliq_circuit::SimulationError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StabilizerSimulator {
    tableau: Tableau,
}

impl StabilizerSimulator {
    /// Creates the simulator in the all-zeros state.
    pub fn new(num_qubits: usize) -> Self {
        Self {
            tableau: Tableau::new(num_qubits),
        }
    }

    /// Access to the underlying tableau.
    pub fn tableau(&self) -> &Tableau {
        &self.tableau
    }

    /// Captures the current tableau as a checkpoint (`O(n²)` copy).
    pub fn snapshot(&self) -> Tableau {
        self.tableau.clone()
    }

    /// Rolls the state back to a snapshot taken by
    /// [`StabilizerSimulator::snapshot`].
    pub fn restore(&mut self, snapshot: &Tableau) {
        self.tableau = snapshot.clone();
    }
}

impl Simulator for StabilizerSimulator {
    fn name(&self) -> &'static str {
        "stabilizer"
    }

    fn num_qubits(&self) -> usize {
        self.tableau.num_qubits()
    }

    fn apply_gate(&mut self, gate: &Gate) -> Result<(), SimulationError> {
        let unsupported = || SimulationError::UnsupportedGate {
            backend: "stabilizer",
            gate: gate.to_string(),
        };
        match gate {
            Gate::X(q) => self.tableau.x_gate(*q),
            Gate::Y(q) => self.tableau.y_gate(*q),
            Gate::Z(q) => self.tableau.z_gate(*q),
            Gate::H(q) => self.tableau.h(*q),
            Gate::S(q) => self.tableau.s(*q),
            Gate::Sdg(q) => self.tableau.sdg(*q),
            Gate::Cnot { control, target } => self.tableau.cnot(*control, *target),
            Gate::Cz { control, target } => self.tableau.cz(*control, *target),
            Gate::Fredkin {
                controls,
                target1,
                target2,
            } if controls.is_empty() => self.tableau.swap(*target1, *target2),
            Gate::Toffoli { controls, target } if controls.is_empty() => {
                self.tableau.x_gate(*target)
            }
            Gate::Toffoli { controls, target } if controls.len() == 1 => {
                self.tableau.cnot(controls[0], *target)
            }
            _ => return Err(unsupported()),
        }
        Ok(())
    }

    fn probability_of_one(&mut self, qubit: usize) -> f64 {
        self.tableau.probability_of_one(qubit)
    }

    fn probability_of_basis_state(&mut self, bits: &[bool]) -> f64 {
        // Measure the qubits one at a time on a copy, forcing each outcome to
        // the requested bit; the joint probability is the product of the
        // per-step conditional probabilities (0, ½ or 1).
        let mut copy = self.tableau.clone();
        let mut probability = 1.0;
        for (q, &bit) in bits.iter().enumerate() {
            match copy.deterministic_outcome(q) {
                Some(v) => {
                    if v != bit {
                        return 0.0;
                    }
                }
                None => probability *= 0.5,
            }
            copy.measure(q, bit);
        }
        probability
    }

    fn measure_with(&mut self, qubit: usize, u: f64) -> bool {
        self.tableau.measure(qubit, u < 0.5).outcome()
    }

    fn total_probability(&mut self) -> f64 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sliq_circuit::Circuit;

    #[test]
    fn rejects_non_clifford_gates() {
        let mut sim = StabilizerSimulator::new(2);
        assert!(sim.apply_gate(&Gate::T(0)).is_err());
        assert!(sim
            .apply_gate(&Gate::Toffoli {
                controls: vec![0, 1],
                target: 1
            })
            .is_err());
        assert!(sim.apply_gate(&Gate::H(0)).is_ok());
    }

    #[test]
    fn basis_state_probability_of_bell_state() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut sim = StabilizerSimulator::new(2);
        sim.run(&c).unwrap();
        assert_eq!(sim.probability_of_basis_state(&[false, false]), 0.5);
        assert_eq!(sim.probability_of_basis_state(&[true, true]), 0.5);
        assert_eq!(sim.probability_of_basis_state(&[true, false]), 0.0);
        assert_eq!(sim.total_probability(), 1.0);
    }

    #[test]
    fn measurement_collapse_propagates() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let mut sim = StabilizerSimulator::new(3);
        sim.run(&c).unwrap();
        let outcome = sim.measure_with(0, 0.9); // u ≥ 0.5 → outcome false
        assert!(!outcome);
        assert_eq!(sim.probability_of_one(2), 0.0);
    }

    #[test]
    fn large_ghz_is_cheap() {
        let n = 2000;
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 1..n {
            c.cx(q - 1, q);
        }
        let mut sim = StabilizerSimulator::new(n);
        sim.run(&c).unwrap();
        assert_eq!(sim.probability_of_one(n - 1), 0.5);
    }
}
