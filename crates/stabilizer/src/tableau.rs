//! The Aaronson–Gottesman stabilizer tableau (the data structure behind CHP).

/// A stabilizer tableau over `n` qubits.
///
/// Rows `0..n` hold the destabilizer generators and rows `n..2n` the
/// stabilizer generators; each row is a Pauli string encoded as `x`/`z` bit
/// vectors plus a sign bit.  All Clifford gates and computational-basis
/// measurements are polynomial-time updates of this table, which is why the
/// paper can cite CHP as the fast special-purpose baseline for its
/// entanglement benchmark (Table V).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tableau {
    n: usize,
    /// `x[i][j]`: row `i` contains an X on qubit `j`.
    x: Vec<Vec<bool>>,
    /// `z[i][j]`: row `i` contains a Z on qubit `j`.
    z: Vec<Vec<bool>>,
    /// Sign bit of each row (`true` = −1).
    r: Vec<bool>,
}

/// The result of a measurement: whether the outcome was random, and the bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeasureKind {
    /// The outcome was deterministic (probability 1).
    Deterministic(bool),
    /// The outcome was uniformly random; the stored bit is the one chosen.
    Random(bool),
}

impl MeasureKind {
    /// The measured bit regardless of determinism.
    pub fn outcome(self) -> bool {
        match self {
            MeasureKind::Deterministic(b) | MeasureKind::Random(b) => b,
        }
    }
}

impl Tableau {
    /// Creates the tableau of the all-zeros state `|0…0⟩`.
    pub fn new(n: usize) -> Self {
        let rows = 2 * n;
        let mut t = Self {
            n,
            x: vec![vec![false; n]; rows],
            z: vec![vec![false; n]; rows],
            r: vec![false; rows],
        };
        for i in 0..n {
            t.x[i][i] = true; // destabilizer X_i
            t.z[n + i][i] = true; // stabilizer Z_i
        }
        t
    }

    /// The number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Hadamard on qubit `a`.
    pub fn h(&mut self, a: usize) {
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i][a] && self.z[i][a];
            std::mem::swap(&mut self.x[i][a], &mut self.z[i][a]);
        }
    }

    /// Phase gate S on qubit `a`.
    pub fn s(&mut self, a: usize) {
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i][a] && self.z[i][a];
            self.z[i][a] ^= self.x[i][a];
        }
    }

    /// Inverse phase gate S† (implemented as S³).
    pub fn sdg(&mut self, a: usize) {
        self.s(a);
        self.s(a);
        self.s(a);
    }

    /// Pauli-X on qubit `a`.
    pub fn x_gate(&mut self, a: usize) {
        for i in 0..2 * self.n {
            self.r[i] ^= self.z[i][a];
        }
    }

    /// Pauli-Z on qubit `a`.
    pub fn z_gate(&mut self, a: usize) {
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i][a];
        }
    }

    /// Pauli-Y on qubit `a`.
    pub fn y_gate(&mut self, a: usize) {
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i][a] ^ self.z[i][a];
        }
    }

    /// Controlled-NOT with control `a` and target `b`.
    pub fn cnot(&mut self, a: usize, b: usize) {
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i][a] && self.z[i][b] && (self.x[i][b] ^ self.z[i][a] ^ true);
            self.x[i][b] ^= self.x[i][a];
            self.z[i][a] ^= self.z[i][b];
        }
    }

    /// Controlled-Z with control `a` and target `b` (H·CNOT·H conjugation).
    pub fn cz(&mut self, a: usize, b: usize) {
        self.h(b);
        self.cnot(a, b);
        self.h(b);
    }

    /// Unconditional SWAP of qubits `a` and `b` (three CNOTs).
    pub fn swap(&mut self, a: usize, b: usize) {
        self.cnot(a, b);
        self.cnot(b, a);
        self.cnot(a, b);
    }

    /// The phase exponent contribution `g` of multiplying two single-qubit
    /// Paulis, as defined in the CHP paper.
    fn g(x1: bool, z1: bool, x2: bool, z2: bool) -> i32 {
        match (x1, z1) {
            (false, false) => 0,
            (true, true) => z2 as i32 - x2 as i32,
            (true, false) => (z2 as i32) * (2 * x2 as i32 - 1),
            (false, true) => (x2 as i32) * (1 - 2 * z2 as i32),
        }
    }

    /// Left-multiplies row `h` by row `i` (the CHP `rowsum` operation).
    fn rowsum(&mut self, h: usize, i: usize) {
        let mut phase = 2 * self.r[h] as i32 + 2 * self.r[i] as i32;
        for j in 0..self.n {
            phase += Self::g(self.x[i][j], self.z[i][j], self.x[h][j], self.z[h][j]);
        }
        self.r[h] = phase.rem_euclid(4) == 2;
        for j in 0..self.n {
            self.x[h][j] ^= self.x[i][j];
            self.z[h][j] ^= self.z[i][j];
        }
    }

    /// Like [`Tableau::rowsum`] but accumulating into a scratch row outside
    /// the tableau (used by deterministic measurements).
    fn rowsum_into(&self, scratch: &mut (Vec<bool>, Vec<bool>, bool), i: usize) {
        let (sx, sz, sr) = scratch;
        let mut phase = 2 * *sr as i32 + 2 * self.r[i] as i32;
        for j in 0..self.n {
            phase += Self::g(self.x[i][j], self.z[i][j], sx[j], sz[j]);
        }
        *sr = phase.rem_euclid(4) == 2;
        for j in 0..self.n {
            sx[j] ^= self.x[i][j];
            sz[j] ^= self.z[i][j];
        }
    }

    /// Returns `Some(outcome)` if measuring qubit `a` would be deterministic,
    /// `None` if the outcome would be uniformly random.  Does not modify the
    /// state.
    pub fn deterministic_outcome(&self, a: usize) -> Option<bool> {
        let random = (self.n..2 * self.n).any(|p| self.x[p][a]);
        if random {
            return None;
        }
        let mut scratch = (vec![false; self.n], vec![false; self.n], false);
        for i in 0..self.n {
            if self.x[i][a] {
                self.rowsum_into(&mut scratch, i + self.n);
            }
        }
        Some(scratch.2)
    }

    /// Measures qubit `a` in the computational basis.  When the outcome is
    /// random, `random_bit` is used as the result.
    pub fn measure(&mut self, a: usize, random_bit: bool) -> MeasureKind {
        let p = (self.n..2 * self.n).find(|&p| self.x[p][a]);
        match p {
            Some(p) => {
                // Random outcome.
                for i in 0..2 * self.n {
                    if i != p && self.x[i][a] {
                        self.rowsum(i, p);
                    }
                }
                // Destabilizer row p-n becomes the old stabilizer row p.
                let (xp, zp, rp) = (self.x[p].clone(), self.z[p].clone(), self.r[p]);
                self.x[p - self.n] = xp;
                self.z[p - self.n] = zp;
                self.r[p - self.n] = rp;
                self.x[p] = vec![false; self.n];
                self.z[p] = vec![false; self.n];
                self.z[p][a] = true;
                self.r[p] = random_bit;
                MeasureKind::Random(random_bit)
            }
            None => MeasureKind::Deterministic(
                self.deterministic_outcome(a)
                    .expect("no stabilizer anticommutes, outcome must be deterministic"),
            ),
        }
    }

    /// The probability of measuring `|1⟩` on qubit `a` (0, ½ or 1 for
    /// stabilizer states).
    pub fn probability_of_one(&self, a: usize) -> f64 {
        match self.deterministic_outcome(a) {
            Some(true) => 1.0,
            Some(false) => 0.0,
            None => 0.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_tableau_measures_all_zero() {
        let mut t = Tableau::new(4);
        for q in 0..4 {
            assert_eq!(t.probability_of_one(q), 0.0);
            assert_eq!(t.measure(q, true), MeasureKind::Deterministic(false));
        }
    }

    #[test]
    fn x_flips_a_qubit() {
        let mut t = Tableau::new(2);
        t.x_gate(1);
        assert_eq!(t.probability_of_one(1), 1.0);
        assert_eq!(t.probability_of_one(0), 0.0);
        assert_eq!(t.measure(1, false), MeasureKind::Deterministic(true));
    }

    #[test]
    fn hadamard_gives_uniform_outcome_and_collapses() {
        let mut t = Tableau::new(1);
        t.h(0);
        assert_eq!(t.probability_of_one(0), 0.5);
        let outcome = t.measure(0, true);
        assert_eq!(outcome, MeasureKind::Random(true));
        // After collapse, the outcome is pinned.
        assert_eq!(t.probability_of_one(0), 1.0);
        assert_eq!(t.measure(0, false), MeasureKind::Deterministic(true));
    }

    #[test]
    fn bell_state_correlations() {
        let mut t = Tableau::new(2);
        t.h(0);
        t.cnot(0, 1);
        assert_eq!(t.probability_of_one(0), 0.5);
        assert_eq!(t.probability_of_one(1), 0.5);
        // Measuring qubit 0 as 1 forces qubit 1 to 1.
        t.measure(0, true);
        assert_eq!(t.probability_of_one(1), 1.0);
    }

    #[test]
    fn ghz_chain_is_perfectly_correlated() {
        let n = 20;
        let mut t = Tableau::new(n);
        t.h(0);
        for q in 1..n {
            t.cnot(q - 1, q);
        }
        t.measure(0, false);
        for q in 1..n {
            assert_eq!(t.probability_of_one(q), 0.0);
        }
    }

    #[test]
    fn s_squared_is_z() {
        let mut t = Tableau::new(1);
        // H S S H |0⟩ = HZH |0⟩ = X |0⟩ = |1⟩.
        t.h(0);
        t.s(0);
        t.s(0);
        t.h(0);
        assert_eq!(t.probability_of_one(0), 1.0);
    }

    #[test]
    fn sdg_inverts_s() {
        let mut t = Tableau::new(1);
        t.h(0);
        t.s(0);
        t.sdg(0);
        t.h(0);
        assert_eq!(t.probability_of_one(0), 0.0);
    }

    #[test]
    fn cz_is_symmetric_and_hadamard_conjugate_of_cnot() {
        let mut a = Tableau::new(2);
        a.h(0);
        a.h(1);
        a.cz(0, 1);
        let mut b = Tableau::new(2);
        b.h(0);
        b.h(1);
        b.cz(1, 0);
        // CZ is symmetric in its operands; compare observable behaviour by
        // measuring in the X basis (H then measure).
        a.h(0);
        a.h(1);
        b.h(0);
        b.h(1);
        for q in 0..2 {
            assert_eq!(a.probability_of_one(q), b.probability_of_one(q));
        }
    }

    #[test]
    fn swap_moves_excitation() {
        let mut t = Tableau::new(3);
        t.x_gate(0);
        t.swap(0, 2);
        assert_eq!(t.probability_of_one(0), 0.0);
        assert_eq!(t.probability_of_one(2), 1.0);
    }

    #[test]
    fn y_gate_flips_like_x_up_to_phase() {
        let mut t = Tableau::new(1);
        t.y_gate(0);
        assert_eq!(t.probability_of_one(0), 1.0);
    }
}
