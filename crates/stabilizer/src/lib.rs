//! # sliq-stabilizer
//!
//! A CHP-style stabilizer (Clifford) circuit simulator after Aaronson and
//! Gottesman, "Improved simulation of stabilizer circuits" (2004).
//!
//! The paper uses CHP as the specialised point of comparison for its
//! entanglement benchmark: stabilizer circuits are efficiently simulatable
//! classically, so a general-purpose simulator should not be expected to beat
//! CHP there.  This crate provides that baseline, implemented from scratch on
//! a destabilizer/stabilizer tableau with exact 0/½/1 probabilities.
//!
//! ```
//! use sliq_stabilizer::Tableau;
//! let mut t = Tableau::new(2);
//! t.h(0);
//! t.cnot(0, 1);
//! assert_eq!(t.probability_of_one(1), 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod simulator;
mod tableau;

pub use simulator::StabilizerSimulator;
pub use tableau::{MeasureKind, Tableau};
