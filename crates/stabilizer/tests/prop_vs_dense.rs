//! Property test: on random Clifford circuits the stabilizer tableau must
//! produce the same marginal and joint probabilities as the dense oracle.

use proptest::prelude::*;
use sliq_circuit::{Circuit, Gate, Simulator};
use sliq_dense::DenseSimulator;
use sliq_stabilizer::StabilizerSimulator;

const NQ: usize = 4;

fn clifford_gate() -> impl Strategy<Value = Gate> {
    prop_oneof![
        (0..NQ).prop_map(Gate::X),
        (0..NQ).prop_map(Gate::Y),
        (0..NQ).prop_map(Gate::Z),
        (0..NQ).prop_map(Gate::H),
        (0..NQ).prop_map(Gate::S),
        (0..NQ).prop_map(Gate::Sdg),
        (0..NQ, 0..NQ)
            .prop_filter("distinct", |(a, b)| a != b)
            .prop_map(|(control, target)| Gate::Cnot { control, target }),
        (0..NQ, 0..NQ)
            .prop_filter("distinct", |(a, b)| a != b)
            .prop_map(|(control, target)| Gate::Cz { control, target }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn marginals_match_dense(gates in proptest::collection::vec(clifford_gate(), 0..40)) {
        let mut circuit = Circuit::new(NQ);
        circuit.extend(gates);
        let mut dense = DenseSimulator::new(NQ);
        let mut stab = StabilizerSimulator::new(NQ);
        dense.run(&circuit).unwrap();
        stab.run(&circuit).unwrap();
        for q in 0..NQ {
            let pd = dense.probability_of_one(q);
            let ps = stab.probability_of_one(q);
            prop_assert!((pd - ps).abs() < 1e-9, "qubit {} dense={} stab={}", q, pd, ps);
        }
    }

    #[test]
    fn joint_probabilities_match_dense(gates in proptest::collection::vec(clifford_gate(), 0..40), basis in 0usize..(1 << NQ)) {
        let mut circuit = Circuit::new(NQ);
        circuit.extend(gates);
        let mut dense = DenseSimulator::new(NQ);
        let mut stab = StabilizerSimulator::new(NQ);
        dense.run(&circuit).unwrap();
        stab.run(&circuit).unwrap();
        let bits: Vec<bool> = (0..NQ).map(|q| basis >> q & 1 == 1).collect();
        let pd = dense.probability_of_basis_state(&bits);
        let ps = stab.probability_of_basis_state(&bits);
        prop_assert!((pd - ps).abs() < 1e-9, "basis {:?} dense={} stab={}", bits, pd, ps);
    }

    #[test]
    fn forced_measurements_agree(gates in proptest::collection::vec(clifford_gate(), 0..30), q in 0..NQ) {
        let mut circuit = Circuit::new(NQ);
        circuit.extend(gates);
        let mut dense = DenseSimulator::new(NQ);
        let mut stab = StabilizerSimulator::new(NQ);
        dense.run(&circuit).unwrap();
        stab.run(&circuit).unwrap();
        // Force both backends toward outcome `true` whenever it is possible.
        let od = dense.measure_with(q, 0.0);
        let os = stab.measure_with(q, 0.0);
        prop_assert_eq!(od, os);
        // After collapse both agree on the marginal of every qubit.
        for k in 0..NQ {
            prop_assert!((dense.probability_of_one(k) - stab.probability_of_one(k)).abs() < 1e-9);
        }
    }
}
