//! Reordering ablation: peak/live node counts and wall-clock time of the
//! bit-sliced simulator on random Clifford+T circuits, fixed qubit-major
//! order versus automatic sifting.
//!
//! ```text
//! cargo run --release -p sliq-bench --example reorder_probe
//! ```

use sliq_circuit::Simulator;
use sliq_core::BitSliceSimulator;

fn main() {
    for &(q, seed) in &[(16usize, 1u64), (20, 1), (20, 2), (24, 1)] {
        let circuit = sliq_workloads::random::random_clifford_t(q, seed);
        let t0 = std::time::Instant::now();
        let mut fixed = BitSliceSimulator::new(q);
        fixed.run(&circuit).unwrap();
        let t_fixed = t0.elapsed().as_secs_f64();
        let t1 = std::time::Instant::now();
        let mut sifted = BitSliceSimulator::new(q).with_auto_reorder(true);
        sifted.run(&circuit).unwrap();
        let t_sifted = t1.elapsed().as_secs_f64();
        let sf = fixed.state().manager().stats();
        let ss = sifted.state().manager().stats();
        println!(
            "rc_t({q:>2}, seed {seed}): peak nodes {:>6} -> {:>6} ({:>4.1}% cut), \
             live {:>6} -> {:>5}, time {:.3}s -> {:.3}s \
             ({} reorders, {} swaps, {:.1} ms sifting)",
            sf.peak_nodes,
            ss.peak_nodes,
            100.0 * (1.0 - ss.peak_nodes as f64 / sf.peak_nodes as f64),
            fixed.node_count(),
            sifted.node_count(),
            t_fixed,
            t_sifted,
            ss.reorders,
            ss.reorder_swaps,
            ss.reorder_micros as f64 / 1000.0
        );
    }
}
