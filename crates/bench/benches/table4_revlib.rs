//! Criterion bench for Table IV (RevLib-like reversible circuits): original
//! circuits vs the superposition-modified variants on both symbolic backends.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sliq_circuit::Simulator;
use sliq_core::BitSliceSimulator;
use sliq_qmdd::QmddSimulator;
use sliq_workloads::revlib_like;

fn bench_table4(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_revlib");
    group.sample_size(10);
    let benchmarks = vec![
        revlib_like::ripple_carry_adder(6),
        revlib_like::equality_comparator(8),
        revlib_like::random_control_logic(18, 80, 11),
    ];
    for bench in benchmarks {
        for (variant, circuit) in [
            ("original", bench.circuit.clone()),
            ("modified", bench.with_superposition_inputs()),
        ] {
            let label = format!("{}-{variant}", bench.name);
            group.bench_with_input(
                BenchmarkId::new("bitslice", &label),
                &circuit,
                |b, circuit| {
                    b.iter(|| {
                        let mut sim = BitSliceSimulator::new(circuit.num_qubits());
                        sim.run(circuit).unwrap();
                        sim.node_count()
                    });
                },
            );
            group.bench_with_input(BenchmarkId::new("qmdd", &label), &circuit, |b, circuit| {
                b.iter(|| {
                    let mut sim = QmddSimulator::new(circuit.num_qubits());
                    sim.run(circuit).unwrap();
                    sim.node_count()
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
