//! Criterion bench for Table V (entanglement and Bernstein–Vazirani):
//! scaling of the three backends with qubit count on structured circuits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sliq_circuit::Simulator;
use sliq_core::BitSliceSimulator;
use sliq_qmdd::QmddSimulator;
use sliq_stabilizer::StabilizerSimulator;
use sliq_workloads::algorithms;

fn bench_entanglement(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5_entanglement");
    group.sample_size(10);
    for &qubits in &[32usize, 128, 512] {
        let circuit = algorithms::entanglement(qubits);
        group.bench_with_input(
            BenchmarkId::new("bitslice", qubits),
            &circuit,
            |b, circuit| {
                b.iter(|| {
                    let mut sim = BitSliceSimulator::new(circuit.num_qubits());
                    sim.run(circuit).unwrap();
                    sim.node_count()
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("qmdd", qubits), &circuit, |b, circuit| {
            b.iter(|| {
                let mut sim = QmddSimulator::new(circuit.num_qubits());
                sim.run(circuit).unwrap();
                sim.node_count()
            });
        });
        group.bench_with_input(BenchmarkId::new("chp", qubits), &circuit, |b, circuit| {
            b.iter(|| {
                let mut sim = StabilizerSimulator::new(circuit.num_qubits());
                sim.run(circuit).unwrap();
                sim.probability_of_one(0)
            });
        });
    }
    group.finish();
}

fn bench_bernstein_vazirani(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5_bv");
    group.sample_size(10);
    for &qubits in &[32usize, 128, 512] {
        let circuit = algorithms::bernstein_vazirani_all_ones(qubits);
        group.bench_with_input(
            BenchmarkId::new("bitslice", qubits),
            &circuit,
            |b, circuit| {
                b.iter(|| {
                    let mut sim = BitSliceSimulator::new(circuit.num_qubits());
                    sim.run(circuit).unwrap();
                    sim.node_count()
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("qmdd", qubits), &circuit, |b, circuit| {
            b.iter(|| {
                let mut sim = QmddSimulator::new(circuit.num_qubits());
                sim.run(circuit).unwrap();
                sim.node_count()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_entanglement, bench_bernstein_vazirani);
criterion_main!(benches);
