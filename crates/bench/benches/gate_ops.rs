//! Micro-benchmarks of individual gate applications (the cost model behind
//! Table II): permutation gates vs symbolic-adder gates on the bit-sliced
//! backend, compared with the QMDD and dense baselines on the same state.
//!
//! **Protocol note — parallelism.** The bit-sliced backend fans each gate's
//! slice updates across `SLIQ_THREADS` threads (the bench's `--threads`
//! knob; unset falls back to the machine's available parallelism, and `1`
//! is the serial kernel).  The effective width is printed at startup —
//! every BENCH entry derived from this harness must state it, because
//! single-gate timings are not comparable across thread counts.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use sliq_circuit::{Gate, Simulator};
use sliq_core::BitSliceSimulator;
use sliq_dense::DenseSimulator;
use sliq_qmdd::QmddSimulator;
use sliq_workloads::random;

const QUBITS: usize = 14;

fn prepared_circuit() -> sliq_circuit::Circuit {
    // A moderately entangled, non-trivial state to apply single gates to.
    random::random_clifford_t(QUBITS, 7)
}

fn bench_single_gates(c: &mut Criterion) {
    eprintln!(
        "# gate_ops protocol: bitslice threads = {} (set SLIQ_THREADS to change)",
        sliq_bdd::default_threads()
    );
    let mut group = c.benchmark_group("gate_ops");
    group.sample_size(20);
    let prep = prepared_circuit();
    let gates: Vec<(&str, Gate)> = vec![
        ("x", Gate::X(3)),
        ("h", Gate::H(3)),
        ("t", Gate::T(3)),
        ("s", Gate::S(3)),
        ("y", Gate::Y(3)),
        (
            "cx",
            Gate::Cnot {
                control: 2,
                target: 9,
            },
        ),
        (
            "cz",
            Gate::Cz {
                control: 2,
                target: 9,
            },
        ),
        (
            "ccx",
            Gate::Toffoli {
                controls: vec![1, 5],
                target: 10,
            },
        ),
    ];

    // SLIQ_AUTO_REORDER=1 (the CI bench-smoke job sets it) runs the whole
    // preparation and every timed gate with automatic sifting armed, so the
    // reorder path is exercised end-to-end on every push.
    let mut bitslice =
        BitSliceSimulator::new(QUBITS).with_auto_reorder(sliq_bench::auto_reorder_env());
    bitslice.run(&prep).unwrap();
    let mut qmdd = QmddSimulator::new(QUBITS);
    qmdd.run(&prep).unwrap();
    let mut dense = DenseSimulator::new(QUBITS);
    dense.run(&prep).unwrap();

    for (name, gate) in &gates {
        // The clone that resets the state between iterations is setup, not
        // gate cost: keep it out of the timings with iter_batched.  The
        // setup also runs a GC, which clears the operation caches (in every
        // kernel) — so the timed region measures the cost of *applying* the
        // gate, not of re-reading memoised results left over from the
        // preparation circuit.
        group.bench_with_input(BenchmarkId::new("bitslice", name), gate, |b, gate| {
            b.iter_batched(
                || {
                    let mut sim = bitslice.clone();
                    sim.state_mut().collect_garbage();
                    sim
                },
                |mut sim| {
                    sim.apply_gate(gate).unwrap();
                    sim.width()
                },
                BatchSize::SmallInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("dense", name), gate, |b, gate| {
            b.iter_batched(
                || dense.clone(),
                |mut sim| {
                    sim.apply_gate(gate).unwrap();
                    sim.num_qubits()
                },
                BatchSize::SmallInput,
            );
        });
    }
    // The QMDD manager is not cheaply clonable; re-run the preparation inside
    // the iteration only for a single representative gate to keep the bench
    // honest but affordable.
    group.bench_function("qmdd/h_after_prep", |b| {
        b.iter(|| {
            let mut sim = QmddSimulator::new(QUBITS);
            sim.run(&prep).unwrap();
            sim.apply_gate(&Gate::H(3)).unwrap();
            sim.node_count()
        });
    });
    let _ = qmdd;
    group.finish();

    // Surface the kernel's cache behaviour next to the timings, so perf PRs
    // can tell whether a regression is a hit-rate problem or a per-op one.
    println!("\nBDD kernel cache statistics for the preparation circuit:");
    print!(
        "{}",
        sliq_bench::kernel_stats_report(&bitslice.state().manager().stats())
    );
}

criterion_group!(benches, bench_single_gates);
criterion_main!(benches);
