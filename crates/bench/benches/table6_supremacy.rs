//! Criterion bench for Table VI (GRCS supremacy circuits): the hard,
//! entanglement-heavy family where both symbolic backends eventually give
//! out; measured here at laptop-sized lattices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sliq_circuit::Simulator;
use sliq_core::BitSliceSimulator;
use sliq_qmdd::QmddSimulator;
use sliq_workloads::supremacy::{supremacy_circuit, Lattice};

fn bench_table6(c: &mut Criterion) {
    let mut group = c.benchmark_group("table6_supremacy");
    group.sample_size(10);
    for (rows, cols) in [(3usize, 3usize), (3, 4), (4, 4)] {
        let lattice = Lattice::new(rows, cols);
        let circuit = supremacy_circuit(lattice, 5, 1);
        let qubits = lattice.num_qubits();
        group.bench_with_input(
            BenchmarkId::new("bitslice", qubits),
            &circuit,
            |b, circuit| {
                b.iter(|| {
                    let mut sim = BitSliceSimulator::new(circuit.num_qubits());
                    sim.run(circuit).unwrap();
                    sim.node_count()
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("qmdd", qubits), &circuit, |b, circuit| {
            b.iter(|| {
                let mut sim = QmddSimulator::new(circuit.num_qubits());
                sim.run(circuit).unwrap();
                sim.node_count()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table6);
criterion_main!(benches);
