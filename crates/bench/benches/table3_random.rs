//! Criterion bench for Table III (random Clifford+T circuits): full-circuit
//! simulation time of the QMDD baseline vs the bit-sliced BDD simulator as a
//! function of qubit count, at the paper's 3:1 gate/qubit ratio.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sliq_circuit::Simulator;
use sliq_core::BitSliceSimulator;
use sliq_qmdd::QmddSimulator;
use sliq_workloads::random;

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_random");
    group.sample_size(10);
    for &qubits in &[8usize, 12, 16, 20] {
        let circuit = random::random_clifford_t(qubits, 1);
        group.bench_with_input(
            BenchmarkId::new("bitslice", qubits),
            &circuit,
            |b, circuit| {
                b.iter(|| {
                    let mut sim = BitSliceSimulator::new(circuit.num_qubits());
                    sim.run(circuit).unwrap();
                    sim.node_count()
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("qmdd", qubits), &circuit, |b, circuit| {
            b.iter(|| {
                let mut sim = QmddSimulator::new(circuit.num_qubits());
                sim.run(circuit).unwrap();
                sim.node_count()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
