//! Criterion bench for Table III (random Clifford+T circuits): full-circuit
//! simulation time of the QMDD baseline vs the bit-sliced BDD simulator as a
//! function of qubit count, at the paper's 3:1 gate/qubit ratio.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sliq_circuit::Simulator;
use sliq_core::BitSliceSimulator;
use sliq_qmdd::QmddSimulator;
use sliq_workloads::random;

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_random");
    group.sample_size(10);
    for &qubits in &[8usize, 12, 16, 20, 24] {
        let circuit = random::random_clifford_t(qubits, 1);
        group.bench_with_input(
            BenchmarkId::new("bitslice", qubits),
            &circuit,
            |b, circuit| {
                b.iter(|| {
                    let mut sim = BitSliceSimulator::new(circuit.num_qubits());
                    sim.run(circuit).unwrap();
                    sim.node_count()
                });
            },
        );
        // The reordering rows: same circuits with automatic sifting armed,
        // so the 20+-qubit blow-up of the fixed qubit-major order (and the
        // auto-reorder trigger that tames it) is actually measured.
        if qubits >= 20 {
            group.bench_with_input(
                BenchmarkId::new("bitslice_reorder", qubits),
                &circuit,
                |b, circuit| {
                    b.iter(|| {
                        let mut sim =
                            BitSliceSimulator::new(circuit.num_qubits()).with_auto_reorder(true);
                        sim.run(circuit).unwrap();
                        sim.node_count()
                    });
                },
            );
        }
        group.bench_with_input(BenchmarkId::new("qmdd", qubits), &circuit, |b, circuit| {
            b.iter(|| {
                let mut sim = QmddSimulator::new(circuit.num_qubits());
                sim.run(circuit).unwrap();
                sim.node_count()
            });
        });
    }
    group.finish();

    // Peak-node ablation for the reordering rows (printed, not timed): the
    // number sifting is meant to shrink.
    for &qubits in &[20usize, 24] {
        let circuit = random::random_clifford_t(qubits, 1);
        let mut fixed = BitSliceSimulator::new(qubits);
        fixed.run(&circuit).unwrap();
        let mut sifted = BitSliceSimulator::new(qubits).with_auto_reorder(true);
        sifted.run(&circuit).unwrap();
        let fixed_stats = fixed.state().manager().stats();
        let sifted_stats = sifted.state().manager().stats();
        println!(
            "random_clifford_t({qubits}): peak nodes {} fixed-order vs {} auto-reorder \
             ({} reorders, {} swaps)",
            fixed_stats.peak_nodes,
            sifted_stats.peak_nodes,
            sifted_stats.reorders,
            sifted_stats.reorder_swaps
        );
    }
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
