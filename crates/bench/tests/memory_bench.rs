//! Acceptance tests for the compact level-segregated node layout: the
//! `tables -- memory` sweep must be well-formed, and (gated behind
//! `SLIQ_PERF_TEST=1`, release profile) the compact layout must cut
//! bytes/node on `random_clifford_t(24)` by at least the 25% acceptance
//! bar versus the pre-compaction layout's spend on the same population.

use sliq_bench::tables::{format_memory, memory_geomean_bytes_per_node, memory_rows, Scale};
use sliq_bench::{run_case, Backend, CaseLimits, CaseStatus};
use std::sync::Mutex;
use std::time::Duration;

/// Serialises the tests in this file: one pokes the process-global
/// `SLIQ_BENCH_SMOKE` variable that selects the sweep's workload sizes.
static ENV_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn smoke_memory_sweep_is_well_formed() {
    let _guard = ENV_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    std::env::set_var("SLIQ_BENCH_SMOKE", "1");
    let rows = memory_rows(Scale::Quick, CaseLimits::default());
    std::env::remove_var("SLIQ_BENCH_SMOKE");

    // Smoke scale: two random sizes × one seed, one RevLib circuit.
    assert_eq!(rows.len(), 3, "{rows:?}");
    for row in &rows {
        assert!(row.allocated_nodes > 0, "{}: no nodes reported", row.name);
        assert!(row.bytes_per_node > 0.0);
        assert!(
            row.legacy_bytes_per_node > row.bytes_per_node,
            "{}: compact layout must beat the legacy layout",
            row.name
        );
        assert!(row.peak_bytes > 0);
    }
    let geomean = memory_geomean_bytes_per_node(&rows).expect("completed rows");
    assert!(geomean > 0.0);
    let rendered = format_memory(&rows);
    for needle in ["MEMORY", "B/node", "legacy", "peak bytes", "geomean"] {
        assert!(
            rendered.contains(needle),
            "missing {needle:?} in:\n{rendered}"
        );
    }
}

/// Gated acceptance (`SLIQ_PERF_TEST=1`, release profile): ≥25% bytes/node
/// reduction on the 24-qubit random Clifford+T workload versus the
/// pre-compaction layout (12-byte node cells, 8-byte unique-table slots).
#[test]
fn perf_compact_layout_cuts_25pct_bytes_per_node_on_rc_t_24() {
    if std::env::var_os("SLIQ_PERF_TEST").is_none() {
        eprintln!("skipped (set SLIQ_PERF_TEST=1 to run the memory acceptance test)");
        return;
    }
    let _guard = ENV_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let circuit = sliq_workloads::random::random_clifford_t(24, 1);
    let limits = CaseLimits {
        timeout: Duration::from_secs(300),
        ..CaseLimits::default()
    };
    let result = run_case(Backend::BitSlice, &circuit, limits);
    assert_eq!(result.status, CaseStatus::Completed, "{result:?}");
    let stats = result.bdd_stats.expect("bit-sliced backend reports stats");
    let compact = stats.bytes_per_node();
    let arena_cells = stats.arena_cell_bytes / 8;
    let legacy =
        (12 * arena_cells + 2 * stats.subtable_bytes) as f64 / stats.allocated_nodes as f64;
    assert!(
        compact <= 0.75 * legacy,
        "compact layout must cut >= 25% bytes/node on random_clifford_t(24): \
         compact {compact:.1} vs legacy {legacy:.1} ({:.1}% cut)",
        100.0 * (1.0 - compact / legacy)
    );
}
