//! Integration tests for the `tables -- cache` serving benchmark: the
//! report must be well-formed at smoke scale, and (gated behind
//! `SLIQ_PERF_TEST=1`, release profile) the warm pass must beat the cold
//! pass by at least the 10× acceptance bar on the skewed request mix.

use sliq_bench::{cache_report, format_cache, CaseLimits, Scale};
use std::sync::Mutex;

/// Serialises the tests in this file: both poke the process-global
/// `SLIQ_BENCH_SMOKE` variable that selects the benchmark's request count.
static ENV_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn smoke_cache_report_is_well_formed() {
    let _guard = ENV_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    std::env::set_var("SLIQ_BENCH_SMOKE", "1");
    let report = cache_report(Scale::Quick, CaseLimits::default());

    assert_eq!(report.requests, 24, "smoke scale serves 24 requests");
    assert_eq!(report.shots, 256, "smoke scale samples 256 shots");
    assert!(!report.population.is_empty());
    let total_share: f64 = report.population.iter().map(|(_, _, share)| share).sum();
    assert!(
        (total_share - 1.0).abs() < 1e-9,
        "population shares must sum to 1, got {total_share}"
    );
    assert!(report.cold_secs > 0.0 && report.warming_secs > 0.0 && report.warm_secs > 0.0);
    assert!(report.cold_rps() > 0.0 && report.warm_rps() > 0.0);

    // Fully warm: every request hit, nothing was evicted from the 64 MiB
    // benchmark cache by this tiny population.
    assert!(report.stats.hits as usize >= report.requests);
    assert_eq!(report.stats.evictions, 0);
    assert!(report.stats.entries > 0);
    assert!(report.stats.bytes <= report.stats.capacity_bytes);

    let rendered = format_cache(&report);
    for needle in [
        "RESULT CACHE",
        "no cache",
        "all hits",
        "speedup",
        "hit-rate",
    ] {
        assert!(
            rendered.contains(needle),
            "missing {needle:?} in:\n{rendered}"
        );
    }
}

/// Gated acceptance (`SLIQ_PERF_TEST=1`, release profile): on the skewed
/// Zipf-ish mix the warm requests/s must exceed the cold requests/s by at
/// least 10×.
#[test]
fn perf_warm_rps_is_10x_cold() {
    if std::env::var_os("SLIQ_PERF_TEST").is_none() {
        eprintln!("skipped (set SLIQ_PERF_TEST=1 to run the wall-clock acceptance test)");
        return;
    }
    let _guard = ENV_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    std::env::remove_var("SLIQ_BENCH_SMOKE");
    let report = cache_report(Scale::Quick, CaseLimits::default());
    let speedup = report.warm_speedup();
    assert!(
        speedup >= 10.0,
        "warm serving must be >= 10x cold: cold {:.1} req/s vs warm {:.1} req/s = {speedup:.1}x",
        report.cold_rps(),
        report.warm_rps()
    );
}
