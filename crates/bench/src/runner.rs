//! Per-case execution with wall-clock timeouts and resource limits,
//! emulating the paper's experimental protocol (7200 s time-out and 2 GB
//! memory-out per case, scaled down to interactive sizes).
//!
//! All backend construction and execution goes through the
//! [`sliq_exec::Session`] API; this module only adds the wall-clock timeout
//! (a worker thread per case) and the paper-style `TO/MO/err` aggregation
//! on top.

use sliq_circuit::Circuit;
use sliq_exec::{ExecError, Session, SessionConfig};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// The simulator backends the harness can drive — the executor layer's
/// backend registry (`Auto` resolves per circuit).
pub use sliq_exec::BackendKind as Backend;

/// Outcome status of one benchmark case.
#[derive(Debug, Clone, PartialEq)]
pub enum CaseStatus {
    /// Completed; wall-clock seconds.
    Completed,
    /// Exceeded the wall-clock limit.
    TimedOut,
    /// Exceeded the node/memory limit (the paper's "MO").
    MemoryOut,
    /// The backend rejected the circuit (e.g. non-Clifford gate on CHP) or
    /// reported a numerical error.
    Error(String),
}

/// The result of running one circuit on one backend.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Which backend ran.
    pub backend: Backend,
    /// Completion status.
    pub status: CaseStatus,
    /// Wall-clock seconds (time until completion, limit hit or error).
    pub seconds: f64,
    /// Approximate peak memory of the state representation in MiB
    /// (node-count based for the symbolic backends, vector size for dense).
    pub memory_mib: f64,
    /// Deviation of the total probability from 1 (the paper flags a case as
    /// "error" when the probabilities no longer sum to one).
    pub probability_error: f64,
    /// BDD kernel counters (only populated by the bit-sliced backend):
    /// per-operation-cache hits/misses/evictions, GC runs and node totals.
    pub bdd_stats: Option<sliq_bdd::ManagerStats>,
}

impl CaseResult {
    /// Formats the runtime column like the paper ("MO", "TO", "error", or
    /// seconds).
    pub fn time_cell(&self) -> String {
        match &self.status {
            CaseStatus::Completed => format!("{:.2}", self.seconds),
            CaseStatus::TimedOut => "TO".to_string(),
            CaseStatus::MemoryOut => "MO".to_string(),
            CaseStatus::Error(_) => "error".to_string(),
        }
    }
}

/// Limits applied to a single case.
#[derive(Debug, Clone, Copy)]
pub struct CaseLimits {
    /// Wall-clock limit per case.
    pub timeout: Duration,
    /// Node limit for the symbolic backends (emulates the 2 GB memory-out).
    pub max_nodes: usize,
    /// Byte budget for the backend state (`None` = unlimited): the
    /// bit-sliced kernel accounts arena + subtables + op caches against it
    /// at run time, and the dense backend's projected footprint is checked
    /// at admission.  An exceeded budget reports the row as "MO" like the
    /// node limit does.
    pub max_bytes: Option<usize>,
    /// Enables automatic variable reordering on the bit-sliced backend
    /// (sifting when the live BDD outgrows the kernel's trigger).  Also
    /// forced on by the `SLIQ_AUTO_REORDER` environment variable, which the
    /// CI bench-smoke job uses to exercise the reorder path.
    pub auto_reorder: bool,
    /// Parallel-apply fan-out width for the bit-sliced backend (`--threads`
    /// on the `tables` binary).  `None` defers to `SLIQ_THREADS` / the
    /// machine default, so BENCH entries should always state the effective
    /// value.
    pub threads: Option<usize>,
    /// Forces the bit-sliced backend onto the shared (CAS/seqlock) kernel
    /// flavour even for 1-thread cases, which would otherwise select the
    /// unsynchronized serial fast path.  The kernel report runs each case
    /// both ways at one thread to measure the synchronization tax
    /// (`serial_overhead`).
    pub force_shared_kernel: bool,
    /// Attaches the process-wide canonical-circuit result cache to every
    /// session (`--cache` on the `tables` binary): repeated cases are then
    /// served from memoised results, and the kernel report prints the
    /// cache's hit/miss/eviction counters.
    pub use_result_cache: bool,
}

impl Default for CaseLimits {
    fn default() -> Self {
        Self {
            timeout: Duration::from_secs(20),
            max_nodes: 2_000_000,
            max_bytes: None,
            auto_reorder: false,
            threads: None,
            force_shared_kernel: false,
            use_result_cache: false,
        }
    }
}

/// `true` when the `SLIQ_AUTO_REORDER` environment variable asks for
/// reordering regardless of the per-case configuration.
pub fn auto_reorder_env() -> bool {
    std::env::var_os("SLIQ_AUTO_REORDER").is_some_and(|v| !v.is_empty() && v != "0")
}

/// `true` when the `SLIQ_BENCH_SMOKE` environment variable asks for a
/// single-iteration smoke run (shared convention with the criterion shim).
pub fn bench_smoke_env() -> bool {
    std::env::var_os("SLIQ_BENCH_SMOKE").is_some_and(|v| !v.is_empty() && v != "0")
}

impl CaseLimits {
    /// The [`SessionConfig`] equivalent of these limits for `backend`.
    pub fn session_config(&self, backend: Backend) -> SessionConfig {
        let mut config = SessionConfig::with_backend(backend)
            .max_nodes(self.max_nodes)
            .auto_reorder(self.auto_reorder || auto_reorder_env())
            .force_shared_kernel(self.force_shared_kernel)
            .result_cache(self.use_result_cache);
        if let Some(max_bytes) = self.max_bytes {
            config = config.max_bytes(max_bytes);
        }
        if let Some(threads) = self.threads {
            config = config.threads(threads);
        }
        config
    }
}

type BackendOutcome = (CaseStatus, f64, f64, Option<sliq_bdd::ManagerStats>);

fn run_backend(backend: Backend, circuit: &Circuit, limits: CaseLimits) -> BackendOutcome {
    let config = limits.session_config(backend);
    let mut session = match Session::new(circuit.num_qubits(), config) {
        // A hard qubit-capacity miss is the moral equivalent of the paper's
        // memory-out (the dense vector would not fit).
        Err(ExecError::CapacityExceeded { .. }) => {
            return (CaseStatus::MemoryOut, f64::INFINITY, f64::NAN, None)
        }
        Err(e) => return (CaseStatus::Error(e.to_string()), 0.0, f64::NAN, None),
        Ok(session) => session,
    };
    match session.run(circuit) {
        Ok(result) => (
            CaseStatus::Completed,
            result.stats.memory_mib,
            result.probability_error(),
            result.stats.bdd,
        ),
        Err(err) => {
            // Both limit flavours are the paper's "MO": the session survived
            // the overshoot (graceful degradation), so its stats are real.
            let stats = session.stats();
            let status = match err {
                ExecError::Resource { .. } | ExecError::CapacityExceeded { .. } => {
                    CaseStatus::MemoryOut
                }
                other => CaseStatus::Error(other.to_string()),
            };
            (status, stats.memory_mib, f64::NAN, stats.bdd)
        }
    }
}

/// Runs `circuit` on `backend` under the given limits, enforcing the
/// wall-clock timeout in a worker thread.
pub fn run_case(backend: Backend, circuit: &Circuit, limits: CaseLimits) -> CaseResult {
    let (tx, rx) = mpsc::channel();
    let circuit = circuit.clone();
    let start = Instant::now();
    std::thread::spawn(move || {
        let result = run_backend(backend, &circuit, limits);
        // The receiver may have given up already; ignore the send error.
        let _ = tx.send(result);
    });
    match rx.recv_timeout(limits.timeout) {
        Ok((status, memory_mib, probability_error, bdd_stats)) => CaseResult {
            backend,
            status,
            seconds: start.elapsed().as_secs_f64(),
            memory_mib,
            probability_error,
            bdd_stats,
        },
        Err(_) => CaseResult {
            backend,
            status: CaseStatus::TimedOut,
            seconds: limits.timeout.as_secs_f64(),
            memory_mib: f64::NAN,
            probability_error: f64::NAN,
            bdd_stats: None,
        },
    }
}

/// Renders the BDD kernel counters of a bit-sliced case as a small table:
/// one line per operation cache plus node/GC totals, so perf work has a
/// hit-rate baseline to compare against.
pub fn kernel_stats_report(stats: &sliq_bdd::ManagerStats) -> String {
    let mut out = String::new();
    let mut line = |name: &str, c: &sliq_bdd::CacheStats| {
        out.push_str(&format!(
            "  {name:<9} hits {:>10}  misses {:>10}  evictions {:>9}  hit-rate {:>5.1}%\n",
            c.hits,
            c.misses,
            c.evictions,
            100.0 * c.hit_rate()
        ));
    };
    for (name, cache) in stats.caches() {
        line(name, cache);
    }
    line("TOTAL", &stats.total_cache());
    out.push_str(&format!(
        "  nodes created {}  peak {}  unique-resizes {}  gc-runs {}\n",
        stats.created_nodes, stats.peak_nodes, stats.unique_resizes, stats.gc_runs
    ));
    out.push_str(&format!(
        "  bytes/node {:.1}  current bytes {}  peak bytes {}  chunks reclaimed {}\n",
        stats.bytes_per_node(),
        stats.current_bytes,
        stats.peak_bytes,
        stats.chunks_reclaimed
    ));
    out.push_str(&format!(
        "  O(1) negations {}  complement canonical flips {}  cache-cap 2^{} (raised {}x)\n",
        stats.not_ops, stats.complement_flips, stats.cache_cap_log2, stats.cache_cap_raises
    ));
    out.push_str(&format!(
        "  kernel mode {:?}  unique shards {}  CAS retries {}  lost mk races {}  cache store skips {}\n",
        stats.kernel_mode,
        stats.unique_shards,
        stats.unique_cas_retries,
        stats.unique_dup_races,
        stats.cache_write_skips
    ));
    if stats.reorders > 0 {
        out.push_str(&format!(
            "  reorders {}  swaps {} (pooled batches {})  last size {} -> {}  total reorder time {:.1} ms\n",
            stats.reorders,
            stats.reorder_swaps,
            stats.reorder_parallel_batches,
            stats.reorder_last_before,
            stats.reorder_last_after,
            stats.reorder_micros as f64 / 1000.0
        ));
    }
    out
}

/// Aggregates results of several cases (e.g. the 10 random circuits per row
/// of Table III): average runtime over completed cases plus failure counts.
#[derive(Debug, Clone, Default)]
pub struct RowSummary {
    /// Number of completed cases.
    pub completed: usize,
    /// Number of timed-out cases.
    pub timed_out: usize,
    /// Number of memory-out cases.
    pub memory_out: usize,
    /// Number of error cases.
    pub errors: usize,
    /// Mean runtime over completed cases.
    pub mean_seconds: f64,
    /// Mean memory over all cases with a finite estimate.
    pub mean_memory_mib: f64,
}

impl RowSummary {
    /// Builds a summary from individual case results.
    pub fn from_cases(cases: &[CaseResult]) -> Self {
        let mut summary = RowSummary::default();
        let mut total_time = 0.0;
        let mut total_mem = 0.0;
        let mut mem_samples = 0usize;
        for case in cases {
            match &case.status {
                CaseStatus::Completed => {
                    summary.completed += 1;
                    total_time += case.seconds;
                }
                CaseStatus::TimedOut => summary.timed_out += 1,
                CaseStatus::MemoryOut => summary.memory_out += 1,
                CaseStatus::Error(_) => summary.errors += 1,
            }
            if case.memory_mib.is_finite() {
                total_mem += case.memory_mib;
                mem_samples += 1;
            }
        }
        if summary.completed > 0 {
            summary.mean_seconds = total_time / summary.completed as f64;
        }
        if mem_samples > 0 {
            summary.mean_memory_mib = total_mem / mem_samples as f64;
        }
        summary
    }

    /// The paper's runtime cell: mean seconds over successes, or "failed".
    pub fn time_cell(&self) -> String {
        if self.completed == 0 {
            "failed".to_string()
        } else {
            format!("{:.2}", self.mean_seconds)
        }
    }

    /// The paper's `TO/MO/err.` cell.
    pub fn failure_cell(&self) -> String {
        format!("{}/{}/{}", self.timed_out, self.memory_out, self.errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sliq_circuit::Simulator;
    use sliq_core::BitSliceSimulator;
    use sliq_workloads::algorithms;

    #[test]
    fn completed_case_reports_time_and_memory() {
        let circuit = algorithms::ghz(12);
        let result = run_case(Backend::BitSlice, &circuit, CaseLimits::default());
        assert_eq!(result.status, CaseStatus::Completed);
        assert!(result.seconds < 20.0);
        assert!(result.memory_mib >= 0.0);
        assert!(result.probability_error < 1e-9);
    }

    #[test]
    fn bitslice_case_reports_kernel_cache_stats() {
        // A Clifford+T circuit re-uses subfunctions, so the kernel caches
        // must report a nonzero hit rate (GHZ alone is all compulsory
        // misses).
        let circuit = sliq_workloads::random::random_clifford_t(10, 3);
        let result = run_case(Backend::BitSlice, &circuit, CaseLimits::default());
        let stats = result.bdd_stats.expect("bit-sliced backend reports stats");
        let total = stats.total_cache();
        assert!(total.hits + total.misses > 0, "kernel did cached work");
        assert!(stats.cache_hit_rate() > 0.0, "nonzero cache hit rate");
        assert!(!kernel_stats_report(&stats).is_empty());
        // The other backends have no BDD kernel to report on.
        let dense = run_case(Backend::Dense, &circuit, CaseLimits::default());
        assert!(dense.bdd_stats.is_none());
    }

    #[test]
    fn auto_reorder_cuts_peak_nodes_on_random_clifford_t_20() {
        // The reordering acceptance bar: sifting must reduce the peak live
        // node count on the 20-qubit random Clifford+T workload by >= 20%
        // versus the fixed qubit-major order, while producing the identical
        // (exactly normalised) state.
        let circuit = sliq_workloads::random::random_clifford_t(20, 1);
        let mut fixed = BitSliceSimulator::new(20);
        fixed.run(&circuit).unwrap();
        let mut sifted = BitSliceSimulator::new(20).with_auto_reorder(true);
        sifted.run(&circuit).unwrap();
        let peak_fixed = fixed.state().manager().stats().peak_nodes;
        let peak_sifted = sifted.state().manager().stats().peak_nodes;
        assert!(
            sifted.state().manager().stats().reorders > 0,
            "the auto-reorder trigger must fire on this workload"
        );
        assert!(
            peak_sifted * 5 <= peak_fixed * 4,
            "sifting must cut peak nodes by >= 20%: fixed {peak_fixed} vs sifted {peak_sifted}"
        );
        // The state itself is untouched by reordering.
        assert!(sifted.is_exactly_normalized());
        assert!((sifted.total_probability() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stabilizer_rejects_t_gates_as_an_error() {
        let mut circuit = sliq_circuit::Circuit::new(2);
        circuit.h(0).t(0);
        let result = run_case(Backend::Stabilizer, &circuit, CaseLimits::default());
        assert!(matches!(result.status, CaseStatus::Error(_)));
        assert_eq!(result.time_cell(), "error");
    }

    #[test]
    fn node_limit_produces_memory_out() {
        let circuit = sliq_workloads::random::random_clifford_t(14, 3);
        let limits = CaseLimits {
            timeout: Duration::from_secs(30),
            max_nodes: 64,
            ..CaseLimits::default()
        };
        let result = run_case(Backend::Qmdd, &circuit, limits);
        assert_eq!(result.status, CaseStatus::MemoryOut);
        assert_eq!(result.time_cell(), "MO");
    }

    #[test]
    fn byte_budget_produces_memory_out_not_a_panic() {
        // The bit-sliced kernel's own byte accounting must surface as a
        // reported "MO" row — the CapacityExceeded arm, not a crash — and
        // the session's post-overshoot stats must still be collected.
        let circuit = sliq_workloads::random::random_clifford_t(14, 3);
        let limits = CaseLimits {
            timeout: Duration::from_secs(30),
            max_bytes: Some(16 * 1024),
            ..CaseLimits::default()
        };
        let result = run_case(Backend::BitSlice, &circuit, limits);
        assert_eq!(result.status, CaseStatus::MemoryOut);
        assert_eq!(result.time_cell(), "MO");
        assert!(result.memory_mib > 0.0, "stats survive the overshoot");
        assert!(result.bdd_stats.is_some());
    }

    #[test]
    fn dense_backend_reports_memory_out_beyond_its_limit() {
        let circuit = algorithms::ghz(64);
        let result = run_case(Backend::Dense, &circuit, CaseLimits::default());
        assert_eq!(result.status, CaseStatus::MemoryOut);
    }

    #[test]
    fn row_summary_aggregates_counts() {
        let circuit = algorithms::ghz(10);
        let cases: Vec<CaseResult> = (0..3)
            .map(|_| run_case(Backend::BitSlice, &circuit, CaseLimits::default()))
            .chain(std::iter::once(run_case(
                Backend::Dense,
                &algorithms::ghz(40),
                CaseLimits::default(),
            )))
            .collect();
        let summary = RowSummary::from_cases(&cases);
        assert_eq!(summary.completed, 3);
        assert_eq!(summary.memory_out, 1);
        assert_eq!(summary.failure_cell(), "0/1/0");
        assert!(summary.time_cell() != "failed");
    }
}
