//! Command-line harness that regenerates the paper's evaluation tables.
//!
//! ```text
//! cargo run -p sliq-bench --release --bin tables -- [table3|table4|table5|table6|accuracy|ablation|sample|kernel|all]
//!                                                   [--full] [--timeout <secs>] [--max-nodes <n>] [--reorder]
//!                                                   [--threads <n>]
//! ```
//!
//! By default a quick, laptop-sized sweep is run; `--full` uses sizes closer
//! to the paper's regime (expect several minutes).

use sliq_bench::tables::{
    accuracy_rows, bitwidth_rows, format_accuracy, format_bitwidth, format_sample, format_table3,
    format_table4, format_table5, format_table6, sample_rows, table3_rows, table4_rows,
    table5_rows, table6_rows, Scale,
};
use sliq_bench::CaseLimits;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut scale = Scale::Quick;
    let mut limits = CaseLimits::default();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--full" => scale = Scale::Full,
            "--quick" => scale = Scale::Quick,
            "--timeout" => {
                if let Some(v) = iter.next().and_then(|s| s.parse::<u64>().ok()) {
                    limits.timeout = Duration::from_secs(v);
                }
            }
            "--max-nodes" => {
                if let Some(v) = iter.next().and_then(|s| s.parse::<usize>().ok()) {
                    limits.max_nodes = v;
                }
            }
            "--reorder" => limits.auto_reorder = true,
            "--threads" => {
                if let Some(v) = iter.next().and_then(|s| s.parse::<usize>().ok()) {
                    limits.threads = Some(v);
                }
            }
            other => which.push(other.to_string()),
        }
    }
    if which.is_empty() {
        which.push("all".to_string());
    }
    let wants = |name: &str| {
        which
            .iter()
            .any(|w| w.eq_ignore_ascii_case(name) || w.eq_ignore_ascii_case("all"))
    };

    println!(
        "# SliQ table reproduction — scale: {:?}, per-case timeout: {:?}, node limit: {}, threads: {}",
        scale,
        limits.timeout,
        limits.max_nodes,
        limits
            .threads
            .unwrap_or_else(sliq_bdd::pool::default_threads)
    );
    println!();

    if wants("table3") {
        let rows = table3_rows(scale, limits);
        println!("{}", format_table3(&rows));
    }
    if wants("table4") {
        let rows = table4_rows(scale, limits);
        println!("{}", format_table4(&rows));
    }
    if wants("table5") {
        let rows = table5_rows(scale, limits);
        println!("{}", format_table5(&rows));
    }
    if wants("table6") {
        let rows = table6_rows(scale, limits);
        println!("{}", format_table6(&rows));
    }
    if wants("accuracy") {
        let rows = accuracy_rows(scale);
        println!("{}", format_accuracy(&rows));
    }
    if wants("ablation") {
        let rows = bitwidth_rows(scale);
        println!("{}", format_bitwidth(&rows));
    }
    if wants("sample") {
        let rows = sample_rows(scale, limits);
        println!("{}", format_sample(&rows));
    }
    if wants("kernel") {
        print_kernel_report(limits);
    }
}

/// Runs representative bit-sliced cases and prints the BDD kernel's
/// per-cache hit/miss/eviction counters (plus reorder statistics when
/// `--reorder` / `SLIQ_AUTO_REORDER` enabled automatic sifting).
fn print_kernel_report(limits: CaseLimits) {
    use sliq_bench::{kernel_stats_report, run_case, Backend};
    let cases = [
        ("ghz(64)", sliq_workloads::algorithms::ghz(64)),
        (
            "random_clifford_t(16)",
            sliq_workloads::random::random_clifford_t(16, 1),
        ),
        (
            "random_clifford_t(20)",
            sliq_workloads::random::random_clifford_t(20, 1),
        ),
    ];
    println!("## BDD kernel cache statistics (bit-sliced backend)");
    for (name, circuit) in &cases {
        let result = run_case(Backend::BitSlice, circuit, limits);
        println!("{name}: {}", result.time_cell());
        match &result.bdd_stats {
            Some(stats) => print!("{}", kernel_stats_report(stats)),
            None => println!("  (no kernel statistics reported)"),
        }
    }
}
