//! Command-line harness that regenerates the paper's evaluation tables.
//!
//! ```text
//! cargo run -p sliq-bench --release --bin tables -- [table3|table4|table5|table6|accuracy|ablation|sample|kernel|cache|memory|serve|all]
//!                                                   [--full] [--timeout <secs>] [--max-nodes <n>] [--max-bytes <n>]
//!                                                   [--reorder] [--threads <n>] [--cache] [--json] [--baseline <path>]
//! ```
//!
//! By default a quick, laptop-sized sweep is run; `--full` uses sizes closer
//! to the paper's regime (expect several minutes).

use sliq_bench::serve::{format_serve, serve_report, ServeReport};
use sliq_bench::tables::{
    accuracy_rows, bitwidth_rows, cache_report, format_accuracy, format_bitwidth, format_cache,
    format_memory, format_sample, format_table3, format_table4, format_table5, format_table6,
    memory_geomean_bytes_per_node, memory_rows, sample_rows, table3_rows, table4_rows, table5_rows,
    table6_rows, CacheReport, MemoryRow, Scale,
};
use sliq_bench::CaseLimits;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut scale = Scale::Quick;
    let mut limits = CaseLimits::default();
    let mut json = false;
    let mut baseline: Option<String> = None;
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--full" => scale = Scale::Full,
            "--quick" => scale = Scale::Quick,
            "--json" => json = true,
            "--timeout" => {
                if let Some(v) = iter.next().and_then(|s| s.parse::<u64>().ok()) {
                    limits.timeout = Duration::from_secs(v);
                }
            }
            "--max-nodes" => {
                if let Some(v) = iter.next().and_then(|s| s.parse::<usize>().ok()) {
                    limits.max_nodes = v;
                }
            }
            "--max-bytes" => {
                if let Some(v) = iter.next().and_then(|s| s.parse::<usize>().ok()) {
                    limits.max_bytes = Some(v);
                }
            }
            "--baseline" => {
                baseline = iter.next().cloned();
            }
            "--reorder" => limits.auto_reorder = true,
            "--cache" => limits.use_result_cache = true,
            "--threads" => {
                if let Some(v) = iter.next().and_then(|s| s.parse::<usize>().ok()) {
                    limits.threads = Some(v);
                }
            }
            other => which.push(other.to_string()),
        }
    }
    if which.is_empty() {
        which.push("all".to_string());
    }
    let wants = |name: &str| {
        which
            .iter()
            .any(|w| w.eq_ignore_ascii_case(name) || w.eq_ignore_ascii_case("all"))
    };

    println!(
        "# SliQ table reproduction — scale: {:?}, per-case timeout: {:?}, node limit: {}, threads: {}",
        scale,
        limits.timeout,
        limits.max_nodes,
        limits
            .threads
            .unwrap_or_else(sliq_bdd::pool::default_threads)
    );
    println!();

    if wants("table3") {
        let rows = table3_rows(scale, limits);
        println!("{}", format_table3(&rows));
    }
    if wants("table4") {
        let rows = table4_rows(scale, limits);
        println!("{}", format_table4(&rows));
    }
    if wants("table5") {
        let rows = table5_rows(scale, limits);
        println!("{}", format_table5(&rows));
    }
    if wants("table6") {
        let rows = table6_rows(scale, limits);
        println!("{}", format_table6(&rows));
    }
    if wants("accuracy") {
        let rows = accuracy_rows(scale);
        println!("{}", format_accuracy(&rows));
    }
    if wants("ablation") {
        let rows = bitwidth_rows(scale);
        println!("{}", format_bitwidth(&rows));
    }
    if wants("sample") {
        let rows = sample_rows(scale, limits);
        println!("{}", format_sample(&rows));
    }
    if wants("kernel") {
        print_kernel_report(limits, json);
    }
    if wants("cache") {
        let report = cache_report(scale, limits);
        println!("{}", format_cache(&report));
        if json {
            let path = "BENCH_cache.json";
            std::fs::write(path, cache_report_json(&report))
                .unwrap_or_else(|e| eprintln!("failed to write {path}: {e}"));
            println!("wrote {path}");
        }
    }
    if wants("serve") {
        let report = serve_report(scale, limits);
        println!("{}", format_serve(&report));
        if json {
            let path = "BENCH_serve.json";
            std::fs::write(path, serve_report_json(&report))
                .unwrap_or_else(|e| eprintln!("failed to write {path}: {e}"));
            println!("wrote {path}");
        }
        if let Some(baseline_path) = &baseline {
            check_serve_baseline(&report, baseline_path);
        }
    }
    if wants("memory") {
        let rows = memory_rows(scale, limits);
        println!("{}", format_memory(&rows));
        if json {
            let path = "BENCH_memory.json";
            std::fs::write(path, memory_rows_json(&rows))
                .unwrap_or_else(|e| eprintln!("failed to write {path}: {e}"));
            println!("wrote {path}");
        }
        if let Some(baseline_path) = &baseline {
            check_memory_baseline(&rows, baseline_path);
        }
    }
}

/// Hand-rolled JSON for the serving benchmark (no serde in the workspace).
fn serve_report_json(report: &ServeReport) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"clients\": {},\n", report.clients));
    out.push_str(&format!(
        "  \"requests_per_client\": {},\n",
        report.requests_per_client
    ));
    out.push_str(&format!("  \"shots\": {},\n", report.shots));
    out.push_str(&format!("  \"workers\": {},\n", report.workers));
    out.push_str(&format!("  \"population\": {},\n", report.population.len()));
    out.push_str(&format!(
        "  \"sessions_per_sec\": {:.3},\n",
        report.sessions_per_sec()
    ));
    for (label, pass) in [
        ("cold", &report.cold),
        ("warming", &report.warming),
        ("warm", &report.warm),
    ] {
        out.push_str(&format!("  \"{label}_secs\": {:.6},\n", pass.secs));
        out.push_str(&format!("  \"{label}_rps\": {:.3},\n", pass.req_per_sec()));
        out.push_str(&format!("  \"{label}_ok\": {},\n", pass.ok));
        out.push_str(&format!("  \"{label}_overloaded\": {},\n", pass.overloaded));
        out.push_str(&format!("  \"{label}_errors\": {},\n", pass.errors));
    }
    // The headline latency fields are the cold (uncached) pass; warm
    // percentiles ride along under their own names.
    out.push_str(&format!(
        "  \"p50_ms\": {:.4},\n",
        report.cold.latency.p50_ms
    ));
    out.push_str(&format!(
        "  \"p99_ms\": {:.4},\n",
        report.cold.latency.p99_ms
    ));
    out.push_str(&format!(
        "  \"warm_p50_ms\": {:.4},\n",
        report.warm.latency.p50_ms
    ));
    out.push_str(&format!(
        "  \"warm_p99_ms\": {:.4},\n",
        report.warm.latency.p99_ms
    ));
    out.push_str(&format!(
        "  \"warm_speedup\": {:.3},\n",
        report.warm_speedup()
    ));
    out.push_str(&format!("  \"cache_hits\": {},\n", report.cache.hits));
    out.push_str(&format!("  \"cache_misses\": {},\n", report.cache.misses));
    out.push_str(&format!(
        "  \"cache_hit_rate\": {:.6}\n",
        report.cache.hit_rate()
    ));
    out.push_str("}\n");
    out
}

/// Gates the serving benchmark against a committed baseline
/// `BENCH_serve_t<threads>.json`.  Wall-clock serving throughput on shared
/// CI runners is far noisier than bytes/node, so the gate checks shape,
/// not speed: the server must complete every request (sessions/s > 0 and a
/// real p99), the warm pass must still beat the cold pass, and the cache's
/// warm-speedup multiplier must not collapse below 20% of the baseline's.
fn check_serve_baseline(report: &ServeReport, baseline_path: &str) {
    if report.sessions_per_sec() <= 0.0 || report.cold.ok == 0 {
        eprintln!("serve baseline check FAILED: no sessions completed");
        std::process::exit(1);
    }
    if report.cold.latency.p99_ms <= 0.0 || report.cold.latency.p99_ms.is_nan() {
        eprintln!("serve baseline check FAILED: p99 latency is missing or zero");
        std::process::exit(1);
    }
    if report.cold.errors + report.warming.errors + report.warm.errors > 0 {
        eprintln!("serve baseline check FAILED: requests errored under load");
        std::process::exit(1);
    }
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("serve baseline check: cannot read {baseline_path}: {e}");
            std::process::exit(1);
        }
    };
    let Some(reference_speedup) = json_f64_field(&text, "warm_speedup") else {
        eprintln!("serve baseline check: {baseline_path} has no warm_speedup");
        std::process::exit(1);
    };
    let speedup = report.warm_speedup();
    println!(
        "serve baseline check: warm speedup {speedup:.2}x vs baseline {reference_speedup:.2}x, \
         sessions {:.1}/s, cold p99 {:.3} ms",
        report.sessions_per_sec(),
        report.cold.latency.p99_ms
    );
    if speedup < 1.0 {
        eprintln!(
            "serve baseline check FAILED: warm pass ({:.2} req/s) no faster than cold ({:.2} req/s)",
            report.warm.req_per_sec(),
            report.cold.req_per_sec()
        );
        std::process::exit(1);
    }
    if speedup < 0.2 * reference_speedup {
        eprintln!(
            "serve baseline check FAILED: warm speedup {speedup:.2}x collapsed below 20% of the \
             baseline's {reference_speedup:.2}x"
        );
        std::process::exit(1);
    }
}

/// Compares the sweep's geomean bytes/node against a committed baseline
/// `BENCH_memory.json` and exits nonzero on a >10% regression (the CI
/// bench-smoke gate).  Improvements and small noise pass silently.
fn check_memory_baseline(rows: &[MemoryRow], baseline_path: &str) {
    let Some(current) = memory_geomean_bytes_per_node(rows) else {
        eprintln!("memory baseline check: no completed rows to compare");
        std::process::exit(1);
    };
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("memory baseline check: cannot read {baseline_path}: {e}");
            std::process::exit(1);
        }
    };
    let Some(reference) = json_f64_field(&text, "geomean_bytes_per_node") else {
        eprintln!("memory baseline check: {baseline_path} has no geomean_bytes_per_node");
        std::process::exit(1);
    };
    let ratio = current / reference;
    println!(
        "memory baseline check: geomean bytes/node {current:.2} vs baseline {reference:.2} ({:+.1}%)",
        100.0 * (ratio - 1.0)
    );
    if ratio > 1.10 {
        eprintln!(
            "memory baseline check FAILED: bytes/node regressed by {:.1}% (> 10% allowed)",
            100.0 * (ratio - 1.0)
        );
        std::process::exit(1);
    }
}

/// Pulls `"field": <number>` out of hand-rolled JSON (the workspace
/// deliberately has no serde dependency; our own writer emits one field per
/// line, which is all this needs to parse).
fn json_f64_field(text: &str, field: &str) -> Option<f64> {
    let needle = format!("\"{field}\":");
    for line in text.lines() {
        if let Some(pos) = line.find(&needle) {
            let rest = line[pos + needle.len()..].trim().trim_end_matches(',');
            if let Ok(v) = rest.parse::<f64>() {
                return Some(v);
            }
        }
    }
    None
}

/// Hand-rolled JSON for the memory sweep rows.
fn memory_rows_json(rows: &[MemoryRow]) -> String {
    fn num(v: f64) -> String {
        if v.is_finite() {
            format!("{v:.3}")
        } else {
            "null".to_string()
        }
    }
    let mut out = String::from("{\n");
    match memory_geomean_bytes_per_node(rows) {
        Some(geomean) => {
            out.push_str(&format!("  \"geomean_bytes_per_node\": {geomean:.3},\n"));
        }
        None => out.push_str("  \"geomean_bytes_per_node\": null,\n"),
    }
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"qubits\": {}, \"gates\": {}, \"status\": \"{}\", \
             \"seconds\": {}, \"allocated_nodes\": {}, \"bytes_per_node\": {}, \
             \"legacy_bytes_per_node\": {}, \"reduction_pct\": {}, \"peak_bytes\": {}, \
             \"peak_nodes\": {}, \"chunks_reclaimed\": {}}}{}\n",
            row.name,
            row.qubits,
            row.gates,
            row.status,
            num(row.seconds),
            row.allocated_nodes,
            num(row.bytes_per_node),
            num(row.legacy_bytes_per_node),
            num(row.reduction_pct),
            row.peak_bytes,
            row.peak_nodes,
            row.chunks_reclaimed,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Hand-rolled JSON for the result-cache benchmark (no serde in the
/// workspace): hit rate, cold/warm requests per second, bytes, evictions.
fn cache_report_json(report: &CacheReport) -> String {
    let s = &report.stats;
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"requests\": {},\n", report.requests));
    out.push_str(&format!("  \"shots\": {},\n", report.shots));
    out.push_str(&format!("  \"population\": {},\n", report.population.len()));
    out.push_str(&format!("  \"cold_secs\": {:.6},\n", report.cold_secs));
    out.push_str(&format!(
        "  \"warming_secs\": {:.6},\n",
        report.warming_secs
    ));
    out.push_str(&format!("  \"warm_secs\": {:.6},\n", report.warm_secs));
    out.push_str(&format!("  \"cold_rps\": {:.3},\n", report.cold_rps()));
    out.push_str(&format!("  \"warm_rps\": {:.3},\n", report.warm_rps()));
    out.push_str(&format!(
        "  \"warm_speedup\": {:.3},\n",
        report.warm_speedup()
    ));
    out.push_str(&format!("  \"hit_rate\": {:.6},\n", s.hit_rate()));
    out.push_str(&format!("  \"hits\": {},\n", s.hits));
    out.push_str(&format!("  \"misses\": {},\n", s.misses));
    out.push_str(&format!("  \"entries\": {},\n", s.entries));
    out.push_str(&format!("  \"bytes\": {},\n", s.bytes));
    out.push_str(&format!("  \"capacity_bytes\": {},\n", s.capacity_bytes));
    out.push_str(&format!("  \"evictions\": {}\n", s.evictions));
    out.push_str("}\n");
    out
}

/// One kernel-report case: the sweep-configuration median plus the
/// 1-thread serial-vs-forced-shared pair that prices the synchronization
/// tax of the shared kernel flavour.
struct KernelRow {
    name: &'static str,
    /// Median seconds at the sweep configuration (`--threads` / default).
    median_seconds: Option<f64>,
    /// Median seconds at 1 thread on the serial fast path.
    serial_fast_seconds: Option<f64>,
    /// Median seconds at 1 thread with the shared kernel forced on.
    forced_shared_seconds: Option<f64>,
    /// Kernel counters from the sweep-configuration run.
    stats: Option<sliq_bdd::ManagerStats>,
    /// Status cell of the sweep-configuration run ("TO", "MO", seconds…).
    time_cell: String,
}

impl KernelRow {
    /// `forced-shared / serial-fast` at one thread: the factor the CAS and
    /// seqlock machinery costs a single-threaded session (the perf gate
    /// holds the inverse below 1.05x).
    fn serial_overhead(&self) -> Option<f64> {
        match (self.serial_fast_seconds, self.forced_shared_seconds) {
            (Some(fast), Some(forced)) if fast > 0.0 => Some(forced / fast),
            _ => None,
        }
    }
}

/// Median wall-clock seconds of `iterations` completed runs of `circuit`
/// under `limits`; `(None, last result)` if any run fails to complete.
fn median_case(
    circuit: &sliq_circuit::Circuit,
    limits: CaseLimits,
    iterations: usize,
) -> (Option<f64>, sliq_bench::CaseResult) {
    use sliq_bench::{run_case, Backend, CaseStatus};
    let mut times = Vec::with_capacity(iterations);
    let mut last = None;
    for _ in 0..iterations {
        let result = run_case(Backend::BitSlice, circuit, limits);
        let completed = result.status == CaseStatus::Completed;
        times.push(result.seconds);
        let failed = !completed;
        last = Some(result);
        if failed {
            return (None, last.unwrap());
        }
    }
    times.sort_by(|a, b| a.total_cmp(b));
    (Some(times[times.len() / 2]), last.unwrap())
}

/// Runs representative bit-sliced cases and prints the BDD kernel's
/// per-cache hit/miss/eviction counters (plus reorder statistics when
/// `--reorder` / `SLIQ_AUTO_REORDER` enabled automatic sifting).  Every
/// case is additionally timed at one thread both on the serial fast path
/// and with the shared kernel forced, and the ratio is reported as
/// `serial_overhead`.  With `--json`, the medians also land in
/// `BENCH_kernel.json` for CI trend tracking.
fn print_kernel_report(limits: CaseLimits, json: bool) {
    use sliq_bench::kernel_stats_report;
    let iterations = if sliq_bench::bench_smoke_env() { 1 } else { 3 };
    let cases = [
        ("ghz(64)", sliq_workloads::algorithms::ghz(64)),
        (
            "random_clifford_t(16)",
            sliq_workloads::random::random_clifford_t(16, 1),
        ),
        (
            "random_clifford_t(20)",
            sliq_workloads::random::random_clifford_t(20, 1),
        ),
    ];
    let threads = limits
        .threads
        .unwrap_or_else(sliq_bdd::pool::default_threads);
    let one_thread_fast = CaseLimits {
        threads: Some(1),
        force_shared_kernel: false,
        ..limits
    };
    let one_thread_forced = CaseLimits {
        force_shared_kernel: true,
        ..one_thread_fast
    };
    println!("## BDD kernel cache statistics (bit-sliced backend)");
    println!("(median of {iterations} run(s) per configuration, sweep threads: {threads})");
    let mut rows = Vec::new();
    for (name, circuit) in &cases {
        let (median_seconds, result) = median_case(circuit, limits, iterations);
        let (serial_fast_seconds, _) = median_case(circuit, one_thread_fast, iterations);
        let (forced_shared_seconds, _) = median_case(circuit, one_thread_forced, iterations);
        let row = KernelRow {
            name,
            median_seconds,
            serial_fast_seconds,
            forced_shared_seconds,
            stats: result.bdd_stats,
            time_cell: result.time_cell(),
        };
        println!("{name}: {}", row.time_cell);
        match &row.stats {
            Some(stats) => print!("{}", kernel_stats_report(stats)),
            None => println!("  (no kernel statistics reported)"),
        }
        match (row.serial_overhead(), row.serial_fast_seconds) {
            (Some(overhead), Some(fast)) => println!(
                "  serial_overhead {overhead:.3}x  (1 thread: forced-shared {:.4}s / serial fast path {fast:.4}s)",
                row.forced_shared_seconds.unwrap()
            ),
            _ => println!("  serial_overhead n/a (a 1-thread run did not complete)"),
        }
        rows.push(row);
    }
    // The serving-layer counters above the kernel: with `--cache` the cases
    // attach the process-wide result cache (repeat iterations then hit), and
    // its totals surface here next to the BDD op-cache rates.
    let cache_stats = sliq_exec::ResultCache::global().stats();
    if limits.use_result_cache || cache_stats.hits + cache_stats.misses > 0 {
        println!(
            "result cache (global): hits {}  misses {}  hit-rate {:.1}%  entries {}  bytes {}  evictions {}",
            cache_stats.hits,
            cache_stats.misses,
            100.0 * cache_stats.hit_rate(),
            cache_stats.entries,
            cache_stats.bytes,
            cache_stats.evictions
        );
    } else {
        println!("result cache (global): not attached (pass --cache to enable)");
    }
    if json {
        let path = "BENCH_kernel.json";
        std::fs::write(path, kernel_rows_json(&rows, threads, iterations))
            .unwrap_or_else(|e| eprintln!("failed to write {path}: {e}"));
        println!("wrote {path}");
    }
}

/// Hand-rolled JSON for the kernel rows (the workspace deliberately has no
/// serde dependency): numbers or `null`, names are static identifiers.
fn kernel_rows_json(rows: &[KernelRow], threads: usize, iterations: usize) -> String {
    fn num(v: Option<f64>) -> String {
        match v {
            Some(v) if v.is_finite() => format!("{v:.6}"),
            _ => "null".to_string(),
        }
    }
    let mut out =
        format!("{{\n  \"threads\": {threads},\n  \"iterations\": {iterations},\n  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let (kernel_mode, reorder_micros, reorder_parallel_batches) = match &row.stats {
            Some(s) => (
                format!("\"{:?}\"", s.kernel_mode),
                s.reorder_micros.to_string(),
                s.reorder_parallel_batches.to_string(),
            ),
            None => ("null".to_string(), "null".to_string(), "null".to_string()),
        };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"status\": \"{}\", \"median_seconds\": {}, \
             \"serial_fast_seconds\": {}, \"forced_shared_seconds\": {}, \
             \"serial_overhead\": {}, \"kernel_mode\": {}, \
             \"reorder_micros\": {}, \"reorder_parallel_batches\": {}}}{}\n",
            row.name,
            row.time_cell,
            num(row.median_seconds),
            num(row.serial_fast_seconds),
            num(row.forced_shared_seconds),
            num(row.serial_overhead()),
            kernel_mode,
            reorder_micros,
            reorder_parallel_batches,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
