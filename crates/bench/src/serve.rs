//! The serving benchmark: an in-process `sliq-serve` instance under a
//! fleet of client threads replaying a skewed circuit mix over real
//! sockets, so the number that comes out prices the whole serving path —
//! framing, admission, the fair queue, session construction, simulation,
//! sampling, and the response — not just the kernel.
//!
//! Two servers are measured with the same request sequence: one with the
//! result cache disabled (the cold pass) and one with a fresh shared cache
//! (a warming pass that populates it, then a warm pass where every request
//! hits).  The cold/warm throughput ratio is the serving-level analogue of
//! [`crate::tables::cache_report`]'s single-threaded measurement.

use crate::runner::{bench_smoke_env, CaseLimits};
use crate::tables::Scale;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sliq_circuit::Circuit;
use sliq_exec::{ResultCache, ResultCacheStats};
use sliq_serve::{Client, ClientError, RunOptions, Server, ServerConfig, ServerHandle};
use sliq_workloads::{algorithms, random};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

/// Latency percentiles of one pass, in milliseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct Latencies {
    /// Median request latency.
    pub p50_ms: f64,
    /// 99th-percentile request latency.
    pub p99_ms: f64,
    /// Worst request latency.
    pub max_ms: f64,
}

/// One measured pass of the client fleet.
#[derive(Debug, Clone, Copy, Default)]
pub struct PassReport {
    /// Wall-clock seconds from first send to last response.
    pub secs: f64,
    /// Requests answered with a run result.
    pub ok: u64,
    /// Requests shed with an overloaded response.
    pub overloaded: u64,
    /// Requests answered with an error frame.
    pub errors: u64,
    /// Latency percentiles over the answered requests.
    pub latency: Latencies,
}

impl PassReport {
    /// Completed requests per wall-clock second.
    pub fn req_per_sec(&self) -> f64 {
        self.ok as f64 / self.secs.max(1e-9)
    }
}

/// The serving benchmark's result.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests each client sends per pass.
    pub requests_per_client: usize,
    /// Shots sampled per request.
    pub shots: u64,
    /// Server worker threads.
    pub workers: usize,
    /// The population: `(name, qubits, request share)` by popularity rank.
    pub population: Vec<(String, usize, f64)>,
    /// The pass against the cache-disabled server.
    pub cold: PassReport,
    /// First pass against the cached server (populates the cache).
    pub warming: PassReport,
    /// Second pass against the cached server (every request hits).
    pub warm: PassReport,
    /// Cache counters after the warm pass.
    pub cache: ResultCacheStats,
}

impl ServeReport {
    /// Sessions opened per second under cold (uncached) serving — every
    /// completed request opens exactly one session server-side, so this is
    /// the cold pass's completed-request rate.
    pub fn sessions_per_sec(&self) -> f64 {
        self.cold.req_per_sec()
    }

    /// `warm req/s ÷ cold req/s`: the serving-throughput multiplier the
    /// shared result cache buys on this mix.
    pub fn warm_speedup(&self) -> f64 {
        self.warm.req_per_sec() / self.cold.req_per_sec().max(1e-9)
    }
}

/// The benchmark's circuit population, identical to the result-cache
/// benchmark's so the two reports stay comparable.
fn population() -> Vec<(String, Circuit)> {
    vec![
        (
            "random_clifford_t(12,s1)".into(),
            random::random_clifford_t(12, 1),
        ),
        (
            "random_clifford_t(12,s2)".into(),
            random::random_clifford_t(12, 2),
        ),
        ("ghz(16)".into(), algorithms::ghz(16)),
        (
            "bv_ones(14)".into(),
            algorithms::bernstein_vazirani_all_ones(14),
        ),
        (
            "random_clifford_t(12,s3)".into(),
            random::random_clifford_t(12, 3),
        ),
        (
            "random_clifford_t(12,s4)".into(),
            random::random_clifford_t(12, 4),
        ),
    ]
}

/// Zipf-ish rank sequence: rank `r` drawn with weight `1/(r+1)`.
fn skewed_sequence(len: usize, ranks: usize, seed: u64) -> Vec<usize> {
    let weights: Vec<f64> = (0..ranks).map(|rank| 1.0 / (rank as f64 + 1.0)).collect();
    let total: f64 = weights.iter().sum();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let mut x = rng.gen_range(0.0..total);
            for (rank, w) in weights.iter().enumerate() {
                if x < *w {
                    return rank;
                }
                x -= w;
            }
            ranks - 1
        })
        .collect()
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Replays the per-client sequences against `addr` from `clients` threads
/// (one connection each, one request outstanding at a time) and aggregates
/// throughput and latency.
fn run_pass(
    addr: SocketAddr,
    circuits: &Arc<Vec<Circuit>>,
    sequences: &[Vec<usize>],
    shots: u64,
) -> PassReport {
    let start = Instant::now();
    let threads: Vec<_> = sequences
        .iter()
        .map(|sequence| {
            let sequence = sequence.clone();
            let circuits = Arc::clone(circuits);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect to bench server");
                let mut latencies_ms = Vec::with_capacity(sequence.len());
                let (mut ok, mut overloaded, mut errors) = (0u64, 0u64, 0u64);
                for &rank in &sequence {
                    let sent = Instant::now();
                    let result = client.run_circuit(
                        &circuits[rank],
                        RunOptions {
                            shots,
                            seed: 2021,
                            ..RunOptions::default()
                        },
                    );
                    match result {
                        Ok(_) => {
                            ok += 1;
                            latencies_ms.push(sent.elapsed().as_secs_f64() * 1e3);
                        }
                        Err(ClientError::Overloaded { .. }) => overloaded += 1,
                        Err(_) => errors += 1,
                    }
                }
                (latencies_ms, ok, overloaded, errors)
            })
        })
        .collect();
    let mut all_ms = Vec::new();
    let mut report = PassReport::default();
    for thread in threads {
        let (latencies_ms, ok, overloaded, errors) = thread.join().expect("client thread");
        all_ms.extend(latencies_ms);
        report.ok += ok;
        report.overloaded += overloaded;
        report.errors += errors;
    }
    report.secs = start.elapsed().as_secs_f64();
    all_ms.sort_by(|a, b| a.total_cmp(b));
    report.latency = Latencies {
        p50_ms: percentile(&all_ms, 50.0),
        p99_ms: percentile(&all_ms, 99.0),
        max_ms: all_ms.last().copied().unwrap_or(0.0),
    };
    report
}

/// Runs the serving benchmark: spawn a server, point a client fleet at it,
/// measure cold / warming / warm passes.
pub fn serve_report(scale: Scale, limits: CaseLimits) -> ServeReport {
    let (clients, requests_per_client, shots) = if bench_smoke_env() {
        (4, 12, 256u64)
    } else {
        match scale {
            Scale::Quick => (8, 25, 1024),
            Scale::Full => (8, 100, 4096),
        }
    };
    let workers = limits
        .threads
        .unwrap_or_else(sliq_bdd::pool::default_threads)
        .max(1);
    let pool = population();
    let circuits: Arc<Vec<Circuit>> =
        Arc::new(pool.iter().map(|(_, circuit)| circuit.clone()).collect());
    let sequences: Vec<Vec<usize>> = (0..clients)
        .map(|client| skewed_sequence(requests_per_client, circuits.len(), 2021 + client as u64))
        .collect();
    // Synchronous clients hold one request each, so a queue as deep as the
    // fleet never sheds; the depth is about bounding memory, not pacing.
    let base_config = || {
        ServerConfig::default()
            .workers(workers)
            .queue_depth((clients * 2).max(8))
            .per_conn_queue(2)
            .max_connections(clients + 4)
    };

    let cold_server = Server::bind("127.0.0.1:0", base_config().result_cache(false))
        .expect("bind cold bench server")
        .spawn()
        .expect("spawn cold bench server");
    let cold = run_pass(cold_server.addr(), &circuits, &sequences, shots);
    cold_server.shutdown();

    let cache = ResultCache::shared(64 * 1024 * 1024);
    let warm_server: ServerHandle = Server::bind(
        "127.0.0.1:0",
        base_config().with_result_cache(Arc::clone(&cache)),
    )
    .expect("bind warm bench server")
    .spawn()
    .expect("spawn warm bench server");
    let warming = run_pass(warm_server.addr(), &circuits, &sequences, shots);
    let warm = run_pass(warm_server.addr(), &circuits, &sequences, shots);
    warm_server.shutdown();

    let shares: Vec<f64> = {
        let mut counts = vec![0usize; circuits.len()];
        for sequence in &sequences {
            for &rank in sequence {
                counts[rank] += 1;
            }
        }
        let total: usize = counts.iter().sum();
        counts
            .into_iter()
            .map(|c| c as f64 / total.max(1) as f64)
            .collect()
    };
    ServeReport {
        clients,
        requests_per_client,
        shots,
        workers,
        population: pool
            .into_iter()
            .zip(shares)
            .map(|((name, circuit), share)| (name, circuit.num_qubits(), share))
            .collect(),
        cold,
        warming,
        warm,
        cache: cache.stats(),
    }
}

/// Formats the serving benchmark.
pub fn format_serve(report: &ServeReport) -> String {
    let mut out = String::new();
    out.push_str("SERVE: concurrent TCP serving, skewed mix, cold vs warm cache\n");
    out.push_str(&format!(
        "  {} clients x {} requests, {} shots/request, {} workers\n",
        report.clients, report.requests_per_client, report.shots, report.workers
    ));
    out.push_str(&format!(
        "  population ({} circuits, Zipf-ish shares):\n",
        report.population.len()
    ));
    for (name, qubits, share) in &report.population {
        out.push_str(&format!(
            "    {name:<26} {qubits:>3} qubits  {:>5.1}% of requests\n",
            100.0 * share
        ));
    }
    for (label, pass) in [
        ("cold   ", &report.cold),
        ("warming", &report.warming),
        ("warm   ", &report.warm),
    ] {
        out.push_str(&format!(
            "  {label} {:>8.2} req/s  p50 {:>7.3} ms  p99 {:>7.3} ms  max {:>7.3} ms  ({} ok, {} shed, {} err)\n",
            pass.req_per_sec(),
            pass.latency.p50_ms,
            pass.latency.p99_ms,
            pass.latency.max_ms,
            pass.ok,
            pass.overloaded,
            pass.errors
        ));
    }
    out.push_str(&format!(
        "  sessions {:>8.2} /s (cold)   warm speedup {:.1}x\n",
        report.sessions_per_sec(),
        report.warm_speedup()
    ));
    out.push_str(&format!(
        "  cache: hits {}  misses {}  hit-rate {:.1}%  entries {}  bytes {}\n",
        report.cache.hits,
        report.cache.misses,
        100.0 * report.cache.hit_rate(),
        report.cache.entries,
        report.cache.bytes
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skewed_sequence_is_deterministic_and_head_heavy() {
        let a = skewed_sequence(200, 6, 7);
        let b = skewed_sequence(200, 6, 7);
        assert_eq!(a, b);
        let head = a.iter().filter(|&&rank| rank == 0).count();
        let tail = a.iter().filter(|&&rank| rank == 5).count();
        assert!(head > tail, "rank 0 ({head}) must outdraw rank 5 ({tail})");
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let ms: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(percentile(&ms, 50.0), 51.0);
        assert_eq!(percentile(&ms, 99.0), 99.0);
        assert_eq!(percentile(&[], 99.0), 0.0);
    }
}
