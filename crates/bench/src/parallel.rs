//! Parallel execution of independent benchmark cases.
//!
//! Each row of the paper's tables averages over several independently
//! generated circuits; those cases are embarrassingly parallel, so the sweep
//! runner fans them out over a scoped thread pool (capped at the available
//! parallelism).  Workers claim cases dynamically through an atomic index —
//! so a slow (e.g. timeout-bound) case never serializes the rest behind it —
//! and stream `(index, result)` pairs over a channel instead of contending on
//! a shared results vector.

use crate::runner::{run_case, Backend, CaseLimits, CaseResult};
use sliq_circuit::Circuit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Runs every circuit on `backend` under `limits`, in parallel, returning the
/// results in the input order.
pub fn run_cases_parallel(
    backend: Backend,
    circuits: &[Circuit],
    limits: CaseLimits,
) -> Vec<CaseResult> {
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(2)
        .min(circuits.len().max(1));
    if workers <= 1 || circuits.len() <= 1 {
        return circuits
            .iter()
            .map(|c| run_case(backend, c, limits))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= circuits.len() {
                    break;
                }
                let result = run_case(backend, &circuits[index], limits);
                // The receiver outlives the scope; the send cannot fail.
                let _ = tx.send((index, result));
            });
        }
    });
    drop(tx);
    let mut results: Vec<Option<CaseResult>> = vec![None; circuits.len()];
    for (index, result) in rx.iter() {
        results[index] = Some(result);
    }
    results
        .into_iter()
        .map(|r| r.expect("every case produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::CaseStatus;
    use sliq_workloads::algorithms;

    #[test]
    fn parallel_results_match_input_order_and_complete() {
        let circuits: Vec<Circuit> = [8usize, 12, 16, 20, 24]
            .iter()
            .map(|&n| algorithms::ghz(n))
            .collect();
        let results = run_cases_parallel(Backend::BitSlice, &circuits, CaseLimits::default());
        assert_eq!(results.len(), circuits.len());
        for result in &results {
            assert_eq!(result.status, CaseStatus::Completed);
        }
    }

    #[test]
    fn single_case_falls_back_to_sequential() {
        let circuits = vec![algorithms::ghz(6)];
        let results = run_cases_parallel(Backend::Qmdd, &circuits, CaseLimits::default());
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].status, CaseStatus::Completed);
    }
}
