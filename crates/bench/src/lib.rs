//! # sliq-bench
//!
//! The benchmark harness that reproduces the evaluation section of the paper:
//!
//! * [`runner`] — runs a circuit on a chosen backend through the
//!   [`sliq_exec::Session`] layer with a per-case wall-clock timeout and a
//!   node limit (the scaled-down analogue of the paper's 7200 s TO / 2 GB MO
//!   protocol) and aggregates `TO/MO/err` counts.
//! * [`tables`] — generates the benchmark families and renders rows in the
//!   layout of Tables III–VI, plus the accuracy and bit-width ablations and
//!   the batched-sampling throughput sweep (`tables -- sample`).
//! * [`serve`] — the serving load generator (`tables -- serve`): an
//!   in-process `sliq-serve` instance under concurrent client threads,
//!   reporting sessions/s, req/s and p50/p99 latency cold vs warm cache.
//!
//! The `tables` binary (`cargo run -p sliq-bench --release --bin tables`)
//! prints any of the tables; the Criterion benches under `benches/` measure
//! the same workloads with statistical rigour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod parallel;
pub mod runner;
pub mod serve;
pub mod tables;

pub use parallel::run_cases_parallel;
pub use runner::{
    auto_reorder_env, bench_smoke_env, kernel_stats_report, run_case, Backend, CaseLimits,
    CaseResult, CaseStatus, RowSummary,
};
pub use serve::{format_serve, serve_report, ServeReport};
pub use tables::{cache_report, format_cache, CacheReport, Scale};
