//! Reproduction of the paper's evaluation tables (Section IV).
//!
//! Each `table*_rows` function generates the corresponding benchmark family,
//! runs it on the relevant backends under per-case time/node limits and
//! returns structured rows; the `format_*` functions render them in the same
//! layout as the paper.  Absolute numbers depend on the machine and on the
//! (scaled-down) default sizes, but the qualitative shape — which backend
//! fails where, and who is faster on which family — is what the reproduction
//! is after (see EXPERIMENTS.md).

use crate::parallel::run_cases_parallel;
use crate::runner::{
    bench_smoke_env, run_case, Backend, CaseLimits, CaseResult, CaseStatus, RowSummary,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sliq_circuit::Circuit;
use sliq_circuit::Simulator;
use sliq_core::BitSliceSimulator;
use sliq_exec::{ResultCache, ResultCacheStats, Session};
use sliq_qmdd::QmddSimulator;
use sliq_workloads::{algorithms, random, revlib_like, supremacy};
use std::sync::Arc;
use std::time::Instant;

/// How large a sweep to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small sizes suitable for CI / a laptop minute.
    Quick,
    /// Larger sizes closer to the paper's regime (minutes of runtime).
    Full,
}

/// One row of the Table III reproduction (random Clifford+T circuits).
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Number of qubits.
    pub qubits: usize,
    /// Number of random gates (3 × qubits).
    pub gates: usize,
    /// DDSIM-stand-in summary.
    pub qmdd: RowSummary,
    /// Bit-sliced backend summary.
    pub bitslice: RowSummary,
}

/// Generates and runs the Table III sweep.
pub fn table3_rows(scale: Scale, limits: CaseLimits) -> Vec<Table3Row> {
    let (sizes, seeds): (Vec<usize>, u64) = match scale {
        Scale::Quick => (vec![16, 20, 24, 28], 3),
        Scale::Full => (vec![24, 32, 40, 56, 80], 5),
    };
    sizes
        .into_iter()
        .map(|qubits| {
            let circuits: Vec<Circuit> = (0..seeds)
                .map(|seed| random::random_clifford_t(qubits, seed))
                .collect();
            let run_all = |backend: Backend| -> RowSummary {
                RowSummary::from_cases(&run_cases_parallel(backend, &circuits, limits))
            };
            Table3Row {
                qubits,
                gates: 3 * qubits,
                qmdd: run_all(Backend::Qmdd),
                bitslice: run_all(Backend::BitSlice),
            }
        })
        .collect()
}

/// Formats Table III like the paper (time + TO/MO/err columns per backend).
pub fn format_table3(rows: &[Table3Row]) -> String {
    let mut out = String::new();
    out.push_str("TABLE III: results on random circuits\n");
    out.push_str(&format!(
        "{:>8} {:>8} | {:>10} {:>10} | {:>10} {:>10}\n",
        "#Qubits", "#Gates", "QMDD(s)", "TO/MO/err", "Ours(s)", "TO/MO/err"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:>8} {:>8} | {:>10} {:>10} | {:>10} {:>10}\n",
            row.qubits,
            row.gates,
            row.qmdd.time_cell(),
            row.qmdd.failure_cell(),
            row.bitslice.time_cell(),
            row.bitslice.failure_cell()
        ));
    }
    out
}

/// One row of the Table IV reproduction (RevLib-like reversible circuits,
/// original and with the superposition modification).
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Benchmark name.
    pub name: String,
    /// Number of qubits.
    pub qubits: usize,
    /// Gate count of the original circuit.
    pub gates_original: usize,
    /// Original circuit results.
    pub original: (CaseResult, CaseResult),
    /// Gate count of the modified circuit.
    pub gates_modified: usize,
    /// Modified circuit results.
    pub modified: (CaseResult, CaseResult),
}

/// Generates and runs the Table IV sweep.
pub fn table4_rows(scale: Scale, limits: CaseLimits) -> Vec<Table4Row> {
    let suite = match scale {
        Scale::Quick => vec![
            revlib_like::ripple_carry_adder(6),
            revlib_like::equality_comparator(8),
            revlib_like::hidden_weighted_bit_like(8),
            revlib_like::random_control_logic(20, 90, 11),
        ],
        Scale::Full => revlib_like::table4_suite(),
    };
    suite
        .into_iter()
        .map(|bench| {
            let original = &bench.circuit;
            let modified = bench.with_superposition_inputs();
            Table4Row {
                name: bench.name.clone(),
                qubits: original.num_qubits(),
                gates_original: original.len(),
                original: (
                    run_case(Backend::Qmdd, original, limits),
                    run_case(Backend::BitSlice, original, limits),
                ),
                gates_modified: modified.len(),
                modified: (
                    run_case(Backend::Qmdd, &modified, limits),
                    run_case(Backend::BitSlice, &modified, limits),
                ),
            }
        })
        .collect()
}

/// Formats Table IV like the paper.
pub fn format_table4(rows: &[Table4Row]) -> String {
    let mut out = String::new();
    out.push_str("TABLE IV: results on RevLib-like circuits\n");
    out.push_str(&format!(
        "{:<16} {:>7} | {:>7} {:>9} {:>9} | {:>7} {:>9} {:>9}\n",
        "Benchmark", "#Qubits", "#Gates", "QMDD(s)", "Ours(s)", "#Gates", "QMDD(s)", "Ours(s)"
    ));
    out.push_str(&format!(
        "{:<16} {:>7} | {:>27} | {:>27}\n",
        "", "", "original", "modified (H on free inputs)"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<16} {:>7} | {:>7} {:>9} {:>9} | {:>7} {:>9} {:>9}\n",
            row.name,
            row.qubits,
            row.gates_original,
            row.original.0.time_cell(),
            row.original.1.time_cell(),
            row.gates_modified,
            row.modified.0.time_cell(),
            row.modified.1.time_cell()
        ));
    }
    out
}

/// One row of the Table V reproduction (entanglement and BV circuits).
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// Number of qubits.
    pub qubits: usize,
    /// Entanglement circuit gate count.
    pub ent_gates: usize,
    /// Entanglement results: QMDD, Ours, CHP.
    pub entanglement: (CaseResult, CaseResult, CaseResult),
    /// BV circuit gate count.
    pub bv_gates: usize,
    /// BV results: QMDD, Ours.
    pub bv: (CaseResult, CaseResult),
}

/// Generates and runs the Table V sweep.
pub fn table5_rows(scale: Scale, limits: CaseLimits) -> Vec<Table5Row> {
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![32, 64, 128, 256],
        Scale::Full => vec![80, 100, 500, 1000, 2000],
    };
    sizes
        .into_iter()
        .map(|qubits| {
            let ent = algorithms::entanglement(qubits);
            let bv = algorithms::bernstein_vazirani_all_ones(qubits);
            Table5Row {
                qubits,
                ent_gates: ent.len(),
                entanglement: (
                    run_case(Backend::Qmdd, &ent, limits),
                    run_case(Backend::BitSlice, &ent, limits),
                    run_case(Backend::Stabilizer, &ent, limits),
                ),
                bv_gates: bv.len(),
                bv: (
                    run_case(Backend::Qmdd, &bv, limits),
                    run_case(Backend::BitSlice, &bv, limits),
                ),
            }
        })
        .collect()
}

/// Formats Table V like the paper (with the CHP column the paper discusses in
/// the text).
pub fn format_table5(rows: &[Table5Row]) -> String {
    let mut out = String::new();
    out.push_str("TABLE V: results on quantum algorithm circuits\n");
    out.push_str(&format!(
        "{:>8} | {:>7} {:>9} {:>9} {:>9} | {:>7} {:>9} {:>9}\n",
        "#Qubits", "#Gates", "QMDD(s)", "Ours(s)", "CHP(s)", "#Gates", "QMDD(s)", "Ours(s)"
    ));
    out.push_str(&format!(
        "{:>8} | {:>37} | {:>27}\n",
        "", "Entanglement", "Bernstein-Vazirani"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:>8} | {:>7} {:>9} {:>9} {:>9} | {:>7} {:>9} {:>9}\n",
            row.qubits,
            row.ent_gates,
            row.entanglement.0.time_cell(),
            row.entanglement.1.time_cell(),
            row.entanglement.2.time_cell(),
            row.bv_gates,
            row.bv.0.time_cell(),
            row.bv.1.time_cell()
        ));
    }
    out
}

/// One row of the Table VI reproduction (GRCS supremacy circuits).
#[derive(Debug, Clone)]
pub struct Table6Row {
    /// Number of qubits (rows × cols).
    pub qubits: usize,
    /// Mean gate count over the seeds.
    pub gates: usize,
    /// QMDD summary plus mean memory estimate.
    pub qmdd: RowSummary,
    /// Bit-sliced summary plus mean memory estimate.
    pub bitslice: RowSummary,
}

/// Generates and runs the Table VI sweep.
pub fn table6_rows(scale: Scale, limits: CaseLimits) -> Vec<Table6Row> {
    let (lattices, seeds, depth): (Vec<supremacy::Lattice>, u64, usize) = match scale {
        Scale::Quick => (
            vec![
                supremacy::Lattice::new(3, 3),
                supremacy::Lattice::new(3, 4),
                supremacy::Lattice::new(4, 4),
                supremacy::Lattice::new(4, 5),
            ],
            2,
            5,
        ),
        Scale::Full => (
            supremacy::table6_lattices().into_iter().take(8).collect(),
            3,
            5,
        ),
    };
    lattices
        .into_iter()
        .map(|lattice| {
            let circuits: Vec<Circuit> = (0..seeds)
                .map(|seed| supremacy::supremacy_circuit(lattice, depth, seed))
                .collect();
            let gates = circuits.iter().map(Circuit::len).sum::<usize>() / circuits.len().max(1);
            let run_all = |backend: Backend| -> RowSummary {
                RowSummary::from_cases(&run_cases_parallel(backend, &circuits, limits))
            };
            Table6Row {
                qubits: lattice.num_qubits(),
                gates,
                qmdd: run_all(Backend::Qmdd),
                bitslice: run_all(Backend::BitSlice),
            }
        })
        .collect()
}

/// Formats Table VI like the paper (runtime, memory and TO/MO columns).
pub fn format_table6(rows: &[Table6Row]) -> String {
    let mut out = String::new();
    out.push_str("TABLE VI: results on Google supremacy-style circuits (depth 5)\n");
    out.push_str(&format!(
        "{:>8} {:>7} | {:>9} {:>10} {:>7} | {:>9} {:>10} {:>7}\n",
        "#Qubits", "#Gates", "QMDD(s)", "Mem(MB)", "TO/MO", "Ours(s)", "Mem(MB)", "TO/MO"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:>8} {:>7} | {:>9} {:>10.2} {:>7} | {:>9} {:>10.2} {:>7}\n",
            row.qubits,
            row.gates,
            row.qmdd.time_cell(),
            row.qmdd.mean_memory_mib,
            format!("{}/{}", row.qmdd.timed_out, row.qmdd.memory_out),
            row.bitslice.time_cell(),
            row.bitslice.mean_memory_mib,
            format!("{}/{}", row.bitslice.timed_out, row.bitslice.memory_out),
        ));
    }
    out
}

/// One row of the accuracy experiment (E6): amplitude and total-probability
/// drift of the floating-point QMDD backend versus the exact backend on deep
/// random circuits (the mechanism behind the paper's "error" cases).
#[derive(Debug, Clone)]
pub struct AccuracyRow {
    /// Number of qubits.
    pub qubits: usize,
    /// Number of gates.
    pub gates: usize,
    /// |Σp − 1| for the QMDD backend at its default tolerance (1e-12).
    pub qmdd_sum_error: f64,
    /// Largest amplitude deviation of the default-tolerance QMDD backend
    /// from the exact amplitudes.
    pub qmdd_amp_error: f64,
    /// Largest amplitude deviation at a coarse (1e-4) complex-table
    /// tolerance, the regime where edge-weight merging visibly corrupts the
    /// state.
    pub qmdd_coarse_amp_error: f64,
    /// Whether the bit-sliced state is exactly normalised (integer identity).
    pub bitslice_exact: bool,
    /// |Σp − 1| for the bit-sliced backend after the final f64 conversion.
    pub bitslice_error: f64,
}

/// Runs the accuracy ablation: deep random circuits over the full gate set on
/// a qubit count small enough to enumerate every amplitude.
pub fn accuracy_rows(scale: Scale) -> Vec<AccuracyRow> {
    let depths = match scale {
        Scale::Quick => vec![100usize, 400, 1600],
        Scale::Full => vec![400usize, 1600, 6400],
    };
    let qubits = 8usize;
    depths
        .into_iter()
        .map(|gates| {
            let circuit = random::random_circuit(
                &random::RandomCircuitConfig {
                    num_qubits: qubits,
                    num_gates: gates,
                    initial_hadamard_layer: true,
                    gate_set: random::RandomGateSet::Full,
                },
                2021,
            );
            let mut exact = BitSliceSimulator::new(qubits);
            exact.run(&circuit).expect("supported gates");
            let mut qmdd = QmddSimulator::new(qubits);
            qmdd.run(&circuit).expect("supported gates");
            let mut qmdd_coarse = QmddSimulator::with_tolerance(qubits, 1e-4);
            qmdd_coarse.run(&circuit).expect("supported gates");
            let mut qmdd_amp_error = 0.0f64;
            let mut coarse_amp_error = 0.0f64;
            for i in 0..(1usize << qubits) {
                let bits: Vec<bool> = (0..qubits).map(|q| i >> q & 1 == 1).collect();
                let reference = exact.amplitude_complex(&bits);
                qmdd_amp_error = qmdd_amp_error.max((qmdd.amplitude(&bits) - reference).norm());
                coarse_amp_error =
                    coarse_amp_error.max((qmdd_coarse.amplitude(&bits) - reference).norm());
            }
            AccuracyRow {
                qubits,
                gates: circuit.len(),
                qmdd_sum_error: (qmdd.total_probability() - 1.0).abs(),
                qmdd_amp_error,
                qmdd_coarse_amp_error: coarse_amp_error,
                bitslice_exact: exact.is_exactly_normalized(),
                bitslice_error: (exact.total_probability() - 1.0).abs(),
            }
        })
        .collect()
}

/// Formats the accuracy experiment.
pub fn format_accuracy(rows: &[AccuracyRow]) -> String {
    let mut out = String::new();
    out.push_str("ACCURACY: floating-point drift vs the exact backend on deep random circuits\n");
    out.push_str(&format!(
        "{:>8} {:>8} | {:>12} {:>12} {:>14} | {:>10} {:>12}\n",
        "#Qubits",
        "#Gates",
        "QMDD |Σp-1|",
        "QMDD max|Δα|",
        "QMDD(1e-4)|Δα|",
        "Ours exact",
        "Ours |Σp-1|"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:>8} {:>8} | {:>12.3e} {:>12.3e} {:>14.3e} | {:>10} {:>12.3e}\n",
            row.qubits,
            row.gates,
            row.qmdd_sum_error,
            row.qmdd_amp_error,
            row.qmdd_coarse_amp_error,
            row.bitslice_exact,
            row.bitslice_error
        ));
    }
    out
}

/// One row of the bit-width ablation (E7): how the integer width `r`, the
/// scaling exponent `k` and the BDD size evolve with circuit depth.
#[derive(Debug, Clone)]
pub struct BitWidthRow {
    /// Number of Hadamard/T layers applied.
    pub layers: usize,
    /// Total gates applied.
    pub gates: usize,
    /// Final integer bit width `r`.
    pub width: usize,
    /// Final exponent `k`.
    pub k: i64,
    /// Live BDD nodes of the state.
    pub nodes: usize,
}

/// Runs the bit-width growth ablation on an H/T-ladder circuit.
pub fn bitwidth_rows(scale: Scale) -> Vec<BitWidthRow> {
    let max_layers = match scale {
        Scale::Quick => 32usize,
        Scale::Full => 128,
    };
    let qubits = 6;
    let mut rows = Vec::new();
    let mut sim = BitSliceSimulator::new(qubits);
    let mut circuit_len = 0usize;
    let mut layer = 0usize;
    while layer < max_layers {
        let mut chunk = Circuit::new(qubits);
        for q in 0..qubits {
            chunk.h(q);
            chunk.t(q);
            chunk.cx(q, (q + 1) % qubits);
        }
        sim.run(&chunk).expect("supported gates");
        circuit_len += chunk.len();
        layer += 1;
        if layer.is_power_of_two() || layer == max_layers {
            rows.push(BitWidthRow {
                layers: layer,
                gates: circuit_len,
                width: sim.width(),
                k: sim.k(),
                nodes: sim.node_count(),
            });
        }
    }
    rows
}

/// Formats the bit-width ablation.
pub fn format_bitwidth(rows: &[BitWidthRow]) -> String {
    let mut out = String::new();
    out.push_str("ABLATION: dynamic integer width r, exponent k and BDD size vs depth\n");
    out.push_str(&format!(
        "{:>8} {:>8} {:>8} {:>8} {:>10}\n",
        "layers", "#gates", "r", "k", "BDD nodes"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:>8} {:>8} {:>8} {:>8} {:>10}\n",
            row.layers, row.gates, row.width, row.k, row.nodes
        ));
    }
    out
}

/// One backend's cell of the sampling-throughput sweep.
#[derive(Debug, Clone)]
pub struct SampleCell {
    /// The backend that sampled.
    pub backend: Backend,
    /// Why the backend was skipped or failed, when it was.
    pub note: Option<String>,
    /// Wall-clock seconds of the single circuit simulation.
    pub run_secs: f64,
    /// Wall-clock seconds of the batched sampling call.
    pub sample_secs: f64,
    /// Batched sampling throughput.
    pub shots_per_sec: f64,
    /// Speedup of batched sampling over naive per-shot re-simulation
    /// (`shots × run_secs / sample_secs`): how many times faster the batch
    /// is than running the circuit once per shot.
    pub speedup_vs_resim: f64,
}

/// One row (circuit) of the sampling-throughput sweep.
#[derive(Debug, Clone)]
pub struct SampleRow {
    /// Workload name.
    pub name: String,
    /// Number of qubits.
    pub qubits: usize,
    /// Shots drawn per backend.
    pub shots: u64,
    /// One cell per registry backend.
    pub cells: Vec<SampleCell>,
}

/// Runs the batched-sampling sweep: each workload is simulated **once** per
/// backend, then `shots` measurement shots are drawn via `Session::sample`;
/// the speedup column compares against re-simulating the circuit per shot.
pub fn sample_rows(scale: Scale, limits: CaseLimits) -> Vec<SampleRow> {
    let shots: u64 = if bench_smoke_env() {
        512
    } else {
        match scale {
            Scale::Quick => 4096,
            Scale::Full => 16384,
        }
    };
    sample_rows_with_shots(scale, limits, shots)
}

/// [`sample_rows`] with an explicit shot count (used by quick smoke tests).
pub fn sample_rows_with_shots(scale: Scale, limits: CaseLimits, shots: u64) -> Vec<SampleRow> {
    let workloads: Vec<(String, Circuit)> = match scale {
        Scale::Quick => vec![
            ("ghz(16)".into(), algorithms::ghz(16)),
            (
                "bv_ones(14)".into(),
                algorithms::bernstein_vazirani_all_ones(14),
            ),
            (
                "random_clifford_t(14)".into(),
                random::random_clifford_t(14, 1),
            ),
        ],
        Scale::Full => vec![
            ("ghz(24)".into(), algorithms::ghz(24)),
            (
                "bv_ones(18)".into(),
                algorithms::bernstein_vazirani_all_ones(18),
            ),
            (
                "random_clifford_t(16)".into(),
                random::random_clifford_t(16, 1),
            ),
            (
                "random_clifford_t(18)".into(),
                random::random_clifford_t(18, 1),
            ),
        ],
    };
    workloads
        .into_iter()
        .map(|(name, circuit)| {
            let cells = Backend::ALL
                .iter()
                .map(|&backend| sample_cell(backend, &circuit, shots, limits))
                .collect();
            SampleRow {
                name,
                qubits: circuit.num_qubits(),
                shots,
                cells,
            }
        })
        .collect()
}

fn skipped_cell(backend: Backend, note: String) -> SampleCell {
    SampleCell {
        backend,
        note: Some(note),
        run_secs: f64::NAN,
        sample_secs: f64::NAN,
        shots_per_sec: f64::NAN,
        speedup_vs_resim: f64::NAN,
    }
}

/// One backend cell under the sweep's wall-clock limit: the simulate+sample
/// work runs in a worker thread (like [`run_case`] does for the paper
/// tables), so a pathological case reports `TO` instead of hanging the
/// binary.
fn sample_cell(backend: Backend, circuit: &Circuit, shots: u64, limits: CaseLimits) -> SampleCell {
    if let Err(e) = backend.check_circuit(circuit) {
        return skipped_cell(backend, format!("n/a ({e})"));
    }
    let (tx, rx) = std::sync::mpsc::channel();
    let circuit = circuit.clone();
    std::thread::spawn(move || {
        // The receiver may have timed out already; ignore the send error.
        let _ = tx.send(sample_cell_inner(backend, &circuit, shots, limits));
    });
    match rx.recv_timeout(limits.timeout) {
        Ok(cell) => cell,
        Err(_) => skipped_cell(backend, "TO".to_string()),
    }
}

fn sample_cell_inner(
    backend: Backend,
    circuit: &Circuit,
    shots: u64,
    limits: CaseLimits,
) -> SampleCell {
    let skipped = |note: String| skipped_cell(backend, note);
    let mut session = match Session::for_circuit(circuit, limits.session_config(backend)) {
        Ok(session) => session,
        Err(e) => return skipped(e.to_string()),
    };
    let run = match session.run(circuit) {
        Ok(run) => run,
        Err(e) => return skipped(e.to_string()),
    };
    let sample = match session.sample(shots, 2021) {
        Ok(sample) => sample,
        Err(e) => return skipped(e.to_string()),
    };
    let run_secs = run.elapsed.as_secs_f64();
    let sample_secs = sample.elapsed.as_secs_f64().max(1e-9);
    SampleCell {
        backend,
        note: None,
        run_secs,
        sample_secs,
        shots_per_sec: shots as f64 / sample_secs,
        speedup_vs_resim: shots as f64 * run_secs / sample_secs,
    }
}

/// Formats the sampling sweep: shots/sec per backend plus the speedup over
/// per-shot re-simulation.
pub fn format_sample(rows: &[SampleRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "SAMPLING: batched multi-shot throughput per backend (one simulation, many shots)\n",
    );
    out.push_str(&format!(
        "{:<22} {:>7} {:>7} | {:<10} {:>9} {:>10} {:>12} {:>12}\n",
        "Workload", "#Qubits", "#Shots", "Backend", "run(s)", "sample(s)", "shots/s", "vs resim"
    ));
    for row in rows {
        for cell in &row.cells {
            let label = cell.backend.label();
            match &cell.note {
                Some(note) => out.push_str(&format!(
                    "{:<22} {:>7} {:>7} | {:<10} {note}\n",
                    row.name, row.qubits, row.shots, label
                )),
                None => out.push_str(&format!(
                    "{:<22} {:>7} {:>7} | {:<10} {:>9.4} {:>10.4} {:>12.0} {:>11.0}x\n",
                    row.name,
                    row.qubits,
                    row.shots,
                    label,
                    cell.run_secs,
                    cell.sample_secs,
                    cell.shots_per_sec,
                    cell.speedup_vs_resim
                )),
            }
        }
    }
    out
}

/// The result-cache serving benchmark: a skewed (Zipf-ish) request mix over
/// a small circuit population, replayed three times — cold (no cache),
/// warming (attached but empty) and warm (every request a hit) — so the
/// cold/warm requests-per-second ratio prices what the canonical-circuit
/// cache buys under production-shaped traffic.
#[derive(Debug, Clone)]
pub struct CacheReport {
    /// The circuit population: `(name, qubits, request share)` sorted by
    /// popularity (rank `r` is requested with weight `1/(r+1)`).
    pub population: Vec<(String, usize, f64)>,
    /// Requests per pass.
    pub requests: usize,
    /// Shots sampled per request.
    pub shots: u64,
    /// Wall-clock seconds of the cold pass (no cache attached).
    pub cold_secs: f64,
    /// Wall-clock seconds of the warming pass (cache attached but empty —
    /// each distinct circuit misses once, then hits).
    pub warming_secs: f64,
    /// Wall-clock seconds of the warm pass (every request served from the
    /// cache).
    pub warm_secs: f64,
    /// Cache counters after the warm pass.
    pub stats: ResultCacheStats,
}

impl CacheReport {
    /// Requests per second with no cache.
    pub fn cold_rps(&self) -> f64 {
        self.requests as f64 / self.cold_secs.max(1e-9)
    }

    /// Requests per second fully warm.
    pub fn warm_rps(&self) -> f64 {
        self.requests as f64 / self.warm_secs.max(1e-9)
    }

    /// `warm_rps / cold_rps`: the serving-throughput multiplier the cache
    /// buys on this mix.
    pub fn warm_speedup(&self) -> f64 {
        self.warm_rps() / self.cold_rps().max(1e-9)
    }
}

/// Runs the result-cache benchmark.  Every request is the full serving
/// shape — open a session for the circuit (`Auto` backend negotiation),
/// `run`, then `sample` — so a cache hit still pays session construction
/// and lookup, exactly what a server front-end would pay.
///
/// The report manages caching itself (cold pass: none; warming/warm
/// passes: one explicit shared [`ResultCache`]), so
/// [`CaseLimits::use_result_cache`] is deliberately overridden — were the
/// cold pass to pick up the process-global cache it would not be cold.
pub fn cache_report(scale: Scale, limits: CaseLimits) -> CacheReport {
    let limits = CaseLimits {
        use_result_cache: false,
        ..limits
    };
    let population: Vec<(String, Circuit)> = vec![
        (
            "random_clifford_t(12,s1)".into(),
            random::random_clifford_t(12, 1),
        ),
        (
            "random_clifford_t(12,s2)".into(),
            random::random_clifford_t(12, 2),
        ),
        ("ghz(16)".into(), algorithms::ghz(16)),
        (
            "bv_ones(14)".into(),
            algorithms::bernstein_vazirani_all_ones(14),
        ),
        (
            "random_clifford_t(12,s3)".into(),
            random::random_clifford_t(12, 3),
        ),
        (
            "random_clifford_t(12,s4)".into(),
            random::random_clifford_t(12, 4),
        ),
    ];
    let requests = if bench_smoke_env() {
        24
    } else {
        match scale {
            Scale::Quick => 200,
            Scale::Full => 800,
        }
    };
    let shots: u64 = if bench_smoke_env() {
        256
    } else {
        match scale {
            Scale::Quick => 1024,
            Scale::Full => 4096,
        }
    };
    // Zipf-ish popularity: rank r drawn with weight 1/(r+1), so the head of
    // the population dominates the mix the way a few hot circuits dominate
    // production traffic.
    let weights: Vec<f64> = (0..population.len())
        .map(|rank| 1.0 / (rank as f64 + 1.0))
        .collect();
    let total_weight: f64 = weights.iter().sum();
    let mut rng = StdRng::seed_from_u64(2021);
    let sequence: Vec<usize> = (0..requests)
        .map(|_| {
            let mut x = rng.gen_range(0.0..total_weight);
            for (rank, w) in weights.iter().enumerate() {
                if x < *w {
                    return rank;
                }
                x -= w;
            }
            population.len() - 1
        })
        .collect();
    let serve = |cache: Option<&Arc<ResultCache>>| -> f64 {
        let start = Instant::now();
        for &rank in &sequence {
            let circuit = &population[rank].1;
            let mut session = Session::for_circuit(circuit, limits.session_config(Backend::Auto))
                .expect("population circuits are supported");
            if let Some(cache) = cache {
                session.attach_result_cache(cache.clone());
            }
            session.run(circuit).expect("population circuits complete");
            session
                .sample(shots, 2021)
                .expect("population registers fit in 64 qubits");
        }
        start.elapsed().as_secs_f64()
    };
    let cold_secs = serve(None);
    let cache = ResultCache::shared(64 * 1024 * 1024);
    let warming_secs = serve(Some(&cache));
    let warm_secs = serve(Some(&cache));
    let stats = cache.stats();
    let shares: Vec<f64> = {
        let mut counts = vec![0usize; population.len()];
        for &rank in &sequence {
            counts[rank] += 1;
        }
        counts
            .into_iter()
            .map(|c| c as f64 / requests as f64)
            .collect()
    };
    CacheReport {
        population: population
            .into_iter()
            .zip(shares)
            .map(|((name, circuit), share)| (name, circuit.num_qubits(), share))
            .collect(),
        requests,
        shots,
        cold_secs,
        warming_secs,
        warm_secs,
        stats,
    }
}

/// Formats the result-cache benchmark.
pub fn format_cache(report: &CacheReport) -> String {
    let mut out = String::new();
    out.push_str("RESULT CACHE: skewed request mix, cold vs warm serving throughput\n");
    out.push_str(&format!(
        "  population ({} circuits, Zipf-ish shares):\n",
        report.population.len()
    ));
    for (name, qubits, share) in &report.population {
        out.push_str(&format!(
            "    {name:<26} {qubits:>3} qubits  {:>5.1}% of requests\n",
            100.0 * share
        ));
    }
    out.push_str(&format!(
        "  {} requests/pass, {} shots/request\n",
        report.requests, report.shots
    ));
    out.push_str(&format!(
        "  cold    {:>8.2} req/s  ({:.3}s, no cache)\n",
        report.cold_rps(),
        report.cold_secs
    ));
    out.push_str(&format!(
        "  warming {:>8.2} req/s  ({:.3}s, first pass over an empty cache)\n",
        report.requests as f64 / report.warming_secs.max(1e-9),
        report.warming_secs
    ));
    out.push_str(&format!(
        "  warm    {:>8.2} req/s  ({:.3}s, all hits)  speedup {:.1}x\n",
        report.warm_rps(),
        report.warm_secs,
        report.warm_speedup()
    ));
    let s = &report.stats;
    out.push_str(&format!(
        "  cache: hits {}  misses {}  hit-rate {:.1}%  entries {}  bytes {}  evictions {}\n",
        s.hits,
        s.misses,
        100.0 * s.hit_rate(),
        s.entries,
        s.bytes,
        s.evictions
    ));
    out
}

// ---------------------------------------------------------------------- //
// Memory sweep
// ---------------------------------------------------------------------- //

/// One workload of the memory sweep: the compact kernel's exact footprint
/// next to what the pre-compaction layout would have spent on the same node
/// population.
#[derive(Debug, Clone)]
pub struct MemoryRow {
    /// Workload name.
    pub name: String,
    /// Number of qubits.
    pub qubits: usize,
    /// Gate count.
    pub gates: usize,
    /// The runner's status cell ("MO", "TO", seconds…).
    pub status: String,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Live (allocated) nodes at the end of the run.
    pub allocated_nodes: usize,
    /// Exact bytes per allocated node over arena cells + var sidecars +
    /// unique subtables (op caches excluded: their size is a policy knob,
    /// not a function of the node population).
    pub bytes_per_node: f64,
    /// What the pre-compaction layout — 12-byte node cells and 8-byte
    /// unique-table slots — would spend per node on the same population.
    pub legacy_bytes_per_node: f64,
    /// `1 − compact/legacy` as a percentage.
    pub reduction_pct: f64,
    /// Peak tracked bytes over the run (arena + subtables + op caches).
    pub peak_bytes: usize,
    /// Peak allocated nodes over the run.
    pub peak_nodes: usize,
    /// Arena chunks handed back by generational sweeps.
    pub chunks_reclaimed: u64,
}

/// Derives the memory columns from one bit-sliced case result.
fn memory_row(name: String, circuit: &Circuit, limits: CaseLimits) -> MemoryRow {
    let result = run_case(Backend::BitSlice, circuit, limits);
    let mut row = MemoryRow {
        name,
        qubits: circuit.num_qubits(),
        gates: circuit.len(),
        status: result.time_cell(),
        seconds: result.seconds,
        allocated_nodes: 0,
        bytes_per_node: f64::NAN,
        legacy_bytes_per_node: f64::NAN,
        reduction_pct: f64::NAN,
        peak_bytes: 0,
        peak_nodes: 0,
        chunks_reclaimed: 0,
    };
    if let Some(stats) = result.bdd_stats {
        row.allocated_nodes = stats.allocated_nodes;
        row.bytes_per_node = stats.bytes_per_node();
        // The pre-compaction layout stored a 12-byte cell per arena slot
        // (same chunk occupancy, `var` inline so no sidecar) and an 8-byte
        // (id, tag) pair per unique-table slot where the compact layout
        // stores a 4-byte id.
        let arena_cells = stats.arena_cell_bytes / 8;
        let legacy_bytes = 12 * arena_cells + 2 * stats.subtable_bytes;
        if stats.allocated_nodes > 0 {
            row.legacy_bytes_per_node = legacy_bytes as f64 / stats.allocated_nodes as f64;
            row.reduction_pct = 100.0 * (1.0 - row.bytes_per_node / row.legacy_bytes_per_node);
        }
        row.peak_bytes = stats.peak_bytes;
        row.peak_nodes = stats.peak_nodes;
        row.chunks_reclaimed = stats.chunks_reclaimed;
    }
    row
}

/// Generates and runs the memory sweep: the Table III random Clifford+T
/// sizes (every seed its own row) plus the Table IV RevLib-like circuits in
/// their superposition-modified form (the original reversible circuits keep
/// near-trivial BDDs, so the modified ones are the memory-relevant half).
pub fn memory_rows(scale: Scale, limits: CaseLimits) -> Vec<MemoryRow> {
    let (sizes, seeds): (Vec<usize>, u64) = if bench_smoke_env() {
        (vec![12, 16], 1)
    } else {
        match scale {
            Scale::Quick => (vec![16, 20, 24, 28], 3),
            Scale::Full => (vec![24, 32, 40, 56], 3),
        }
    };
    let mut rows = Vec::new();
    for qubits in sizes {
        for seed in 0..seeds {
            rows.push(memory_row(
                format!("random_clifford_t({qubits},s{seed})"),
                &random::random_clifford_t(qubits, seed),
                limits,
            ));
        }
    }
    let revlib = if bench_smoke_env() {
        vec![revlib_like::ripple_carry_adder(6)]
    } else {
        vec![
            revlib_like::ripple_carry_adder(6),
            revlib_like::equality_comparator(8),
            revlib_like::hidden_weighted_bit_like(8),
            revlib_like::random_control_logic(20, 90, 11),
        ]
    };
    for bench in revlib {
        let modified = bench.with_superposition_inputs();
        rows.push(memory_row(format!("{}+H", bench.name), &modified, limits));
    }
    rows
}

/// Geometric mean of `bytes_per_node` over completed rows (the CI
/// regression gate's scalar); `None` when no row completed.
pub fn memory_geomean_bytes_per_node(rows: &[MemoryRow]) -> Option<f64> {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for row in rows {
        if row.bytes_per_node.is_finite() && row.bytes_per_node > 0.0 {
            log_sum += row.bytes_per_node.ln();
            n += 1;
        }
    }
    (n > 0).then(|| (log_sum / n as f64).exp())
}

/// Formats the memory sweep.
pub fn format_memory(rows: &[MemoryRow]) -> String {
    let mut out = String::new();
    out.push_str("MEMORY: bytes/node and peak footprint of the compact kernel layout\n");
    out.push_str(&format!(
        "{:<26} {:>7} {:>6} {:>8} | {:>9} {:>9} {:>9} {:>6} | {:>12} {:>9}\n",
        "Workload",
        "#Qubits",
        "#Gates",
        "time",
        "nodes",
        "B/node",
        "legacy",
        "cut%",
        "peak bytes",
        "reclaimed"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<26} {:>7} {:>6} {:>8} | {:>9} {:>9.1} {:>9.1} {:>5.1}% | {:>12} {:>9}\n",
            row.name,
            row.qubits,
            row.gates,
            row.status,
            row.allocated_nodes,
            row.bytes_per_node,
            row.legacy_bytes_per_node,
            row.reduction_pct,
            row.peak_bytes,
            row.chunks_reclaimed
        ));
    }
    if let Some(geomean) = memory_geomean_bytes_per_node(rows) {
        out.push_str(&format!(
            "  geomean bytes/node {geomean:.2} over {} completed workloads\n",
            rows.iter().filter(|r| r.bytes_per_node.is_finite()).count()
        ));
    }
    out
}

/// Convenience: `true` if any case in the pair of results hit a limit (used
/// by the harness tests).
pub fn any_failure(results: &[&CaseResult]) -> bool {
    results
        .iter()
        .any(|r| !matches!(r.status, CaseStatus::Completed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn tiny_limits() -> CaseLimits {
        CaseLimits {
            timeout: Duration::from_secs(15),
            max_nodes: 500_000,
            ..CaseLimits::default()
        }
    }

    #[test]
    fn table3_quick_produces_all_rows() {
        let limits = CaseLimits {
            timeout: Duration::from_secs(10),
            max_nodes: 200_000,
            ..CaseLimits::default()
        };
        let rows = table3_rows(Scale::Quick, limits);
        assert_eq!(rows.len(), 4);
        let text = format_table3(&rows);
        assert!(text.contains("TABLE III"));
        assert!(text.contains("16"));
        // The bit-sliced backend must complete the smallest size.
        assert!(rows[0].bitslice.completed > 0);
    }

    #[test]
    fn table5_shape_matches_the_paper() {
        let rows = table5_rows(Scale::Quick, tiny_limits());
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert_eq!(row.ent_gates, row.qubits);
            assert_eq!(row.bv_gates, 3 * (row.qubits - 1) + 2);
            // Entanglement completes on the exact backend and on CHP.
            assert_eq!(row.entanglement.1.status, CaseStatus::Completed);
            assert_eq!(row.entanglement.2.status, CaseStatus::Completed);
            // BV completes on the exact backend.
            assert_eq!(row.bv.1.status, CaseStatus::Completed);
        }
        let text = format_table5(&rows);
        assert!(text.contains("Bernstein-Vazirani"));
    }

    #[test]
    fn accuracy_rows_show_exactness_gap() {
        let rows = accuracy_rows(Scale::Quick);
        for row in &rows {
            assert!(row.bitslice_exact, "exact backend must stay normalised");
            assert!(row.bitslice_error < 1e-9);
            // Coarsening the complex-table tolerance can only make the
            // amplitude drift worse, never better.
            assert!(row.qmdd_coarse_amp_error >= row.qmdd_amp_error * 0.5);
        }
        // The drift of the coarse backend grows with depth and is visible.
        assert!(rows.last().unwrap().qmdd_coarse_amp_error > 1e-9);
        let text = format_accuracy(&rows);
        assert!(text.contains("ACCURACY"));
    }

    #[test]
    fn sample_sweep_reports_throughput_and_capability_skips() {
        let rows = sample_rows_with_shots(Scale::Quick, tiny_limits(), 128);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert_eq!(row.cells.len(), Backend::ALL.len());
            for cell in &row.cells {
                // GHZ and Bernstein–Vazirani are Clifford-only; only the
                // Clifford+T random circuit is out of CHP's reach.
                let clifford_skip = cell.backend == Backend::Stabilizer
                    && row.name.starts_with("random_clifford_t");
                if clifford_skip {
                    assert!(cell.note.is_some(), "{}: CHP must be skipped", row.name);
                } else {
                    assert!(
                        cell.note.is_none(),
                        "{} on {}: {:?}",
                        row.name,
                        cell.backend,
                        cell.note
                    );
                    assert!(cell.shots_per_sec > 0.0);
                }
            }
        }
        let text = format_sample(&rows);
        assert!(text.contains("SAMPLING"));
        assert!(text.contains("vs resim"));
        assert!(text.contains("n/a"));
    }

    #[test]
    fn memory_row_reports_compact_layout_savings() {
        let circuit = random::random_clifford_t(14, 1);
        let row = memory_row("random_clifford_t(14,s1)".into(), &circuit, tiny_limits());
        assert_eq!(row.status, format!("{:.2}", row.seconds));
        assert!(row.allocated_nodes > 0);
        assert!(row.bytes_per_node > 0.0);
        assert!(row.legacy_bytes_per_node > row.bytes_per_node);
        // The acceptance bar proper (≥25% on random_clifford_t(24)) lives in
        // the gated perf test; the layout algebra guarantees ≥33% whenever
        // no var sidecar is resident, so even this small case clears 25%.
        assert!(
            row.reduction_pct >= 25.0,
            "compact layout must cut ≥25% bytes/node, got {:.1}%",
            row.reduction_pct
        );
        assert!(row.peak_bytes > 0);
        let rows = vec![row];
        let geomean = memory_geomean_bytes_per_node(&rows).expect("one completed row");
        assert!(geomean > 0.0);
        let text = format_memory(&rows);
        assert!(text.contains("MEMORY"));
        assert!(text.contains("geomean"));
    }

    #[test]
    fn bitwidth_ablation_reports_monotone_layers() {
        let rows = bitwidth_rows(Scale::Quick);
        assert!(!rows.is_empty());
        for pair in rows.windows(2) {
            assert!(pair[0].layers < pair[1].layers);
        }
        let text = format_bitwidth(&rows);
        assert!(text.contains("ABLATION"));
    }
}
