//! The BDD manager: node storage, unique table, memoised operations and
//! garbage collection.
//!
//! The design mirrors what the paper needs from CUDD and nothing more:
//! *reduced ordered* BDDs with a hash-consing unique table, memoised Boolean
//! operations, cofactor computation, SAT counting and mark-and-sweep garbage
//! collection driven by the caller (who knows the root set).
//!
//! # Kernel layout
//!
//! The bit-sliced simulator decomposes every gate into millions of tiny
//! Boolean operations, so this module is organised around making those calls
//! cheap:
//!
//! * **Specialised apply recursions.**  `and`, `or`, `xor` and `not` each
//!   have a dedicated two-operand recursion with commutative key
//!   normalisation (`and(f, g)` and `and(g, f)` probe the same cache line)
//!   instead of lowering to three-operand `ite`, which halves the key width
//!   and skips the ITE triangle checks on the hot path.  On top of those,
//!   the gate formulas get single-pass recursions for their dominant
//!   three-operand shapes: [`Manager::xor3`] (the full-adder sum),
//!   [`Manager::maj`] (the full-adder carry), [`Manager::flip_var`] (the
//!   X-gate cofactor swap) and [`Manager::mux_var`] (ITE on a variable
//!   literal), each replacing a chain of two to four generic applies with
//!   one traversal.
//!
//! * **Lossy direct-mapped operation caches.**  Each operation memoises into
//!   a power-of-two array of packed `u64` words indexed by a strong 64-bit
//!   mix of the operand ids ([`crate::hash::mix64`]).  A colliding insert
//!   simply overwrites the previous entry (counted as an *eviction* in
//!   [`CacheStats`]); a lookup compares the stored key words and treats any
//!   mismatch as a miss.  Memoisation therefore costs zero allocations on
//!   the hot path, and losing an entry only costs recomputation — never
//!   correctness, because every cached result is reproducible from the
//!   recursion itself.  Each cache starts at 2¹² entries and doubles
//!   (rehashing its live entries) whenever the misses since the last resize
//!   exceed its capacity, up to 2¹⁶ entries, so small managers stay compact
//!   while adder-heavy workloads grow the caches they actually use.
//!   All caches are cleared in O(1) at GC time by bumping a generation
//!   counter (`cache_epoch`): entries stamped with an older epoch are
//!   ignored, so no memset of the arrays is ever needed.
//!
//! * **Open-addressed unique table.**  Hash consing uses a single
//!   linear-probed table whose 16-byte slots store the packed
//!   `(low, high)` children as one `u64`, the level, and the node id
//!   (`u32::MAX` marks an empty slot).  The table doubles when the load
//!   factor exceeds 3/4 and is rebuilt from the mark bitmap during
//!   [`Manager::collect_garbage`], which also rebuilds the free-list, so
//!   deleted keys never need tombstones.
//!
//! [`ManagerStats`] exposes per-cache hit/miss/eviction counters plus unique
//! table resize counts so benchmark harnesses can report cache behaviour.

use crate::hash::{mix64, FxHashMap};
use sliq_bignum::UBig;

/// Handle to a BDD node owned by a [`Manager`].
///
/// `NodeId`s stay valid across garbage collections as long as the node is
/// reachable from one of the roots passed to [`Manager::collect_garbage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// The constant-false terminal.
    pub const FALSE: NodeId = NodeId(0);
    /// The constant-true terminal.
    pub const TRUE: NodeId = NodeId(1);

    /// Returns `true` if this is one of the two terminal nodes.
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }

    /// Returns `true` if this is the constant-false terminal.
    pub fn is_false(self) -> bool {
        self == Self::FALSE
    }

    /// Returns `true` if this is the constant-true terminal.
    pub fn is_true(self) -> bool {
        self == Self::TRUE
    }

    /// The raw index (useful for external memo tables).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Level used for terminal nodes: below every real variable.
const TERMINAL_LEVEL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    level: u32,
    low: NodeId,
    high: NodeId,
}

// ---------------------------------------------------------------------- //
// Operation caches
// ---------------------------------------------------------------------- //

/// Initial and maximum entry counts (log2) of the direct-mapped caches.
/// Every cache starts tiny and doubles whenever the misses since its last
/// resize exceed its capacity — i.e. when the working set demonstrably does
/// not fit.  The maximum keeps a fully grown cache at a couple of MiB: far
/// beyond that, probing loses to recomputation on TLB and DRAM misses.
const CACHE_INITIAL_LOG2: u32 = 12;
const CACHE_MAX_LOG2: u32 = 16;

/// A lossy direct-mapped memoisation cache backed by packed `u64` words.
///
/// Entry layouts (all words zero ⇒ epoch 0 ⇒ stale):
/// * stride 2 (`and`/`or`/`xor`, `not`, `cofactor`): `[key, epoch<<32|result]`
/// * stride 3 (`ite`): `[f<<32|g, h, epoch<<32|result]`
///
/// Backing the cache with `Vec<u64>` rather than entry structs lets fresh
/// caches come from `vec![0u64; n]`, which the allocator serves as
/// lazily-mapped zero pages — `Manager::new` costs O(1) per cache instead of
/// a multi-MiB memset.
#[derive(Debug, Clone)]
struct DirectCache {
    words: Vec<u64>,
    /// Entry-index mask (entry count − 1).
    mask: usize,
    stride: usize,
    /// Misses remaining until the next doubling.
    grow_budget: u64,
}

impl DirectCache {
    fn new(stride: usize) -> Self {
        let entries = 1usize << CACHE_INITIAL_LOG2;
        Self {
            words: vec![0; entries * stride],
            mask: entries - 1,
            stride,
            grow_budget: entries as u64,
        }
    }

    #[inline]
    fn base(&self, hash: u64) -> usize {
        (hash as usize & self.mask) * self.stride
    }

    /// Called once per store (= once per miss): doubles the cache when the
    /// miss volume since the last resize exceeds the current capacity.
    #[inline]
    fn note_miss(&mut self) {
        self.grow_budget -= 1;
        if self.grow_budget == 0 {
            self.grow();
        }
    }

    /// Doubles the entry count, rehashing live entries into the new array
    /// (every entry stores its full key, so nothing warm is lost; colliding
    /// pairs resolve lossily as usual).
    #[cold]
    fn grow(&mut self) {
        let entries = self.mask + 1;
        if entries >= (1usize << CACHE_MAX_LOG2) {
            self.grow_budget = u64::MAX;
            return;
        }
        let doubled = entries * 2;
        let mask = doubled - 1;
        let mut words = vec![0u64; doubled * self.stride];
        for base in (0..self.words.len()).step_by(self.stride) {
            let meta_word = self.words[base + self.stride - 1];
            if meta_word == 0 {
                continue;
            }
            let hash = if self.stride == 2 {
                mix64(self.words[base])
            } else {
                mix64(self.words[base] ^ mix64(self.words[base + 1]))
            };
            let new_base = (hash as usize & mask) * self.stride;
            words[new_base..new_base + self.stride]
                .copy_from_slice(&self.words[base..base + self.stride]);
        }
        self.words = words;
        self.mask = mask;
        self.grow_budget = doubled as u64;
    }

    /// Looks up a stride-2 entry.
    #[inline]
    fn probe2(&self, epoch: u32, key: u64) -> Option<NodeId> {
        let base = self.base(mix64(key));
        let found_meta = self.words[base + 1];
        if self.words[base] == key && meta_epoch(found_meta) == epoch {
            Some(meta_result(found_meta))
        } else {
            None
        }
    }

    /// Stores a stride-2 entry, counting lossy overwrites into `stats`.
    #[inline]
    fn store2(&mut self, stats: &mut CacheStats, epoch: u32, key: u64, result: NodeId) {
        let base = self.base(mix64(key));
        if meta_epoch(self.words[base + 1]) == epoch && self.words[base] != key {
            stats.evictions += 1;
        }
        self.words[base] = key;
        self.words[base + 1] = meta(epoch, result);
        self.note_miss();
    }

    /// Looks up a stride-3 (`ite`) entry.
    #[inline]
    fn probe3(&self, epoch: u32, key_fg: u64, key_h: u64) -> Option<NodeId> {
        let base = self.base(mix64(key_fg ^ mix64(key_h)));
        let found_meta = self.words[base + 2];
        if self.words[base] == key_fg
            && self.words[base + 1] == key_h
            && meta_epoch(found_meta) == epoch
        {
            Some(meta_result(found_meta))
        } else {
            None
        }
    }

    /// Stores a stride-3 (`ite`) entry.
    #[inline]
    fn store3(
        &mut self,
        stats: &mut CacheStats,
        epoch: u32,
        key_fg: u64,
        key_h: u64,
        result: NodeId,
    ) {
        let base = self.base(mix64(key_fg ^ mix64(key_h)));
        if meta_epoch(self.words[base + 2]) == epoch
            && (self.words[base] != key_fg || self.words[base + 1] != key_h)
        {
            stats.evictions += 1;
        }
        self.words[base] = key_fg;
        self.words[base + 1] = key_h;
        self.words[base + 2] = meta(epoch, result);
        self.note_miss();
    }
}

#[inline]
fn meta(epoch: u32, result: NodeId) -> u64 {
    ((epoch as u64) << 32) | result.0 as u64
}

#[inline]
fn meta_epoch(word: u64) -> u32 {
    (word >> 32) as u32
}

#[inline]
fn meta_result(word: u64) -> NodeId {
    NodeId(word as u32)
}

/// Hit/miss/eviction counters of one direct-mapped operation cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the recursion.
    pub misses: u64,
    /// Stores that overwrote a live entry with a different key (the lossy
    /// direct-mapped collision case).
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    fn merged_into(self, total: &mut CacheStats) {
        total.hits += self.hits;
        total.misses += self.misses;
        total.evictions += self.evictions;
    }
}

/// Counters describing the work a [`Manager`] has performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Number of garbage collections run so far.
    pub gc_runs: usize,
    /// Peak number of live (allocated, non-freed) nodes observed.
    pub peak_nodes: usize,
    /// Total nodes ever created (including ones later collected).
    pub created_nodes: usize,
    /// Number of times the open-addressed unique table doubled.
    pub unique_resizes: usize,
    /// Counters of the `and` apply cache.
    pub and_cache: CacheStats,
    /// Counters of the `or` apply cache.
    pub or_cache: CacheStats,
    /// Counters of the `xor` apply cache.
    pub xor_cache: CacheStats,
    /// Counters of the `not` cache.
    pub not_cache: CacheStats,
    /// Counters of the `ite` cache.
    pub ite_cache: CacheStats,
    /// Counters of the `cofactor` cache.
    pub cofactor_cache: CacheStats,
    /// Counters of the three-operand `xor3` cache (the full-adder sum).
    pub xor3_cache: CacheStats,
    /// Counters of the three-operand `maj` cache (the full-adder carry).
    pub maj_cache: CacheStats,
    /// Counters of the `flip_var` cache (the X-gate permutation).
    pub flip_cache: CacheStats,
    /// Counters of the `mux_var` cache (ITE on a variable literal).
    pub mux_cache: CacheStats,
}

impl ManagerStats {
    /// Every operation cache's name and counters, in reporting order — the
    /// single enumeration aggregate consumers (totals, reports) loop over.
    pub fn caches(&self) -> [(&'static str, &CacheStats); 10] {
        [
            ("and", &self.and_cache),
            ("or", &self.or_cache),
            ("xor", &self.xor_cache),
            ("not", &self.not_cache),
            ("ite", &self.ite_cache),
            ("cofactor", &self.cofactor_cache),
            ("xor3", &self.xor3_cache),
            ("maj", &self.maj_cache),
            ("flip", &self.flip_cache),
            ("mux", &self.mux_cache),
        ]
    }

    /// Sum of every operation cache's counters.
    pub fn total_cache(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for (_, cache) in self.caches() {
            cache.merged_into(&mut total);
        }
        total
    }

    /// Overall cache hit rate across every operation cache.
    pub fn cache_hit_rate(&self) -> f64 {
        self.total_cache().hit_rate()
    }
}

// ---------------------------------------------------------------------- //
// Unique table
// ---------------------------------------------------------------------- //

/// Sentinel id marking an empty unique-table slot.
const EMPTY_SLOT: u32 = u32::MAX;

/// Initial unique-table capacity (slots, power of two).
const INITIAL_TABLE_CAPACITY: usize = 1 << 11;

/// One 16-byte slot of the open-addressed unique table: the packed
/// `(low, high)` children, the level, and the node id.
#[derive(Debug, Clone, Copy)]
struct UniqueSlot {
    children: u64,
    level: u32,
    id: u32,
}

const EMPTY_UNIQUE_SLOT: UniqueSlot = UniqueSlot {
    children: 0,
    level: 0,
    id: EMPTY_SLOT,
};

#[inline]
fn pack_children(low: NodeId, high: NodeId) -> u64 {
    ((low.0 as u64) << 32) | high.0 as u64
}

#[inline]
fn unique_hash(level: u32, children: u64) -> u64 {
    mix64(children ^ (level as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// A reduced ordered BDD manager.
///
/// Variables are identified by their index `0..num_vars()`, which is also the
/// variable order (index 0 is the topmost level).  The simulator places qubit
/// variables first and measurement-encoding variables after them, matching
/// the ordering requirement of the paper's measurement procedure (§III-E).
///
/// ```
/// use sliq_bdd::{Manager, NodeId};
/// let mut mgr = Manager::new(2);
/// let x0 = mgr.var(0);
/// let x1 = mgr.var(1);
/// let f = mgr.and(x0, x1);
/// assert!(mgr.eval(f, &[true, true]));
/// assert!(!mgr.eval(f, &[true, false]));
/// assert_eq!(mgr.sat_count(f, 2), sliq_bignum::UBig::from(1u64));
/// assert_ne!(f, NodeId::FALSE);
/// ```
#[derive(Debug, Clone)]
pub struct Manager {
    nodes: Vec<Node>,
    free: Vec<u32>,
    /// Open-addressed, linear-probed unique table (power-of-two capacity).
    table: Vec<UniqueSlot>,
    /// Number of live entries in `table`.
    table_len: usize,
    and_cache: DirectCache,
    or_cache: DirectCache,
    xor_cache: DirectCache,
    not_cache: DirectCache,
    ite_cache: DirectCache,
    cofactor_cache: DirectCache,
    xor3_cache: DirectCache,
    maj_cache: DirectCache,
    flip_cache: DirectCache,
    mux_cache: DirectCache,
    /// Generation stamp giving O(1) cache clear: entries whose `epoch` field
    /// differs are stale.
    cache_epoch: u32,
    num_vars: u32,
    gc_threshold: usize,
    stats: ManagerStats,
}

impl Manager {
    /// Creates a manager with `num_vars` Boolean variables.
    pub fn new(num_vars: usize) -> Self {
        let terminal = Node {
            level: TERMINAL_LEVEL,
            low: NodeId::FALSE,
            high: NodeId::FALSE,
        };
        Self {
            nodes: vec![terminal, terminal],
            free: Vec::new(),
            table: vec![EMPTY_UNIQUE_SLOT; INITIAL_TABLE_CAPACITY],
            table_len: 0,
            and_cache: DirectCache::new(2),
            or_cache: DirectCache::new(2),
            xor_cache: DirectCache::new(2),
            not_cache: DirectCache::new(2),
            ite_cache: DirectCache::new(3),
            cofactor_cache: DirectCache::new(2),
            xor3_cache: DirectCache::new(3),
            maj_cache: DirectCache::new(3),
            flip_cache: DirectCache::new(2),
            mux_cache: DirectCache::new(3),
            cache_epoch: 1,
            num_vars: num_vars as u32,
            gc_threshold: 1 << 16,
            stats: ManagerStats::default(),
        }
    }

    /// The number of declared variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars as usize
    }

    /// Declares `extra` additional variables (appended below the existing
    /// ones in the order) and returns the index of the first new variable.
    pub fn add_vars(&mut self, extra: usize) -> usize {
        let first = self.num_vars as usize;
        self.num_vars += extra as u32;
        first
    }

    /// Operational statistics.
    pub fn stats(&self) -> ManagerStats {
        self.stats
    }

    /// The number of currently allocated (live or garbage, not yet freed)
    /// nodes, excluding the two terminals.
    pub fn allocated_nodes(&self) -> usize {
        self.nodes.len() - 2 - self.free.len()
    }

    // ----------------------------------------------------------------- //
    // Construction primitives
    // ----------------------------------------------------------------- //

    /// The constant function for `value`.
    pub fn constant(&self, value: bool) -> NodeId {
        if value {
            NodeId::TRUE
        } else {
            NodeId::FALSE
        }
    }

    /// The positive literal of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn var(&mut self, var: usize) -> NodeId {
        assert!(var < self.num_vars as usize, "variable {var} out of range");
        self.mk(var as u32, NodeId::FALSE, NodeId::TRUE)
    }

    /// The negative literal of variable `var`.
    pub fn nvar(&mut self, var: usize) -> NodeId {
        assert!(var < self.num_vars as usize, "variable {var} out of range");
        self.mk(var as u32, NodeId::TRUE, NodeId::FALSE)
    }

    #[inline]
    fn level(&self, f: NodeId) -> u32 {
        self.nodes[f.index()].level
    }

    #[inline]
    fn low(&self, f: NodeId) -> NodeId {
        self.nodes[f.index()].low
    }

    #[inline]
    fn high(&self, f: NodeId) -> NodeId {
        self.nodes[f.index()].high
    }

    /// Returns `(level, low, high)` of a non-terminal node.
    pub fn node(&self, f: NodeId) -> Option<(usize, NodeId, NodeId)> {
        if f.is_terminal() {
            None
        } else {
            let n = &self.nodes[f.index()];
            Some((n.level as usize, n.low, n.high))
        }
    }

    /// Hash-consing node constructor (the `MK` operation): finds or creates
    /// the node `(level, low, high)` through the open-addressed unique table.
    fn mk(&mut self, level: u32, low: NodeId, high: NodeId) -> NodeId {
        if low == high {
            return low;
        }
        let children = pack_children(low, high);
        let mask = self.table.len() - 1;
        let mut idx = unique_hash(level, children) as usize & mask;
        loop {
            let slot = self.table[idx];
            if slot.id == EMPTY_SLOT {
                break;
            }
            if slot.children == children && slot.level == level {
                return NodeId(slot.id);
            }
            idx = (idx + 1) & mask;
        }
        // Miss: keep the load factor below 3/4, re-probing for the insert
        // slot if the table moved.
        if (self.table_len + 1) * 4 > self.table.len() * 3 {
            self.grow_table();
            let mask = self.table.len() - 1;
            idx = unique_hash(level, children) as usize & mask;
            while self.table[idx].id != EMPTY_SLOT {
                idx = (idx + 1) & mask;
            }
        }
        let node = Node { level, low, high };
        let id = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot as usize] = node;
                slot
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        };
        self.table[idx] = UniqueSlot {
            children,
            level,
            id,
        };
        self.table_len += 1;
        self.stats.created_nodes += 1;
        self.stats.peak_nodes = self.stats.peak_nodes.max(self.allocated_nodes());
        NodeId(id)
    }

    /// Doubles the unique table and reinserts every live slot.
    fn grow_table(&mut self) {
        let new_capacity = self.table.len() * 2;
        let mask = new_capacity - 1;
        let mut table = vec![EMPTY_UNIQUE_SLOT; new_capacity];
        for slot in &self.table {
            if slot.id == EMPTY_SLOT {
                continue;
            }
            let mut idx = unique_hash(slot.level, slot.children) as usize & mask;
            while table[idx].id != EMPTY_SLOT {
                idx = (idx + 1) & mask;
            }
            table[idx] = *slot;
        }
        self.table = table;
        self.stats.unique_resizes += 1;
    }

    /// Rebuilds the unique table and free-list from the GC mark bitmap.
    fn rebuild_table(&mut self, marked: &[bool]) {
        for slot in self.table.iter_mut() {
            *slot = EMPTY_UNIQUE_SLOT;
        }
        self.table_len = 0;
        self.free.clear();
        let mask = self.table.len() - 1;
        for (index, &is_live) in marked.iter().enumerate().skip(2) {
            if !is_live {
                self.free.push(index as u32);
                continue;
            }
            let node = self.nodes[index];
            let children = pack_children(node.low, node.high);
            let mut idx = unique_hash(node.level, children) as usize & mask;
            while self.table[idx].id != EMPTY_SLOT {
                idx = (idx + 1) & mask;
            }
            self.table[idx] = UniqueSlot {
                children,
                level: node.level,
                id: index as u32,
            };
            self.table_len += 1;
        }
    }

    // ----------------------------------------------------------------- //
    // Boolean operations
    // ----------------------------------------------------------------- //

    #[inline]
    fn split(&self, f: NodeId, level: u32) -> (NodeId, NodeId) {
        let node = &self.nodes[f.index()];
        if node.level == level {
            (node.low, node.high)
        } else {
            (f, f)
        }
    }

    /// Logical conjunction (dedicated apply recursion).
    pub fn and(&mut self, f: NodeId, g: NodeId) -> NodeId {
        if f == g {
            return f;
        }
        if f.is_false() || g.is_false() {
            return NodeId::FALSE;
        }
        if f.is_true() {
            return g;
        }
        if g.is_true() {
            return f;
        }
        // Commutative key normalisation: canonical operand order.
        let (a, b) = if f.0 < g.0 { (f, g) } else { (g, f) };
        let key = ((a.0 as u64) << 32) | b.0 as u64;
        if let Some(result) = self.and_cache.probe2(self.cache_epoch, key) {
            self.stats.and_cache.hits += 1;
            return result;
        }
        self.stats.and_cache.misses += 1;
        let top = self.level(a).min(self.level(b));
        let (a0, a1) = self.split(a, top);
        let (b0, b1) = self.split(b, top);
        let low = self.and(a0, b0);
        let high = self.and(a1, b1);
        let result = self.mk(top, low, high);
        self.and_cache
            .store2(&mut self.stats.and_cache, self.cache_epoch, key, result);
        result
    }

    /// Logical disjunction (dedicated apply recursion).
    pub fn or(&mut self, f: NodeId, g: NodeId) -> NodeId {
        if f == g {
            return f;
        }
        if f.is_true() || g.is_true() {
            return NodeId::TRUE;
        }
        if f.is_false() {
            return g;
        }
        if g.is_false() {
            return f;
        }
        let (a, b) = if f.0 < g.0 { (f, g) } else { (g, f) };
        let key = ((a.0 as u64) << 32) | b.0 as u64;
        if let Some(result) = self.or_cache.probe2(self.cache_epoch, key) {
            self.stats.or_cache.hits += 1;
            return result;
        }
        self.stats.or_cache.misses += 1;
        let top = self.level(a).min(self.level(b));
        let (a0, a1) = self.split(a, top);
        let (b0, b1) = self.split(b, top);
        let low = self.or(a0, b0);
        let high = self.or(a1, b1);
        let result = self.mk(top, low, high);
        self.or_cache
            .store2(&mut self.stats.or_cache, self.cache_epoch, key, result);
        result
    }

    /// Exclusive or (dedicated apply recursion).
    pub fn xor(&mut self, f: NodeId, g: NodeId) -> NodeId {
        if f == g {
            return NodeId::FALSE;
        }
        if f.is_false() {
            return g;
        }
        if g.is_false() {
            return f;
        }
        if f.is_true() {
            return self.not(g);
        }
        if g.is_true() {
            return self.not(f);
        }
        let (a, b) = if f.0 < g.0 { (f, g) } else { (g, f) };
        let key = ((a.0 as u64) << 32) | b.0 as u64;
        if let Some(result) = self.xor_cache.probe2(self.cache_epoch, key) {
            self.stats.xor_cache.hits += 1;
            return result;
        }
        self.stats.xor_cache.misses += 1;
        let top = self.level(a).min(self.level(b));
        let (a0, a1) = self.split(a, top);
        let (b0, b1) = self.split(b, top);
        let low = self.xor(a0, b0);
        let high = self.xor(a1, b1);
        let result = self.mk(top, low, high);
        self.xor_cache
            .store2(&mut self.stats.xor_cache, self.cache_epoch, key, result);
        result
    }

    /// Logical negation (dedicated recursion; without complement edges the
    /// negation of a shared subgraph is itself heavily shared, so this cache
    /// hits often).
    pub fn not(&mut self, f: NodeId) -> NodeId {
        if f.is_false() {
            return NodeId::TRUE;
        }
        if f.is_true() {
            return NodeId::FALSE;
        }
        let key = f.0 as u64;
        if let Some(result) = self.not_cache.probe2(self.cache_epoch, key) {
            self.stats.not_cache.hits += 1;
            return result;
        }
        self.stats.not_cache.misses += 1;
        let level = self.level(f);
        let (f0, f1) = (self.low(f), self.high(f));
        let low = self.not(f0);
        let high = self.not(f1);
        let result = self.mk(level, low, high);
        self.not_cache
            .store2(&mut self.stats.not_cache, self.cache_epoch, key, result);
        result
    }

    /// If-then-else: `ite(f, g, h) = (f ∧ g) ∨ (¬f ∧ h)`.
    ///
    /// Calls whose shape matches a two-operand operation are routed to the
    /// specialised recursions (and their caches) instead.
    pub fn ite(&mut self, f: NodeId, g: NodeId, h: NodeId) -> NodeId {
        // Terminal and triangle cases.
        if f.is_true() {
            return g;
        }
        if f.is_false() {
            return h;
        }
        if g == h {
            return g;
        }
        if g.is_true() && h.is_false() {
            return f;
        }
        if g.is_false() && h.is_true() {
            return self.not(f);
        }
        // Two-operand shapes: reuse the specialised recursions.
        if h.is_false() || f == h {
            return self.and(f, g);
        }
        if g.is_true() || f == g {
            return self.or(f, h);
        }
        if g.is_false() {
            let nf = self.not(f);
            return self.and(nf, h);
        }
        if h.is_true() {
            let nf = self.not(f);
            return self.or(nf, g);
        }
        let key_fg = ((f.0 as u64) << 32) | g.0 as u64;
        let key_h = h.0 as u64;
        if let Some(result) = self.ite_cache.probe3(self.cache_epoch, key_fg, key_h) {
            self.stats.ite_cache.hits += 1;
            return result;
        }
        self.stats.ite_cache.misses += 1;
        let top = self.level(f).min(self.level(g)).min(self.level(h));
        let (f0, f1) = self.split(f, top);
        let (g0, g1) = self.split(g, top);
        let (h0, h1) = self.split(h, top);
        let low = self.ite(f0, g0, h0);
        let high = self.ite(f1, g1, h1);
        let result = self.mk(top, low, high);
        self.ite_cache.store3(
            &mut self.stats.ite_cache,
            self.cache_epoch,
            key_fg,
            key_h,
            result,
        );
        result
    }

    /// Three-operand exclusive or `f ⊕ g ⊕ h` — the full-adder *sum* — as a
    /// single recursion instead of two chained [`Manager::xor`] passes.
    pub fn xor3(&mut self, f: NodeId, g: NodeId, h: NodeId) -> NodeId {
        // Fully commutative: sort into canonical operand order.
        let (mut a, mut b, mut c) = (f, g, h);
        if a.0 > b.0 {
            std::mem::swap(&mut a, &mut b);
        }
        if b.0 > c.0 {
            std::mem::swap(&mut b, &mut c);
        }
        if a.0 > b.0 {
            std::mem::swap(&mut a, &mut b);
        }
        // Duplicate operands cancel.
        if a == b {
            return c;
        }
        if b == c {
            return a;
        }
        // Terminals sort first; peel them off pairwise.
        if a.is_terminal() {
            let rest = self.xor(b, c);
            return if a.is_true() { self.not(rest) } else { rest };
        }
        let key_ab = ((a.0 as u64) << 32) | b.0 as u64;
        let key_c = c.0 as u64;
        if let Some(result) = self.xor3_cache.probe3(self.cache_epoch, key_ab, key_c) {
            self.stats.xor3_cache.hits += 1;
            return result;
        }
        self.stats.xor3_cache.misses += 1;
        let top = self.level(a).min(self.level(b)).min(self.level(c));
        let (a0, a1) = self.split(a, top);
        let (b0, b1) = self.split(b, top);
        let (c0, c1) = self.split(c, top);
        let low = self.xor3(a0, b0, c0);
        let high = self.xor3(a1, b1, c1);
        let result = self.mk(top, low, high);
        self.xor3_cache.store3(
            &mut self.stats.xor3_cache,
            self.cache_epoch,
            key_ab,
            key_c,
            result,
        );
        result
    }

    /// Three-operand majority `f·g ∨ f·h ∨ g·h` — the full-adder *carry*
    /// `a·b ∨ (a ∨ b)·c` — as a single recursion instead of four chained
    /// two-operand passes.
    pub fn maj(&mut self, f: NodeId, g: NodeId, h: NodeId) -> NodeId {
        // Fully commutative: sort into canonical operand order.
        let (mut a, mut b, mut c) = (f, g, h);
        if a.0 > b.0 {
            std::mem::swap(&mut a, &mut b);
        }
        if b.0 > c.0 {
            std::mem::swap(&mut b, &mut c);
        }
        if a.0 > b.0 {
            std::mem::swap(&mut a, &mut b);
        }
        // A duplicated operand wins the vote.
        if a == b {
            return a;
        }
        if b == c {
            return b;
        }
        // Terminals sort first; a false vote reduces to AND, a true one to OR.
        if a.is_terminal() {
            return if a.is_true() {
                self.or(b, c)
            } else {
                self.and(b, c)
            };
        }
        let key_ab = ((a.0 as u64) << 32) | b.0 as u64;
        let key_c = c.0 as u64;
        if let Some(result) = self.maj_cache.probe3(self.cache_epoch, key_ab, key_c) {
            self.stats.maj_cache.hits += 1;
            return result;
        }
        self.stats.maj_cache.misses += 1;
        let top = self.level(a).min(self.level(b)).min(self.level(c));
        let (a0, a1) = self.split(a, top);
        let (b0, b1) = self.split(b, top);
        let (c0, c1) = self.split(c, top);
        let low = self.maj(a0, b0, c0);
        let high = self.maj(a1, b1, c1);
        let result = self.mk(top, low, high);
        self.maj_cache.store3(
            &mut self.stats.maj_cache,
            self.cache_epoch,
            key_ab,
            key_c,
            result,
        );
        result
    }

    /// The composition `f(…, ¬x_var, …)`: swaps the two cofactors along
    /// `var` in one traversal (the X-gate permutation), instead of the
    /// three-pass `ite(x, f|₀, f|₁)` construction.
    pub fn flip_var(&mut self, f: NodeId, var: usize) -> NodeId {
        self.flip_var_rec(f, var as u32)
    }

    fn flip_var_rec(&mut self, f: NodeId, var: u32) -> NodeId {
        if f.is_terminal() || self.level(f) > var {
            return f;
        }
        if self.level(f) == var {
            let (low, high) = (self.low(f), self.high(f));
            return self.mk(var, high, low);
        }
        let key = ((f.0 as u64) << 32) | var as u64;
        if let Some(result) = self.flip_cache.probe2(self.cache_epoch, key) {
            self.stats.flip_cache.hits += 1;
            return result;
        }
        self.stats.flip_cache.misses += 1;
        let level = self.level(f);
        let (f0, f1) = (self.low(f), self.high(f));
        let low = self.flip_var_rec(f0, var);
        let high = self.flip_var_rec(f1, var);
        let result = self.mk(level, low, high);
        self.flip_cache
            .store2(&mut self.stats.flip_cache, self.cache_epoch, key, result);
        result
    }

    /// `ite(x_var, g, h)` without materialising the literal: the row
    /// multiplexer used by controlled and phase gates, in one recursion with
    /// a two-word cache key.
    pub fn mux_var(&mut self, var: usize, g: NodeId, h: NodeId) -> NodeId {
        self.mux_var_rec(var as u32, g, h)
    }

    fn mux_var_rec(&mut self, var: u32, g: NodeId, h: NodeId) -> NodeId {
        if g == h {
            return g;
        }
        let top = self.level(g).min(self.level(h));
        if top > var {
            // Neither operand depends on variables at or above `var`.
            return self.mk(var, h, g);
        }
        let key_gh = ((g.0 as u64) << 32) | h.0 as u64;
        let key_var = var as u64;
        if let Some(result) = self.mux_cache.probe3(self.cache_epoch, key_gh, key_var) {
            self.stats.mux_cache.hits += 1;
            return result;
        }
        self.stats.mux_cache.misses += 1;
        let result = if top == var {
            // At the multiplexer level: low output comes from h, high from g.
            let low = if self.level(h) == var { self.low(h) } else { h };
            let high = if self.level(g) == var {
                self.high(g)
            } else {
                g
            };
            self.mk(var, low, high)
        } else {
            let (g0, g1) = self.split(g, top);
            let (h0, h1) = self.split(h, top);
            let low = self.mux_var_rec(var, g0, h0);
            let high = self.mux_var_rec(var, g1, h1);
            self.mk(top, low, high)
        };
        self.mux_cache.store3(
            &mut self.stats.mux_cache,
            self.cache_epoch,
            key_gh,
            key_var,
            result,
        );
        result
    }

    /// Conjunction of many functions.
    pub fn and_many(&mut self, fs: &[NodeId]) -> NodeId {
        let mut acc = NodeId::TRUE;
        for &f in fs {
            acc = self.and(acc, f);
            if acc.is_false() {
                break;
            }
        }
        acc
    }

    /// Disjunction of many functions.
    pub fn or_many(&mut self, fs: &[NodeId]) -> NodeId {
        let mut acc = NodeId::FALSE;
        for &f in fs {
            acc = self.or(acc, f);
            if acc.is_true() {
                break;
            }
        }
        acc
    }

    /// The cube (conjunction of literals) described by `(variable, phase)`
    /// pairs; `phase == true` means the positive literal.
    pub fn cube(&mut self, literals: &[(usize, bool)]) -> NodeId {
        let mut sorted: Vec<_> = literals.to_vec();
        sorted.sort_by_key(|&(v, _)| std::cmp::Reverse(v));
        let mut acc = NodeId::TRUE;
        for (v, phase) in sorted {
            acc = if phase {
                self.mk(v as u32, NodeId::FALSE, acc)
            } else {
                self.mk(v as u32, acc, NodeId::FALSE)
            };
        }
        acc
    }

    /// The cofactor `f|_{var=value}`.
    pub fn cofactor(&mut self, f: NodeId, var: usize, value: bool) -> NodeId {
        self.cofactor_rec(f, var as u32, value)
    }

    fn cofactor_rec(&mut self, f: NodeId, var: u32, value: bool) -> NodeId {
        if f.is_terminal() || self.level(f) > var {
            return f;
        }
        if self.level(f) == var {
            return if value { self.high(f) } else { self.low(f) };
        }
        let var_value = var | (value as u32) << 31;
        let key = ((f.0 as u64) << 32) | var_value as u64;
        if let Some(result) = self.cofactor_cache.probe2(self.cache_epoch, key) {
            self.stats.cofactor_cache.hits += 1;
            return result;
        }
        self.stats.cofactor_cache.misses += 1;
        let level = self.level(f);
        let (f0, f1) = (self.low(f), self.high(f));
        let low = self.cofactor_rec(f0, var, value);
        let high = self.cofactor_rec(f1, var, value);
        let result = self.mk(level, low, high);
        self.cofactor_cache.store2(
            &mut self.stats.cofactor_cache,
            self.cache_epoch,
            key,
            result,
        );
        result
    }

    /// Cofactor with respect to a cube given as `(variable, phase)` pairs.
    pub fn cofactor_cube(&mut self, f: NodeId, literals: &[(usize, bool)]) -> NodeId {
        let mut acc = f;
        for &(v, phase) in literals {
            acc = self.cofactor(acc, v, phase);
        }
        acc
    }

    /// Existential quantification of a single variable.
    pub fn exists(&mut self, f: NodeId, var: usize) -> NodeId {
        let f0 = self.cofactor(f, var, false);
        let f1 = self.cofactor(f, var, true);
        self.or(f0, f1)
    }

    // ----------------------------------------------------------------- //
    // Queries
    // ----------------------------------------------------------------- //

    /// Evaluates `f` under a complete assignment (index = variable).
    pub fn eval(&self, f: NodeId, assignment: &[bool]) -> bool {
        let mut cur = f;
        while !cur.is_terminal() {
            let level = self.level(cur) as usize;
            cur = if assignment[level] {
                self.high(cur)
            } else {
                self.low(cur)
            };
        }
        cur.is_true()
    }

    /// Number of satisfying assignments of `f` over the first `nvars`
    /// variables.  `f` must not depend on variables `≥ nvars`.
    pub fn sat_count(&self, f: NodeId, nvars: usize) -> UBig {
        let mut memo: FxHashMap<NodeId, UBig> = FxHashMap::default();
        let count = self.sat_count_rec(f, nvars as u32, &mut memo);
        count.shl(self.level_or(f, nvars as u32) as usize)
    }

    fn level_or(&self, f: NodeId, max: u32) -> u32 {
        self.level(f).min(max)
    }

    fn sat_count_rec(&self, f: NodeId, nvars: u32, memo: &mut FxHashMap<NodeId, UBig>) -> UBig {
        if f.is_false() {
            return UBig::zero();
        }
        if f.is_true() {
            return UBig::one();
        }
        if let Some(c) = memo.get(&f) {
            return c.clone();
        }
        let level = self.level(f);
        debug_assert!(level < nvars, "function depends on variables beyond nvars");
        let low = self.low(f);
        let high = self.high(f);
        let skip = |child: NodeId, this: &Self| this.level_or(child, nvars) - level - 1;
        let cl = self
            .sat_count_rec(low, nvars, memo)
            .shl(skip(low, self) as usize);
        let ch = self
            .sat_count_rec(high, nvars, memo)
            .shl(skip(high, self) as usize);
        let total = UBig::add(&cl, &ch);
        memo.insert(f, total.clone());
        total
    }

    /// Like [`Manager::sat_count`] but in floating point (may overflow to
    /// infinity around 2¹⁰²⁴ assignments).
    pub fn sat_count_f64(&self, f: NodeId, nvars: usize) -> f64 {
        let mut memo: FxHashMap<NodeId, f64> = FxHashMap::default();
        fn rec(mgr: &Manager, f: NodeId, nvars: u32, memo: &mut FxHashMap<NodeId, f64>) -> f64 {
            if f.is_false() {
                return 0.0;
            }
            if f.is_true() {
                return 1.0;
            }
            if let Some(&c) = memo.get(&f) {
                return c;
            }
            let level = mgr.level(f);
            let low = mgr.low(f);
            let high = mgr.high(f);
            // Guard against `0 × ∞ = NaN` when a child count is zero but the
            // level gap is enormous.
            let weighted = |count: f64, child: NodeId, mgr: &Manager| {
                if count == 0.0 {
                    0.0
                } else {
                    count * 2f64.powi((mgr.level_or(child, nvars) - level - 1) as i32)
                }
            };
            let cl_raw = rec(mgr, low, nvars, memo);
            let ch_raw = rec(mgr, high, nvars, memo);
            let total = weighted(cl_raw, low, mgr) + weighted(ch_raw, high, mgr);
            memo.insert(f, total);
            total
        }
        let c = rec(self, f, nvars as u32, &mut memo);
        if c == 0.0 {
            0.0
        } else {
            c * 2f64.powi(self.level_or(f, nvars as u32) as i32)
        }
    }

    /// The number of BDD nodes reachable from `f` (terminals excluded).
    pub fn node_count(&self, f: NodeId) -> usize {
        self.node_count_many(std::slice::from_ref(&f))
    }

    /// The number of distinct BDD nodes reachable from any of the `roots`
    /// (terminals excluded); shared nodes are counted once.
    pub fn node_count_many(&self, roots: &[NodeId]) -> usize {
        let mut seen: std::collections::HashSet<NodeId, crate::hash::FxBuildHasher> =
            Default::default();
        let mut stack: Vec<NodeId> = roots.iter().copied().filter(|f| !f.is_terminal()).collect();
        while let Some(f) = stack.pop() {
            if f.is_terminal() || !seen.insert(f) {
                continue;
            }
            stack.push(self.low(f));
            stack.push(self.high(f));
        }
        seen.len()
    }

    /// The set of variables `f` depends on, in increasing order.
    pub fn support(&self, f: NodeId) -> Vec<usize> {
        let mut seen: std::collections::HashSet<NodeId, crate::hash::FxBuildHasher> =
            Default::default();
        let mut vars: std::collections::BTreeSet<usize> = Default::default();
        let mut stack = vec![f];
        while let Some(g) = stack.pop() {
            if g.is_terminal() || !seen.insert(g) {
                continue;
            }
            vars.insert(self.level(g) as usize);
            stack.push(self.low(g));
            stack.push(self.high(g));
        }
        vars.into_iter().collect()
    }

    /// Returns one satisfying assignment (as `(variable, value)` pairs over
    /// the support of `f`), or `None` if `f` is unsatisfiable.
    pub fn pick_one(&self, f: NodeId) -> Option<Vec<(usize, bool)>> {
        if f.is_false() {
            return None;
        }
        let mut cube = Vec::new();
        let mut cur = f;
        while !cur.is_terminal() {
            let v = self.level(cur) as usize;
            if self.low(cur).is_false() {
                cube.push((v, true));
                cur = self.high(cur);
            } else {
                cube.push((v, false));
                cur = self.low(cur);
            }
        }
        Some(cube)
    }

    // ----------------------------------------------------------------- //
    // Garbage collection
    // ----------------------------------------------------------------- //

    /// Returns `true` when enough garbage may have accumulated that calling
    /// [`Manager::collect_garbage`] is worthwhile.
    pub fn should_collect(&self) -> bool {
        self.allocated_nodes() > self.gc_threshold
    }

    /// Overrides the automatic GC threshold (number of allocated nodes).
    pub fn set_gc_threshold(&mut self, threshold: usize) {
        self.gc_threshold = threshold;
    }

    /// Every operation cache, for whole-kernel maintenance (epoch-wrap
    /// resets); must stay in sync with the struct fields.
    fn op_caches_mut(&mut self) -> [&mut DirectCache; 10] {
        [
            &mut self.and_cache,
            &mut self.or_cache,
            &mut self.xor_cache,
            &mut self.not_cache,
            &mut self.ite_cache,
            &mut self.cofactor_cache,
            &mut self.xor3_cache,
            &mut self.maj_cache,
            &mut self.flip_cache,
            &mut self.mux_cache,
        ]
    }

    /// Mark-and-sweep garbage collection.  Every node reachable from `roots`
    /// survives with its `NodeId` unchanged; all other nodes are freed, the
    /// unique table and free-list are rebuilt from the mark bitmap, and the
    /// operation caches are invalidated in O(1) by bumping the cache epoch.
    /// Returns the number of freed nodes.
    pub fn collect_garbage(&mut self, roots: &[NodeId]) -> usize {
        let mut marked = vec![false; self.nodes.len()];
        marked[0] = true;
        marked[1] = true;
        let mut stack: Vec<NodeId> = roots.to_vec();
        while let Some(f) = stack.pop() {
            if marked[f.index()] {
                continue;
            }
            marked[f.index()] = true;
            stack.push(self.low(f));
            stack.push(self.high(f));
        }
        let free_before = self.free.len();
        self.rebuild_table(&marked);
        let freed = self.free.len() - free_before;
        // O(1) cache clear: stale entries are recognised by their epoch.
        self.cache_epoch = self.cache_epoch.wrapping_add(1);
        if self.cache_epoch == 0 {
            // Extremely rare wrap: hard-reset so no stale entry can alias the
            // restarted epoch counter.
            for cache in self.op_caches_mut() {
                cache.words.fill(0);
            }
            self.cache_epoch = 1;
        }
        self.stats.gc_runs += 1;
        // Grow the threshold if little garbage was reclaimed, so we do not
        // thrash on workloads whose live set keeps growing.
        if freed * 4 < self.allocated_nodes() {
            self.gc_threshold = (self.allocated_nodes() * 2).max(self.gc_threshold);
        }
        freed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_and_literals() {
        let mut mgr = Manager::new(3);
        assert!(mgr.constant(true).is_true());
        assert!(mgr.constant(false).is_false());
        let x = mgr.var(1);
        assert!(mgr.eval(x, &[false, true, false]));
        assert!(!mgr.eval(x, &[true, false, true]));
        let nx = mgr.nvar(1);
        let not_x = mgr.not(x);
        assert_eq!(nx, not_x);
    }

    #[test]
    fn hash_consing_gives_canonical_forms() {
        let mut mgr = Manager::new(2);
        let x0 = mgr.var(0);
        let x1 = mgr.var(1);
        let a = mgr.and(x0, x1);
        let b = mgr.and(x1, x0);
        assert_eq!(a, b, "AND must be canonical irrespective of argument order");
        let n1 = mgr.not(a);
        let n2 = mgr.not(b);
        assert_eq!(n1, n2);
        let back = mgr.not(n1);
        assert_eq!(back, a, "double negation restores the identical node");
    }

    #[test]
    fn de_morgan() {
        let mut mgr = Manager::new(4);
        let x = mgr.var(2);
        let y = mgr.var(3);
        let lhs = {
            let a = mgr.and(x, y);
            mgr.not(a)
        };
        let rhs = {
            let nx = mgr.not(x);
            let ny = mgr.not(y);
            mgr.or(nx, ny)
        };
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn xor_and_ite_consistency() {
        let mut mgr = Manager::new(2);
        let x = mgr.var(0);
        let y = mgr.var(1);
        let x_xor_y = mgr.xor(x, y);
        for a in [false, true] {
            for b in [false, true] {
                assert_eq!(mgr.eval(x_xor_y, &[a, b]), a ^ b);
            }
        }
    }

    #[test]
    fn cube_and_cofactor() {
        let mut mgr = Manager::new(4);
        let cube = mgr.cube(&[(0, true), (2, false), (3, true)]);
        assert!(mgr.eval(cube, &[true, false, false, true]));
        assert!(mgr.eval(cube, &[true, true, false, true]));
        assert!(!mgr.eval(cube, &[true, true, true, true]));
        let co = mgr.cofactor(cube, 0, true);
        assert!(mgr.eval(co, &[false, false, false, true]));
        let co_false = mgr.cofactor(cube, 0, false);
        assert!(co_false.is_false());
    }

    #[test]
    fn sat_count_exact() {
        let mut mgr = Manager::new(10);
        let x = mgr.var(0);
        // A single positive literal over 10 variables has 2^9 models.
        assert_eq!(mgr.sat_count(x, 10), UBig::pow2(9));
        // Tautology and contradiction.
        assert_eq!(mgr.sat_count(NodeId::TRUE, 10), UBig::pow2(10));
        assert_eq!(mgr.sat_count(NodeId::FALSE, 10), UBig::zero());
        // x0 XOR x9 has exactly half the assignments.
        let y = mgr.var(9);
        let f = mgr.xor(x, y);
        assert_eq!(mgr.sat_count(f, 10), UBig::pow2(9));
        assert_eq!(mgr.sat_count_f64(f, 10), 512.0);
    }

    #[test]
    fn sat_count_huge_variable_count() {
        // Exact counting far beyond what f64 can hold: a single literal over
        // 4000 variables has 2^3999 models.
        let mut mgr = Manager::new(4000);
        let x = mgr.var(17);
        assert_eq!(mgr.sat_count(x, 4000), UBig::pow2(3999));
        assert!(mgr.sat_count_f64(x, 4000).is_infinite());
    }

    #[test]
    fn support_and_node_count() {
        let mut mgr = Manager::new(5);
        let x = mgr.var(1);
        let y = mgr.var(3);
        let f = mgr.and(x, y);
        assert_eq!(mgr.support(f), vec![1, 3]);
        assert_eq!(mgr.node_count(f), 2);
        assert_eq!(mgr.node_count_many(&[f, y]), 2, "subgraphs are shared");
        assert_eq!(mgr.node_count_many(&[f, x]), 3, "x is a distinct root node");
    }

    #[test]
    fn pick_one_returns_a_model() {
        let mut mgr = Manager::new(3);
        let x = mgr.var(0);
        let nz = mgr.nvar(2);
        let f = mgr.and(x, nz);
        let cube = mgr.pick_one(f).expect("satisfiable");
        let mut assignment = [false; 3];
        for (v, val) in cube {
            assignment[v] = val;
        }
        assert!(mgr.eval(f, &assignment));
        assert_eq!(mgr.pick_one(NodeId::FALSE), None);
    }

    #[test]
    fn garbage_collection_keeps_roots_valid() {
        let mut mgr = Manager::new(8);
        let mut keep = Vec::new();
        for i in 0..4 {
            let x = mgr.var(i);
            let y = mgr.var(i + 4);
            keep.push(mgr.xor(x, y));
        }
        // Create plenty of garbage.
        for i in 0..8 {
            for j in 0..8 {
                let x = mgr.var(i);
                let y = mgr.var(j);
                let _ = mgr.and(x, y);
            }
        }
        let before = mgr.allocated_nodes();
        let freed = mgr.collect_garbage(&keep.clone());
        assert!(freed > 0);
        assert!(mgr.allocated_nodes() < before);
        // The kept functions still evaluate correctly after GC.
        for (i, &f) in keep.iter().enumerate() {
            let mut assignment = [false; 8];
            assignment[i] = true;
            assert!(mgr.eval(f, &assignment));
            assignment[i + 4] = true;
            assert!(!mgr.eval(f, &assignment));
        }
        // And new operations still work (caches were invalidated correctly).
        let again = mgr.xor(keep[0], keep[1]);
        assert!(!again.is_terminal());
        assert_eq!(mgr.stats().gc_runs, 1);
    }

    #[test]
    fn gc_reuses_freed_slots() {
        let mut mgr = Manager::new(4);
        let x = mgr.var(0);
        let y = mgr.var(1);
        let _garbage = mgr.and(x, y);
        let allocated_before = mgr.nodes.len();
        mgr.collect_garbage(&[x, y]);
        // Recreating a node reuses a freed slot instead of growing the arena.
        let z = mgr.var(2);
        let _new = mgr.and(x, z);
        assert!(mgr.nodes.len() <= allocated_before + 1);
    }

    #[test]
    fn add_vars_extends_the_order() {
        let mut mgr = Manager::new(2);
        let first_new = mgr.add_vars(3);
        assert_eq!(first_new, 2);
        assert_eq!(mgr.num_vars(), 5);
        let v4 = mgr.var(4);
        assert!(mgr.eval(v4, &[false, false, false, false, true]));
    }

    #[test]
    fn exists_quantification() {
        let mut mgr = Manager::new(2);
        let x = mgr.var(0);
        let y = mgr.var(1);
        let f = mgr.and(x, y);
        let ex = mgr.exists(f, 0);
        assert_eq!(ex, y);
        let both = mgr.exists(ex, 1);
        assert!(both.is_true());
    }

    // ------------------------------------------------------------------ //
    // New-kernel specifics: lossy caches, epochs, open-addressed table
    // ------------------------------------------------------------------ //

    #[test]
    fn specialized_ops_agree_with_ite_lowering() {
        let mut mgr = Manager::new(6);
        let mut functions = Vec::new();
        for i in 0..6 {
            for j in 0..6 {
                let x = mgr.var(i);
                let y = mgr.var(j);
                functions.push(mgr.xor(x, y));
                functions.push(mgr.and(x, y));
            }
        }
        for &f in &functions {
            for &g in &functions {
                let and_direct = mgr.and(f, g);
                let and_ite = mgr.ite(f, g, NodeId::FALSE);
                assert_eq!(and_direct, and_ite);
                let or_direct = mgr.or(f, g);
                let or_ite = mgr.ite(f, NodeId::TRUE, g);
                assert_eq!(or_direct, or_ite);
                let xor_direct = mgr.xor(f, g);
                let ng = mgr.not(g);
                let xor_ite = mgr.ite(f, ng, g);
                assert_eq!(xor_direct, xor_ite);
            }
        }
    }

    #[test]
    fn cache_stats_count_hits_and_misses() {
        let mut mgr = Manager::new(8);
        let x = mgr.var(0);
        let y = mgr.var(1);
        let first = mgr.and(x, y);
        assert_eq!(mgr.stats().and_cache.misses, 1);
        assert_eq!(mgr.stats().and_cache.hits, 0);
        // Identical and argument-swapped calls hit the normalised cache key.
        let second = mgr.and(x, y);
        let third = mgr.and(y, x);
        assert_eq!(first, second);
        assert_eq!(first, third);
        assert_eq!(mgr.stats().and_cache.hits, 2);
        assert_eq!(mgr.stats().and_cache.misses, 1);
        assert!(mgr.stats().cache_hit_rate() > 0.0);
    }

    #[test]
    fn gc_invalidates_caches_via_epoch() {
        let mut mgr = Manager::new(4);
        let x = mgr.var(0);
        let y = mgr.var(1);
        let f = mgr.xor(x, y);
        let hits_before = mgr.stats().xor_cache.hits;
        mgr.collect_garbage(&[f]);
        // Same lookup after GC must MISS (epoch moved on), not alias a stale
        // entry, and must still produce the identical canonical node.
        let again = mgr.xor(x, y);
        assert_eq!(again, f);
        assert_eq!(mgr.stats().xor_cache.hits, hits_before);
        assert!(mgr.stats().xor_cache.misses >= 2);
    }

    #[test]
    fn unique_table_grows_and_stays_consistent() {
        const NV: usize = 12;
        let mut mgr = Manager::new(NV);
        // Thousands of distinct minterm chains force several table doublings.
        let minterm_bits =
            |i: usize| -> Vec<(usize, bool)> { (0..NV).map(|v| (v, i >> v & 1 == 1)).collect() };
        let cubes: Vec<NodeId> = (0..3000).map(|i| mgr.cube(&minterm_bits(i))).collect();
        assert!(
            mgr.stats().unique_resizes > 0,
            "3000 minterms over {NV} vars must outgrow the initial table"
        );
        // Hash consing stays canonical across resizes: rebuilding any cube
        // yields the identical node, and each evaluates to 1 exactly on its
        // own minterm.
        for (i, &cube) in cubes.iter().enumerate().step_by(127) {
            assert_eq!(mgr.cube(&minterm_bits(i)), cube);
            let assignment: Vec<bool> = (0..NV).map(|v| i >> v & 1 == 1).collect();
            assert!(mgr.eval(cube, &assignment));
            let mut flipped = assignment.clone();
            flipped[3] = !flipped[3];
            assert!(!mgr.eval(cube, &flipped));
        }
    }

    #[test]
    fn lossy_cache_overwrites_are_counted_not_fatal() {
        // Hammer the small not-cache with many distinct nodes; evictions must
        // occur and every result must stay correct.
        let mut mgr = Manager::new(16);
        let mut nodes = Vec::new();
        for i in 0..16 {
            for j in 0..16 {
                if i == j {
                    continue;
                }
                let x = mgr.var(i);
                let y = mgr.var(j);
                let f = mgr.and(x, y);
                nodes.push((f, i, j));
            }
        }
        for &(f, i, j) in &nodes {
            let nf = mgr.not(f);
            let mut assignment = [false; 16];
            assert!(mgr.eval(nf, &assignment), "¬(xi∧xj) true on all-false");
            assignment[i] = true;
            assignment[j] = true;
            assert!(!mgr.eval(nf, &assignment));
        }
        let stats = mgr.stats();
        let total = stats.total_cache();
        assert!(total.hits + total.misses > 0);
    }
}
