//! The BDD manager: node storage, unique table, memoised operations and
//! garbage collection.
//!
//! The design mirrors what the paper needs from CUDD and nothing more:
//! *reduced ordered* BDDs **with complement edges**, a hash-consing unique
//! table, memoised Boolean operations, cofactor computation, SAT counting and
//! mark-and-sweep garbage collection driven by the caller (who knows the
//! root set).
//!
//! # Concurrency
//!
//! Since the sharded-kernel rework, every apply recursion (`and`, `xor`,
//! `ite`, `xor3`, `maj`, `flip_var`, `mux_var`, `cofactor`) and the node
//! constructor take **`&self`**: any number of threads may share one
//! manager and apply operations concurrently.  The per-variable unique
//! subtables are the shards — hash consing publishes nodes with a lock-free
//! CAS, the operation caches are per-entry seqlocks, and statistics are
//! thread-sharded.  Garbage collection, variable reordering, cache growth
//! and root-registry updates remain **`&mut self`**, so the borrow checker
//! itself guarantees the stop-the-world property: an exclusive phase cannot
//! overlap an apply recursion.  See [`crate::shard`] for the full
//! synchronization argument, and [`crate::pool::WorkerPool`] for the
//! fan-out used by the simulator.
//!
//! The kernel is additionally **phase-typed**: every apply recursion and
//! `mk` are compiled in two flavours through a `const SERIAL: bool`
//! parameter.  The shared flavour is the machinery above; the serial
//! flavour — selected per manager with [`Manager::set_kernel_mode`], an
//! exclusive-phase (`&mut self`) switch — drops the coordination entirely
//! (no seqlock claim/release on cache stores, no speculate-then-publish
//! CAS in `mk`, no atomic read-modify-writes on the bump allocator and
//! counters), so a single-threaded session pays no concurrency tax.  Both
//! flavours hoist the thread-local stat-shard lookup to the public entry
//! point and thread it through the recursion.  [`KernelMode::Shared`]
//! remains the default; see [`crate::shard`] ("The phase-typed serial
//! flavour") for the soundness argument.
//!
//! # Complement edges
//!
//! Every [`NodeId`] is an *edge*: bits `0..31` index the node arena and bit
//! 31 is the **complement bit** (mask [`NodeId`]`::COMPLEMENT` internally).
//! An edge with the bit set denotes the *negation* of the function rooted at
//! its node.  There is a single terminal node (index 0) representing the
//! constant **true**; `NodeId::TRUE` is the regular edge to it and
//! `NodeId::FALSE` the complemented one.
//!
//! Canonical form (CUDD's rule): **the low/else edge of a stored node is
//! never complemented.**  [`Manager::mk`] enforces this by flipping both
//! children and complementing the returned edge whenever the low child
//! arrives complemented, so every Boolean function keeps exactly one
//! representation and `NodeId` equality remains semantic equality.
//!
//! Consequences exploited throughout the kernel:
//!
//! * **O(1) negation.** [`Manager::not`] flips one bit — no recursion, no
//!   cache, no allocation.  A function and its negation share their entire
//!   subgraph.
//! * **De Morgan folding.** `or(f, g) = ¬and(¬f, ¬g)`, so OR needs no
//!   recursion or cache of its own and shares the AND cache's entries.
//! * **XOR parity folding.** `¬f ⊕ g = ¬(f ⊕ g)`: complement bits are
//!   stripped off XOR/XOR3 operands and re-applied to the result, so the
//!   caches are probed with regular operands only and the XNOR terminal
//!   cases disappear (ITE routes `ite(f, g, ¬g)` straight to XOR).
//! * **Self-dual majority.** `maj(¬f, ¬g, ¬h) = ¬maj(f, g, h)` normalises
//!   the carry recursion to at most one complemented operand per cache key.
//!
//! # Kernel layout
//!
//! The bit-sliced simulator decomposes every gate into millions of tiny
//! Boolean operations, so this module is organised around making those calls
//! cheap:
//!
//! * **Specialised apply recursions.**  `and` and `xor` have dedicated
//!   two-operand recursions with commutative key normalisation; `not` and
//!   `or` reduce to them in O(1) via the complement bit.  On top of those,
//!   the gate formulas get single-pass recursions for their dominant
//!   three-operand shapes: [`Manager::xor3`] (the full-adder sum),
//!   [`Manager::maj`] (the full-adder carry), [`Manager::flip_var`] (the
//!   X-gate cofactor swap) and [`Manager::mux_var`] (ITE on a variable
//!   literal), each replacing a chain of two to four generic applies with
//!   one traversal.
//!
//! * **Lossy direct-mapped operation caches.**  Each operation memoises into
//!   a power-of-two array of seqlock-guarded entries indexed by a strong
//!   64-bit mix of the operand edges ([`crate::hash::mix64`]; complement
//!   bits are part of the key wherever they do not fold out).  A colliding
//!   insert simply overwrites the previous entry (counted as an *eviction*
//!   in [`CacheStats`]); a lookup compares the stored key words and treats
//!   any mismatch — including a torn concurrent read — as a miss.
//!   Memoisation therefore costs zero allocations on the hot path, and
//!   losing an entry only costs recomputation — never correctness.  Each
//!   cache starts at 2¹² entries and doubles (at the next exclusive phase)
//!   whenever the misses since the last resize exceed its capacity, up to a
//!   cap that itself is auto-tuned at GC time (up to 2²⁰).  All caches are
//!   cleared in O(1) at GC time by bumping a generation counter
//!   (`cache_epoch`).
//!
//! * **Per-variable unique subtables.**  Hash consing uses one open-addressed
//!   linear-probed subtable *per variable* whose atomic slots store the node
//!   id plus a hash tag; concurrent `mk` calls publish fresh nodes with a
//!   release CAS (see [`crate::shard`]).  Each subtable doubles
//!   independently when its load factor exceeds 3/4, supports exact
//!   backward-shift deletion (needed by reordering), and is rebuilt from the
//!   mark bitmap during [`Manager::collect_garbage`].
//!
//! # Variable order and reordering
//!
//! Nodes store the *variable index* of their label; a pair of permutation
//! arrays ([`Manager::var_at_level`] / [`Manager::level_of_var`]) maps
//! variables to their current position (level) in the order.  All the apply
//! recursions compare **levels**, so the order can change at runtime: the
//! [`crate::reorder`] module (see `reorder.rs`) implements an in-place
//! adjacent-level swap and Rudell-style sifting on top of the per-variable
//! subtables.  Because subtables are keyed by variable, a swap only touches
//! the upper-level nodes that actually depend on the lower variable — every
//! other node (and every external edge into the swapped levels) keeps its
//! id and its function.  The public read API (`eval`, `support`,
//! `pick_one`, `cofactor`, …) is expressed in *variable* space throughout,
//! so callers never observe the order.
//!
//! External handles survive reordering through the **root registry**
//! ([`Manager::register_root`]): registered edges act as GC roots and as
//! reference-count sources during reordering, so the nodes they reach are
//! never freed and the handles stay valid (same id, same function) across
//! any sequence of swaps.
//!
//! [`ManagerStats`] exposes per-cache hit/miss/eviction counters, O(1)
//! negation and canonical-flip counters, unique table resize counts,
//! reordering counters (swaps, sizes, time) and — since the sharded kernel —
//! contention counters (unique-table CAS retries, lost `mk` races, dropped
//! cache stores) so benchmark harnesses can report kernel behaviour.

use crate::hash::FxHashMap;
use crate::shard::{
    DirectCache, FreeTable, NodeArena, StatShard, StatShards, SubTable, CACHE_DEFAULT_MAX_LOG2,
    CACHE_HARD_MAX_LOG2,
};
use sliq_bignum::UBig;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

pub(crate) use crate::shard::Node;

/// Complement-bit mask of a [`NodeId`] edge.
const COMPLEMENT: u32 = 1 << 31;

/// Handle to a BDD *edge* owned by a [`Manager`]: a node index in bits
/// `0..31` plus the complement bit 31.
///
/// `NodeId`s stay valid across garbage collections as long as the node is
/// reachable from one of the roots passed to [`Manager::collect_garbage`].
/// A `NodeId` and its [`NodeId::complement`] share the same node, so
/// [`NodeId::index`] alone does not identify a function — external memo
/// tables must key on the full `NodeId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// The constant-true function: the regular edge to the terminal node.
    pub const TRUE: NodeId = NodeId(0);
    /// The constant-false function: the complemented edge to the terminal.
    pub const FALSE: NodeId = NodeId(COMPLEMENT);

    /// Returns `true` if this edge points at the terminal node (i.e. the
    /// function is constant true or false).
    pub fn is_terminal(self) -> bool {
        self.0 & !COMPLEMENT == 0
    }

    /// Returns `true` if this is the constant-false function.
    pub fn is_false(self) -> bool {
        self == Self::FALSE
    }

    /// Returns `true` if this is the constant-true function.
    pub fn is_true(self) -> bool {
        self == Self::TRUE
    }

    /// Returns `true` if the complement bit is set on this edge.
    pub fn is_complemented(self) -> bool {
        self.0 & COMPLEMENT != 0
    }

    /// The negation of this function — a pure bit flip, no manager needed.
    /// [`Manager::not`] is the counted, stats-visible spelling of the same
    /// operation.
    #[must_use]
    pub fn complement(self) -> NodeId {
        NodeId(self.0 ^ COMPLEMENT)
    }

    /// This edge with the complement bit cleared (the positive function of
    /// the shared node).
    #[must_use]
    pub fn regular(self) -> NodeId {
        NodeId(self.0 & !COMPLEMENT)
    }

    /// The raw node index (complement bit stripped).  Two edges with equal
    /// `index()` may still denote *different* functions — compare whole
    /// `NodeId`s for semantic identity.
    pub fn index(self) -> usize {
        (self.0 & !COMPLEMENT) as usize
    }

    /// The complement bit of this edge as a mask (0 or bit 31), for XOR
    /// application onto other edges.
    #[inline]
    pub(crate) fn cmask(self) -> u32 {
        self.0 & COMPLEMENT
    }

    /// This edge with `mask` (0 or the complement bit) XORed in.
    #[inline]
    pub(crate) fn xor_mask(self, mask: u32) -> NodeId {
        NodeId(self.0 ^ mask)
    }

    /// The raw edge word (arena storage form).
    #[inline]
    pub(crate) fn to_bits(self) -> u32 {
        self.0
    }

    /// An edge from its raw word.
    #[inline]
    pub(crate) fn from_bits(bits: u32) -> NodeId {
        NodeId(bits)
    }
}

/// Handle to a slot in the manager's root registry (see
/// [`Manager::register_root`]).  A registered edge survives garbage
/// collection and variable reordering: the manager treats it as a GC root
/// and as an external reference during level swaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RootSlot(u32);

/// Level reported for terminal nodes: below every real variable.  The
/// terminal's stored `var` is the sentinel index `num_vars`, whose
/// `var_to_level` entry is kept at this value, so the hot-path level lookup
/// needs no branch.
pub(crate) const TERMINAL_LEVEL: u32 = u32::MAX;

/// Default allocated-node count that arms the first automatic reordering
/// (CUDD arms its first reordering at a similar size).
pub(crate) const DEFAULT_REORDER_THRESHOLD: usize = 4096;

#[inline]
pub(crate) fn pack_children(low: NodeId, high: NodeId) -> u64 {
    ((low.0 as u64) << 32) | high.0 as u64
}

/// Which flavour of the phase-typed kernel a [`Manager`] runs its apply
/// recursions in (see the module docs and [`crate::shard`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum KernelMode {
    /// The concurrency-safe flavour: CAS publication in `mk`, seqlock
    /// claim/release on cache stores.  Any number of threads may share the
    /// manager.  The default.
    #[default]
    Shared,
    /// The unsynchronized fast-path flavour: plain probes and stores, no
    /// CAS, no seqlock protocol.  The manager must be used from exactly one
    /// thread at a time while this mode is selected; switching modes is an
    /// exclusive-phase (`&mut self`) action.
    Serial,
}

/// Hit/miss/eviction counters of one direct-mapped operation cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the recursion.
    pub misses: u64,
    /// Stores that overwrote a live entry with a different key (the lossy
    /// direct-mapped collision case).
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    fn merged_into(self, total: &mut CacheStats) {
        total.hits += self.hits;
        total.misses += self.misses;
        total.evictions += self.evictions;
    }
}

/// Counters describing the work a [`Manager`] has performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Which kernel flavour ([`KernelMode`]) the manager was running when
    /// the snapshot was taken — makes fast-path regressions visible instead
    /// of inferred from timings.
    pub kernel_mode: KernelMode,
    /// Number of garbage collections run so far.
    pub gc_runs: usize,
    /// Peak number of live (allocated, non-freed) nodes observed.
    pub peak_nodes: usize,
    /// Allocated (live or garbage, not yet freed) nodes at snapshot time.
    pub allocated_nodes: usize,
    /// Exact retained kernel bytes at snapshot time: arena chunk cells and
    /// sidecars, the chunk directory, unique-subtable slot arrays and
    /// op-cache words (see [`crate::shard`], "Byte accounting").
    pub current_bytes: usize,
    /// High-water mark of [`ManagerStats::current_bytes`].
    pub peak_bytes: usize,
    /// Arena chunk-cell bytes (8 per node slot) at snapshot time.
    pub arena_cell_bytes: usize,
    /// Variable-sidecar bytes of reorder-mixed chunks at snapshot time.
    pub arena_sidecar_bytes: usize,
    /// Unique-subtable slot-array bytes (4 per slot) at snapshot time.
    pub subtable_bytes: usize,
    /// Node chunks handed back to the allocator by the generational sweep.
    pub chunks_reclaimed: u64,
    /// Total nodes ever created (including ones later collected).
    pub created_nodes: usize,
    /// Number of times an open-addressed unique subtable doubled.
    pub unique_resizes: usize,
    /// Number of unique-table shards (one open-addressed subtable per
    /// variable; threads working at different levels never share a shard).
    pub unique_shards: usize,
    /// Unique-table CAS attempts that lost a slot to a racing insert and
    /// re-probed (a direct measure of same-shard contention).
    pub unique_cas_retries: u64,
    /// `mk` races lost outright: a speculative node was allocated but a
    /// concurrent thread published the same key first, so the node was
    /// rolled back and the winner's id adopted.
    pub unique_dup_races: u64,
    /// Operation-cache stores dropped because the entry's seqlock was held
    /// by a racing writer (lossy by design; never affects correctness).
    pub cache_write_skips: u64,
    /// O(1) complement-edge negations served by [`Manager::not`] (each one
    /// replaces a full traversal of the pre-complement-edge kernel).
    pub not_ops: u64,
    /// Canonical-form flips performed by `mk` (a complemented low edge was
    /// normalised by complementing both children and the result).
    pub complement_flips: u64,
    /// Current op-cache growth cap (log2 entries; starts at 2¹⁶).
    pub cache_cap_log2: u32,
    /// Times the GC auto-tuner raised the op-cache growth cap.
    pub cache_cap_raises: u32,
    /// Number of variable reorderings (sifting runs) performed.
    pub reorders: usize,
    /// Total adjacent-level swaps executed across all reorderings.
    pub reorder_swaps: u64,
    /// Live node count immediately before the most recent reordering.
    pub reorder_last_before: usize,
    /// Live node count immediately after the most recent reordering.
    pub reorder_last_after: usize,
    /// Total wall-clock time spent inside [`Manager::reorder`], in
    /// microseconds.
    pub reorder_micros: u64,
    /// Adjacent-level swaps whose relink batch was fanned over the worker
    /// pool (a subset of [`ManagerStats::reorder_swaps`]).
    pub reorder_parallel_batches: u64,
    /// Counters of the `and` apply cache (also serves `or` via De Morgan).
    pub and_cache: CacheStats,
    /// Counters of the `xor` apply cache (complement parity folded out).
    pub xor_cache: CacheStats,
    /// Counters of the `ite` cache.
    pub ite_cache: CacheStats,
    /// Counters of the `cofactor` cache.
    pub cofactor_cache: CacheStats,
    /// Counters of the three-operand `xor3` cache (the full-adder sum).
    pub xor3_cache: CacheStats,
    /// Counters of the three-operand `maj` cache (the full-adder carry).
    pub maj_cache: CacheStats,
    /// Counters of the `flip_var` cache (the X-gate permutation).
    pub flip_cache: CacheStats,
    /// Counters of the `mux_var` cache (ITE on a variable literal).
    pub mux_cache: CacheStats,
}

impl ManagerStats {
    /// Every operation cache's name and counters, in reporting order — the
    /// single enumeration aggregate consumers (totals, reports) loop over.
    /// `or` and `not` no longer appear: OR folds into the AND cache via
    /// De Morgan and NOT is a cache-free bit flip (see
    /// [`ManagerStats::not_ops`]).
    pub fn caches(&self) -> [(&'static str, &CacheStats); 8] {
        [
            ("and", &self.and_cache),
            ("xor", &self.xor_cache),
            ("ite", &self.ite_cache),
            ("cofactor", &self.cofactor_cache),
            ("xor3", &self.xor3_cache),
            ("maj", &self.maj_cache),
            ("flip", &self.flip_cache),
            ("mux", &self.mux_cache),
        ]
    }

    fn caches_mut(&mut self) -> [&mut CacheStats; 8] {
        [
            &mut self.and_cache,
            &mut self.xor_cache,
            &mut self.ite_cache,
            &mut self.cofactor_cache,
            &mut self.xor3_cache,
            &mut self.maj_cache,
            &mut self.flip_cache,
            &mut self.mux_cache,
        ]
    }

    /// Sum of every operation cache's counters.
    pub fn total_cache(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for (_, cache) in self.caches() {
            cache.merged_into(&mut total);
        }
        total
    }

    /// Overall cache hit rate across every operation cache.
    pub fn cache_hit_rate(&self) -> f64 {
        self.total_cache().hit_rate()
    }

    /// Node-storage bytes per allocated node: arena cells + sidecars +
    /// subtable slots over the allocated-node count (0 when empty).  The
    /// op caches are excluded — their size tracks the workload, not the
    /// node population — so this is the metric the compact layout moves.
    pub fn bytes_per_node(&self) -> f64 {
        if self.allocated_nodes == 0 {
            return 0.0;
        }
        (self.arena_cell_bytes + self.arena_sidecar_bytes + self.subtable_bytes) as f64
            / self.allocated_nodes as f64
    }
}

/// Counters mutated only in the exclusive phase (`&mut Manager`), so they
/// need no atomics.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SerialStats {
    pub(crate) gc_runs: usize,
    pub(crate) cache_cap_log2: u32,
    pub(crate) cache_cap_raises: u32,
    pub(crate) reorders: usize,
    pub(crate) reorder_swaps: u64,
    pub(crate) reorder_last_before: usize,
    pub(crate) reorder_last_after: usize,
    pub(crate) reorder_micros: u64,
    pub(crate) reorder_parallel_batches: u64,
}

/// Cache indices into `Manager::caches` and `StatShard::caches` (the same
/// order as [`ManagerStats::caches`]).
const AND: usize = 0;
const XOR: usize = 1;
const ITE: usize = 2;
const COFACTOR: usize = 3;
const XOR3: usize = 4;
const MAJ: usize = 5;
const FLIP: usize = 6;
const MUX: usize = 7;

/// A reduced ordered BDD manager with complement edges.
///
/// Variables are identified by their index `0..num_vars()`, which is also the
/// variable order (index 0 is the topmost level).  The simulator places qubit
/// variables first and measurement-encoding variables after them, matching
/// the ordering requirement of the paper's measurement procedure (§III-E).
///
/// Apply operations take `&self` and may be called from any number of
/// threads sharing the manager (e.g. through [`crate::pool::WorkerPool`] or
/// `std::thread::scope`); garbage collection and reordering take `&mut
/// self` and therefore cannot overlap them.
///
/// ```
/// use sliq_bdd::{Manager, NodeId};
/// let mut mgr = Manager::new(2);
/// let x0 = mgr.var(0);
/// let x1 = mgr.var(1);
/// let f = mgr.and(x0, x1);
/// assert!(mgr.eval(f, &[true, true]));
/// assert!(!mgr.eval(f, &[true, false]));
/// assert_eq!(mgr.sat_count(f, 2), sliq_bignum::UBig::from(1u64));
/// assert_ne!(f, NodeId::FALSE);
/// // Negation is a bit flip: no nodes are allocated.
/// let nodes_before = mgr.stats().created_nodes;
/// let nf = mgr.not(f);
/// assert_eq!(mgr.stats().created_nodes, nodes_before);
/// assert_eq!(mgr.not(nf), f);
/// ```
#[derive(Debug)]
pub struct Manager {
    pub(crate) arena: NodeArena,
    pub(crate) free: FreeTable,
    /// One open-addressed unique subtable (shard) per variable.
    pub(crate) subtables: Vec<SubTable>,
    /// Total number of live entries across all subtables (= allocated nodes).
    pub(crate) table_len: AtomicUsize,
    /// `var_to_level[var]` is the current level of `var`; the extra last
    /// entry is the terminal sentinel, pinned at [`TERMINAL_LEVEL`].
    pub(crate) var_to_level: Vec<u32>,
    /// `level_to_var[level]` is the variable currently at `level`.
    pub(crate) level_to_var: Vec<u32>,
    /// Registered external roots: GC roots and reorder protection.  Released
    /// slots hold `NodeId::TRUE` and are recycled through `free_roots`.
    pub(crate) roots: Vec<NodeId>,
    free_roots: Vec<u32>,
    /// Automatic reordering trigger (off by default).
    auto_reorder: bool,
    /// Allocated-node count beyond which [`Manager::maybe_reorder`] sifts.
    reorder_threshold: usize,
    /// Caller-configured lower bound the re-armed threshold never drops
    /// below (defaults to [`DEFAULT_REORDER_THRESHOLD`]).
    reorder_threshold_floor: usize,
    /// Number of top levels eligible for sifting (`usize::MAX` = all).
    /// Variables below the window never move — used by the simulator to pin
    /// auxiliary encoding variables underneath the qubit block.
    pub(crate) reorder_window: usize,
    /// Whether [`Manager::reorder`] repeats sifting passes to convergence.
    pub(crate) converging_sifting: bool,
    /// The eight operation caches, indexed by the `AND..MUX` constants.
    caches: [DirectCache; 8],
    /// Generation stamp giving O(1) cache clear: entries whose `epoch` field
    /// differs are stale.
    cache_epoch: AtomicU32,
    num_vars: u32,
    gc_threshold: usize,
    /// Hard allocated-node budget (`None` = unbounded); checked by
    /// [`Manager::budget_exceeded`] together with the byte budget the
    /// arena's [`crate::shard::MemTracker`] carries.
    node_limit: Option<usize>,
    /// Current op-cache growth cap (log2), raised by the GC auto-tuner.
    cache_max_log2: u32,
    /// Total-cache miss/eviction counts at the end of the previous GC, for
    /// the auto-tuner's per-GC-interval rates.
    misses_at_last_gc: u64,
    evictions_at_last_gc: u64,
    /// Consecutive GC intervals whose eviction rate exceeded the threshold.
    high_eviction_streak: u32,
    /// Unique subtable doublings (shared phase, hence atomic).
    unique_resizes: AtomicUsize,
    /// Peak allocated nodes; exact because nodes are only freed in the
    /// exclusive phase, which records the pre-free high-water mark.
    peak_nodes: AtomicUsize,
    /// Hot-path counters, sharded by thread.
    pub(crate) shards: StatShards,
    /// Exclusive-phase counters.
    pub(crate) serial: SerialStats,
    /// Which flavour of the phase-typed kernel the apply entry points
    /// dispatch to (see [`KernelMode`]).  Mutated only via `&mut self`.
    mode: KernelMode,
    /// Worker threads [`Manager::reorder`] fans the per-swap relink batch
    /// over (1 = fully serial sifting).
    pub(crate) reorder_threads: usize,
}

impl Clone for Manager {
    fn clone(&self) -> Self {
        // Clone is for QUIESCENT managers: a clone racing shared-phase
        // inserts may be structurally inconsistent (an id mid-`mk` — popped
        // from the free list or awaiting its rollback push — can land in
        // neither the cloned free list nor a cloned subtable, so node
        // accounting and `check_integrity` can disagree on the clone).  The
        // ordering below only guarantees a racy clone never *dangles*:
        // subtables first (acquire-loaded slots), arena last, so every id a
        // cloned slot carries was bump-allocated before its publish CAS and
        // is therefore covered by the later arena snapshot with visible
        // fields.
        let subtables = self.subtables.clone();
        let free = self.free.clone();
        let arena = self.arena.clone();
        Self {
            arena,
            free,
            subtables,
            table_len: AtomicUsize::new(self.table_len.load(Ordering::Relaxed)),
            var_to_level: self.var_to_level.clone(),
            level_to_var: self.level_to_var.clone(),
            roots: self.roots.clone(),
            free_roots: self.free_roots.clone(),
            auto_reorder: self.auto_reorder,
            reorder_threshold: self.reorder_threshold,
            reorder_threshold_floor: self.reorder_threshold_floor,
            reorder_window: self.reorder_window,
            converging_sifting: self.converging_sifting,
            caches: self.caches.clone(),
            cache_epoch: AtomicU32::new(self.cache_epoch.load(Ordering::Relaxed)),
            num_vars: self.num_vars,
            gc_threshold: self.gc_threshold,
            node_limit: self.node_limit,
            cache_max_log2: self.cache_max_log2,
            misses_at_last_gc: self.misses_at_last_gc,
            evictions_at_last_gc: self.evictions_at_last_gc,
            high_eviction_streak: self.high_eviction_streak,
            unique_resizes: AtomicUsize::new(self.unique_resizes.load(Ordering::Relaxed)),
            peak_nodes: AtomicUsize::new(self.peak_nodes.load(Ordering::Relaxed)),
            shards: self.shards.clone(),
            serial: self.serial,
            mode: self.mode,
            reorder_threads: self.reorder_threads,
        }
    }
}

impl Manager {
    /// Creates a manager with `num_vars` Boolean variables, initially in the
    /// identity order (variable `i` at level `i`).
    pub fn new(num_vars: usize) -> Self {
        let mut var_to_level: Vec<u32> = (0..num_vars as u32).collect();
        var_to_level.push(TERMINAL_LEVEL);
        let mgr = Self {
            // The sentinel variable index; its var_to_level entry is pinned
            // at TERMINAL_LEVEL so level lookups need no terminal branch.
            arena: NodeArena::new(num_vars as u32),
            free: FreeTable::new(num_vars),
            subtables: (0..num_vars).map(|_| SubTable::new()).collect(),
            table_len: AtomicUsize::new(0),
            var_to_level,
            level_to_var: (0..num_vars as u32).collect(),
            roots: Vec::new(),
            free_roots: Vec::new(),
            auto_reorder: false,
            reorder_threshold: DEFAULT_REORDER_THRESHOLD,
            reorder_threshold_floor: DEFAULT_REORDER_THRESHOLD,
            reorder_window: usize::MAX,
            converging_sifting: false,
            caches: [
                DirectCache::new(2), // and
                DirectCache::new(2), // xor
                DirectCache::new(3), // ite
                DirectCache::new(2), // cofactor
                DirectCache::new(3), // xor3
                DirectCache::new(3), // maj
                DirectCache::new(2), // flip
                DirectCache::new(3), // mux
            ],
            cache_epoch: AtomicU32::new(1),
            num_vars: num_vars as u32,
            gc_threshold: 1 << 16,
            node_limit: None,
            cache_max_log2: CACHE_DEFAULT_MAX_LOG2,
            misses_at_last_gc: 0,
            evictions_at_last_gc: 0,
            high_eviction_streak: 0,
            unique_resizes: AtomicUsize::new(0),
            peak_nodes: AtomicUsize::new(0),
            shards: StatShards::new(),
            serial: SerialStats {
                cache_cap_log2: CACHE_DEFAULT_MAX_LOG2,
                ..SerialStats::default()
            },
            mode: KernelMode::Shared,
            reorder_threads: 1,
        };
        // Charge the retained footprint the struct literal could not: the
        // fresh subtables' slot arrays and the op-cache word arrays.  (The
        // arena charged its own chunk directory and terminal chunk.)
        let initial = num_vars * SubTable::initial_bytes()
            + mgr.caches.iter().map(DirectCache::bytes).sum::<usize>();
        mgr.arena.mem().add(initial);
        mgr
    }

    /// Selects the kernel flavour the apply entry points dispatch to.
    /// Taking `&mut self` makes the switch an exclusive-phase action: no
    /// apply recursion can be in flight, so the flavours never interleave
    /// on one operation.  Callers selecting [`KernelMode::Serial`] promise
    /// single-threaded use until the mode is switched back.
    pub fn set_kernel_mode(&mut self, mode: KernelMode) {
        self.mode = mode;
    }

    /// The currently selected kernel flavour.
    pub fn kernel_mode(&self) -> KernelMode {
        self.mode
    }

    /// Sets how many worker threads [`Manager::reorder`] fans each swap's
    /// relink batch over (clamped to at least 1).  Orthogonal to the kernel
    /// mode: the parallel batch always uses the shared `mk` flavour.
    pub fn set_reorder_threads(&mut self, threads: usize) {
        self.reorder_threads = threads.max(1);
    }

    /// The reordering fan-out width.
    pub fn reorder_threads(&self) -> usize {
        self.reorder_threads
    }

    /// The number of declared variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars as usize
    }

    /// Declares `extra` additional variables (appended below the existing
    /// ones in the order) and returns the index of the first new variable.
    pub fn add_vars(&mut self, extra: usize) -> usize {
        let first = self.num_vars as usize;
        self.num_vars += extra as u32;
        // The new variables start at the bottom levels; the terminal
        // sentinel entry moves to the new end of `var_to_level`.
        self.var_to_level.pop();
        for i in 0..extra {
            self.var_to_level.push((first + i) as u32);
            self.level_to_var.push((first + i) as u32);
            self.subtables.push(SubTable::new());
        }
        self.var_to_level.push(TERMINAL_LEVEL);
        self.arena.add_vars(extra, self.num_vars);
        self.free.add_vars(extra);
        self.arena.mem().add(extra * SubTable::initial_bytes());
        first
    }

    /// The variable currently at `level` (level 0 is the top of the order).
    ///
    /// # Panics
    ///
    /// Panics if `level >= num_vars()`.
    pub fn var_at_level(&self, level: usize) -> usize {
        self.level_to_var[level] as usize
    }

    /// The current level of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars()`.
    pub fn level_of_var(&self, var: usize) -> usize {
        assert!(var < self.num_vars as usize, "variable {var} out of range");
        self.var_to_level[var] as usize
    }

    /// The current variable order, top level first.
    pub fn current_order(&self) -> Vec<usize> {
        self.level_to_var.iter().map(|&v| v as usize).collect()
    }

    /// Records the current allocation level as a peak candidate.  Nodes are
    /// only ever freed in the exclusive phase, so sampling on entry to
    /// GC/reordering, after every adjacent-level swap, and from
    /// [`Manager::stats`] keeps the peak exact up to the transient
    /// allocations *inside* a single swap (a handful of nodes created just
    /// before their dead counterparts are reclaimed).
    #[inline]
    pub(crate) fn note_peak(&self) {
        self.peak_nodes
            .fetch_max(self.allocated_nodes(), Ordering::Relaxed);
    }

    /// Operational statistics: a snapshot summed over the thread shards.
    pub fn stats(&self) -> ManagerStats {
        self.note_peak();
        let (arena_cell_bytes, arena_sidecar_bytes) = self.arena.arena_bytes();
        let mut stats = ManagerStats {
            kernel_mode: self.mode,
            gc_runs: self.serial.gc_runs,
            peak_nodes: self.peak_nodes.load(Ordering::Relaxed),
            allocated_nodes: self.allocated_nodes(),
            current_bytes: self.arena.mem().bytes(),
            peak_bytes: self.arena.mem().peak(),
            arena_cell_bytes,
            arena_sidecar_bytes,
            subtable_bytes: self.subtables.iter().map(SubTable::slot_bytes).sum(),
            chunks_reclaimed: self.arena.chunks_reclaimed(),
            unique_resizes: self.unique_resizes.load(Ordering::Relaxed),
            unique_shards: self.num_vars as usize,
            cache_cap_log2: self.serial.cache_cap_log2,
            cache_cap_raises: self.serial.cache_cap_raises,
            reorders: self.serial.reorders,
            reorder_swaps: self.serial.reorder_swaps,
            reorder_last_before: self.serial.reorder_last_before,
            reorder_last_after: self.serial.reorder_last_after,
            reorder_micros: self.serial.reorder_micros,
            reorder_parallel_batches: self.serial.reorder_parallel_batches,
            ..ManagerStats::default()
        };
        for shard in self.shards.iter() {
            stats.not_ops += shard.not_ops.load(Ordering::Relaxed);
            stats.complement_flips += shard.complement_flips.load(Ordering::Relaxed);
            stats.created_nodes += shard.created_nodes.load(Ordering::Relaxed) as usize;
            stats.unique_cas_retries += shard.unique_cas_retries.load(Ordering::Relaxed);
            stats.unique_dup_races += shard.unique_dup_races.load(Ordering::Relaxed);
            stats.cache_write_skips += shard.cache_write_skips.load(Ordering::Relaxed);
            for (which, totals) in stats.caches_mut().into_iter().enumerate() {
                totals.hits += shard.caches[which].hits.load(Ordering::Relaxed);
                totals.misses += shard.caches[which].misses.load(Ordering::Relaxed);
                totals.evictions += shard.caches[which].evictions.load(Ordering::Relaxed);
            }
        }
        stats
    }

    /// The number of currently allocated (live or garbage, not yet freed)
    /// nodes, excluding the terminal.  Exactly the unique-table population:
    /// a node is in its variable's subtable from publication until the
    /// exclusive phase frees it.
    pub fn allocated_nodes(&self) -> usize {
        self.table_len.load(Ordering::Relaxed)
    }

    /// Sets (or clears) the hard allocated-node budget enforced through
    /// [`Manager::budget_exceeded`].
    pub fn set_node_limit(&mut self, limit: Option<usize>) {
        self.node_limit = limit;
    }

    /// Sets (or clears) the hard retained-byte budget (arena + subtables +
    /// operation caches) enforced through [`Manager::budget_exceeded`].
    pub fn set_max_bytes(&mut self, limit: Option<usize>) {
        self.arena.mem().set_limit(limit);
    }

    /// Whether the manager currently exceeds its node or byte budget.
    /// Non-sticky: a GC (or restore) that recovers below the limits makes
    /// this `false` again, so capacity errors are graceful, not fatal.
    pub fn budget_exceeded(&self) -> bool {
        self.arena.mem().over_budget()
            || self
                .node_limit
                .is_some_and(|limit| self.allocated_nodes() > limit)
    }

    /// The exact retained bytes of the kernel right now (chunk cells and
    /// sidecars, chunk directory, subtable slot arrays, op-cache words).
    pub fn current_bytes(&self) -> usize {
        self.arena.mem().bytes()
    }

    /// High-water mark of [`Manager::current_bytes`].
    pub fn peak_bytes(&self) -> usize {
        self.arena.mem().peak()
    }

    /// The configured byte budget, if any.
    pub fn max_bytes(&self) -> Option<usize> {
        self.arena.mem().limit()
    }

    /// The current cache epoch (relaxed load; changes only in the exclusive
    /// phase).
    #[inline]
    fn epoch(&self) -> u32 {
        self.cache_epoch.load(Ordering::Relaxed)
    }

    // Flavour-dispatched cache accessors.  The stat shard is *passed in*:
    // the apply entry points look it up once and thread it through the
    // recursion, so the thread-local access is paid per apply call, not per
    // recursive step.

    #[inline]
    fn cache_probe2<const SERIAL: bool>(
        &self,
        which: usize,
        epoch: u32,
        key: u64,
    ) -> Option<NodeId> {
        if SERIAL {
            self.caches[which].probe2_serial(epoch, key)
        } else {
            self.caches[which].probe2(epoch, key)
        }
    }

    #[inline]
    fn cache_probe3<const SERIAL: bool>(
        &self,
        which: usize,
        epoch: u32,
        key_fg: u64,
        key_h: u64,
    ) -> Option<NodeId> {
        if SERIAL {
            self.caches[which].probe3_serial(epoch, key_fg, key_h)
        } else {
            self.caches[which].probe3(epoch, key_fg, key_h)
        }
    }

    #[inline]
    fn cache_store2<const SERIAL: bool>(
        &self,
        shard: &StatShard,
        which: usize,
        epoch: u32,
        key: u64,
        result: NodeId,
    ) {
        if SERIAL {
            self.caches[which].store2_serial(&shard.caches[which], epoch, key, result);
        } else {
            self.caches[which].store2(&shard.caches[which], shard, epoch, key, result);
        }
    }

    #[inline]
    fn cache_store3<const SERIAL: bool>(
        &self,
        shard: &StatShard,
        which: usize,
        epoch: u32,
        key_fg: u64,
        key_h: u64,
        result: NodeId,
    ) {
        if SERIAL {
            self.caches[which].store3_serial(&shard.caches[which], epoch, key_fg, key_h, result);
        } else {
            self.caches[which].store3(&shard.caches[which], shard, epoch, key_fg, key_h, result);
        }
    }

    // ----------------------------------------------------------------- //
    // Root registry
    // ----------------------------------------------------------------- //

    /// Registers `f` as an external root.  Registered roots are implicitly
    /// added to every [`Manager::collect_garbage`] root set and act as
    /// reference-count sources during reordering, so the registered edge —
    /// and every node it reaches — keeps its id and its function across
    /// garbage collections and any sequence of level swaps.
    ///
    /// The returned slot stays valid until [`Manager::release_root`];
    /// overwrite the protected edge with [`Manager::set_root`].
    pub fn register_root(&mut self, f: NodeId) -> RootSlot {
        match self.free_roots.pop() {
            Some(slot) => {
                self.roots[slot as usize] = f;
                RootSlot(slot)
            }
            None => {
                self.roots.push(f);
                RootSlot((self.roots.len() - 1) as u32)
            }
        }
    }

    /// Replaces the edge protected by `slot`, returning the previous one.
    pub fn set_root(&mut self, slot: RootSlot, f: NodeId) -> NodeId {
        std::mem::replace(&mut self.roots[slot.0 as usize], f)
    }

    /// The edge currently protected by `slot`.
    pub fn root(&self, slot: RootSlot) -> NodeId {
        self.roots[slot.0 as usize]
    }

    /// Releases a registry slot, returning the edge it protected.  The slot
    /// must not be used afterwards.
    pub fn release_root(&mut self, slot: RootSlot) -> NodeId {
        self.free_roots.push(slot.0);
        // The terminal is always live, so a released slot is inert.
        std::mem::replace(&mut self.roots[slot.0 as usize], NodeId::TRUE)
    }

    /// The currently registered root edges (released slots read as the
    /// terminal, which is harmless for marking and counting).
    pub fn registered_roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// Exhaustive structural validation, for tests and debugging: checks
    /// the canonical form (stored low edges regular, no redundant nodes),
    /// subtable membership (every allocated node in its variable's
    /// subtable under the right key, counts consistent), the order
    /// invariant (children strictly below their parent's level) and that
    /// the permutation arrays are inverse bijections.  Returns a
    /// description of the first violation, if any.
    pub fn check_integrity(&self) -> Result<(), String> {
        let n = self.num_vars as usize;
        for (var, &level) in self.var_to_level.iter().take(n).enumerate() {
            if self.level_to_var.get(level as usize).copied() != Some(var as u32) {
                return Err(format!("var {var} at level {level} not mapped back"));
            }
        }
        if self.var_to_level.len() != n + 1
            || self.var_to_level[n] != TERMINAL_LEVEL
            || self.arena.var_of(0) != self.num_vars
        {
            return Err("terminal sentinel mapping corrupted".to_string());
        }
        let id_bound = self.arena.id_bound();
        let mut free_mark = vec![false; id_bound];
        for f in self.free.snapshot() {
            free_mark[f as usize] = true;
        }
        let mut in_table = 0usize;
        for (var, subtable) in self.subtables.iter().enumerate() {
            let ids = subtable.ids();
            if subtable.len() != ids.len() {
                return Err(format!("subtable {var} length out of sync"));
            }
            for id in ids {
                in_table += 1;
                if id as usize >= id_bound || free_mark[id as usize] {
                    return Err(format!("subtable {var} holds freed node {id}"));
                }
                let node = self.arena.get(id);
                if node.var as usize != var {
                    return Err(format!("node {id} in wrong subtable {var}"));
                }
                if subtable.lookup(&self.arena, pack_children(node.low, node.high)) != Some(id) {
                    return Err(format!("node {id} not findable under its key"));
                }
            }
        }
        let table_len = self.table_len.load(Ordering::Relaxed);
        let slots = self.arena.allocated_slots();
        let free_len = self.free.len();
        if in_table != self.allocated_nodes() || in_table != table_len {
            return Err(format!(
                "table entries {in_table} vs allocated {} vs table_len {}",
                self.allocated_nodes(),
                table_len
            ));
        }
        if slots != in_table + free_len {
            return Err(format!(
                "arena slots {slots} vs table {in_table} + free {free_len}"
            ));
        }
        let mut violation: Option<String> = None;
        self.arena.for_each_allocated(|id| {
            if violation.is_some() || free_mark[id as usize] {
                return;
            }
            let node = self.arena.get(id);
            if node.low.is_complemented() {
                violation = Some(format!("node {id} stores a complemented low edge"));
            } else if node.low == node.high {
                violation = Some(format!("node {id} is redundant (low == high)"));
            } else {
                let level = self.var_to_level[node.var as usize];
                if self.level(node.low) <= level || self.level(node.high.regular()) <= level {
                    violation = Some(format!("node {id} has a child at or above its level"));
                }
            }
        });
        match violation {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }

    // ----------------------------------------------------------------- //
    // Construction primitives
    // ----------------------------------------------------------------- //

    /// The constant function for `value`.
    pub fn constant(&self, value: bool) -> NodeId {
        if value {
            NodeId::TRUE
        } else {
            NodeId::FALSE
        }
    }

    /// The positive literal of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn var(&self, var: usize) -> NodeId {
        assert!(var < self.num_vars as usize, "variable {var} out of range");
        self.mk(var as u32, NodeId::FALSE, NodeId::TRUE)
    }

    /// The negative literal of variable `var`.
    pub fn nvar(&self, var: usize) -> NodeId {
        assert!(var < self.num_vars as usize, "variable {var} out of range");
        self.mk(var as u32, NodeId::TRUE, NodeId::FALSE)
    }

    /// The current level of `f`'s top node ([`TERMINAL_LEVEL`] for
    /// terminals): one permutation-array lookup on top of the node read.
    #[inline]
    pub(crate) fn level(&self, f: NodeId) -> u32 {
        self.var_to_level[self.arena.var_of(f.index() as u32) as usize]
    }

    /// The variable labelling `f`'s top node (the sentinel `num_vars` for
    /// terminals).
    #[inline]
    pub(crate) fn var_of(&self, f: NodeId) -> u32 {
        self.arena.var_of(f.index() as u32)
    }

    /// The stored low child of `f`'s node (regular by canonical form),
    /// *without* `f`'s own complement bit applied.
    #[inline]
    pub(crate) fn raw_low(&self, f: NodeId) -> NodeId {
        self.arena.low_of(f.index() as u32)
    }

    /// The stored high child of `f`'s node, *without* `f`'s own complement
    /// bit applied.
    #[inline]
    pub(crate) fn raw_high(&self, f: NodeId) -> NodeId {
        self.arena.high_of(f.index() as u32)
    }

    /// The full stored node of an id (exclusive-phase bookkeeping and
    /// read-only traversals).
    #[inline]
    pub(crate) fn node_raw(&self, id: u32) -> Node {
        self.arena.get(id)
    }

    /// Overwrites a stored node, possibly changing its variable (exclusive
    /// phase: reordering relabels — may materialise the chunk's variable
    /// sidecar, see [`crate::shard`]).
    #[inline]
    pub(crate) fn set_node_raw(&mut self, id: u32, node: Node) {
        self.arena.write_relabel(id, node);
    }

    /// The semantic cofactors of `f` at its own top level: the stored
    /// children with `f`'s complement bit pushed down into them.
    #[inline]
    fn cofactors_of(&self, f: NodeId) -> (NodeId, NodeId) {
        let node = self.arena.get(f.index() as u32);
        let c = f.cmask();
        (node.low.xor_mask(c), node.high.xor_mask(c))
    }

    /// Returns `(level, low, high)` of a non-terminal edge, with the edge's
    /// complement bit pushed into the children (so recursing on the returned
    /// edges traverses the *function*, not just the shared node).
    ///
    /// The first component is the node's current **level** (order
    /// position), not its variable — map it through
    /// [`Manager::var_at_level`] when the variable identity matters.
    pub fn node(&self, f: NodeId) -> Option<(usize, NodeId, NodeId)> {
        if f.is_terminal() {
            None
        } else {
            let (low, high) = self.cofactors_of(f);
            Some((self.level(f) as usize, low, high))
        }
    }

    /// Allocates a node id homed under `var`: the variable's free list
    /// first, its active chunk's bump pointer second.
    fn alloc_node(&self, var: u32) -> u32 {
        match self.free.pop(var) {
            Some(id) => id,
            None => self.arena.bump(var),
        }
    }

    /// Serial-flavour allocation: same policy, non-RMW bump.
    fn alloc_node_serial(&self, var: u32) -> u32 {
        match self.free.pop(var) {
            Some(id) => id,
            None => self.arena.bump_serial(var),
        }
    }

    /// Hash-consing node constructor (the `MK` operation): finds or creates
    /// the node `(var, low, high)` through `var`'s unique subtable.
    /// Enforces the canonical form — if `low` arrives complemented, both
    /// children are flipped and the returned edge is complemented, so the
    /// *stored* low edge is always regular.  Safe to call concurrently; see
    /// [`crate::shard`] for the publication protocol.
    pub(crate) fn mk(&self, var: u32, low: NodeId, high: NodeId) -> NodeId {
        let (edge, _created) = self.mk_core(var, low, high);
        edge
    }

    /// Like [`Manager::mk`] but for a *level*: labels the node with the
    /// variable currently at `level` (the flavoured form the apply
    /// recursions use).
    #[inline]
    fn mk_level_in<const SERIAL: bool>(
        &self,
        shard: &StatShard,
        level: u32,
        low: NodeId,
        high: NodeId,
    ) -> NodeId {
        let var = self.level_to_var[level as usize];
        self.mk_in::<SERIAL>(shard, var, low, high)
    }

    /// The flavoured [`Manager::mk`] used inside the apply recursions (the
    /// stat shard is already hoisted there).
    #[inline]
    fn mk_in<const SERIAL: bool>(
        &self,
        shard: &StatShard,
        var: u32,
        low: NodeId,
        high: NodeId,
    ) -> NodeId {
        self.mk_core_in::<SERIAL>(shard, var, low, high, || {
            if SERIAL {
                self.alloc_node_serial(var)
            } else {
                self.alloc_node(var)
            }
        })
        .0
    }

    /// The `mk` workhorse; additionally reports whether a fresh node was
    /// allocated (the reordering swap needs this for its reference counts).
    /// Dispatches on the manager's [`KernelMode`].
    pub(crate) fn mk_core(&self, var: u32, low: NodeId, high: NodeId) -> (NodeId, bool) {
        let shard = self.shards.local();
        match self.mode {
            KernelMode::Serial => {
                self.mk_core_in::<true>(shard, var, low, high, || self.alloc_node_serial(var))
            }
            KernelMode::Shared => {
                self.mk_core_in::<false>(shard, var, low, high, || self.alloc_node(var))
            }
        }
    }

    /// The shared-flavour `mk` driven through a pre-acquired probe session
    /// over `var`'s subtable, with a caller-supplied id allocator and every
    /// per-cons shared-line RMW stripped: no read-guard acquisition, no
    /// free-list mutex, no subtable length or global `table_len` update
    /// (the caller batches those from its `created` counts via
    /// [`SubTable::len_add`](crate::shard::SubTable) and `table_len`).  The
    /// parallel reordering batch uses this: its worker threads cons
    /// thousands of nodes into the *same* subtable concurrently, and at
    /// ~100 ns per cons every shared cache-line RMW serializes the whole
    /// fan-out.  The caller must have `grow_for`-reserved the batch's
    /// worst-case insert count first.
    pub(crate) fn mk_session(
        &self,
        prober: &crate::shard::SubTableProber<'_>,
        var: u32,
        low: NodeId,
        high: NodeId,
        alloc: impl FnOnce() -> u32,
    ) -> (NodeId, bool) {
        if low == high {
            return (low, false);
        }
        let shard = self.shards.local();
        let out_c = low.cmask();
        if out_c != 0 {
            crate::shard::bump(&shard.complement_flips);
        }
        let low = low.xor_mask(out_c);
        let high = high.xor_mask(out_c);
        let children = pack_children(low, high);
        let (id, created, rollback) = prober.find_or_publish(
            &self.arena,
            children,
            || {
                let id = alloc();
                self.arena.write(id, Node { var, low, high });
                id
            },
            shard,
        );
        if let Some(speculative) = rollback {
            // Lost the publication race: the node was never visible, so its
            // id can be recycled immediately (rare enough that the free-list
            // mutex is fine here).  `alloc` only hands out ids homed under
            // `var`, so the push keeps the homing invariant.
            crate::shard::bump(&shard.unique_dup_races);
            self.free.push(var, speculative);
        }
        if created {
            crate::shard::bump(&shard.created_nodes);
        }
        (NodeId(id ^ out_c), created)
    }

    fn mk_core_in<const SERIAL: bool>(
        &self,
        shard: &StatShard,
        var: u32,
        low: NodeId,
        high: NodeId,
        alloc: impl Fn() -> u32,
    ) -> (NodeId, bool) {
        if low == high {
            return (low, false);
        }
        let out_c = low.cmask();
        if out_c != 0 {
            crate::shard::bump(&shard.complement_flips);
        }
        let low = low.xor_mask(out_c);
        let high = high.xor_mask(out_c);
        let children = pack_children(low, high);
        let subtable = &self.subtables[var as usize];
        let (id, created) = if SERIAL {
            // Serial flavour: one probe walk, plain store, no speculation.
            loop {
                match subtable.find_or_insert_serial(&self.arena, children, || {
                    let id = alloc();
                    self.arena.write(id, Node { var, low, high });
                    id
                }) {
                    Some(found) => break found,
                    None => {
                        if subtable.grow(&self.arena) {
                            self.unique_resizes.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
        } else {
            let mut speculative: Option<u32> = None;
            let (id, created, rollback) = loop {
                match subtable.find_or_publish(
                    &self.arena,
                    children,
                    speculative.take(),
                    || {
                        let id = alloc();
                        self.arena.write(id, Node { var, low, high });
                        id
                    },
                    shard,
                ) {
                    crate::shard::Consed::Done {
                        id,
                        created,
                        rollback,
                    } => break (id, created, rollback),
                    crate::shard::Consed::TableFull { speculative: spec } => {
                        // Concurrent inserts filled the table before anyone's
                        // post-insert growth ran; the probe released its read
                        // guard, so growing here cannot deadlock.  Keep the
                        // speculative node for the retry.
                        speculative = spec;
                        if subtable.grow(&self.arena) {
                            self.unique_resizes.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            };
            if let Some(speculative) = rollback {
                // Lost the publication race: the node was never visible, so
                // its id can be recycled immediately.
                crate::shard::bump(&shard.unique_dup_races);
                self.free.push(var, speculative);
            }
            (id, created)
        };
        if created {
            crate::shard::bump(&shard.created_nodes);
            if SERIAL {
                let len = self.table_len.load(Ordering::Relaxed);
                self.table_len.store(len + 1, Ordering::Relaxed);
            } else {
                self.table_len.fetch_add(1, Ordering::Relaxed);
            }
            if subtable.overloaded() && subtable.grow(&self.arena) {
                self.unique_resizes.fetch_add(1, Ordering::Relaxed);
            }
        }
        (NodeId(id ^ out_c), created)
    }

    /// Rebuilds every unique subtable and the free lists from the GC mark
    /// bitmap (exclusive phase), running the generational sweep: chunks
    /// with no survivors are released back to the allocator, mixed chunks
    /// whose survivors agree on a variable drop their sidecar, and dead
    /// cells are homed under their chunk's final owner.
    fn rebuild_table(&mut self, marked: &[bool]) {
        for subtable in self.subtables.iter_mut() {
            subtable.clear_exclusive();
        }
        let (live, free) = self.arena.sweep(marked);
        for &id in &live {
            let node = self.arena.get(id);
            let children = pack_children(node.low, node.high);
            self.subtables[node.var as usize].insert_exclusive(&self.arena, children, id);
        }
        self.free.replace_all(free);
        self.table_len.store(live.len(), Ordering::Relaxed);
    }

    // ----------------------------------------------------------------- //
    // Boolean operations
    // ----------------------------------------------------------------- //

    /// The cofactors of `f` with respect to `level`: `f`'s own children
    /// (complement pushed down) when `f` sits at `level`, else `f` twice.
    #[inline]
    fn split(&self, f: NodeId, level: u32) -> (NodeId, NodeId) {
        if self.level(f) == level {
            self.cofactors_of(f)
        } else {
            (f, f)
        }
    }

    /// [`Manager::split`] with `f`'s level already at hand (the apply
    /// recursions compute it for the top-level comparison anyway; passing
    /// it through avoids a second permutation-array lookup per operand).
    #[inline]
    fn split_at(&self, f: NodeId, flevel: u32, top: u32) -> (NodeId, NodeId) {
        if flevel == top {
            self.cofactors_of(f)
        } else {
            (f, f)
        }
    }

    /// Logical negation: with complement edges this is a single bit flip —
    /// no recursion, no cache lookup, no allocation.
    pub fn not(&self, f: NodeId) -> NodeId {
        crate::shard::bump(&self.shards.local().not_ops);
        f.complement()
    }

    /// Logical conjunction (dedicated apply recursion; complement bits are
    /// part of the cache key because they do not fold out of AND).
    pub fn and(&self, f: NodeId, g: NodeId) -> NodeId {
        let shard = self.shards.local();
        match self.mode {
            KernelMode::Serial => self.and_in::<true>(shard, f, g),
            KernelMode::Shared => self.and_in::<false>(shard, f, g),
        }
    }

    fn and_in<const SERIAL: bool>(&self, shard: &StatShard, f: NodeId, g: NodeId) -> NodeId {
        if f == g {
            return f;
        }
        if f.0 ^ g.0 == COMPLEMENT {
            // f ∧ ¬f
            return NodeId::FALSE;
        }
        if f.is_false() || g.is_false() {
            return NodeId::FALSE;
        }
        if f.is_true() {
            return g;
        }
        if g.is_true() {
            return f;
        }
        // Commutative key normalisation: canonical operand order.
        let (a, b) = if f.0 < g.0 { (f, g) } else { (g, f) };
        let key = ((a.0 as u64) << 32) | b.0 as u64;
        let epoch = self.epoch();
        if let Some(result) = self.cache_probe2::<SERIAL>(AND, epoch, key) {
            crate::shard::bump(&shard.caches[AND].hits);
            return result;
        }
        crate::shard::bump(&shard.caches[AND].misses);
        let (la, lb) = (self.level(a), self.level(b));
        let top = la.min(lb);
        let (a0, a1) = self.split_at(a, la, top);
        let (b0, b1) = self.split_at(b, lb, top);
        let low = self.and_in::<SERIAL>(shard, a0, b0);
        let high = self.and_in::<SERIAL>(shard, a1, b1);
        let result = self.mk_level_in::<SERIAL>(shard, top, low, high);
        self.cache_store2::<SERIAL>(shard, AND, epoch, key, result);
        result
    }

    /// Logical disjunction, by De Morgan: `or(f, g) = ¬and(¬f, ¬g)`.  The
    /// complements are O(1) bit flips, so OR shares the AND recursion and
    /// its cache instead of maintaining its own.
    pub fn or(&self, f: NodeId, g: NodeId) -> NodeId {
        self.and(f.complement(), g.complement()).complement()
    }

    #[inline]
    fn or_in<const SERIAL: bool>(&self, shard: &StatShard, f: NodeId, g: NodeId) -> NodeId {
        self.and_in::<SERIAL>(shard, f.complement(), g.complement())
            .complement()
    }

    /// Exclusive or (dedicated apply recursion).  Complement parity folds
    /// out entirely — `¬f ⊕ g = ¬(f ⊕ g)` — so the cache is probed with
    /// regular operands and one entry serves XOR and XNOR of both phases.
    pub fn xor(&self, f: NodeId, g: NodeId) -> NodeId {
        let shard = self.shards.local();
        match self.mode {
            KernelMode::Serial => self.xor_in::<true>(shard, f, g),
            KernelMode::Shared => self.xor_in::<false>(shard, f, g),
        }
    }

    fn xor_in<const SERIAL: bool>(&self, shard: &StatShard, f: NodeId, g: NodeId) -> NodeId {
        let parity = (f.0 ^ g.0) & COMPLEMENT;
        let (a, b) = (f.regular(), g.regular());
        if a == b {
            return if parity != 0 {
                NodeId::TRUE
            } else {
                NodeId::FALSE
            };
        }
        if a.is_terminal() {
            // a is the regular terminal (true): true ⊕ b = ¬b.
            return b.complement().xor_mask(parity);
        }
        if b.is_terminal() {
            return a.complement().xor_mask(parity);
        }
        let (a, b) = if a.0 < b.0 { (a, b) } else { (b, a) };
        let key = ((a.0 as u64) << 32) | b.0 as u64;
        let epoch = self.epoch();
        if let Some(result) = self.cache_probe2::<SERIAL>(XOR, epoch, key) {
            crate::shard::bump(&shard.caches[XOR].hits);
            return result.xor_mask(parity);
        }
        crate::shard::bump(&shard.caches[XOR].misses);
        let (la, lb) = (self.level(a), self.level(b));
        let top = la.min(lb);
        let (a0, a1) = self.split_at(a, la, top);
        let (b0, b1) = self.split_at(b, lb, top);
        let low = self.xor_in::<SERIAL>(shard, a0, b0);
        let high = self.xor_in::<SERIAL>(shard, a1, b1);
        let result = self.mk_level_in::<SERIAL>(shard, top, low, high);
        self.cache_store2::<SERIAL>(shard, XOR, epoch, key, result);
        result.xor_mask(parity)
    }

    /// If-then-else: `ite(f, g, h) = (f ∧ g) ∨ (¬f ∧ h)`.
    ///
    /// Calls whose shape matches a two-operand operation are routed to the
    /// specialised recursions (and their caches) instead; the standard
    /// triple is normalised so the predicate and the then-branch are
    /// regular edges (`ite(¬f, g, h) = ite(f, h, g)` and
    /// `ite(f, ¬g, ¬h) = ¬ite(f, g, h)`).
    pub fn ite(&self, f: NodeId, g: NodeId, h: NodeId) -> NodeId {
        let shard = self.shards.local();
        match self.mode {
            KernelMode::Serial => self.ite_in::<true>(shard, f, g, h),
            KernelMode::Shared => self.ite_in::<false>(shard, f, g, h),
        }
    }

    fn ite_in<const SERIAL: bool>(
        &self,
        shard: &StatShard,
        f: NodeId,
        g: NodeId,
        h: NodeId,
    ) -> NodeId {
        if f.is_true() {
            return g;
        }
        if f.is_false() {
            return h;
        }
        if g == h {
            return g;
        }
        // Predicate normalisation: regular f.
        let (f, g, h) = if f.is_complemented() {
            (f.complement(), h, g)
        } else {
            (f, g, h)
        };
        if g.0 ^ h.0 == COMPLEMENT {
            // ite(f, g, ¬g) = ¬(f ⊕ g): the XNOR terminal case folds into
            // the XOR recursion via the complement bit.
            return self.xor_in::<SERIAL>(shard, f, g).complement();
        }
        // Two-operand shapes: reuse the specialised recursions.
        if g.is_true() {
            if h.is_false() {
                return f;
            }
            return self.or_in::<SERIAL>(shard, f, h);
        }
        if g.is_false() {
            if h.is_true() {
                return f.complement();
            }
            return self.and_in::<SERIAL>(shard, f.complement(), h);
        }
        if h.is_false() || f == h {
            return self.and_in::<SERIAL>(shard, f, g);
        }
        if f == g {
            return self.or_in::<SERIAL>(shard, f, h);
        }
        if h.is_true() {
            return self.or_in::<SERIAL>(shard, f.complement(), g);
        }
        if f.0 ^ g.0 == COMPLEMENT {
            // g = ¬f: ite(f, ¬f, h) = ¬f ∧ h.
            return self.and_in::<SERIAL>(shard, f.complement(), h);
        }
        if f.0 ^ h.0 == COMPLEMENT {
            // h = ¬f: ite(f, g, ¬f) = ¬f ∨ g.
            return self.or_in::<SERIAL>(shard, f.complement(), g);
        }
        // Then-branch normalisation: regular g, so ite(f, g, h) and
        // ¬ite(f, ¬g, ¬h) probe the same cache line.
        let out_c = g.cmask();
        let (g, h) = (g.xor_mask(out_c), h.xor_mask(out_c));
        let key_fg = ((f.0 as u64) << 32) | g.0 as u64;
        let key_h = h.0 as u64;
        let epoch = self.epoch();
        if let Some(result) = self.cache_probe3::<SERIAL>(ITE, epoch, key_fg, key_h) {
            crate::shard::bump(&shard.caches[ITE].hits);
            return result.xor_mask(out_c);
        }
        crate::shard::bump(&shard.caches[ITE].misses);
        let (lf, lg, lh) = (self.level(f), self.level(g), self.level(h));
        let top = lf.min(lg).min(lh);
        let (f0, f1) = self.split_at(f, lf, top);
        let (g0, g1) = self.split_at(g, lg, top);
        let (h0, h1) = self.split_at(h, lh, top);
        let low = self.ite_in::<SERIAL>(shard, f0, g0, h0);
        let high = self.ite_in::<SERIAL>(shard, f1, g1, h1);
        let result = self.mk_level_in::<SERIAL>(shard, top, low, high);
        self.cache_store3::<SERIAL>(shard, ITE, epoch, key_fg, key_h, result);
        result.xor_mask(out_c)
    }

    /// Three-operand exclusive or `f ⊕ g ⊕ h` — the full-adder *sum* — as a
    /// single recursion instead of two chained [`Manager::xor`] passes.
    /// Complement parity folds out of all three operands at once, so the
    /// cache is keyed on regular edges only.
    pub fn xor3(&self, f: NodeId, g: NodeId, h: NodeId) -> NodeId {
        let shard = self.shards.local();
        match self.mode {
            KernelMode::Serial => self.xor3_in::<true>(shard, f, g, h),
            KernelMode::Shared => self.xor3_in::<false>(shard, f, g, h),
        }
    }

    fn xor3_in<const SERIAL: bool>(
        &self,
        shard: &StatShard,
        f: NodeId,
        g: NodeId,
        h: NodeId,
    ) -> NodeId {
        let parity = (f.0 ^ g.0 ^ h.0) & COMPLEMENT;
        // Fully commutative: sort the regular edges into canonical order.
        let (mut a, mut b, mut c) = (f.regular(), g.regular(), h.regular());
        if a.0 > b.0 {
            std::mem::swap(&mut a, &mut b);
        }
        if b.0 > c.0 {
            std::mem::swap(&mut b, &mut c);
        }
        if a.0 > b.0 {
            std::mem::swap(&mut a, &mut b);
        }
        // Duplicate operands cancel (their complement bits already folded
        // into `parity`).
        if a == b {
            return c.xor_mask(parity);
        }
        if b == c {
            return a.xor_mask(parity);
        }
        // The only regular terminal is `true`, and it sorts first:
        // true ⊕ b ⊕ c = ¬(b ⊕ c).
        if a.is_terminal() {
            return self
                .xor_in::<SERIAL>(shard, b, c)
                .complement()
                .xor_mask(parity);
        }
        let key_ab = ((a.0 as u64) << 32) | b.0 as u64;
        let key_c = c.0 as u64;
        let epoch = self.epoch();
        if let Some(result) = self.cache_probe3::<SERIAL>(XOR3, epoch, key_ab, key_c) {
            crate::shard::bump(&shard.caches[XOR3].hits);
            return result.xor_mask(parity);
        }
        crate::shard::bump(&shard.caches[XOR3].misses);
        let (la, lb, lc) = (self.level(a), self.level(b), self.level(c));
        let top = la.min(lb).min(lc);
        let (a0, a1) = self.split_at(a, la, top);
        let (b0, b1) = self.split_at(b, lb, top);
        let (c0, c1) = self.split_at(c, lc, top);
        let low = self.xor3_in::<SERIAL>(shard, a0, b0, c0);
        let high = self.xor3_in::<SERIAL>(shard, a1, b1, c1);
        let result = self.mk_level_in::<SERIAL>(shard, top, low, high);
        self.cache_store3::<SERIAL>(shard, XOR3, epoch, key_ab, key_c, result);
        result.xor_mask(parity)
    }

    /// Three-operand majority `f·g ∨ f·h ∨ g·h` — the full-adder *carry*
    /// `a·b ∨ (a ∨ b)·c` — as a single recursion instead of four chained
    /// two-operand passes.  Majority is self-dual
    /// (`maj(¬f, ¬g, ¬h) = ¬maj(f, g, h)`), which normalises every call to
    /// at most one complemented operand before the cache is probed.
    pub fn maj(&self, f: NodeId, g: NodeId, h: NodeId) -> NodeId {
        let shard = self.shards.local();
        match self.mode {
            KernelMode::Serial => self.maj_in::<true>(shard, f, g, h),
            KernelMode::Shared => self.maj_in::<false>(shard, f, g, h),
        }
    }

    fn maj_in<const SERIAL: bool>(
        &self,
        shard: &StatShard,
        f: NodeId,
        g: NodeId,
        h: NodeId,
    ) -> NodeId {
        // A duplicated operand wins the vote; an operand voting against its
        // own complement leaves the third the deciding vote.
        if f == g || f == h {
            return f;
        }
        if g == h {
            return g;
        }
        if f.0 ^ g.0 == COMPLEMENT {
            return h;
        }
        if f.0 ^ h.0 == COMPLEMENT {
            return g;
        }
        if g.0 ^ h.0 == COMPLEMENT {
            return f;
        }
        // A constant vote reduces to OR (true) or AND (false).
        if f.is_terminal() {
            return if f.is_true() {
                self.or_in::<SERIAL>(shard, g, h)
            } else {
                self.and_in::<SERIAL>(shard, g, h)
            };
        }
        if g.is_terminal() {
            return if g.is_true() {
                self.or_in::<SERIAL>(shard, f, h)
            } else {
                self.and_in::<SERIAL>(shard, f, h)
            };
        }
        if h.is_terminal() {
            return if h.is_true() {
                self.or_in::<SERIAL>(shard, f, g)
            } else {
                self.and_in::<SERIAL>(shard, f, g)
            };
        }
        // Self-duality: flip all three when two or more are complemented,
        // complementing the result.
        let complemented =
            f.is_complemented() as u32 + g.is_complemented() as u32 + h.is_complemented() as u32;
        let out_c = if complemented >= 2 { COMPLEMENT } else { 0 };
        // Fully commutative: sort the (normalised) operands canonically.
        let (mut a, mut b, mut c) = (f.xor_mask(out_c), g.xor_mask(out_c), h.xor_mask(out_c));
        if a.0 > b.0 {
            std::mem::swap(&mut a, &mut b);
        }
        if b.0 > c.0 {
            std::mem::swap(&mut b, &mut c);
        }
        if a.0 > b.0 {
            std::mem::swap(&mut a, &mut b);
        }
        let key_ab = ((a.0 as u64) << 32) | b.0 as u64;
        let key_c = c.0 as u64;
        let epoch = self.epoch();
        if let Some(result) = self.cache_probe3::<SERIAL>(MAJ, epoch, key_ab, key_c) {
            crate::shard::bump(&shard.caches[MAJ].hits);
            return result.xor_mask(out_c);
        }
        crate::shard::bump(&shard.caches[MAJ].misses);
        let (la, lb, lc) = (self.level(a), self.level(b), self.level(c));
        let top = la.min(lb).min(lc);
        let (a0, a1) = self.split_at(a, la, top);
        let (b0, b1) = self.split_at(b, lb, top);
        let (c0, c1) = self.split_at(c, lc, top);
        let low = self.maj_in::<SERIAL>(shard, a0, b0, c0);
        let high = self.maj_in::<SERIAL>(shard, a1, b1, c1);
        let result = self.mk_level_in::<SERIAL>(shard, top, low, high);
        self.cache_store3::<SERIAL>(shard, MAJ, epoch, key_ab, key_c, result);
        result.xor_mask(out_c)
    }

    /// The composition `f(…, ¬x_var, …)`: swaps the two cofactors along
    /// `var` in one traversal (the X-gate permutation), instead of the
    /// three-pass `ite(x, f|₀, f|₁)` construction.  The swap commutes with
    /// complementation, so the cache is keyed on the regular edge.
    pub fn flip_var(&self, f: NodeId, var: usize) -> NodeId {
        let vlevel = self.var_to_level[var];
        let shard = self.shards.local();
        match self.mode {
            KernelMode::Serial => self.flip_var_rec::<true>(shard, f, var as u32, vlevel),
            KernelMode::Shared => self.flip_var_rec::<false>(shard, f, var as u32, vlevel),
        }
    }

    fn flip_var_rec<const SERIAL: bool>(
        &self,
        shard: &StatShard,
        f: NodeId,
        var: u32,
        vlevel: u32,
    ) -> NodeId {
        let out_c = f.cmask();
        let fr = f.xor_mask(out_c);
        if fr.is_terminal() || self.level(fr) > vlevel {
            return f;
        }
        if self.var_of(fr) == var {
            let (low, high) = (self.raw_low(fr), self.raw_high(fr));
            return self.mk_in::<SERIAL>(shard, var, high, low).xor_mask(out_c);
        }
        let key = ((fr.0 as u64) << 32) | var as u64;
        let epoch = self.epoch();
        if let Some(result) = self.cache_probe2::<SERIAL>(FLIP, epoch, key) {
            crate::shard::bump(&shard.caches[FLIP].hits);
            return result.xor_mask(out_c);
        }
        crate::shard::bump(&shard.caches[FLIP].misses);
        let top_var = self.var_of(fr);
        let (f0, f1) = (self.raw_low(fr), self.raw_high(fr));
        let low = self.flip_var_rec::<SERIAL>(shard, f0, var, vlevel);
        let high = self.flip_var_rec::<SERIAL>(shard, f1, var, vlevel);
        let result = self.mk_in::<SERIAL>(shard, top_var, low, high);
        self.cache_store2::<SERIAL>(shard, FLIP, epoch, key, result);
        result.xor_mask(out_c)
    }

    /// `ite(x_var, g, h)` without materialising the literal: the row
    /// multiplexer used by controlled and phase gates, in one recursion with
    /// a two-word cache key.  Normalised so the then-input is regular
    /// (`mux(v, ¬g, ¬h) = ¬mux(v, g, h)`).
    pub fn mux_var(&self, var: usize, g: NodeId, h: NodeId) -> NodeId {
        let vlevel = self.var_to_level[var];
        let shard = self.shards.local();
        match self.mode {
            KernelMode::Serial => self.mux_var_rec::<true>(shard, var as u32, vlevel, g, h),
            KernelMode::Shared => self.mux_var_rec::<false>(shard, var as u32, vlevel, g, h),
        }
    }

    fn mux_var_rec<const SERIAL: bool>(
        &self,
        shard: &StatShard,
        var: u32,
        vlevel: u32,
        g: NodeId,
        h: NodeId,
    ) -> NodeId {
        if g == h {
            return g;
        }
        let out_c = g.cmask();
        let (g, h) = (g.xor_mask(out_c), h.xor_mask(out_c));
        let top = self.level(g).min(self.level(h));
        if top > vlevel {
            // Neither operand depends on variables at or above `var`'s level.
            return self.mk_in::<SERIAL>(shard, var, h, g).xor_mask(out_c);
        }
        let key_gh = ((g.0 as u64) << 32) | h.0 as u64;
        let key_var = var as u64;
        let epoch = self.epoch();
        if let Some(result) = self.cache_probe3::<SERIAL>(MUX, epoch, key_gh, key_var) {
            crate::shard::bump(&shard.caches[MUX].hits);
            return result.xor_mask(out_c);
        }
        crate::shard::bump(&shard.caches[MUX].misses);
        let result = if top == vlevel {
            // At the multiplexer level: low output comes from h, high from g.
            let low = if self.level(h) == vlevel {
                self.cofactors_of(h).0
            } else {
                h
            };
            let high = if self.level(g) == vlevel {
                self.cofactors_of(g).1
            } else {
                g
            };
            self.mk_in::<SERIAL>(shard, var, low, high)
        } else {
            let (g0, g1) = self.split(g, top);
            let (h0, h1) = self.split(h, top);
            let low = self.mux_var_rec::<SERIAL>(shard, var, vlevel, g0, h0);
            let high = self.mux_var_rec::<SERIAL>(shard, var, vlevel, g1, h1);
            self.mk_level_in::<SERIAL>(shard, top, low, high)
        };
        self.cache_store3::<SERIAL>(shard, MUX, epoch, key_gh, key_var, result);
        result.xor_mask(out_c)
    }

    /// Conjunction of many functions.
    pub fn and_many(&self, fs: &[NodeId]) -> NodeId {
        let mut acc = NodeId::TRUE;
        for &f in fs {
            acc = self.and(acc, f);
            if acc.is_false() {
                break;
            }
        }
        acc
    }

    /// Disjunction of many functions.
    pub fn or_many(&self, fs: &[NodeId]) -> NodeId {
        let mut acc = NodeId::FALSE;
        for &f in fs {
            acc = self.or(acc, f);
            if acc.is_true() {
                break;
            }
        }
        acc
    }

    /// The cube (conjunction of literals) described by `(variable, phase)`
    /// pairs; `phase == true` means the positive literal.
    pub fn cube(&self, literals: &[(usize, bool)]) -> NodeId {
        // Build bottom-up in *level* order, so the construction is valid
        // under any variable order.
        let mut sorted: Vec<_> = literals.to_vec();
        sorted.sort_by_key(|&(v, _)| std::cmp::Reverse(self.var_to_level[v]));
        let mut acc = NodeId::TRUE;
        for (v, phase) in sorted {
            acc = if phase {
                self.mk(v as u32, NodeId::FALSE, acc)
            } else {
                self.mk(v as u32, acc, NodeId::FALSE)
            };
        }
        acc
    }

    /// The cofactor `f|_{var=value}`.  Restriction commutes with
    /// complementation, so the cache is keyed on the regular edge.
    pub fn cofactor(&self, f: NodeId, var: usize, value: bool) -> NodeId {
        let vlevel = self.var_to_level[var];
        let shard = self.shards.local();
        match self.mode {
            KernelMode::Serial => self.cofactor_rec::<true>(shard, f, var as u32, vlevel, value),
            KernelMode::Shared => self.cofactor_rec::<false>(shard, f, var as u32, vlevel, value),
        }
    }

    fn cofactor_rec<const SERIAL: bool>(
        &self,
        shard: &StatShard,
        f: NodeId,
        var: u32,
        vlevel: u32,
        value: bool,
    ) -> NodeId {
        let out_c = f.cmask();
        let fr = f.xor_mask(out_c);
        if fr.is_terminal() || self.level(fr) > vlevel {
            return f;
        }
        if self.var_of(fr) == var {
            let (low, high) = self.cofactors_of(f);
            return if value { high } else { low };
        }
        let var_value = var | (value as u32) << 31;
        let key = ((fr.0 as u64) << 32) | var_value as u64;
        let epoch = self.epoch();
        if let Some(result) = self.cache_probe2::<SERIAL>(COFACTOR, epoch, key) {
            crate::shard::bump(&shard.caches[COFACTOR].hits);
            return result.xor_mask(out_c);
        }
        crate::shard::bump(&shard.caches[COFACTOR].misses);
        let top_var = self.var_of(fr);
        let (f0, f1) = (self.raw_low(fr), self.raw_high(fr));
        let low = self.cofactor_rec::<SERIAL>(shard, f0, var, vlevel, value);
        let high = self.cofactor_rec::<SERIAL>(shard, f1, var, vlevel, value);
        let result = self.mk_in::<SERIAL>(shard, top_var, low, high);
        self.cache_store2::<SERIAL>(shard, COFACTOR, epoch, key, result);
        result.xor_mask(out_c)
    }

    /// Cofactor with respect to a cube given as `(variable, phase)` pairs.
    pub fn cofactor_cube(&self, f: NodeId, literals: &[(usize, bool)]) -> NodeId {
        let mut acc = f;
        for &(v, phase) in literals {
            acc = self.cofactor(acc, v, phase);
        }
        acc
    }

    /// Existential quantification of a single variable.
    pub fn exists(&self, f: NodeId, var: usize) -> NodeId {
        let f0 = self.cofactor(f, var, false);
        let f1 = self.cofactor(f, var, true);
        self.or(f0, f1)
    }

    // ----------------------------------------------------------------- //
    // Queries
    // ----------------------------------------------------------------- //

    /// Evaluates `f` under a complete assignment (index = **variable**, so
    /// the call is oblivious to the current variable order), folding the
    /// complement bits of the traversed edges into the result.
    pub fn eval(&self, f: NodeId, assignment: &[bool]) -> bool {
        let mut cur = f;
        while !cur.is_terminal() {
            let node = self.arena.get(cur.index() as u32);
            let next = if assignment[node.var as usize] {
                node.high
            } else {
                node.low
            };
            cur = next.xor_mask(cur.cmask());
        }
        cur.is_true()
    }

    /// Number of satisfying assignments of `f` over the variables
    /// `0..nvars`.  `f` must not depend on variables `≥ nvars`.  The count
    /// is over the variable *set*, so it is independent of the current
    /// order (the counted variables need not occupy contiguous levels).
    ///
    /// Complemented edges count by subtraction:
    /// `|¬f| = 2^(remaining vars) − |f|`, memoised per regular node.
    pub fn sat_count(&self, f: NodeId, nvars: usize) -> UBig {
        let mut memo: FxHashMap<NodeId, UBig> = FxHashMap::default();
        let pc = self.counted_prefix(nvars);
        self.count_edge(f, 0, &pc, &mut memo)
    }

    /// `pc[l]` = number of counted variables (index `< nvars`) at levels
    /// `< l`; the exponent of a level gap `[a, b)` is `pc[b] − pc[a]`.
    fn counted_prefix(&self, nvars: usize) -> Vec<u32> {
        let n = self.num_vars as usize;
        let mut pc = vec![0u32; n + 1];
        for l in 0..n {
            pc[l + 1] = pc[l] + (self.level_to_var[l] < nvars as u32) as u32;
        }
        pc
    }

    /// Models of the function reached through edge `f` over the counted
    /// variables at levels `≥ from` (all of which are at or below `f`'s
    /// level).
    fn count_edge(
        &self,
        f: NodeId,
        from: u32,
        pc: &[u32],
        memo: &mut FxHashMap<NodeId, UBig>,
    ) -> UBig {
        let total = *pc.last().expect("prefix array is non-empty");
        if f.is_true() {
            return UBig::pow2((total - pc[from as usize]) as usize);
        }
        if f.is_false() {
            return UBig::zero();
        }
        let fr = f.regular();
        let level = self.level(fr);
        debug_assert!(
            self.var_of(fr) < pc.len() as u32 - 1 && pc[level as usize + 1] > pc[level as usize],
            "function depends on variables beyond nvars"
        );
        let models = match memo.get(&fr) {
            Some(c) => c.clone(),
            None => {
                let low = self.raw_low(fr);
                let high = self.raw_high(fr);
                let cl = self.count_edge(low, level + 1, pc, memo);
                let ch = self.count_edge(high, level + 1, pc, memo);
                let total = UBig::add(&cl, &ch);
                memo.insert(fr, total.clone());
                total
            }
        };
        let models = if f.is_complemented() {
            UBig::pow2((total - pc[level as usize]) as usize).sub(&models)
        } else {
            models
        };
        models.shl((pc[level as usize] - pc[from as usize]) as usize)
    }

    /// Like [`Manager::sat_count`] but in floating point (may overflow to
    /// infinity around 2¹⁰²⁴ assignments).
    pub fn sat_count_f64(&self, f: NodeId, nvars: usize) -> f64 {
        let mut memo: FxHashMap<NodeId, f64> = FxHashMap::default();
        let pc = self.counted_prefix(nvars);
        self.count_edge_f64(f, 0, &pc, &mut memo)
    }

    fn count_edge_f64(
        &self,
        f: NodeId,
        from: u32,
        pc: &[u32],
        memo: &mut FxHashMap<NodeId, f64>,
    ) -> f64 {
        let total = *pc.last().expect("prefix array is non-empty");
        if f.is_true() {
            return 2f64.powi((total - pc[from as usize]) as i32);
        }
        if f.is_false() {
            return 0.0;
        }
        let fr = f.regular();
        let level = self.level(fr);
        let models = match memo.get(&fr) {
            Some(&c) => c,
            None => {
                let low = self.raw_low(fr);
                let high = self.raw_high(fr);
                let total = self.count_edge_f64(low, level + 1, pc, memo)
                    + self.count_edge_f64(high, level + 1, pc, memo);
                memo.insert(fr, total);
                total
            }
        };
        let models = if f.is_complemented() {
            // Beyond ~2¹⁰²⁴ assignments the subtraction is inf − inf; the
            // complement count is astronomically large too, so saturate.
            let pow = 2f64.powi((total - pc[level as usize]) as i32);
            if pow.is_finite() {
                pow - models
            } else {
                pow
            }
        } else {
            models
        };
        // Guard against `0 × ∞ = NaN` when the model count is zero but the
        // level gap is enormous.
        if models == 0.0 {
            0.0
        } else {
            models * 2f64.powi((pc[level as usize] - pc[from as usize]) as i32)
        }
    }

    /// The number of BDD nodes reachable from `f` (the terminal excluded).
    /// A function and its complement share all their nodes.
    pub fn node_count(&self, f: NodeId) -> usize {
        self.node_count_many(std::slice::from_ref(&f))
    }

    /// The number of distinct BDD nodes reachable from any of the `roots`
    /// (the terminal excluded); shared nodes — including nodes shared
    /// between a function and a complemented occurrence — are counted once.
    pub fn node_count_many(&self, roots: &[NodeId]) -> usize {
        let mut seen: std::collections::HashSet<NodeId, crate::hash::FxBuildHasher> =
            Default::default();
        let mut stack: Vec<NodeId> = roots.iter().map(|f| f.regular()).collect();
        while let Some(f) = stack.pop() {
            if f.is_terminal() || !seen.insert(f) {
                continue;
            }
            stack.push(self.raw_low(f));
            stack.push(self.raw_high(f).regular());
        }
        seen.len()
    }

    /// Counts the complement edges among the nodes reachable from `roots`:
    /// returns `(complemented_high_edges, reachable_nodes)`.  Low edges are
    /// never complemented by canonical form, so the first component counts
    /// every stored complement bit in the subgraph — a direct measure of
    /// the sharing the complement-edge representation buys.
    pub fn complement_edge_count(&self, roots: &[NodeId]) -> (usize, usize) {
        let mut seen: std::collections::HashSet<NodeId, crate::hash::FxBuildHasher> =
            Default::default();
        let mut stack: Vec<NodeId> = roots.iter().map(|f| f.regular()).collect();
        let mut complemented = 0usize;
        while let Some(f) = stack.pop() {
            if f.is_terminal() || !seen.insert(f) {
                continue;
            }
            let high = self.raw_high(f);
            complemented += high.is_complemented() as usize;
            stack.push(self.raw_low(f));
            stack.push(high.regular());
        }
        (complemented, seen.len())
    }

    /// The set of variables `f` depends on, as *variable indices* in
    /// increasing order (independent of the current variable order).
    pub fn support(&self, f: NodeId) -> Vec<usize> {
        let mut seen: std::collections::HashSet<NodeId, crate::hash::FxBuildHasher> =
            Default::default();
        let mut vars: std::collections::BTreeSet<usize> = Default::default();
        let mut stack = vec![f.regular()];
        while let Some(g) = stack.pop() {
            if g.is_terminal() || !seen.insert(g) {
                continue;
            }
            vars.insert(self.var_of(g) as usize);
            stack.push(self.raw_low(g));
            stack.push(self.raw_high(g).regular());
        }
        vars.into_iter().collect()
    }

    /// Returns one satisfying assignment (as `(variable, value)` pairs over
    /// the support of `f`, in *variable* space), or `None` if `f` is
    /// unsatisfiable.
    pub fn pick_one(&self, f: NodeId) -> Option<Vec<(usize, bool)>> {
        if f.is_false() {
            return None;
        }
        let mut cube = Vec::new();
        let mut cur = f;
        while !cur.is_terminal() {
            let v = self.var_of(cur) as usize;
            let (low, high) = self.cofactors_of(cur);
            if low.is_false() {
                cube.push((v, true));
                cur = high;
            } else {
                cube.push((v, false));
                cur = low;
            }
        }
        Some(cube)
    }

    // ----------------------------------------------------------------- //
    // Garbage collection
    // ----------------------------------------------------------------- //

    /// Returns `true` when enough garbage may have accumulated that calling
    /// [`Manager::collect_garbage`] is worthwhile.
    pub fn should_collect(&self) -> bool {
        self.allocated_nodes() > self.gc_threshold
    }

    /// Overrides the automatic GC threshold (number of allocated nodes).
    pub fn set_gc_threshold(&mut self, threshold: usize) {
        self.gc_threshold = threshold;
    }

    /// GC-time cache-cap auto-tuning: when the eviction rate over the GC
    /// interval stays above 1/4 of the stores for two consecutive
    /// collections, raise the growth cap one power of two (up to 2²⁰).
    /// Intervals with fewer than 4096 stores are ignored as noise.
    fn tune_cache_cap(&mut self, interval_stores: u64, interval_evictions: u64) {
        if interval_stores >= 4096 && interval_evictions * 4 >= interval_stores {
            self.high_eviction_streak += 1;
        } else {
            self.high_eviction_streak = 0;
            return;
        }
        if self.high_eviction_streak >= 2 && self.cache_max_log2 < CACHE_HARD_MAX_LOG2 {
            self.cache_max_log2 += 1;
            self.serial.cache_cap_log2 = self.cache_max_log2;
            self.serial.cache_cap_raises += 1;
            let cap = self.cache_max_log2;
            for cache in self.caches.iter_mut() {
                cache.raise_cap(cap);
            }
            self.high_eviction_streak = 0;
        }
    }

    /// Applies deferred operation-cache growth: any cache whose miss budget
    /// ran out since the last exclusive phase doubles now (up to its cap).
    /// The shared phase never reallocates a cache; the simulator calls this
    /// at gate boundaries (it is also folded into GC and reordering).
    pub fn maybe_grow_caches(&mut self) {
        for cache in self.caches.iter_mut() {
            // A manager at (or past) its byte budget must not double its
            // caches into it: growth resumes once a GC recovers headroom.
            while cache.wants_growth() && !self.arena.mem().over_budget() {
                let before = cache.bytes();
                cache.grow();
                self.arena.mem().add(cache.bytes() - before);
            }
        }
    }

    /// Mark-and-sweep garbage collection.  Every node reachable from
    /// `roots` *or from a registered root* (see [`Manager::register_root`])
    /// survives with its `NodeId` unchanged (complement bits are ignored
    /// for marking: a node is live if *either* phase of it is reachable);
    /// all other nodes are freed, the unique subtables and free-list are
    /// rebuilt from the mark bitmap, and the operation caches are
    /// invalidated in O(1) by bumping the cache epoch.  Returns the number
    /// of freed nodes.
    pub fn collect_garbage(&mut self, roots: &[NodeId]) -> usize {
        self.note_peak();
        let mut marked = vec![false; self.arena.id_bound()];
        marked[0] = true;
        let mut stack: Vec<usize> = roots
            .iter()
            .chain(self.roots.iter())
            .map(|f| f.index())
            .collect();
        while let Some(index) = stack.pop() {
            if marked[index] {
                continue;
            }
            marked[index] = true;
            let node = self.arena.get(index as u32);
            stack.push(node.low.index());
            stack.push(node.high.index());
        }
        let live_before = self.allocated_nodes();
        self.rebuild_table(&marked);
        let freed = live_before - self.allocated_nodes();
        // Cache-cap auto-tuning from the eviction rate of this GC interval.
        let totals = self.stats().total_cache();
        let interval_stores = totals.misses - self.misses_at_last_gc;
        let interval_evictions = totals.evictions - self.evictions_at_last_gc;
        self.misses_at_last_gc = totals.misses;
        self.evictions_at_last_gc = totals.evictions;
        self.tune_cache_cap(interval_stores, interval_evictions);
        self.maybe_grow_caches();
        self.invalidate_caches();
        self.serial.gc_runs += 1;
        // Grow the threshold if little garbage was reclaimed, so we do not
        // thrash on workloads whose live set keeps growing.
        if freed * 4 < self.allocated_nodes() {
            self.gc_threshold = (self.allocated_nodes() * 2).max(self.gc_threshold);
        }
        freed
    }

    /// Garbage collection with the registered roots as the only root set.
    pub fn collect_garbage_registered(&mut self) -> usize {
        self.collect_garbage(&[])
    }

    /// O(1) invalidation of every operation cache: bumps the epoch stamp
    /// (stale entries are recognised by their epoch), hard-resetting on the
    /// extremely rare wrap so no stale entry can alias the restarted
    /// counter.  Called at GC time and after reordering (level swaps free
    /// dead nodes whose ids may be recycled, which would otherwise leave
    /// the caches pointing at different functions).
    pub(crate) fn invalidate_caches(&mut self) {
        let epoch = self.cache_epoch.get_mut();
        *epoch = epoch.wrapping_add(1);
        if *epoch == 0 {
            for cache in self.caches.iter_mut() {
                cache.reset();
            }
            *epoch = 1;
        }
    }

    // ----------------------------------------------------------------- //
    // Reordering configuration (the algorithms live in `reorder.rs`)
    // ----------------------------------------------------------------- //

    /// Enables or disables the automatic reordering trigger polled by
    /// [`Manager::maybe_reorder`].
    pub fn set_auto_reorder(&mut self, enabled: bool) {
        self.auto_reorder = enabled;
    }

    /// Whether automatic reordering is armed.
    pub fn auto_reorder_enabled(&self) -> bool {
        self.auto_reorder
    }

    /// Sets the allocated-node count beyond which [`Manager::maybe_reorder`]
    /// sifts.  The threshold re-arms itself at twice the post-reorder size,
    /// never dropping below the value configured here.
    pub fn set_reorder_threshold(&mut self, threshold: usize) {
        self.reorder_threshold = threshold;
        self.reorder_threshold_floor = threshold;
    }

    /// Restricts sifting to the top `levels` levels of the order: variables
    /// below the window never move, and windowed variables never sink out
    /// of it.  The simulator uses this to pin measurement-encoding
    /// variables underneath the qubit block, the ordering requirement of
    /// the paper's monolithic measurement traversal.
    pub fn set_reorder_window(&mut self, levels: usize) {
        self.reorder_window = levels;
    }

    /// Enables converging sifting: [`Manager::reorder`] repeats whole
    /// passes until a pass improves the size by less than 1% (or a small
    /// pass cap is hit).
    pub fn set_converging_sifting(&mut self, converge: bool) {
        self.converging_sifting = converge;
    }

    /// Runs [`Manager::reorder`] iff automatic reordering is enabled and
    /// the allocated-node count exceeds the trigger threshold; re-arms the
    /// threshold at twice the post-reorder live size.  Also applies any
    /// deferred cache growth — this is the designated exclusive-phase
    /// housekeeping hook.  Call at safe points only (no apply recursion in
    /// flight; `&mut self` proves it) — the simulator calls it between
    /// gates.  Returns `true` if a reordering ran.
    pub fn maybe_reorder(&mut self) -> bool {
        self.maybe_grow_caches();
        if !self.auto_reorder || self.allocated_nodes() <= self.reorder_threshold {
            return false;
        }
        self.reorder();
        self.reorder_threshold = (2 * self.allocated_nodes()).max(self.reorder_threshold_floor);
        true
    }

    // ----------------------------------------------------------------- //
    // Exclusive-phase accessors for the reordering module
    // ----------------------------------------------------------------- //

    /// The total number of live unique-table entries.
    #[inline]
    pub(crate) fn live_table_len(&self) -> usize {
        self.table_len.load(Ordering::Relaxed)
    }

    pub(crate) fn table_len_add(&mut self, delta: isize) {
        let len = self.table_len.get_mut();
        *len = (*len as isize + delta) as usize;
    }

    /// Pushes a freed node id (exclusive phase: eager reclamation during
    /// level swaps), homing it under its chunk's owner variable so reuse
    /// never mixes a chunk.
    pub(crate) fn free_push(&mut self, id: u32) {
        let owner = self.arena.chunk_owner(id);
        self.free.push(owner, id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_and_literals() {
        let mgr = Manager::new(3);
        assert!(mgr.constant(true).is_true());
        assert!(mgr.constant(false).is_false());
        let x = mgr.var(1);
        assert!(mgr.eval(x, &[false, true, false]));
        assert!(!mgr.eval(x, &[true, false, true]));
        let nx = mgr.nvar(1);
        let not_x = mgr.not(x);
        assert_eq!(nx, not_x);
    }

    #[test]
    fn complement_bit_semantics() {
        assert!(NodeId::TRUE.is_terminal());
        assert!(NodeId::FALSE.is_terminal());
        assert_eq!(NodeId::TRUE.complement(), NodeId::FALSE);
        assert_eq!(NodeId::FALSE.regular(), NodeId::TRUE);
        assert_eq!(NodeId::TRUE.index(), NodeId::FALSE.index());
        assert!(NodeId::FALSE.is_complemented());
        assert!(!NodeId::TRUE.is_complemented());
        let mgr = Manager::new(2);
        let x = mgr.var(0);
        assert_eq!(x.complement().complement(), x);
        assert_eq!(x.index(), x.complement().index(), "one shared node");
    }

    #[test]
    fn not_is_o1_and_allocation_free() {
        let mgr = Manager::new(4);
        let x = mgr.var(0);
        let y = mgr.var(1);
        let f = mgr.and(x, y);
        let created_before = mgr.stats().created_nodes;
        let nf = mgr.not(f);
        let back = mgr.not(nf);
        // No nodes were created, no cache was consulted: pure bit flips.
        assert_eq!(mgr.stats().created_nodes, created_before);
        assert_eq!(back, f, "double negation is the identical edge");
        assert_ne!(nf, f);
        assert_eq!(mgr.stats().not_ops, 2);
        // The negation evaluates correctly everywhere.
        for bits in 0..4u32 {
            let a = [bits & 1 == 1, bits & 2 == 2, false, false];
            assert_eq!(mgr.eval(nf, &a), !mgr.eval(f, &a));
        }
    }

    #[test]
    fn low_edges_are_never_complemented() {
        // Build a varied population of nodes and check the canonical-form
        // invariant on every live unique-table entry.
        let mgr = Manager::new(6);
        let mut pool = Vec::new();
        for i in 0..6 {
            pool.push(mgr.var(i));
            pool.push(mgr.nvar(i));
        }
        for i in 0..pool.len() {
            for j in (i + 1)..pool.len() {
                let (f, g) = (pool[i], pool[j]);
                pool.push(mgr.and(f, g));
                pool.push(mgr.xor(f, g));
                if pool.len() > 400 {
                    break;
                }
            }
            if pool.len() > 400 {
                break;
            }
        }
        let mut live = 0usize;
        for subtable in &mgr.subtables {
            for id in subtable.ids() {
                live += 1;
                let node = mgr.node_raw(id);
                assert!(
                    !node.low.is_complemented(),
                    "canonical form violated: stored low edge is complemented"
                );
            }
        }
        assert!(live > 20, "the population must have created real nodes");
    }

    #[test]
    fn hash_consing_gives_canonical_forms() {
        let mgr = Manager::new(2);
        let x0 = mgr.var(0);
        let x1 = mgr.var(1);
        let a = mgr.and(x0, x1);
        let b = mgr.and(x1, x0);
        assert_eq!(a, b, "AND must be canonical irrespective of argument order");
        let n1 = mgr.not(a);
        let n2 = mgr.not(b);
        assert_eq!(n1, n2);
        let back = mgr.not(n1);
        assert_eq!(back, a, "double negation restores the identical edge");
    }

    #[test]
    fn de_morgan() {
        let mgr = Manager::new(4);
        let x = mgr.var(2);
        let y = mgr.var(3);
        let lhs = {
            let a = mgr.and(x, y);
            mgr.not(a)
        };
        let rhs = {
            let nx = mgr.not(x);
            let ny = mgr.not(y);
            mgr.or(nx, ny)
        };
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn or_shares_the_and_cache() {
        let mgr = Manager::new(4);
        let x = mgr.var(0);
        let y = mgr.var(1);
        let _ = mgr.or(x, y);
        let misses_after_or = mgr.stats().and_cache.misses;
        assert!(misses_after_or > 0, "or lowers to the and recursion");
        // The De Morgan image of the same call hits the identical entry.
        let nx = mgr.not(x);
        let ny = mgr.not(y);
        let _ = mgr.and(nx, ny);
        assert_eq!(mgr.stats().and_cache.misses, misses_after_or);
        assert!(mgr.stats().and_cache.hits > 0);
    }

    #[test]
    fn xor_complement_parity_folds_out() {
        let mgr = Manager::new(4);
        let x = mgr.var(0);
        let y = mgr.var(1);
        let f = mgr.xor(x, y);
        let nx = mgr.not(x);
        let g = mgr.xor(nx, y);
        assert_eq!(g, f.complement(), "¬x ⊕ y = ¬(x ⊕ y)");
        let ny = mgr.not(y);
        let h = mgr.xor(nx, ny);
        assert_eq!(h, f, "¬x ⊕ ¬y = x ⊕ y");
        // All four phases probe one cache entry: only the first call missed.
        assert_eq!(mgr.stats().xor_cache.misses, 1);
        assert_eq!(mgr.stats().xor_cache.hits, 2);
    }

    #[test]
    fn three_operand_complement_identities() {
        let mgr = Manager::new(6);
        let f = {
            let a = mgr.var(0);
            let b = mgr.var(3);
            mgr.and(a, b)
        };
        let g = {
            let a = mgr.var(1);
            let b = mgr.var(4);
            mgr.xor(a, b)
        };
        let h = {
            let a = mgr.var(2);
            let b = mgr.var(5);
            mgr.or(a, b)
        };
        let (nf, ng, nh) = (f.complement(), g.complement(), h.complement());
        let s = mgr.xor3(f, g, h);
        let s_flipped = mgr.xor3(nf, g, h);
        assert_eq!(s_flipped, s.complement(), "xor3 parity");
        let c = mgr.maj(f, g, h);
        let c_dual = mgr.maj(nf, ng, nh);
        assert_eq!(c_dual, c.complement(), "majority is self-dual");
        // maj with a complement pair reduces to the deciding vote.
        assert_eq!(mgr.maj(f, nf, h), h);
    }

    #[test]
    fn xor_and_ite_consistency() {
        let mgr = Manager::new(2);
        let x = mgr.var(0);
        let y = mgr.var(1);
        let x_xor_y = mgr.xor(x, y);
        for a in [false, true] {
            for b in [false, true] {
                assert_eq!(mgr.eval(x_xor_y, &[a, b]), a ^ b);
            }
        }
        // The XNOR shape routes through the XOR cache via the complement bit.
        let ny = mgr.not(y);
        let xnor = mgr.ite(x, y, ny);
        assert_eq!(xnor, x_xor_y.complement());
    }

    #[test]
    fn cube_and_cofactor() {
        let mgr = Manager::new(4);
        let cube = mgr.cube(&[(0, true), (2, false), (3, true)]);
        assert!(mgr.eval(cube, &[true, false, false, true]));
        assert!(mgr.eval(cube, &[true, true, false, true]));
        assert!(!mgr.eval(cube, &[true, true, true, true]));
        let co = mgr.cofactor(cube, 0, true);
        assert!(mgr.eval(co, &[false, false, false, true]));
        let co_false = mgr.cofactor(cube, 0, false);
        assert!(co_false.is_false());
        // Cofactor commutes with complement.
        let ncube = mgr.not(cube);
        let co_n = mgr.cofactor(ncube, 0, true);
        assert_eq!(co_n, co.complement());
    }

    #[test]
    fn sat_count_exact() {
        let mgr = Manager::new(10);
        let x = mgr.var(0);
        // A single positive literal over 10 variables has 2^9 models.
        assert_eq!(mgr.sat_count(x, 10), UBig::pow2(9));
        // Tautology and contradiction.
        assert_eq!(mgr.sat_count(NodeId::TRUE, 10), UBig::pow2(10));
        assert_eq!(mgr.sat_count(NodeId::FALSE, 10), UBig::zero());
        // x0 XOR x9 has exactly half the assignments.
        let y = mgr.var(9);
        let f = mgr.xor(x, y);
        assert_eq!(mgr.sat_count(f, 10), UBig::pow2(9));
        assert_eq!(mgr.sat_count_f64(f, 10), 512.0);
        // Complemented edges count by subtraction.
        let nf = mgr.not(f);
        assert_eq!(mgr.sat_count(nf, 10), UBig::pow2(9));
        let g = mgr.and(x, y);
        let ng = mgr.not(g);
        assert_eq!(mgr.sat_count(g, 10), UBig::pow2(8));
        assert_eq!(
            mgr.sat_count(ng, 10),
            UBig::pow2(10).sub(&UBig::pow2(8)),
            "|¬f| = 2^n − |f|"
        );
        assert_eq!(mgr.sat_count_f64(ng, 10), 1024.0 - 256.0);
    }

    #[test]
    fn sat_count_huge_variable_count() {
        // Exact counting far beyond what f64 can hold: a single literal over
        // 4000 variables has 2^3999 models.
        let mgr = Manager::new(4000);
        let x = mgr.var(17);
        assert_eq!(mgr.sat_count(x, 4000), UBig::pow2(3999));
        assert!(mgr.sat_count_f64(x, 4000).is_infinite());
    }

    #[test]
    fn support_and_node_count() {
        let mgr = Manager::new(5);
        let x = mgr.var(1);
        let y = mgr.var(3);
        let f = mgr.and(x, y);
        assert_eq!(mgr.support(f), vec![1, 3]);
        assert_eq!(mgr.node_count(f), 2);
        assert_eq!(mgr.node_count_many(&[f, y]), 2, "subgraphs are shared");
        assert_eq!(mgr.node_count_many(&[f, x]), 3, "x is a distinct root node");
        // f and ¬f share every node.
        let nf = mgr.not(f);
        assert_eq!(mgr.node_count_many(&[f, nf]), mgr.node_count(f));
        let (complemented, nodes) = mgr.complement_edge_count(&[f]);
        assert_eq!(nodes, mgr.node_count(f));
        assert!(complemented <= nodes, "only high edges can be complemented");
    }

    #[test]
    fn pick_one_returns_a_model() {
        let mgr = Manager::new(3);
        let x = mgr.var(0);
        let nz = mgr.nvar(2);
        let f = mgr.and(x, nz);
        let cube = mgr.pick_one(f).expect("satisfiable");
        let mut assignment = [false; 3];
        for (v, val) in cube {
            assignment[v] = val;
        }
        assert!(mgr.eval(f, &assignment));
        assert_eq!(mgr.pick_one(NodeId::FALSE), None);
        // The complement of a satisfiable-but-not-tautological function is
        // satisfiable too, through the same shared nodes.
        let nf = mgr.not(f);
        let ncube = mgr.pick_one(nf).expect("¬f satisfiable");
        let mut nassignment = [false; 3];
        for (v, val) in ncube {
            nassignment[v] = val;
        }
        assert!(!mgr.eval(f, &nassignment));
    }

    #[test]
    fn garbage_collection_keeps_roots_valid() {
        let mut mgr = Manager::new(8);
        let mut keep = Vec::new();
        for i in 0..4 {
            let x = mgr.var(i);
            let y = mgr.var(i + 4);
            keep.push(mgr.xor(x, y));
        }
        // Create plenty of garbage.
        for i in 0..8 {
            for j in 0..8 {
                let x = mgr.var(i);
                let y = mgr.var(j);
                let _ = mgr.and(x, y);
            }
        }
        let before = mgr.allocated_nodes();
        let freed = mgr.collect_garbage(&keep.clone());
        assert!(freed > 0);
        assert!(mgr.allocated_nodes() < before);
        // The kept functions still evaluate correctly after GC.
        for (i, &f) in keep.iter().enumerate() {
            let mut assignment = [false; 8];
            assignment[i] = true;
            assert!(mgr.eval(f, &assignment));
            assignment[i + 4] = true;
            assert!(!mgr.eval(f, &assignment));
        }
        // And new operations still work (caches were invalidated correctly).
        let again = mgr.xor(keep[0], keep[1]);
        assert!(!again.is_terminal());
        assert_eq!(mgr.stats().gc_runs, 1);
    }

    #[test]
    fn gc_marks_through_complemented_roots() {
        let mut mgr = Manager::new(4);
        let x = mgr.var(0);
        let y = mgr.var(1);
        let f = mgr.and(x, y);
        let nf = mgr.not(f);
        // Keep only the complemented phase: the shared node must survive.
        mgr.collect_garbage(&[nf]);
        assert!(mgr.eval(nf, &[false, false, false, false]));
        assert!(!mgr.eval(nf, &[true, true, false, false]));
        // The regular phase is the same node and still valid.
        assert!(mgr.eval(f, &[true, true, false, false]));
    }

    #[test]
    fn gc_reuses_freed_slots() {
        let mut mgr = Manager::new(4);
        let x = mgr.var(0);
        let y = mgr.var(1);
        let _garbage = mgr.and(x, y);
        let slots_before = mgr.arena.allocated_slots();
        mgr.collect_garbage(&[x, y]);
        // Recreating a node reuses a freed slot instead of growing the
        // arena (var(2) legitimately opens one fresh slot in its own
        // chunk; the and() below must reuse the freed var-0 id).
        let z = mgr.var(2);
        let _new = mgr.and(x, z);
        assert!(mgr.arena.allocated_slots() <= slots_before + 1);
    }

    #[test]
    fn add_vars_extends_the_order() {
        let mut mgr = Manager::new(2);
        let first_new = mgr.add_vars(3);
        assert_eq!(first_new, 2);
        assert_eq!(mgr.num_vars(), 5);
        let v4 = mgr.var(4);
        assert!(mgr.eval(v4, &[false, false, false, false, true]));
    }

    #[test]
    fn exists_quantification() {
        let mgr = Manager::new(2);
        let x = mgr.var(0);
        let y = mgr.var(1);
        let f = mgr.and(x, y);
        let ex = mgr.exists(f, 0);
        assert_eq!(ex, y);
        let both = mgr.exists(ex, 1);
        assert!(both.is_true());
    }

    // ------------------------------------------------------------------ //
    // Kernel specifics: lossy caches, epochs, auto-tuning, unique table
    // ------------------------------------------------------------------ //

    #[test]
    fn specialized_ops_agree_with_ite_lowering() {
        let mgr = Manager::new(6);
        let mut functions = Vec::new();
        for i in 0..6 {
            for j in 0..6 {
                let x = mgr.var(i);
                let y = mgr.var(j);
                functions.push(mgr.xor(x, y));
                functions.push(mgr.and(x, y));
            }
        }
        for &f in &functions {
            for &g in &functions {
                let and_direct = mgr.and(f, g);
                let and_ite = mgr.ite(f, g, NodeId::FALSE);
                assert_eq!(and_direct, and_ite);
                let or_direct = mgr.or(f, g);
                let or_ite = mgr.ite(f, NodeId::TRUE, g);
                assert_eq!(or_direct, or_ite);
                let xor_direct = mgr.xor(f, g);
                let ng = mgr.not(g);
                let xor_ite = mgr.ite(f, ng, g);
                assert_eq!(xor_direct, xor_ite);
            }
        }
    }

    #[test]
    fn cache_stats_count_hits_and_misses() {
        let mgr = Manager::new(8);
        let x = mgr.var(0);
        let y = mgr.var(1);
        let first = mgr.and(x, y);
        assert_eq!(mgr.stats().and_cache.misses, 1);
        assert_eq!(mgr.stats().and_cache.hits, 0);
        // Identical and argument-swapped calls hit the normalised cache key.
        let second = mgr.and(x, y);
        let third = mgr.and(y, x);
        assert_eq!(first, second);
        assert_eq!(first, third);
        assert_eq!(mgr.stats().and_cache.hits, 2);
        assert_eq!(mgr.stats().and_cache.misses, 1);
        assert!(mgr.stats().cache_hit_rate() > 0.0);
    }

    #[test]
    fn gc_invalidates_caches_via_epoch() {
        let mut mgr = Manager::new(4);
        let x = mgr.var(0);
        let y = mgr.var(1);
        let f = mgr.xor(x, y);
        let hits_before = mgr.stats().xor_cache.hits;
        mgr.collect_garbage(&[f]);
        // Same lookup after GC must MISS (epoch moved on), not alias a stale
        // entry, and must still produce the identical canonical node.
        let again = mgr.xor(x, y);
        assert_eq!(again, f);
        assert_eq!(mgr.stats().xor_cache.hits, hits_before);
        assert!(mgr.stats().xor_cache.misses >= 2);
    }

    #[test]
    fn cache_cap_auto_tunes_on_sustained_evictions() {
        let mut mgr = Manager::new(2);
        assert_eq!(mgr.stats().cache_cap_log2, CACHE_DEFAULT_MAX_LOG2);
        // One noisy interval (too few stores) does nothing.
        mgr.tune_cache_cap(100, 90);
        assert_eq!(mgr.stats().cache_cap_log2, CACHE_DEFAULT_MAX_LOG2);
        // One high-eviction interval arms the streak, the second raises the
        // cap by one power of two.
        mgr.tune_cache_cap(10_000, 4_000);
        assert_eq!(mgr.stats().cache_cap_log2, CACHE_DEFAULT_MAX_LOG2);
        mgr.tune_cache_cap(10_000, 4_000);
        assert_eq!(mgr.stats().cache_cap_log2, CACHE_DEFAULT_MAX_LOG2 + 1);
        assert_eq!(mgr.stats().cache_cap_raises, 1);
        assert_eq!(mgr.caches[AND].max_log2, CACHE_DEFAULT_MAX_LOG2 + 1);
        // A quiet interval resets the streak.
        mgr.tune_cache_cap(10_000, 4_000);
        mgr.tune_cache_cap(10_000, 10);
        mgr.tune_cache_cap(10_000, 4_000);
        assert_eq!(mgr.stats().cache_cap_raises, 1);
        // The cap never exceeds the hard maximum.
        for _ in 0..64 {
            mgr.tune_cache_cap(10_000, 9_999);
        }
        assert_eq!(mgr.stats().cache_cap_log2, CACHE_HARD_MAX_LOG2);
    }

    #[test]
    fn unique_table_grows_and_stays_consistent() {
        const NV: usize = 12;
        let mgr = Manager::new(NV);
        // Thousands of distinct minterm chains force several table doublings.
        let minterm_bits =
            |i: usize| -> Vec<(usize, bool)> { (0..NV).map(|v| (v, i >> v & 1 == 1)).collect() };
        let cubes: Vec<NodeId> = (0..3000).map(|i| mgr.cube(&minterm_bits(i))).collect();
        assert!(
            mgr.stats().unique_resizes > 0,
            "3000 minterms over {NV} vars must outgrow the initial table"
        );
        // Hash consing stays canonical across resizes: rebuilding any cube
        // yields the identical node, and each evaluates to 1 exactly on its
        // own minterm.
        for (i, &cube) in cubes.iter().enumerate().step_by(127) {
            assert_eq!(mgr.cube(&minterm_bits(i)), cube);
            let assignment: Vec<bool> = (0..NV).map(|v| i >> v & 1 == 1).collect();
            assert!(mgr.eval(cube, &assignment));
            let mut flipped = assignment.clone();
            flipped[3] = !flipped[3];
            assert!(!mgr.eval(cube, &flipped));
        }
    }

    #[test]
    fn lossy_cache_overwrites_are_counted_not_fatal() {
        // Hammer the caches with many distinct node pairs; evictions may
        // occur and every result must stay correct (negation itself is a
        // bit flip and can no longer evict anything).
        let mgr = Manager::new(16);
        let mut nodes = Vec::new();
        for i in 0..16 {
            for j in 0..16 {
                if i == j {
                    continue;
                }
                let x = mgr.var(i);
                let y = mgr.var(j);
                let f = mgr.and(x, y);
                nodes.push((f, i, j));
            }
        }
        for &(f, i, j) in &nodes {
            let nf = mgr.not(f);
            let mut assignment = [false; 16];
            assert!(mgr.eval(nf, &assignment), "¬(xi∧xj) true on all-false");
            assignment[i] = true;
            assignment[j] = true;
            assert!(!mgr.eval(nf, &assignment));
        }
        let stats = mgr.stats();
        let total = stats.total_cache();
        assert!(total.hits + total.misses > 0);
    }

    #[test]
    fn shared_apply_from_scoped_threads_is_canonical() {
        // The concurrency smoke test at unit scale: several threads build
        // overlapping formula populations through one shared `&Manager`;
        // afterwards every function must be canonical (rebuilding it
        // serially finds the identical edge without allocating) and the
        // structure must pass the exhaustive integrity check.
        let mgr = Manager::new(10);
        let results: Vec<Vec<NodeId>> = std::thread::scope(|scope| {
            let mgr = &mgr;
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        for i in 0..10 {
                            for j in 0..10 {
                                let x = mgr.var(i);
                                let y = mgr.var((j + t) % 10);
                                let a = mgr.and(x, y);
                                let b = mgr.xor(a, x);
                                out.push(mgr.or(b, y));
                            }
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        mgr.check_integrity()
            .expect("integrity after parallel build");
        let created = mgr.stats().created_nodes;
        for (t, formulas) in results.iter().enumerate() {
            for (k, &f) in formulas.iter().enumerate() {
                let (i, j) = (k / 10, (k % 10 + t) % 10);
                let x = mgr.var(i);
                let y = mgr.var(j);
                let a = mgr.and(x, y);
                let b = mgr.xor(a, x);
                assert_eq!(mgr.or(b, y), f, "thread {t} formula {k} is canonical");
            }
        }
        assert_eq!(
            mgr.stats().created_nodes,
            created,
            "serial rebuild allocates nothing new"
        );
    }
}
