//! The BDD manager: node storage, unique table, memoised operations and
//! garbage collection.
//!
//! The design mirrors what the paper needs from CUDD and nothing more:
//! *reduced ordered* BDDs with a hash-consing unique table, an ITE-based
//! operation cache, cofactor computation, SAT counting and mark-and-sweep
//! garbage collection driven by the caller (who knows the root set).

use crate::hash::FxHashMap;
use sliq_bignum::UBig;

/// Handle to a BDD node owned by a [`Manager`].
///
/// `NodeId`s stay valid across garbage collections as long as the node is
/// reachable from one of the roots passed to [`Manager::collect_garbage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// The constant-false terminal.
    pub const FALSE: NodeId = NodeId(0);
    /// The constant-true terminal.
    pub const TRUE: NodeId = NodeId(1);

    /// Returns `true` if this is one of the two terminal nodes.
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }

    /// Returns `true` if this is the constant-false terminal.
    pub fn is_false(self) -> bool {
        self == Self::FALSE
    }

    /// Returns `true` if this is the constant-true terminal.
    pub fn is_true(self) -> bool {
        self == Self::TRUE
    }

    /// The raw index (useful for external memo tables).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Level used for terminal nodes: below every real variable.
const TERMINAL_LEVEL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    level: u32,
    low: NodeId,
    high: NodeId,
}

/// Counters describing the work a [`Manager`] has performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Number of garbage collections run so far.
    pub gc_runs: usize,
    /// Peak number of live (allocated, non-freed) nodes observed.
    pub peak_nodes: usize,
    /// Total nodes ever created (including ones later collected).
    pub created_nodes: usize,
}

/// A reduced ordered BDD manager.
///
/// Variables are identified by their index `0..num_vars()`, which is also the
/// variable order (index 0 is the topmost level).  The simulator places qubit
/// variables first and measurement-encoding variables after them, matching
/// the ordering requirement of the paper's measurement procedure (§III-E).
///
/// ```
/// use sliq_bdd::{Manager, NodeId};
/// let mut mgr = Manager::new(2);
/// let x0 = mgr.var(0);
/// let x1 = mgr.var(1);
/// let f = mgr.and(x0, x1);
/// assert!(mgr.eval(f, &[true, true]));
/// assert!(!mgr.eval(f, &[true, false]));
/// assert_eq!(mgr.sat_count(f, 2), sliq_bignum::UBig::from(1u64));
/// assert_ne!(f, NodeId::FALSE);
/// ```
#[derive(Debug, Clone)]
pub struct Manager {
    nodes: Vec<Node>,
    free: Vec<u32>,
    unique: FxHashMap<(u32, NodeId, NodeId), NodeId>,
    ite_cache: FxHashMap<(NodeId, NodeId, NodeId), NodeId>,
    cofactor_cache: FxHashMap<(NodeId, u32, bool), NodeId>,
    num_vars: u32,
    gc_threshold: usize,
    stats: ManagerStats,
}

impl Manager {
    /// Creates a manager with `num_vars` Boolean variables.
    pub fn new(num_vars: usize) -> Self {
        let terminal = |_: u32| Node {
            level: TERMINAL_LEVEL,
            low: NodeId::FALSE,
            high: NodeId::FALSE,
        };
        Self {
            nodes: vec![terminal(0), terminal(1)],
            free: Vec::new(),
            unique: FxHashMap::default(),
            ite_cache: FxHashMap::default(),
            cofactor_cache: FxHashMap::default(),
            num_vars: num_vars as u32,
            gc_threshold: 1 << 16,
            stats: ManagerStats::default(),
        }
    }

    /// The number of declared variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars as usize
    }

    /// Declares `extra` additional variables (appended below the existing
    /// ones in the order) and returns the index of the first new variable.
    pub fn add_vars(&mut self, extra: usize) -> usize {
        let first = self.num_vars as usize;
        self.num_vars += extra as u32;
        first
    }

    /// Operational statistics.
    pub fn stats(&self) -> ManagerStats {
        self.stats
    }

    /// The number of currently allocated (live or garbage, not yet freed)
    /// nodes, excluding the two terminals.
    pub fn allocated_nodes(&self) -> usize {
        self.nodes.len() - 2 - self.free.len()
    }

    // ----------------------------------------------------------------- //
    // Construction primitives
    // ----------------------------------------------------------------- //

    /// The constant function for `value`.
    pub fn constant(&self, value: bool) -> NodeId {
        if value {
            NodeId::TRUE
        } else {
            NodeId::FALSE
        }
    }

    /// The positive literal of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn var(&mut self, var: usize) -> NodeId {
        assert!(var < self.num_vars as usize, "variable {var} out of range");
        self.mk(var as u32, NodeId::FALSE, NodeId::TRUE)
    }

    /// The negative literal of variable `var`.
    pub fn nvar(&mut self, var: usize) -> NodeId {
        assert!(var < self.num_vars as usize, "variable {var} out of range");
        self.mk(var as u32, NodeId::TRUE, NodeId::FALSE)
    }

    fn level(&self, f: NodeId) -> u32 {
        self.nodes[f.index()].level
    }

    fn low(&self, f: NodeId) -> NodeId {
        self.nodes[f.index()].low
    }

    fn high(&self, f: NodeId) -> NodeId {
        self.nodes[f.index()].high
    }

    /// Returns `(level, low, high)` of a non-terminal node.
    pub fn node(&self, f: NodeId) -> Option<(usize, NodeId, NodeId)> {
        if f.is_terminal() {
            None
        } else {
            let n = &self.nodes[f.index()];
            Some((n.level as usize, n.low, n.high))
        }
    }

    /// Hash-consing node constructor (the `MK` operation).
    fn mk(&mut self, level: u32, low: NodeId, high: NodeId) -> NodeId {
        if low == high {
            return low;
        }
        if let Some(&id) = self.unique.get(&(level, low, high)) {
            return id;
        }
        let node = Node { level, low, high };
        let id = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot as usize] = node;
                NodeId(slot)
            }
            None => {
                self.nodes.push(node);
                NodeId((self.nodes.len() - 1) as u32)
            }
        };
        self.stats.created_nodes += 1;
        self.stats.peak_nodes = self.stats.peak_nodes.max(self.allocated_nodes());
        self.unique.insert((level, low, high), id);
        id
    }

    // ----------------------------------------------------------------- //
    // Boolean operations
    // ----------------------------------------------------------------- //

    /// If-then-else: `ite(f, g, h) = (f ∧ g) ∨ (¬f ∧ h)`.
    pub fn ite(&mut self, f: NodeId, g: NodeId, h: NodeId) -> NodeId {
        // Terminal cases.
        if f.is_true() {
            return g;
        }
        if f.is_false() {
            return h;
        }
        if g == h {
            return g;
        }
        if g.is_true() && h.is_false() {
            return f;
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return r;
        }
        let top = self.level(f).min(self.level(g)).min(self.level(h));
        let (f0, f1) = self.split(f, top);
        let (g0, g1) = self.split(g, top);
        let (h0, h1) = self.split(h, top);
        let low = self.ite(f0, g0, h0);
        let high = self.ite(f1, g1, h1);
        let r = self.mk(top, low, high);
        self.ite_cache.insert((f, g, h), r);
        r
    }

    #[inline]
    fn split(&self, f: NodeId, level: u32) -> (NodeId, NodeId) {
        if self.level(f) == level {
            (self.low(f), self.high(f))
        } else {
            (f, f)
        }
    }

    /// Logical negation.
    pub fn not(&mut self, f: NodeId) -> NodeId {
        self.ite(f, NodeId::FALSE, NodeId::TRUE)
    }

    /// Logical conjunction.
    pub fn and(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.ite(f, g, NodeId::FALSE)
    }

    /// Logical disjunction.
    pub fn or(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.ite(f, NodeId::TRUE, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: NodeId, g: NodeId) -> NodeId {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Conjunction of many functions.
    pub fn and_many(&mut self, fs: &[NodeId]) -> NodeId {
        let mut acc = NodeId::TRUE;
        for &f in fs {
            acc = self.and(acc, f);
            if acc.is_false() {
                break;
            }
        }
        acc
    }

    /// Disjunction of many functions.
    pub fn or_many(&mut self, fs: &[NodeId]) -> NodeId {
        let mut acc = NodeId::FALSE;
        for &f in fs {
            acc = self.or(acc, f);
            if acc.is_true() {
                break;
            }
        }
        acc
    }

    /// The cube (conjunction of literals) described by `(variable, phase)`
    /// pairs; `phase == true` means the positive literal.
    pub fn cube(&mut self, literals: &[(usize, bool)]) -> NodeId {
        let mut sorted: Vec<_> = literals.to_vec();
        sorted.sort_by_key(|&(v, _)| std::cmp::Reverse(v));
        let mut acc = NodeId::TRUE;
        for (v, phase) in sorted {
            acc = if phase {
                self.mk(v as u32, NodeId::FALSE, acc)
            } else {
                self.mk(v as u32, acc, NodeId::FALSE)
            };
        }
        acc
    }

    /// The cofactor `f|_{var=value}`.
    pub fn cofactor(&mut self, f: NodeId, var: usize, value: bool) -> NodeId {
        let var = var as u32;
        if f.is_terminal() || self.level(f) > var {
            return f;
        }
        if self.level(f) == var {
            return if value { self.high(f) } else { self.low(f) };
        }
        if let Some(&r) = self.cofactor_cache.get(&(f, var, value)) {
            return r;
        }
        let level = self.level(f);
        let low = self.cofactor(self.low(f), var as usize, value);
        let high = self.cofactor(self.high(f), var as usize, value);
        let r = self.mk(level, low, high);
        self.cofactor_cache.insert((f, var, value), r);
        r
    }

    /// Cofactor with respect to a cube given as `(variable, phase)` pairs.
    pub fn cofactor_cube(&mut self, f: NodeId, literals: &[(usize, bool)]) -> NodeId {
        let mut acc = f;
        for &(v, phase) in literals {
            acc = self.cofactor(acc, v, phase);
        }
        acc
    }

    /// Existential quantification of a single variable.
    pub fn exists(&mut self, f: NodeId, var: usize) -> NodeId {
        let f0 = self.cofactor(f, var, false);
        let f1 = self.cofactor(f, var, true);
        self.or(f0, f1)
    }

    // ----------------------------------------------------------------- //
    // Queries
    // ----------------------------------------------------------------- //

    /// Evaluates `f` under a complete assignment (index = variable).
    pub fn eval(&self, f: NodeId, assignment: &[bool]) -> bool {
        let mut cur = f;
        while !cur.is_terminal() {
            let level = self.level(cur) as usize;
            cur = if assignment[level] {
                self.high(cur)
            } else {
                self.low(cur)
            };
        }
        cur.is_true()
    }

    /// Number of satisfying assignments of `f` over the first `nvars`
    /// variables.  `f` must not depend on variables `≥ nvars`.
    pub fn sat_count(&self, f: NodeId, nvars: usize) -> UBig {
        let mut memo: FxHashMap<NodeId, UBig> = FxHashMap::default();
        let count = self.sat_count_rec(f, nvars as u32, &mut memo);
        count.shl(self.level_or(f, nvars as u32) as usize)
    }

    fn level_or(&self, f: NodeId, max: u32) -> u32 {
        self.level(f).min(max)
    }

    fn sat_count_rec(&self, f: NodeId, nvars: u32, memo: &mut FxHashMap<NodeId, UBig>) -> UBig {
        if f.is_false() {
            return UBig::zero();
        }
        if f.is_true() {
            return UBig::one();
        }
        if let Some(c) = memo.get(&f) {
            return c.clone();
        }
        let level = self.level(f);
        debug_assert!(level < nvars, "function depends on variables beyond nvars");
        let low = self.low(f);
        let high = self.high(f);
        let skip = |child: NodeId, this: &Self| this.level_or(child, nvars) - level - 1;
        let cl = self
            .sat_count_rec(low, nvars, memo)
            .shl(skip(low, self) as usize);
        let ch = self
            .sat_count_rec(high, nvars, memo)
            .shl(skip(high, self) as usize);
        let total = UBig::add(&cl, &ch);
        memo.insert(f, total.clone());
        total
    }

    /// Like [`Manager::sat_count`] but in floating point (may overflow to
    /// infinity around 2¹⁰²⁴ assignments).
    pub fn sat_count_f64(&self, f: NodeId, nvars: usize) -> f64 {
        let mut memo: FxHashMap<NodeId, f64> = FxHashMap::default();
        fn rec(
            mgr: &Manager,
            f: NodeId,
            nvars: u32,
            memo: &mut FxHashMap<NodeId, f64>,
        ) -> f64 {
            if f.is_false() {
                return 0.0;
            }
            if f.is_true() {
                return 1.0;
            }
            if let Some(&c) = memo.get(&f) {
                return c;
            }
            let level = mgr.level(f);
            let low = mgr.low(f);
            let high = mgr.high(f);
            // Guard against `0 × ∞ = NaN` when a child count is zero but the
            // level gap is enormous.
            let weighted = |count: f64, child: NodeId, mgr: &Manager| {
                if count == 0.0 {
                    0.0
                } else {
                    count * 2f64.powi((mgr.level_or(child, nvars) - level - 1) as i32)
                }
            };
            let cl_raw = rec(mgr, low, nvars, memo);
            let ch_raw = rec(mgr, high, nvars, memo);
            let total = weighted(cl_raw, low, mgr) + weighted(ch_raw, high, mgr);
            memo.insert(f, total);
            total
        }
        let c = rec(self, f, nvars as u32, &mut memo);
        if c == 0.0 {
            0.0
        } else {
            c * 2f64.powi(self.level_or(f, nvars as u32) as i32)
        }
    }

    /// The number of BDD nodes reachable from `f` (terminals excluded).
    pub fn node_count(&self, f: NodeId) -> usize {
        self.node_count_many(std::slice::from_ref(&f))
    }

    /// The number of distinct BDD nodes reachable from any of the `roots`
    /// (terminals excluded); shared nodes are counted once.
    pub fn node_count_many(&self, roots: &[NodeId]) -> usize {
        let mut seen: std::collections::HashSet<NodeId, crate::hash::FxBuildHasher> =
            Default::default();
        let mut stack: Vec<NodeId> = roots.iter().copied().filter(|f| !f.is_terminal()).collect();
        while let Some(f) = stack.pop() {
            if f.is_terminal() || !seen.insert(f) {
                continue;
            }
            stack.push(self.low(f));
            stack.push(self.high(f));
        }
        seen.len()
    }

    /// The set of variables `f` depends on, in increasing order.
    pub fn support(&self, f: NodeId) -> Vec<usize> {
        let mut seen: std::collections::HashSet<NodeId, crate::hash::FxBuildHasher> =
            Default::default();
        let mut vars: std::collections::BTreeSet<usize> = Default::default();
        let mut stack = vec![f];
        while let Some(g) = stack.pop() {
            if g.is_terminal() || !seen.insert(g) {
                continue;
            }
            vars.insert(self.level(g) as usize);
            stack.push(self.low(g));
            stack.push(self.high(g));
        }
        vars.into_iter().collect()
    }

    /// Returns one satisfying assignment (as `(variable, value)` pairs over
    /// the support of `f`), or `None` if `f` is unsatisfiable.
    pub fn pick_one(&self, f: NodeId) -> Option<Vec<(usize, bool)>> {
        if f.is_false() {
            return None;
        }
        let mut cube = Vec::new();
        let mut cur = f;
        while !cur.is_terminal() {
            let v = self.level(cur) as usize;
            if self.low(cur).is_false() {
                cube.push((v, true));
                cur = self.high(cur);
            } else {
                cube.push((v, false));
                cur = self.low(cur);
            }
        }
        Some(cube)
    }

    // ----------------------------------------------------------------- //
    // Garbage collection
    // ----------------------------------------------------------------- //

    /// Returns `true` when enough garbage may have accumulated that calling
    /// [`Manager::collect_garbage`] is worthwhile.
    pub fn should_collect(&self) -> bool {
        self.allocated_nodes() > self.gc_threshold
    }

    /// Overrides the automatic GC threshold (number of allocated nodes).
    pub fn set_gc_threshold(&mut self, threshold: usize) {
        self.gc_threshold = threshold;
    }

    /// Mark-and-sweep garbage collection.  Every node reachable from `roots`
    /// survives with its `NodeId` unchanged; all other nodes are freed and the
    /// operation caches are cleared.  Returns the number of freed nodes.
    pub fn collect_garbage(&mut self, roots: &[NodeId]) -> usize {
        let mut marked = vec![false; self.nodes.len()];
        marked[0] = true;
        marked[1] = true;
        let mut stack: Vec<NodeId> = roots.to_vec();
        while let Some(f) = stack.pop() {
            if marked[f.index()] {
                continue;
            }
            marked[f.index()] = true;
            stack.push(self.low(f));
            stack.push(self.high(f));
        }
        let already_free: std::collections::HashSet<u32> = self.free.iter().copied().collect();
        let mut freed = 0;
        for idx in 2..self.nodes.len() {
            if !marked[idx] && !already_free.contains(&(idx as u32)) {
                self.free.push(idx as u32);
                freed += 1;
            }
        }
        self.unique.retain(|_, id| marked[id.index()]);
        self.ite_cache.clear();
        self.cofactor_cache.clear();
        self.stats.gc_runs += 1;
        // Grow the threshold if little garbage was reclaimed, so we do not
        // thrash on workloads whose live set keeps growing.
        if freed * 4 < self.allocated_nodes() {
            self.gc_threshold = (self.allocated_nodes() * 2).max(self.gc_threshold);
        }
        freed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_and_literals() {
        let mut mgr = Manager::new(3);
        assert!(mgr.constant(true).is_true());
        assert!(mgr.constant(false).is_false());
        let x = mgr.var(1);
        assert!(mgr.eval(x, &[false, true, false]));
        assert!(!mgr.eval(x, &[true, false, true]));
        let nx = mgr.nvar(1);
        let not_x = mgr.not(x);
        assert_eq!(nx, not_x);
    }

    #[test]
    fn hash_consing_gives_canonical_forms() {
        let mut mgr = Manager::new(2);
        let x0 = mgr.var(0);
        let x1 = mgr.var(1);
        let a = mgr.and(x0, x1);
        let b = mgr.and(x1, x0);
        assert_eq!(a, b, "AND must be canonical irrespective of argument order");
        let n1 = mgr.not(a);
        let n2 = mgr.not(b);
        assert_eq!(n1, n2);
        let back = mgr.not(n1);
        assert_eq!(back, a, "double negation restores the identical node");
    }

    #[test]
    fn de_morgan() {
        let mut mgr = Manager::new(4);
        let x = mgr.var(2);
        let y = mgr.var(3);
        let lhs = {
            let a = mgr.and(x, y);
            mgr.not(a)
        };
        let rhs = {
            let nx = mgr.not(x);
            let ny = mgr.not(y);
            mgr.or(nx, ny)
        };
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn xor_and_ite_consistency() {
        let mut mgr = Manager::new(2);
        let x = mgr.var(0);
        let y = mgr.var(1);
        let x_xor_y = mgr.xor(x, y);
        for a in [false, true] {
            for b in [false, true] {
                assert_eq!(mgr.eval(x_xor_y, &[a, b]), a ^ b);
            }
        }
    }

    #[test]
    fn cube_and_cofactor() {
        let mut mgr = Manager::new(4);
        let cube = mgr.cube(&[(0, true), (2, false), (3, true)]);
        assert!(mgr.eval(cube, &[true, false, false, true]));
        assert!(mgr.eval(cube, &[true, true, false, true]));
        assert!(!mgr.eval(cube, &[true, true, true, true]));
        let co = mgr.cofactor(cube, 0, true);
        assert!(mgr.eval(co, &[false, false, false, true]));
        let co_false = mgr.cofactor(cube, 0, false);
        assert!(co_false.is_false());
    }

    #[test]
    fn sat_count_exact() {
        let mut mgr = Manager::new(10);
        let x = mgr.var(0);
        // A single positive literal over 10 variables has 2^9 models.
        assert_eq!(mgr.sat_count(x, 10), UBig::pow2(9));
        // Tautology and contradiction.
        assert_eq!(mgr.sat_count(NodeId::TRUE, 10), UBig::pow2(10));
        assert_eq!(mgr.sat_count(NodeId::FALSE, 10), UBig::zero());
        // x0 XOR x9 has exactly half the assignments.
        let y = mgr.var(9);
        let f = mgr.xor(x, y);
        assert_eq!(mgr.sat_count(f, 10), UBig::pow2(9));
        assert_eq!(mgr.sat_count_f64(f, 10), 512.0);
    }

    #[test]
    fn sat_count_huge_variable_count() {
        // Exact counting far beyond what f64 can hold: a single literal over
        // 4000 variables has 2^3999 models.
        let mut mgr = Manager::new(4000);
        let x = mgr.var(17);
        assert_eq!(mgr.sat_count(x, 4000), UBig::pow2(3999));
        assert!(mgr.sat_count_f64(x, 4000).is_infinite());
    }

    #[test]
    fn support_and_node_count() {
        let mut mgr = Manager::new(5);
        let x = mgr.var(1);
        let y = mgr.var(3);
        let f = mgr.and(x, y);
        assert_eq!(mgr.support(f), vec![1, 3]);
        assert_eq!(mgr.node_count(f), 2);
        assert_eq!(mgr.node_count_many(&[f, y]), 2, "subgraphs are shared");
        assert_eq!(mgr.node_count_many(&[f, x]), 3, "x is a distinct root node");
    }

    #[test]
    fn pick_one_returns_a_model() {
        let mut mgr = Manager::new(3);
        let x = mgr.var(0);
        let nz = mgr.nvar(2);
        let f = mgr.and(x, nz);
        let cube = mgr.pick_one(f).expect("satisfiable");
        let mut assignment = [false; 3];
        for (v, val) in cube {
            assignment[v] = val;
        }
        assert!(mgr.eval(f, &assignment));
        assert_eq!(mgr.pick_one(NodeId::FALSE), None);
    }

    #[test]
    fn garbage_collection_keeps_roots_valid() {
        let mut mgr = Manager::new(8);
        let mut keep = Vec::new();
        for i in 0..4 {
            let x = mgr.var(i);
            let y = mgr.var(i + 4);
            keep.push(mgr.xor(x, y));
        }
        // Create plenty of garbage.
        for i in 0..8 {
            for j in 0..8 {
                let x = mgr.var(i);
                let y = mgr.var(j);
                let _ = mgr.and(x, y);
            }
        }
        let before = mgr.allocated_nodes();
        let freed = mgr.collect_garbage(&keep.clone());
        assert!(freed > 0);
        assert!(mgr.allocated_nodes() < before);
        // The kept functions still evaluate correctly after GC.
        for (i, &f) in keep.iter().enumerate() {
            let mut assignment = [false; 8];
            assignment[i] = true;
            assert!(mgr.eval(f, &assignment));
            assignment[i + 4] = true;
            assert!(!mgr.eval(f, &assignment));
        }
        // And new operations still work (caches were cleared correctly).
        let again = mgr.xor(keep[0], keep[1]);
        assert!(!again.is_terminal());
        assert_eq!(mgr.stats().gc_runs, 1);
    }

    #[test]
    fn gc_reuses_freed_slots() {
        let mut mgr = Manager::new(4);
        let x = mgr.var(0);
        let y = mgr.var(1);
        let _garbage = mgr.and(x, y);
        let allocated_before = mgr.nodes.len();
        mgr.collect_garbage(&[x, y]);
        // Recreating a node reuses a freed slot instead of growing the arena.
        let z = mgr.var(2);
        let _new = mgr.and(x, z);
        assert!(mgr.nodes.len() <= allocated_before + 1);
    }

    #[test]
    fn add_vars_extends_the_order() {
        let mut mgr = Manager::new(2);
        let first_new = mgr.add_vars(3);
        assert_eq!(first_new, 2);
        assert_eq!(mgr.num_vars(), 5);
        let v4 = mgr.var(4);
        assert!(mgr.eval(v4, &[false, false, false, false, true]));
    }

    #[test]
    fn exists_quantification() {
        let mut mgr = Manager::new(2);
        let x = mgr.var(0);
        let y = mgr.var(1);
        let f = mgr.and(x, y);
        let ex = mgr.exists(f, 0);
        assert_eq!(ex, y);
        let both = mgr.exists(ex, 1);
        assert!(both.is_true());
    }
}
