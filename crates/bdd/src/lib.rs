//! # sliq-bdd
//!
//! A self-contained reduced ordered binary decision diagram (ROBDD) package,
//! standing in for CUDD in the paper's tool stack.
//!
//! The bit-sliced simulator only needs *standard* BDD functionality — that is
//! the point the paper makes about being able to use an off-the-shelf BDD
//! package — so this crate provides exactly that:
//!
//! * **complement edges** (CUDD-style): every [`NodeId`] carries a
//!   complement bit, negation is an O(1) bit flip, a function and its
//!   negation share one subgraph, and `mk` keeps the representation
//!   canonical by never storing a complemented low edge,
//! * **a sharded, concurrency-safe kernel**: apply operations take
//!   `&Manager` and may run from many threads at once — hash consing
//!   publishes nodes into per-variable subtable shards with a lock-free
//!   CAS, the operation caches are per-entry seqlocks, and statistics are
//!   thread-sharded; GC/reordering take `&mut Manager`, so the borrow
//!   checker enforces their stop-the-world phases (see the `shard` module
//!   docs for the full argument),
//! * **dynamic variable reordering**: an in-place adjacent-level swap and
//!   Rudell-style sifting (with a converging option and an automatic
//!   trigger), plus a root registry so external [`NodeId`] handles survive
//!   reordering — see the [`Manager::reorder`] /
//!   [`Manager::swap_adjacent_levels`] / [`Manager::register_root`] family
//!   and the `reorder` module docs,
//! * dedicated memoised apply recursions (`AND`/`XOR` — with `OR` and `NOT`
//!   folded onto them through the complement bit — the full-adder
//!   `XOR3`/`MAJ`, the literal multiplexer `MUX` and the cofactor swap
//!   `FLIP`) plus generic `ITE`, all backed by lossy direct-mapped
//!   operation caches whose growth cap auto-tunes from GC-time eviction
//!   rates,
//! * cofactors, cubes, existential quantification,
//! * exact SAT counting with arbitrary-precision results,
//! * mark-and-sweep garbage collection with caller-provided roots and O(1)
//!   epoch-based cache invalidation,
//! * node counting / support / model extraction utilities,
//! * per-cache hit/miss/eviction and contention statistics
//!   ([`ManagerStats`]),
//! * a small persistent [`pool::WorkerPool`] (atomic work claiming, parked
//!   workers) that the simulator uses to fan the per-gate slice updates
//!   out over the concurrent kernel.
//!
//! ```
//! use sliq_bdd::Manager;
//! let mut mgr = Manager::new(3);
//! let (a, b, c) = (mgr.var(0), mgr.var(1), mgr.var(2));
//! let ab = mgr.and(a, b);
//! let f = mgr.or(ab, c);                  // (a ∧ b) ∨ c
//! assert_eq!(mgr.sat_count(f, 3), sliq_bignum::UBig::from(5u64));
//! ```

// The only unsafe in the crate is the worker pool's type-erased borrowed
// job pointer (see `pool.rs` for the containment argument).
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod hash;
mod manager;
pub mod pool;
mod reorder;
mod shard;

pub use hash::{FxBuildHasher, FxHashMap};
pub use manager::{CacheStats, KernelMode, Manager, ManagerStats, NodeId, RootSlot};
pub use pool::{default_threads, WorkerPool};
pub use reorder::ReorderStats;
