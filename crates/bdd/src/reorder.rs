//! Dynamic variable reordering: in-place adjacent-level swap and
//! Rudell-style sifting over the per-variable unique subtables.
//!
//! # The swap primitive
//!
//! [`Manager::swap_adjacent_levels`]`(l)` exchanges the variables at levels
//! `l` and `l+1` (call them `x` above `y`).  Because nodes store their
//! *variable* and the order lives in the manager's permutation arrays, only
//! the `x`-nodes that actually depend on `y` need touching:
//!
//! * an `x`-node with no `y`-child keeps its label and children; it simply
//!   finds itself one level lower when the permutation arrays are swapped,
//! * an interacting `x`-node `f = x ? (y ? f11 : f10) : (y ? f01 : f00)` is
//!   rewritten **in place** to `y ? (x ? f11 : f01) : (x ? f10 : f00)`: the
//!   two inner `x`-nodes are hash-consed at the new (lower) `x` position and
//!   the original node is relabelled to `y` with the new children — same id,
//!   same function — so every edge pointing at it from above (or from an
//!   external handle) stays valid without rewriting any parent,
//! * `y`-nodes never move; those that lose their last reference in the
//!   rewrite are freed immediately, which keeps the per-level sizes exact.
//!
//! ## Correctness with complement edges
//!
//! The canonical form (stored low edges regular, PR 2) survives the swap
//! without any explicit re-normalisation:
//!
//! * `f00`/`f01` come from the *low* child `L` of the `x`-node.  `L` is
//!   stored regular, and if `L` is a `y`-node its own stored low `f00` is
//!   regular too — so the new low grandchild `mk(x, f00, f10)` always
//!   receives a regular low edge and returns a regular edge, which becomes
//!   the relabelled node's low child.  The stored-low-regular invariant is
//!   therefore preserved structurally, not by case analysis.
//! * `f10`/`f11` come from the high child, whose complement bit is pushed
//!   into them first (`cofactors_of`), exactly as the apply recursions do;
//!   `mk`'s usual canonical flip handles a complemented `f01`/`f11`.
//! * A relabelled node can never collide with an existing `y`-node: before
//!   the swap no `y`-node can have an `x`-child (x was above y), and at
//!   least one of the two new children is an `x`-labelled node (if both
//!   reduced away, `L` and `H` would denote the same function, contradicting
//!   canonicity of the *pre*-swap diagram).
//!
//! Reference counts are not maintained by the kernel (garbage collection is
//! mark-and-sweep), so a reordering operation first derives them in one
//! O(allocated) pass: one count per stored parent edge plus one per
//! registered root (the root registry is what makes external handles
//! first-class here).  The counts are then maintained incrementally across
//! every swap of the run, so node death is detected exactly.
//!
//! # Sifting
//!
//! [`Manager::reorder`] implements Rudell's sifting: variables are visited
//! in decreasing subtable-size order; each is moved to every level of the
//! window by adjacent swaps (closer end first), the best total size seen is
//! remembered, and the variable is parked there.  A move aborts early when
//! the size grows past `max(size·6/5, size+20)` — the classic 1.2× growth
//! limit.  With the converging option the whole pass repeats until a pass
//! improves the total size by less than 1%.
//!
//! ## Cost model
//!
//! One swap costs O(interacting nodes at the upper level) hash-cons
//! operations — no traversal of the rest of the diagram, no parent
//! rewriting.  The interaction count is **complement-aware**: the
//! predicate resolves the high edge through [`crate::NodeId::regular`]
//! before reading the child's variable, so a complemented edge into a
//! lower-level node is one interaction, not two, and stored low edges are
//! never complemented at all (canonical form) — an edge-level estimate
//! that treated complement bits as distinct children would overcount the
//! relink batch and mis-gate the parallel path below.  A full sift of `n`
//! variables performs O(n²) swaps on a diagram of size `m`, i.e. O(n·m)
//! node touches in the worst case per direction, bounded in practice by
//! the growth limit's early aborts.  The op caches are invalidated once
//! per reordering run (epoch bump), not per swap: cached results keyed on
//! surviving ids stay semantically correct because ids keep their
//! functions, but freed ids may be recycled, so the whole epoch is retired
//! at the end of the run.
//!
//! ## Parallel sifting
//!
//! A sift is a *sequential* chain of swaps — each swap's size feedback
//! decides the next — so whole swaps cannot run concurrently without
//! changing the decisions sifting makes.  The parallelism is therefore
//! **inside** one swap, which splits into two phases:
//!
//! 1. *Collect + cons* (parallel): for each interacting `x`-node, read
//!    out its four grandchild cofactors (pure reads) and hash-cons the
//!    two new inner `x`-nodes.  The `x`-subtable's id list is split into
//!    contiguous chunks — one pool task each, so the scheduling cost is
//!    per chunk, not per ~100 ns cons — and fanned over the
//!    [`crate::pool::WorkerPool`] when the manager's `reorder_threads` is
//!    above 1 and the subtable is big enough to amortise the dispatch
//!    ([`PARALLEL_SWAP_MIN`]).  Consing always uses the **shared** `mk`
//!    flavour (CAS publication), whatever the session's kernel mode,
//!    because the worker threads genuinely race.  No node is removed in
//!    this phase, so the probes are well-defined: the new keys (all
//!    grandchildren sit strictly below level `y`) can never collide with
//!    the interacting nodes' old keys (each contains a level-`y` child),
//!    hence deferring the removals cannot change any cons result.
//!
//!    At ~100 ns per cons, *any* per-cons RMW on a line every worker
//!    shares serialises the whole fan-out, so the batch strips all of
//!    them: free-list ids are pre-popped in one lock acquisition and
//!    handed to the chunks as private slices; the target subtable is
//!    [`grow_for`](crate::shard::SubTable::grow_for)-reserved for the
//!    batch's worst case (two conses per interacting node) so each chunk
//!    can hold a single read-guard
//!    [`probe_session`](crate::shard::SubTable::probe_session) instead of
//!    re-acquiring the `RwLock` per cons — with headroom guaranteed, no
//!    grow (which needs the write lock) can be required mid-session; and
//!    the subtable/global length updates are deferred, summed from each
//!    chunk's `created` count and applied once per batch.
//! 2. *Relink* (serial): in id order, remove each old key, install the
//!    relabelled node, maintain the reference counts and reclaim dead
//!    `y`-nodes — exactly the sequence the serial path performs.
//!
//! Because hash consing is canonical, the cons results are independent of
//! scheduling, and the relink phase runs in deterministic collection
//! order, a parallel swap leaves the *same* table as a serial one (same
//! live nodes, same keys, same per-level sizes — only the arena ids of
//! freshly created nodes may differ).  Sifting decisions depend only on
//! the live size, so parallel and serial sifting walk the same swap
//! sequence and reach the same final order and node count; the
//! equivalence suite asserts this at 1/2/4/8 threads.

use crate::manager::{pack_children, Manager, Node};
use crate::NodeId;

/// Smallest upper-level subtable worth fanning over the worker pool.  The
/// dispatch overhead (waking parked workers plus the serial relink phase
/// that follows) is tens of microseconds, so small swaps — the vast
/// majority during a sift — stay serial and only the big batches, where
/// the collect/cons work dominates, pay for the fan-out.
const PARALLEL_SWAP_MIN: usize = 1024;

/// Summary of one [`Manager::reorder`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReorderStats {
    /// Adjacent-level swaps performed.
    pub swaps: u64,
    /// Live nodes before the run (after the pre-reorder GC).
    pub size_before: usize,
    /// Live nodes after the run.
    pub size_after: usize,
    /// Sifting passes executed (> 1 only with converging sifting).
    pub passes: u32,
    /// Wall-clock duration of the run, in microseconds.
    pub micros: u64,
    /// Swaps whose cons batch was fanned over the worker pool (a subset of
    /// [`ReorderStats::swaps`]; zero unless
    /// [`Manager::set_reorder_threads`] raised the thread count).
    pub parallel_batches: u64,
}

impl Manager {
    /// Derives reference counts for every allocated node: one per stored
    /// parent edge plus one per registered root.  Freed arena slots count
    /// zero and are never referenced by live nodes.
    fn build_refs(&self) -> Vec<u32> {
        let bound = self.arena.id_bound();
        let mut refs = vec![0u32; bound];
        let mut free_mark = vec![false; bound];
        for f in self.free.snapshot() {
            free_mark[f as usize] = true;
        }
        self.arena.for_each_allocated(|id| {
            if free_mark[id as usize] {
                return;
            }
            let node = self.node_raw(id);
            refs[node.low.index()] += 1;
            refs[node.high.index()] += 1;
        });
        for root in &self.roots {
            refs[root.index()] += 1;
        }
        refs
    }

    /// Swaps the variables at `level` and `level + 1` in place, relinking
    /// only the interacting upper-level nodes (see the module docs).
    /// `refs` must hold the current reference counts and is kept exact.
    /// Returns the number of interacting nodes rewritten.
    fn swap_levels(&mut self, level: usize, refs: &mut Vec<u32>) -> usize {
        let x = self.level_to_var[level];
        let y = self.level_to_var[level + 1];
        // Phases 1 + 2 — collect and cons.  For each interacting x-node:
        // read out its four (x, y)-grandchild cofactors (the high edge's
        // complement bit is pushed into its children, the low edge is
        // regular already — pure reads) and hash-cons the two new inner
        // x-nodes.  Every old key contains a level-y child while the new
        // keys are built from strictly-lower grandchildren, so consing
        // before the phase-3 removals yields the same nodes the
        // interleaved order would.  Both steps are per-node independent,
        // so a big enough batch fans over the pool in contiguous chunks —
        // one task per chunk, because a single cons is ~100 ns and
        // per-item claiming would spend more on the atomic task counter
        // than on the work.  The pool path must use the shared mk flavour
        // because its workers genuinely race.
        let collect = |mgr: &Manager, id: u32| -> Option<(u32, NodeId, NodeId, [NodeId; 4])> {
            let node = mgr.node_raw(id);
            let low = node.low;
            let high = node.high;
            let low_node = mgr.node_raw(low.index() as u32);
            let hreg_node = mgr.node_raw(high.regular().index() as u32);
            if low_node.var != y && hreg_node.var != y {
                return None;
            }
            let (f00, f01) = if low_node.var == y {
                (low_node.low, low_node.high)
            } else {
                (low, low)
            };
            let (f10, f11) = if hreg_node.var == y {
                let c = high.cmask();
                (hreg_node.low.xor_mask(c), hreg_node.high.xor_mask(c))
            } else {
                (high, high)
            };
            Some((id, low, high, [f00, f01, f10, f11]))
        };
        let ids = self.subtables[x as usize].ids();
        type Rewire = (u32, NodeId, NodeId, [(NodeId, bool); 2]);
        let rewired: Vec<Rewire> = if self.reorder_threads > 1 && ids.len() >= PARALLEL_SWAP_MIN {
            self.serial.reorder_parallel_batches += 1;
            let pool = crate::pool::global(self.reorder_threads);
            // Flattening chunk results in chunk order keeps `rewired`
            // in the same id order the serial path produces.
            let chunk = ids.len().div_ceil(self.reorder_threads * 4);
            let chunks = ids.len().div_ceil(chunk);
            // Pre-pop free ids in one lock acquisition and hand each
            // chunk an equal slice: the racing cons calls then allocate
            // from their private slice (arena bump once exhausted)
            // instead of serialising on the free-list mutex.
            let prefetched = self.free.pop_many(x, 2 * ids.len());
            let per_chunk = prefetched.len() / chunks;
            // Reserve the batch's worst case (two conses per x-node) up
            // front so each chunk can hold one subtable read guard for
            // its whole run — `mk_session` then touches no shared cache
            // line except the slot words themselves.
            let subtable = &self.subtables[x as usize];
            subtable.grow_for(&self.arena, 2 * ids.len());
            let mgr: &Manager = &*self;
            let results: Vec<(Vec<Rewire>, usize, usize)> = pool.map(chunks, |c| {
                let lo = c * chunk;
                let hi = (lo + chunk).min(ids.len());
                let local_ids = &prefetched[c * per_chunk..(c + 1) * per_chunk];
                let cursor = std::cell::Cell::new(0usize);
                let alloc = || {
                    let i = cursor.get();
                    if i < local_ids.len() {
                        cursor.set(i + 1);
                        local_ids[i]
                    } else {
                        mgr.arena.bump(x)
                    }
                };
                subtable.probe_session(|prober| {
                    let created = std::cell::Cell::new(0usize);
                    let mk = |low: NodeId, high: NodeId| {
                        let out = mgr.mk_session(prober, x, low, high, alloc);
                        created.set(created.get() + out.1 as usize);
                        out
                    };
                    let out = ids[lo..hi]
                        .iter()
                        .filter_map(|&id| {
                            let (id, low, high, [f00, f01, f10, f11]) = collect(mgr, id)?;
                            Some((id, low, high, [mk(f00, f10), mk(f01, f11)]))
                        })
                        .collect::<Vec<_>>();
                    (out, cursor.get(), created.get())
                })
            });
            // Return the unused pre-popped ids (plus the share the
            // integer division left unassigned) and apply the deferred
            // length updates — `mk_session` skips all of them to keep
            // the hot racing path free of shared-line RMWs.
            let mut rewired = Vec::with_capacity(ids.len());
            let mut total_created = 0usize;
            for (c, (out, used, created)) in results.into_iter().enumerate() {
                rewired.extend(out);
                total_created += created;
                let local_ids = &prefetched[c * per_chunk..(c + 1) * per_chunk];
                self.free.push_many(x, &local_ids[used..]);
            }
            self.free.push_many(x, &prefetched[chunks * per_chunk..]);
            subtable.len_add(total_created);
            self.table_len
                .fetch_add(total_created, core::sync::atomic::Ordering::Relaxed);
            rewired
        } else {
            ids.iter()
                .filter_map(|&id| {
                    let (id, low, high, [f00, f01, f10, f11]) = collect(self, id)?;
                    Some((
                        id,
                        low,
                        high,
                        [self.mk_core(x, f00, f10), self.mk_core(x, f01, f11)],
                    ))
                })
                .collect()
        };
        // Phase 3 — relink, serially.  First initialise every freshly
        // created node's reference count and charge its children: pool
        // scheduling decides which task observes `created`, so a creation
        // may land at a later batch index than a reuse of the same node,
        // and the `= 0` init must never clobber a parent charge.  (The
        // inits cannot perturb the per-node death checks below: a created
        // x-node's children sit strictly below level y, and only y-nodes
        // can die here.)
        if refs.len() < self.arena.id_bound() {
            refs.resize(self.arena.id_bound(), 0);
        }
        for &(_, _, _, pair) in &rewired {
            for (edge, created) in pair {
                if created {
                    let node = self.node_raw(edge.index() as u32);
                    refs[edge.index()] = 0;
                    refs[node.low.index()] += 1;
                    refs[node.high.index()] += 1;
                }
            }
        }
        for &(id, low, high, [(a, _), (b, _)]) in &rewired {
            // The node's key changes: take the old key out of x's subtable
            // and install the relabelled node under y.
            self.subtables[x as usize].remove_exclusive(&self.arena, pack_children(low, high));
            self.table_len_add(-1);
            refs[a.index()] += 1;
            refs[b.index()] += 1;
            debug_assert!(!a.is_complemented(), "new low child must be regular");
            debug_assert!(a != b, "interacting node cannot become redundant");
            self.set_node_raw(
                id,
                Node {
                    var: y,
                    low: a,
                    high: b,
                },
            );
            self.subtables[y as usize].insert_exclusive(&self.arena, pack_children(a, b), id);
            self.table_len_add(1);
            // The old children each lose one parent; a y-node dropping to
            // zero references dies on the spot.  (Nothing below y can die:
            // every grandchild is re-referenced through `a`/`b`.)
            for child in [low, high.regular()] {
                let ci = child.index();
                refs[ci] -= 1;
                if refs[ci] == 0 && self.node_raw(ci as u32).var == y {
                    let dead = self.node_raw(ci as u32);
                    self.subtables[y as usize]
                        .remove_exclusive(&self.arena, pack_children(dead.low, dead.high));
                    self.table_len_add(-1);
                    self.free_push(ci as u32);
                    refs[dead.low.index()] -= 1;
                    refs[dead.high.index()] -= 1;
                }
            }
        }
        // The variables trade places.
        self.level_to_var.swap(level, level + 1);
        self.var_to_level[x as usize] = (level + 1) as u32;
        self.var_to_level[y as usize] = level as u32;
        self.serial.reorder_swaps += 1;
        // Sifting can grow the diagram (up to the 1.2× limit) before the
        // sift-back shrinks it again; sample the high-water mark per swap
        // so `peak_nodes` sees the excursion.
        self.note_peak();
        rewired.len()
    }

    /// Swaps the variables at `level` and `level + 1` as a standalone
    /// operation: derives reference counts, swaps, and retires the cache
    /// epoch.  Every live edge keeps its id and its function; registered
    /// roots additionally pin their subgraphs against the swap's eager
    /// dead-node reclamation.
    ///
    /// # Panics
    ///
    /// Panics if `level + 1 >= num_vars()`.
    pub fn swap_adjacent_levels(&mut self, level: usize) {
        assert!(
            level + 1 < self.num_vars(),
            "swap level {level} out of range"
        );
        self.note_peak();
        let mut refs = self.build_refs();
        self.swap_levels(level, &mut refs);
        self.invalidate_caches();
    }

    /// One sifting pass over every variable in the window, largest subtable
    /// first.  Returns the total size after the pass.
    fn sift_pass(&mut self, bound: usize, refs: &mut Vec<u32>) -> usize {
        let mut vars: Vec<u32> = (0..bound as u32)
            .map(|l| self.level_to_var[l as usize])
            .collect();
        vars.sort_by_key(|&v| std::cmp::Reverse(self.subtables[v as usize].len()));
        for var in vars {
            if self.subtables[var as usize].len() == 0 {
                continue;
            }
            // A manager over its node/byte budget stops exploring: the
            // remaining variables keep their levels, and the caller (or a
            // GC) decides how to recover.  Each sift_var below also gates
            // its own direction loops, so one oversized variable cannot
            // blow past the limit either.
            if self.budget_exceeded() {
                break;
            }
            self.sift_var(var, bound, refs);
        }
        self.live_table_len()
    }

    /// Moves `var` through every level of `[0, bound)`, then parks it at
    /// the best position seen.  The classic growth limit aborts a direction
    /// once the diagram exceeds 1.2× the size at which the sift started;
    /// after each direction the variable sifts *back to the best seen
    /// position* first, so an aborted first direction never starves the
    /// second one (the return journey undoes the growth, making the limit
    /// guard irrelevant to it).
    fn sift_var(&mut self, var: u32, bound: usize, refs: &mut Vec<u32>) {
        let start = self.var_to_level[var as usize] as usize;
        let start_size = self.live_table_len();
        let limit = (start_size + start_size / 5).max(start_size + 20);
        let mut level = start;
        let mut best_size = start_size;
        let mut best_level = start;
        let down_first = bound - 1 - start <= start;
        for phase in 0..2 {
            let go_down = (phase == 0) == down_first;
            if go_down {
                while level + 1 < bound {
                    self.swap_levels(level, refs);
                    level += 1;
                    if self.live_table_len() < best_size {
                        best_size = self.live_table_len();
                        best_level = level;
                    }
                    // The budget check mirrors the growth limit: stop
                    // exploring (the park-at-best loops below shrink the
                    // diagram back, so they stay un-gated).
                    if self.live_table_len() > limit || self.budget_exceeded() {
                        break;
                    }
                }
            } else {
                while level > 0 {
                    self.swap_levels(level - 1, refs);
                    level -= 1;
                    if self.live_table_len() < best_size {
                        best_size = self.live_table_len();
                        best_level = level;
                    }
                    if self.live_table_len() > limit || self.budget_exceeded() {
                        break;
                    }
                }
            }
            // Park at the best position seen so far: restores the size
            // before the other direction explores (and doubles as the final
            // placement after the second phase).
            while level < best_level {
                self.swap_levels(level, refs);
                level += 1;
            }
            while level > best_level {
                self.swap_levels(level - 1, refs);
                level -= 1;
            }
        }
        debug_assert_eq!(
            self.live_table_len(),
            best_size,
            "sift-back must restore size"
        );
    }

    /// Full Rudell sifting over the reorder window (see
    /// [`Manager::set_reorder_window`]): garbage-collects against the
    /// registered roots (when any are registered, so sizes are honest),
    /// sifts every windowed variable, optionally repeats to convergence,
    /// and retires the op-cache epoch.  Every surviving edge keeps its id
    /// and function, so external handles — registered or not — remain
    /// valid; registration is what *guarantees* survival.
    pub fn reorder(&mut self) -> ReorderStats {
        let started = std::time::Instant::now();
        let bound = self.reorder_window.min(self.num_vars());
        if bound < 2 {
            return ReorderStats::default();
        }
        self.note_peak();
        if !self.roots.is_empty() {
            self.collect_garbage_registered();
        }
        let swaps_before = self.serial.reorder_swaps;
        let batches_before = self.serial.reorder_parallel_batches;
        let size_before = self.live_table_len();
        let mut refs = self.build_refs();
        let mut passes = 0u32;
        let mut previous = size_before;
        loop {
            passes += 1;
            let size = self.sift_pass(bound, &mut refs);
            // Converge: stop when a pass gains less than 1% (or after a
            // safety cap of passes).
            if !self.converging_sifting || passes >= 8 || size * 100 >= previous * 99 {
                break;
            }
            previous = size;
        }
        self.invalidate_caches();
        let stats = ReorderStats {
            swaps: self.serial.reorder_swaps - swaps_before,
            size_before,
            size_after: self.live_table_len(),
            passes,
            micros: started.elapsed().as_micros() as u64,
            parallel_batches: self.serial.reorder_parallel_batches - batches_before,
        };
        self.serial.reorders += 1;
        self.serial.reorder_last_before = size_before;
        self.serial.reorder_last_after = stats.size_after;
        self.serial.reorder_micros += stats.micros;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    /// A non-trivial function whose size depends strongly on the order:
    /// pairwise ANDs `x_i ∧ x_{i+n/2}` OR-ed together are linear when pairs
    /// are adjacent and exponential when interleaved.
    fn paired_or(mgr: &mut Manager, n: usize) -> NodeId {
        let mut acc = NodeId::FALSE;
        for i in 0..n / 2 {
            let a = mgr.var(i);
            let b = mgr.var(i + n / 2);
            let ab = mgr.and(a, b);
            acc = mgr.or(acc, ab);
        }
        acc
    }

    #[test]
    fn swap_preserves_functions_and_ids() {
        let mut mgr = Manager::new(4);
        let x = mgr.var(0);
        let y = mgr.var(1);
        let z = mgr.var(2);
        let xy = mgr.and(x, y);
        let f = mgr.xor(xy, z);
        let slot = mgr.register_root(f);
        let truth: Vec<bool> = (0..16u32)
            .map(|bits| {
                mgr.eval(
                    f,
                    &[bits & 1 == 1, bits & 2 == 2, bits & 4 == 4, bits & 8 == 8],
                )
            })
            .collect();
        for level in [0usize, 1, 2, 0, 2, 1] {
            mgr.swap_adjacent_levels(level);
            mgr.check_integrity().expect("integrity after swap");
            let now: Vec<bool> = (0..16u32)
                .map(|bits| {
                    mgr.eval(
                        f,
                        &[bits & 1 == 1, bits & 2 == 2, bits & 4 == 4, bits & 8 == 8],
                    )
                })
                .collect();
            assert_eq!(now, truth, "swap must preserve every function");
        }
        assert_eq!(mgr.root(slot), f, "registered root id is untouched");
    }

    #[test]
    fn swap_is_its_own_inverse_on_node_count() {
        let mut mgr = Manager::new(6);
        let f = paired_or(&mut mgr, 6);
        let _slot = mgr.register_root(f);
        mgr.collect_garbage_registered();
        let count = mgr.allocated_nodes();
        for level in 0..5 {
            mgr.swap_adjacent_levels(level);
            mgr.swap_adjacent_levels(level);
            assert_eq!(
                mgr.allocated_nodes(),
                count,
                "swap ∘ swap at level {level} must restore the exact size"
            );
            mgr.check_integrity().expect("integrity");
        }
    }

    #[test]
    fn sifting_finds_the_linear_order_for_paired_ands() {
        let n = 12;
        let mut mgr = Manager::new(n);
        let f = paired_or(&mut mgr, n);
        let slot = mgr.register_root(f);
        mgr.collect_garbage_registered();
        let before = mgr.allocated_nodes();
        let stats = mgr.reorder();
        mgr.check_integrity().expect("integrity after sifting");
        assert_eq!(stats.size_before, before);
        assert!(
            stats.size_after * 2 < before,
            "interleaved pairs must shrink a lot: {before} -> {}",
            stats.size_after
        );
        assert_eq!(mgr.root(slot), f);
        // The function is intact under the new order.
        for i in 0..n / 2 {
            let mut assignment = vec![false; n];
            assignment[i] = true;
            assignment[i + n / 2] = true;
            assert!(mgr.eval(f, &assignment));
            assignment[i + n / 2] = false;
            assert!(!mgr.eval(f, &assignment));
        }
        assert_eq!(mgr.stats().reorders, 1);
        assert!(mgr.stats().reorder_swaps > 0);
    }

    #[test]
    fn reorder_window_pins_bottom_variables() {
        let n = 8;
        let mut mgr = Manager::new(n);
        let f = paired_or(&mut mgr, n);
        let _slot = mgr.register_root(f);
        mgr.set_reorder_window(n / 2);
        mgr.reorder();
        for var in n / 2..n {
            assert_eq!(
                mgr.level_of_var(var),
                var,
                "variables below the window must not move"
            );
        }
        for level in 0..n / 2 {
            assert!(
                mgr.var_at_level(level) < n / 2,
                "windowed variables must stay inside the window"
            );
        }
    }

    #[test]
    fn maybe_reorder_triggers_on_threshold() {
        let n = 12;
        let mut mgr = Manager::new(n);
        mgr.set_auto_reorder(true);
        mgr.set_reorder_threshold(8);
        let f = paired_or(&mut mgr, n);
        let _slot = mgr.register_root(f);
        assert!(mgr.maybe_reorder(), "threshold exceeded: must reorder");
        assert_eq!(mgr.stats().reorders, 1);
        assert!(
            !mgr.maybe_reorder(),
            "threshold re-armed at twice the post-reorder size"
        );
    }

    #[test]
    fn parallel_sifting_matches_serial_sifting_exactly() {
        // Interleaved pairs peak at a ~2^(n/2 - 1)-node level, so n = 24
        // keeps the widest swap batches above PARALLEL_SWAP_MIN.
        let n = 24;
        let build = || {
            let mut mgr = Manager::new(n);
            let f = paired_or(&mut mgr, n);
            let slot = mgr.register_root(f);
            mgr.collect_garbage_registered();
            (mgr, f, slot)
        };
        let (mut serial, _f, _slot) = build();
        let serial_stats = serial.reorder();
        serial.check_integrity().expect("integrity (serial sift)");
        let (mut parallel, f, slot) = build();
        parallel.set_reorder_threads(4);
        let parallel_stats = parallel.reorder();
        parallel
            .check_integrity()
            .expect("integrity (parallel sift)");
        // Same swap sequence, same final size, same final order.
        assert_eq!(parallel_stats.swaps, serial_stats.swaps);
        assert_eq!(parallel_stats.size_before, serial_stats.size_before);
        assert_eq!(parallel_stats.size_after, serial_stats.size_after);
        assert_eq!(parallel_stats.passes, serial_stats.passes);
        let serial_order: Vec<usize> = (0..n).map(|l| serial.var_at_level(l)).collect();
        let parallel_order: Vec<usize> = (0..n).map(|l| parallel.var_at_level(l)).collect();
        assert_eq!(parallel_order, serial_order);
        // The interleaved-pairs diagram is big enough that at least one
        // swap's batch actually took the pool path.
        assert_eq!(serial_stats.parallel_batches, 0);
        assert!(
            parallel_stats.parallel_batches > 0,
            "expected at least one pooled cons batch"
        );
        assert_eq!(
            parallel.stats().reorder_parallel_batches,
            parallel_stats.parallel_batches
        );
        // Functions survive the parallel run.
        assert_eq!(parallel.root(slot), f);
        for i in 0..n / 2 {
            let mut assignment = vec![false; n];
            assignment[i] = true;
            assignment[i + n / 2] = true;
            assert!(parallel.eval(f, &assignment));
            assignment[i + n / 2] = false;
            assert!(!parallel.eval(f, &assignment));
        }
    }

    /// Encodes the parallel-sifting acceptance bar: on a diagram big
    /// enough that the swap batches clear [`PARALLEL_SWAP_MIN`], fanning
    /// the cons phase over 4 workers must reduce the reorder wall time
    /// versus the fully serial sift of the identical diagram.  Gated
    /// behind `SLIQ_PERF_TEST=1` (wall-clock comparisons need a release
    /// build and a quiet machine), and skipped on hosts without real
    /// parallelism — four pool threads timesharing one core can only
    /// ever tie serial, and asserting otherwise would test the VM's
    /// scheduler, not the kernel.
    #[test]
    fn perf_parallel_sifting_reduces_reorder_wall_time() {
        if std::env::var_os("SLIQ_PERF_TEST").is_none() {
            return;
        }
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        if cores < 4 {
            eprintln!("skipping: {cores} core(s) available, the speedup bar needs >= 4");
            return;
        }
        let n = 28;
        let median_reorder_seconds = |threads: usize| {
            let mut times = Vec::new();
            for _ in 0..3 {
                let mut mgr = Manager::new(n);
                let f = paired_or(&mut mgr, n);
                let _slot = mgr.register_root(f);
                mgr.collect_garbage_registered();
                mgr.set_reorder_threads(threads);
                let start = std::time::Instant::now();
                mgr.reorder();
                times.push(start.elapsed().as_secs_f64());
            }
            times.sort_by(f64::total_cmp);
            times[1]
        };
        let serial = median_reorder_seconds(1);
        let parallel = median_reorder_seconds(4);
        eprintln!(
            "reorder wall-time on paired_or({n}): serial {serial:.4}s, \
             4 threads {parallel:.4}s ({:.2}x speedup)",
            serial / parallel
        );
        assert!(
            parallel < serial,
            "pooled sifting must beat serial sifting on a large diagram: \
             serial {serial:.4}s vs parallel {parallel:.4}s"
        );
    }

    #[test]
    fn converging_sift_runs_multiple_passes_when_asked() {
        let n = 10;
        let mut mgr = Manager::new(n);
        let f = paired_or(&mut mgr, n);
        let _slot = mgr.register_root(f);
        mgr.set_converging_sifting(true);
        let stats = mgr.reorder();
        assert!(stats.passes >= 1);
        mgr.check_integrity().expect("integrity");
    }
}
