//! A small persistent worker pool for the per-gate slice fan-out.
//!
//! The simulator applies `4·r` independent slice updates per gate; spawning
//! OS threads per gate would dominate the gate cost, so a pool of parked
//! workers is kept alive and woken per batch.  Tasks are claimed through an
//! atomic index — the same dynamic work-claiming pattern as the benchmark
//! sweep fan-out in `sliq-bench` (`crates/bench/src/parallel.rs`) — so an
//! expensive task never serialises the cheap ones behind it.  The calling
//! thread participates in the batch too: a pool of `n` threads consists of
//! `n − 1` workers plus the caller.
//!
//! [`WorkerPool::run`] borrows the job closure for the duration of the
//! call: the closure pointer is type-erased to a raw pointer for the
//! workers, which is sound because `run` does not return until every task
//! completed and no worker dereferences the pointer after claiming an
//! out-of-range index.  A panicking task is caught in the worker, the batch
//! is drained, and the panic is re-raised on the caller.
//!
//! Thread count policy: [`default_threads`] reads `SLIQ_THREADS` and falls
//! back to `std::thread::available_parallelism`, and [`global`] hands out
//! process-wide shared pools keyed by thread count so many simulator states
//! (or benchmark cases) never multiply workers.

#![allow(unsafe_code)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// One published batch: the type-erased task closure plus its claim and
/// completion counters.
#[derive(Clone)]
struct Job {
    /// The task closure, valid until `remaining` reaches zero (enforced by
    /// [`WorkerPool::run`] blocking until then).
    func: *const (dyn Fn(usize) + Sync),
    tasks: usize,
    /// Next unclaimed task index (may exceed `tasks`).
    next: Arc<AtomicUsize>,
    /// Tasks not yet completed; the batch is done at zero.
    remaining: Arc<AtomicUsize>,
    /// Set when any task panicked; re-raised by the caller.
    panicked: Arc<AtomicBool>,
}

// SAFETY: the closure behind `func` is `Sync` (shared across threads) and
// outlives the job (see `WorkerPool::run`); the pointer itself is only a
// capability to call it.
unsafe impl Send for Job {}

struct State {
    generation: u64,
    job: Option<Job>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    work_ready: Condvar,
    batch_done: Condvar,
}

/// A pool of parked worker threads executing indexed task batches.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
    /// Serialises whole batches: pools are shared process-wide (see
    /// [`global`]), and two concurrent [`WorkerPool::run`] calls would
    /// otherwise overwrite each other's published job — still correct (the
    /// caller claims its own tasks) but silently serial.  Held for the
    /// duration of a batch; consequently a task must never call back into
    /// `run` on the same pool.
    batch: Mutex<()>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl WorkerPool {
    /// A pool that runs batches on `threads` threads total: `threads − 1`
    /// parked workers plus the calling thread.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                generation: 0,
                job: None,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            batch_done: Condvar::new(),
        });
        let handles = (0..threads - 1)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Self {
            shared,
            handles,
            threads,
            batch: Mutex::new(()),
        }
    }

    /// Total threads a batch runs on (workers + caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(0..tasks)` across the pool, returning when every index has
    /// been processed.  The caller participates, so a 1-thread pool is a
    /// plain loop.  Concurrent `run` calls from different threads queue up
    /// on the batch lock (each then gets the workers to itself); a task
    /// must not call back into `run` on the same pool.  Panics if any task
    /// panicked.
    pub fn run(&self, tasks: usize, f: &(dyn Fn(usize) + Sync)) {
        if tasks == 0 {
            return;
        }
        if self.threads == 1 || tasks == 1 {
            for index in 0..tasks {
                f(index);
            }
            return;
        }
        // The batch lock guards no data (it only serialises whole batches),
        // so a poisoned lock — a prior batch re-raised a task panic while
        // holding it — is safe to recover.
        let _batch = self
            .batch
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        // SAFETY: pure lifetime erasure — `run` blocks until `remaining`
        // reaches zero, after which no worker dereferences the pointer (an
        // out-of-range claim returns before touching it).
        let func = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        } as *const (dyn Fn(usize) + Sync);
        let job = Job {
            func,
            tasks,
            next: Arc::new(AtomicUsize::new(0)),
            remaining: Arc::new(AtomicUsize::new(tasks)),
            panicked: Arc::new(AtomicBool::new(false)),
        };
        {
            let mut state = self.shared.state.lock().expect("pool state");
            state.generation += 1;
            state.job = Some(job.clone());
        }
        self.shared.work_ready.notify_all();
        // The caller is one of the workers for this batch.
        run_tasks(&self.shared, &job);
        let mut state = self.shared.state.lock().expect("pool state");
        while job.remaining.load(Ordering::Acquire) > 0 {
            state = self.shared.batch_done.wait(state).expect("pool state");
        }
        state.job = None;
        drop(state);
        if job.panicked.load(Ordering::Relaxed) {
            panic!("a worker-pool task panicked");
        }
    }

    /// Maps `f` over `0..tasks` in parallel, collecting the results in
    /// index order.
    pub fn map<T: Send + Sync>(&self, tasks: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
        let cells: Vec<OnceLock<T>> = (0..tasks).map(|_| OnceLock::new()).collect();
        self.run(tasks, &|index| {
            let _ = cells[index].set(f(index));
        });
        cells
            .into_iter()
            .map(|cell| cell.into_inner().expect("every task completed"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool state");
            state.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen_generation = 0u64;
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool state");
            loop {
                if state.shutdown {
                    return;
                }
                if state.generation != seen_generation {
                    if let Some(job) = state.job.clone() {
                        seen_generation = state.generation;
                        break job;
                    }
                }
                state = shared.work_ready.wait(state).expect("pool state");
            }
        };
        run_tasks(shared, &job);
    }
}

/// Claims and runs tasks until the batch's index counter is exhausted.
fn run_tasks(shared: &Shared, job: &Job) {
    loop {
        let index = job.next.fetch_add(1, Ordering::Relaxed);
        if index >= job.tasks {
            return;
        }
        // SAFETY: `WorkerPool::run` keeps the closure alive until
        // `remaining` hits zero, which cannot happen before this task's
        // decrement below.
        let func = unsafe { &*job.func };
        if catch_unwind(AssertUnwindSafe(|| func(index))).is_err() {
            job.panicked.store(true, Ordering::Relaxed);
        }
        if job.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last task: wake the caller (lock ordering prevents a lost
            // wakeup between its check and its wait).
            let _state = shared.state.lock().expect("pool state");
            shared.batch_done.notify_all();
        }
    }
}

/// The default fan-out width: the `SLIQ_THREADS` environment variable when
/// set to a positive integer, otherwise the machine's available
/// parallelism.
pub fn default_threads() -> usize {
    if let Ok(value) = std::env::var("SLIQ_THREADS") {
        if let Ok(parsed) = value.trim().parse::<usize>() {
            if parsed >= 1 {
                return parsed;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Process-wide shared pools, one per thread count: simulator states and
/// benchmark cases reuse workers instead of multiplying them.
pub fn global(threads: usize) -> Arc<WorkerPool> {
    type PoolRegistry = Mutex<Vec<(usize, Arc<WorkerPool>)>>;
    static POOLS: OnceLock<PoolRegistry> = OnceLock::new();
    let threads = threads.max(1);
    let pools = POOLS.get_or_init(|| Mutex::new(Vec::new()));
    let mut pools = pools.lock().expect("pool registry");
    if let Some((_, pool)) = pools.iter().find(|(count, _)| *count == threads) {
        return Arc::clone(pool);
    }
    let pool = Arc::new(WorkerPool::new(threads));
    pools.push((threads, Arc::clone(&pool)));
    pool
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_returns_results_in_index_order() {
        let pool = WorkerPool::new(4);
        let squares = pool.map(100, |i| i * i);
        assert_eq!(squares.len(), 100);
        for (i, &sq) in squares.iter().enumerate() {
            assert_eq!(sq, i * i);
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let values = pool.map(10, |i| i + 1);
        assert_eq!(values, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn pool_survives_many_batches() {
        let pool = WorkerPool::new(3);
        let counter = AtomicUsize::new(0);
        for _ in 0..200 {
            pool.run(8, &|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 1600);
    }

    #[test]
    fn task_panic_propagates_to_the_caller() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(4, &|i| {
                if i == 2 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err(), "the batch panic must reach the caller");
        // The pool is still usable afterwards.
        assert_eq!(pool.map(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn concurrent_callers_on_one_pool_both_complete() {
        // Pools are shared process-wide, so two sessions may drive one pool
        // from different threads; batches serialise on the batch lock and
        // every task of both batches must run exactly once.
        let pool = WorkerPool::new(3);
        let a = AtomicUsize::new(0);
        let b = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let (pool, a, b) = (&pool, &a, &b);
            scope.spawn(move || {
                for _ in 0..50 {
                    pool.run(8, &|_| {
                        a.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            scope.spawn(move || {
                for _ in 0..50 {
                    pool.run(8, &|_| {
                        b.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        });
        assert_eq!(a.load(Ordering::Relaxed), 400);
        assert_eq!(b.load(Ordering::Relaxed), 400);
    }

    #[test]
    fn global_pools_are_shared_per_thread_count() {
        let a = global(2);
        let b = global(2);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(default_threads() >= 1);
    }
}
