//! Concurrency primitives of the sharded BDD kernel: the level-segregated
//! compact node arena (8-byte cells in per-variable chunks, reclaimable as
//! generations), the per-variable unique subtables with lock-free CAS
//! insertion over 4-byte id-only slots, the seqlock-protected operation
//! caches, the byte-budget tracker and the thread-sharded statistics
//! counters.
//!
//! # Synchronization design
//!
//! The manager distinguishes two phases, and the Rust borrow checker is the
//! phase switch:
//!
//! * **Shared phase** (`&Manager`): every apply recursion (`and`, `xor`,
//!   `ite`, `xor3`, `maj`, `flip_var`, `mux_var`, `cofactor`) and the node
//!   constructor `mk` take `&self`, so any number of threads may run them
//!   concurrently on one manager.  All mutation in this phase goes through
//!   the atomic structures in this module.
//! * **Exclusive phase** (`&mut Manager`): garbage collection, variable
//!   reordering, cache growth/invalidation, root-registry updates and
//!   `add_vars` take `&mut self`.  Holding `&mut Manager` *proves* no apply
//!   recursion is in flight — the stop-the-world property is enforced at
//!   compile time, not by a runtime flag.  The simulator enters this phase
//!   only at gate boundaries.
//!
//! ## The compact level-segregated layout
//!
//! A node is `(var, low, high)`, but the kernel already shards its unique
//! table *by variable* — the variable of a node is recoverable from which
//! subtable holds it.  The arena therefore segregates storage the same way
//! and stops duplicating the label per node:
//!
//! * Node storage is an array of fixed-size **chunks** ([`CHUNK_LEN`] cells
//!   each).  A cell is a single `AtomicU64` holding the packed children —
//!   **8 bytes per node** instead of the previous 12 (a `var` word plus two
//!   child words).
//! * Every chunk has exactly one **owner variable**; `var_of(id)` is a read
//!   of the id's chunk header, not of the node.  Allocation is per
//!   variable: `bump(var)` fills `var`'s active chunk and acquires a fresh
//!   one when it is full, so nodes of one level are stored contiguously —
//!   which is also why whole chunks become reclaimable (below).
//! * Reordering relabels nodes **in place** (same id, new variable), which
//!   breaks the one-owner rule for the affected chunk.  Such a chunk lazily
//!   materialises a `vars` **sidecar** (one `u32` per cell, exclusive phase
//!   only) recording each node's true variable; `var_of` prefers the
//!   sidecar when present.  The sweep drops the sidecar again as soon as a
//!   chunk's live nodes all share one variable, so the 8-byte common case
//!   is self-restoring.
//! * The unique-table slots shrink with the node: a slot stores only the
//!   node **id** (4 bytes, [`EMPTY_SLOT`] when empty) instead of the
//!   previous `tag ‖ id` word (8 bytes).  The hash tag used to pre-filter
//!   probe steps is gone; an occupied probe slot now costs one arena load
//!   (`children_of`) to compare keys.  At the ≤ 3/4 load factor the
//!   expected number of extra loads per probe is below one, and the key
//!   comparison itself is exact (full 64-bit children, not a 32-bit tag),
//!   so the trade is a strict byte win for a bounded, usually-unpaid time
//!   cost.
//!
//! Why this stays sound: the owner header of a chunk is written **before**
//! the chunk is made visible to allocators (`active[var]` is
//! released-stored after the header), and a freshly bumped id reaches other
//! threads only through the subtable-slot CAS (release) that publishes it —
//! so by release/acquire transitivity, any thread that observes an id also
//! observes its chunk's owner and cells.  Sidecar creation and chunk
//! re-owning happen only in the exclusive phase, whose `&mut` hand-off
//! already orders them before any subsequent shared-phase read.
//!
//! ## Generational chunk reclamation
//!
//! The previous arena was append-only for the manager's lifetime: freed ids
//! were recycled through a free list, but chunk memory was never returned.
//! Chunks are now **generations**: the GC sweep walks every chunk and
//!
//! * hands a chunk whose live-node count is zero back to the allocator —
//!   its cell array (and sidecar, if any) is dropped, returning the memory
//!   to the OS, and its chunk index goes on a recycle list from which
//!   `bump` will re-materialise it (with fresh cells) before growing the
//!   chunk watermark;
//! * re-owns a mixed chunk to the single variable its live nodes share, if
//!   they do, and drops the sidecar;
//! * returns the dead cells of still-live chunks to the per-variable free
//!   lists, keyed by the chunk's (possibly updated) owner.
//!
//! Reclamation is sound because it is exclusive-phase only: `&mut Manager`
//! proves no probe, apply or `mk` holds a reference into any cell array.  A
//! released chunk's stale `active` pointer is cleared and its `used`
//! counter is poisoned to "full", so even the cross-phase `bump` fast path
//! can never mint an id into a chunk that is no longer backed by cells.
//! Node ids of *surviving* nodes never change (a chunk is only released
//! when it has no survivors), so external handles and the root registry are
//! untouched — exactly the stability guarantee the in-place rebuild gave.
//!
//! The free list is segregated by variable to match the allocator
//! (`FreeTable`): a free id is homed under its chunk's owner, so reusing it
//! for that variable keeps the chunk single-owner and never needs a
//! sidecar.  Reordering's batched pre-pop (`pop_many`) and rollback pushes
//! preserve the homing invariant because `mk(var, …)` only ever allocates
//! ids for `var`.
//!
//! ## Byte accounting
//!
//! Every allocation the kernel retains — chunk cell arrays, sidecars, the
//! chunk directory, unique-table slot arrays, operation-cache words — is
//! charged to the arena's [`MemTracker`] at the point it is made and
//! released when it is dropped, so `bytes()` is an exact running total (and
//! `peak()` its high-water mark) rather than an estimate.  The manager
//! polls `over_budget()` at its enforcement points (gate boundaries,
//! per-direction sift loops); the budget is deliberately **non-sticky** so
//! a GC that recovers below the limit lets execution resume gracefully.
//!
//! ## Why canonical hash-consing stays sound under concurrent insertion
//!
//! Canonicity requires that `(var, low, high)` maps to exactly one node id
//! for the manager's lifetime (between exclusive phases).  The concurrent
//! `mk` guarantees this with a *speculate-then-publish* protocol on the
//! open-addressed subtable of `var`:
//!
//! 1. The inserting thread probes the subtable.  If it finds an entry whose
//!    children match, that node is the canonical one — done, no node was
//!    allocated.
//! 2. On a miss it allocates a fresh id from the arena, writes the node
//!    fields, and publishes the id into the first empty slot of the probe
//!    chain with a `compare_exchange` (release ordering).  **The CAS is the
//!    single linearization point**: whichever thread wins owns the canonical
//!    node for that key.
//! 3. A thread whose CAS fails re-reads the slot.  If the winner inserted
//!    the *same* key, the loser rolls its speculative node back onto the
//!    free list (the node was never published, so nothing can reference it)
//!    and adopts the winner's id.  Otherwise a different key claimed the
//!    slot and the loser simply continues down the probe chain.
//!
//! Because entries are only ever *added* during the shared phase (deletion
//! and rehashing are exclusive-phase operations), a probe that started
//! before a concurrent insert either sees the new entry (and adopts it) or
//! reaches an empty slot later in the chain and CASes there — in both cases
//! the key maps to one id.  Readers load slots with acquire ordering, which
//! pairs with the publishing CAS's release ordering, so the node fields
//! written in step 2 are visible to any thread that observes the id.
//!
//! Subtable *growth* swaps the slot array and therefore cannot run under
//! concurrent probes: each subtable wraps its slots in an `RwLock` whose
//! read side is taken (uncontended in the common case, shared across all
//! probing threads) for lookups and CAS inserts, and whose write side is
//! taken only for the occasional doubling.  The lock is per *variable*, so
//! this is the sharding: threads working at different levels of the diagram
//! never touch the same lock.
//!
//! The operation caches are lossy, so they only have to be *atomic*, never
//! lossless: each entry is guarded by a per-entry sequence word (a seqlock).
//! Writers claim the entry with a CAS to an odd sequence number (a claimed
//! entry is simply skipped by other writers — dropping a memoisation is
//! always safe), write the key/value words, and release with an even
//! sequence number.  Readers re-check the sequence word after reading; a
//! torn read is treated as a miss.  Cache *growth* is deferred to the
//! exclusive phase: misses decrement an atomic budget, and the manager
//! doubles any cache whose budget ran out at the next gate boundary.
//!
//! The node arena is append-only during the shared phase: per-variable
//! active chunks with atomic bump allocators, so node ids are stable
//! pointers that never move.  The free lists are mutex-protected stacks
//! popped on allocation — a mutex is taken once per *created node*, not per
//! lookup.  They are **leaf locks** (as is the chunk-directory mutex taken
//! when an active chunk fills): `mk` does acquire them while holding a
//! subtable's read lock (the allocation happens inside the probe), but
//! nothing ever blocks while holding them, so the lock order
//! `subtable → free list / chunk directory` is acyclic.
//!
//! Statistics counters are sharded 16 ways and indexed by a thread-local
//! slot, so hot-path increments do not bounce one cache line between
//! cores; [`crate::ManagerStats`] snapshots are the shard sums.
//!
//! ## The phase-typed serial flavour
//!
//! A manager whose session runs on one thread never has a concurrent
//! reader or writer, yet the structures above still charge it the full
//! synchronization toll: a seqlock claim/release CAS per cache store, a
//! speculate-then-publish CAS per node creation, and an atomic
//! read-modify-write per arena bump.  The kernel therefore compiles every
//! apply recursion in **two flavours** (a `const SERIAL: bool` parameter in
//! [`crate::Manager`]), and this module provides the serial counterparts:
//!
//! * [`DirectCache::probe2_serial`]/[`DirectCache::store2_serial`] (and the
//!   stride-3 twins) read and write the key/value words directly and leave
//!   the per-entry sequence word **untouched**.  This is sound in both
//!   directions: a quiescent shared-phase entry always has an even, stable
//!   sequence word (a claim either fails without changing it or releases
//!   back to even before the phase can end), so a serial probe that ignores
//!   it reads exactly what a shared probe would; and a serial store that
//!   skips the claim leaves the even word in place, so later shared-phase
//!   probes validate the entry normally.
//! * [`SubTable::find_or_insert_serial`] replaces speculate-then-publish
//!   with a single probe walk that remembers the first empty slot and
//!   plain-stores the new id into it — no CAS, no rollback, and the
//!   allocator runs only after the miss is certain.
//! * [`NodeArena::bump_serial`] and the `*_serial` counter updates replace
//!   `fetch_add` with load/store pairs.
//!
//! All of these remain *atomic* operations on the same atomics (this crate
//! stays free of `unsafe`); what the serial flavour drops is the
//! *coordination* — CAS loops, seqlock claims, read-modify-write cycles.
//! The contract is single-threaded access: the serial flavour is selected
//! only by [`crate::Manager::set_kernel_mode`], which takes `&mut self`, so
//! switching flavours is itself an exclusive-phase action, and the
//! happens-before edge that hands the manager to another thread (spawn,
//! join, channel, mutex — any way a `&mut` or ownership transfer can move
//! between threads) makes every relaxed serial store visible before shared
//! operation can resume.  Violating the contract — running the serial
//! flavour from two threads at once — cannot corrupt memory (everything is
//! still an atomic access), but it can lose an insert and break canonicity,
//! which is why [`crate::KernelMode::Shared`] is the default and the serial
//! flavour is opt-in per session.

use crate::hash::mix64;
use crate::manager::{pack_children, NodeId};
use std::cell::Cell;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, RwLock};

// ---------------------------------------------------------------------- //
// Byte-budget tracking
// ---------------------------------------------------------------------- //

/// Exact running byte accounting for one manager: every retained kernel
/// allocation (chunk cells, sidecars, chunk directory, subtable slots,
/// op-cache words) is charged on creation and released on drop.  The limit
/// is `usize::MAX` when unbounded; `over_budget` is a plain comparison so
/// the enforcement points stay cheap, and the check is non-sticky — a GC
/// that recovers below the limit lets execution resume.
#[derive(Debug)]
pub(crate) struct MemTracker {
    bytes: AtomicUsize,
    peak: AtomicUsize,
    limit: AtomicUsize,
}

impl MemTracker {
    fn new() -> Self {
        Self {
            bytes: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
            limit: AtomicUsize::new(usize::MAX),
        }
    }

    /// Charges `n` freshly retained bytes, updating the high-water mark.
    pub(crate) fn add(&self, n: usize) {
        let now = self.bytes.fetch_add(n, Ordering::Relaxed) + n;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Releases `n` bytes.
    pub(crate) fn sub(&self, n: usize) {
        self.bytes.fetch_sub(n, Ordering::Relaxed);
    }

    /// The current retained-byte total.
    pub(crate) fn bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed)
    }

    /// The high-water mark of [`MemTracker::bytes`].
    pub(crate) fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Sets (or clears, with `None`) the hard byte budget.
    pub(crate) fn set_limit(&self, limit: Option<usize>) {
        self.limit
            .store(limit.unwrap_or(usize::MAX), Ordering::Relaxed);
    }

    /// The configured byte budget, if any.
    pub(crate) fn limit(&self) -> Option<usize> {
        match self.limit.load(Ordering::Relaxed) {
            usize::MAX => None,
            n => Some(n),
        }
    }

    /// Whether the running total currently exceeds the budget.
    pub(crate) fn over_budget(&self) -> bool {
        self.bytes.load(Ordering::Relaxed) > self.limit.load(Ordering::Relaxed)
    }

    /// Overwrites this tracker with another's values (clone support).
    fn copy_from(&self, other: &MemTracker) {
        self.bytes
            .store(other.bytes.load(Ordering::Relaxed), Ordering::Relaxed);
        self.peak
            .store(other.peak.load(Ordering::Relaxed), Ordering::Relaxed);
        self.limit
            .store(other.limit.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------- //
// Level-segregated compact node arena
// ---------------------------------------------------------------------- //

/// log2 of a chunk's cell count.
const CHUNK_BITS: u32 = 10;
/// Nodes per chunk (8 KiB of cells).
pub(crate) const CHUNK_LEN: usize = 1 << CHUNK_BITS;
/// Chunk-directory groups; group `g` holds `2^g` chunk slots, so the
/// directory addresses `2^22 − 1` chunks — past the `2^21` the id space
/// (bit 31 is the complement bit) can ever need.
const CHUNK_GROUPS: usize = 22;
/// Hard chunk cap: `2^21` chunks of `2^10` cells exhaust the 31-bit id
/// space exactly.
const MAX_CHUNKS: u32 = 1 << 21;
/// Sentinel for "variable has no active chunk".
const NO_CHUNK: u32 = u32::MAX;
/// Sentinel owner for chunk slots that were never acquired.
const NO_OWNER: u32 = u32::MAX;

/// A plain (non-atomic) node value, the unit the rest of the kernel reads
/// and writes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Node {
    pub(crate) var: u32,
    pub(crate) low: NodeId,
    pub(crate) high: NodeId,
}

/// Directory position of a chunk index.
#[inline]
fn group_of(chunk: u32) -> (usize, usize) {
    let shifted = chunk + 1;
    let group = (31 - shifted.leading_zeros()) as usize;
    (group, (shifted - (1u32 << group)) as usize)
}

/// One chunk of node storage: [`CHUNK_LEN`] packed-children cells owned by
/// a single variable, plus a lazy per-cell variable sidecar for chunks that
/// reordering has made mixed.  `cells`/`vars` are `OnceLock`s so a released
/// chunk drops its arrays and a recycled chunk re-materialises them.
#[derive(Debug)]
struct ChunkSlot {
    cells: OnceLock<Box<[AtomicU64]>>,
    vars: OnceLock<Box<[AtomicU32]>>,
    owner: AtomicU32,
    used: AtomicU32,
}

impl Default for ChunkSlot {
    fn default() -> Self {
        Self {
            cells: OnceLock::new(),
            vars: OnceLock::new(),
            owner: AtomicU32::new(NO_OWNER),
            used: AtomicU32::new(0),
        }
    }
}

fn zero_cells() -> Box<[AtomicU64]> {
    (0..CHUNK_LEN).map(|_| AtomicU64::new(0)).collect()
}

/// Serialized chunk-acquisition state: the watermark of chunks ever
/// materialised plus the recycle list of released chunk indices.
#[derive(Debug)]
struct ChunkState {
    next: u32,
    recycled: Vec<u32>,
}

/// The level-segregated node arena (see the module docs): per-variable
/// active chunks with atomic bump allocation, a lazily grown chunk
/// directory, chunk-granular release/recycle, and the manager's byte
/// tracker.  Node ids are never relocated; a chunk is only released when
/// none of its nodes survive.
#[derive(Debug)]
pub(crate) struct NodeArena {
    groups: [OnceLock<Box<[ChunkSlot]>>; CHUNK_GROUPS],
    /// `active[var]` is the chunk `bump(var)` currently fills
    /// ([`NO_CHUNK`] when none).  Grown only under `&mut` (`add_vars`).
    active: Vec<AtomicU32>,
    /// Relaxed mirror of `ChunkState::next` for lock-free `id_bound`.
    watermark: AtomicU32,
    chunk_state: Mutex<ChunkState>,
    mem: MemTracker,
    /// Chunks handed back by [`NodeArena::sweep`] over the arena's
    /// lifetime (exclusive-phase writes only).
    chunks_reclaimed: u64,
}

impl NodeArena {
    /// An arena containing only the terminal node (id 0) with the given
    /// sentinel variable index.  Chunk 0 is the terminal's: permanently
    /// full, owned by the sentinel, never swept — ids 1..[`CHUNK_LEN`] are
    /// deliberately unused (8 KiB, the price of keeping id 0 special-case
    /// free on the hot path).
    pub(crate) fn new(terminal_var: u32) -> Self {
        let arena = Self {
            groups: std::array::from_fn(|_| OnceLock::new()),
            active: (0..terminal_var)
                .map(|_| AtomicU32::new(NO_CHUNK))
                .collect(),
            watermark: AtomicU32::new(1),
            chunk_state: Mutex::new(ChunkState {
                next: 1,
                recycled: Vec::new(),
            }),
            mem: MemTracker::new(),
            chunks_reclaimed: 0,
        };
        let slot = arena.ensure_chunk(0);
        slot.owner.store(terminal_var, Ordering::Relaxed);
        slot.used.store(CHUNK_LEN as u32, Ordering::Relaxed);
        slot.cells.get_or_init(|| {
            arena.mem.add(CHUNK_LEN * 8);
            zero_cells()
        });
        arena.write(
            0,
            Node {
                var: terminal_var,
                low: NodeId::TRUE,
                high: NodeId::TRUE,
            },
        );
        arena
    }

    /// The manager-wide byte tracker (subtables and op caches charge here
    /// too, so the total is the whole kernel's retained footprint).
    pub(crate) fn mem(&self) -> &MemTracker {
        &self.mem
    }

    /// Chunks released back to the allocator over the arena's lifetime.
    pub(crate) fn chunks_reclaimed(&self) -> u64 {
        self.chunks_reclaimed
    }

    /// An exclusive upper bound on every id ever handed out (for sizing
    /// mark bitmaps and reference arrays).
    pub(crate) fn id_bound(&self) -> usize {
        (self.watermark.load(Ordering::Relaxed) as usize) << CHUNK_BITS
    }

    /// Declares `extra` further variables and moves the terminal sentinel.
    pub(crate) fn add_vars(&mut self, extra: usize, terminal_var: u32) {
        for _ in 0..extra {
            self.active.push(AtomicU32::new(NO_CHUNK));
        }
        self.chunk_slot(0)
            .owner
            .store(terminal_var, Ordering::Relaxed);
    }

    fn ensure_chunk(&self, chunk: u32) -> &ChunkSlot {
        let (group, idx) = group_of(chunk);
        let slots = self.groups[group].get_or_init(|| {
            self.mem
                .add((1usize << group) * std::mem::size_of::<ChunkSlot>());
            (0..1usize << group).map(|_| ChunkSlot::default()).collect()
        });
        &slots[idx]
    }

    #[inline]
    fn chunk_slot(&self, chunk: u32) -> &ChunkSlot {
        let (group, idx) = group_of(chunk);
        &self.groups[group].get().expect("directory of a live chunk")[idx]
    }

    #[inline]
    fn chunk_slot_opt(&self, chunk: u32) -> Option<&ChunkSlot> {
        let (group, idx) = group_of(chunk);
        self.groups[group].get().map(|slots| &slots[idx])
    }

    #[inline]
    fn slot_of(&self, id: u32) -> (&ChunkSlot, usize) {
        (
            self.chunk_slot(id >> CHUNK_BITS),
            (id & (CHUNK_LEN as u32 - 1)) as usize,
        )
    }

    /// Bump-allocates a fresh id for `var` from its active chunk, acquiring
    /// a new chunk when the active one is full (or absent).  The fast path
    /// is one acquire load and one `fetch_add`; overshoot increments past
    /// [`CHUNK_LEN`] never mint an id (the winner thread of the overshoot
    /// falls through to the cold acquisition path).
    pub(crate) fn bump(&self, var: u32) -> u32 {
        loop {
            let chunk = self.active[var as usize].load(Ordering::Acquire);
            if chunk != NO_CHUNK {
                let slot = self.chunk_slot(chunk);
                let n = slot.used.fetch_add(1, Ordering::Relaxed);
                if n < CHUNK_LEN as u32 {
                    return (chunk << CHUNK_BITS) | n;
                }
            }
            self.acquire_chunk(var);
        }
    }

    /// Serial-flavour bump: load/store pairs instead of `fetch_add`.
    /// Sound only under the single-thread contract of the serial kernel
    /// flavour (see the module docs).
    pub(crate) fn bump_serial(&self, var: u32) -> u32 {
        loop {
            let chunk = self.active[var as usize].load(Ordering::Relaxed);
            if chunk != NO_CHUNK {
                let slot = self.chunk_slot(chunk);
                let n = slot.used.load(Ordering::Relaxed);
                if n < CHUNK_LEN as u32 {
                    slot.used.store(n + 1, Ordering::Relaxed);
                    return (chunk << CHUNK_BITS) | n;
                }
            }
            self.acquire_chunk(var);
        }
    }

    /// Installs a fresh (or recycled) chunk as `var`'s active chunk.  The
    /// chunk-directory mutex serialises acquisitions; it is a leaf lock
    /// (nothing blocks while holding it), so taking it under a subtable
    /// read guard — `mk` allocates inside its probe — cannot deadlock.
    #[cold]
    fn acquire_chunk(&self, var: u32) {
        let mut state = self.chunk_state.lock().expect("chunk directory lock");
        // Double-check under the lock: a racing thread may have already
        // installed a fresh chunk for this variable.
        let current = self.active[var as usize].load(Ordering::Relaxed);
        if current != NO_CHUNK
            && self.chunk_slot(current).used.load(Ordering::Relaxed) < CHUNK_LEN as u32
        {
            return;
        }
        let chunk = state.recycled.pop().unwrap_or_else(|| {
            let chunk = state.next;
            assert!(chunk < MAX_CHUNKS, "node arena overflow (2^31 node ids)");
            state.next = chunk + 1;
            self.watermark.store(state.next, Ordering::Relaxed);
            chunk
        });
        let slot = self.ensure_chunk(chunk);
        slot.owner.store(var, Ordering::Relaxed);
        slot.used.store(0, Ordering::Relaxed);
        slot.cells.get_or_init(|| {
            self.mem.add(CHUNK_LEN * 8);
            zero_cells()
        });
        // Release-publish: pairs with the acquire load in `bump`, making
        // the owner/used/cells writes above visible to every allocator.
        self.active[var as usize].store(chunk, Ordering::Release);
    }

    /// The owner variable of `id`'s chunk (the free-list homing key; equals
    /// the node's variable except in mixed, sidecar-carrying chunks).
    #[inline]
    pub(crate) fn chunk_owner(&self, id: u32) -> u32 {
        self.chunk_slot(id >> CHUNK_BITS)
            .owner
            .load(Ordering::Relaxed)
    }

    #[inline]
    pub(crate) fn var_of(&self, id: u32) -> u32 {
        let (slot, offset) = self.slot_of(id);
        match slot.vars.get() {
            Some(vars) => vars[offset].load(Ordering::Relaxed),
            None => slot.owner.load(Ordering::Relaxed),
        }
    }

    #[inline]
    pub(crate) fn low_of(&self, id: u32) -> NodeId {
        NodeId::from_bits((self.children_of(id) >> 32) as u32)
    }

    #[inline]
    pub(crate) fn high_of(&self, id: u32) -> NodeId {
        NodeId::from_bits(self.children_of(id) as u32)
    }

    /// The packed children of `id` — one 8-byte load, the unique-table
    /// probe key.
    #[inline]
    pub(crate) fn children_of(&self, id: u32) -> u64 {
        let (slot, offset) = self.slot_of(id);
        slot.cells.get().expect("cells of a live id")[offset].load(Ordering::Relaxed)
    }

    #[inline]
    pub(crate) fn get(&self, id: u32) -> Node {
        let (slot, offset) = self.slot_of(id);
        let children =
            slot.cells.get().expect("cells of a live id")[offset].load(Ordering::Relaxed);
        let var = match slot.vars.get() {
            Some(vars) => vars[offset].load(Ordering::Relaxed),
            None => slot.owner.load(Ordering::Relaxed),
        };
        Node {
            var,
            low: NodeId::from_bits((children >> 32) as u32),
            high: NodeId::from_bits(children as u32),
        }
    }

    /// Writes a node's fields.  Safe in the shared phase only for ids that
    /// have not been published yet (the speculative half of `mk`).  The
    /// node's variable must match the chunk owner unless the chunk already
    /// carries a sidecar — which the allocation discipline guarantees:
    /// `mk(var, …)` only allocates ids homed under `var`.
    #[inline]
    pub(crate) fn write(&self, id: u32, node: Node) {
        let (slot, offset) = self.slot_of(id);
        slot.cells.get().expect("cells of a live id")[offset]
            .store(pack_children(node.low, node.high), Ordering::Relaxed);
        if let Some(vars) = slot.vars.get() {
            vars[offset].store(node.var, Ordering::Relaxed);
        } else {
            debug_assert_eq!(
                slot.owner.load(Ordering::Relaxed),
                node.var,
                "shared-phase write must match the chunk owner"
            );
        }
    }

    /// Rewrites a node in place with a possibly different variable (the
    /// reordering relabel).  Exclusive phase only: materialises the chunk's
    /// variable sidecar on first cross-variable write (every cell starts as
    /// the owner, so the other nodes keep their labels).
    pub(crate) fn write_relabel(&self, id: u32, node: Node) {
        let (slot, offset) = self.slot_of(id);
        slot.cells.get().expect("cells of a live id")[offset]
            .store(pack_children(node.low, node.high), Ordering::Relaxed);
        let owner = slot.owner.load(Ordering::Relaxed);
        if node.var != owner && slot.vars.get().is_none() {
            slot.vars.get_or_init(|| {
                self.mem.add(CHUNK_LEN * 4);
                (0..CHUNK_LEN).map(|_| AtomicU32::new(owner)).collect()
            });
        }
        if let Some(vars) = slot.vars.get() {
            vars[offset].store(node.var, Ordering::Relaxed);
        }
    }

    /// Calls `f(id)` for every id ever handed out and still backed by
    /// cells (freed-but-unreclaimed ids included; released chunks
    /// skipped).  Exclusive phase.
    pub(crate) fn for_each_allocated(&self, mut f: impl FnMut(u32)) {
        let watermark = self.watermark.load(Ordering::Relaxed);
        for chunk in 1..watermark {
            let Some(slot) = self.chunk_slot_opt(chunk) else {
                continue;
            };
            if slot.cells.get().is_none() {
                continue;
            }
            let used = (slot.used.load(Ordering::Relaxed) as usize).min(CHUNK_LEN);
            let base = chunk << CHUNK_BITS;
            for offset in 0..used as u32 {
                f(base | offset);
            }
        }
    }

    /// The number of allocated node slots (live + freed, terminal and the
    /// terminal chunk's padding excluded) across all live chunks.
    pub(crate) fn allocated_slots(&self) -> usize {
        let mut total = 0usize;
        self.for_each_allocated(|_| total += 1);
        total
    }

    /// Retained arena bytes: live chunk cell arrays plus sidecars plus the
    /// chunk directory.  (A subset of [`MemTracker::bytes`], which also
    /// counts subtables and op caches.)  Returns `(cell_bytes,
    /// sidecar_bytes)`.
    pub(crate) fn arena_bytes(&self) -> (usize, usize) {
        let watermark = self.watermark.load(Ordering::Relaxed);
        let mut cells = 0usize;
        let mut sidecars = 0usize;
        for chunk in 0..watermark {
            let Some(slot) = self.chunk_slot_opt(chunk) else {
                continue;
            };
            if slot.cells.get().is_some() {
                cells += CHUNK_LEN * 8;
            }
            if slot.vars.get().is_some() {
                sidecars += CHUNK_LEN * 4;
            }
        }
        (cells, sidecars)
    }

    /// The generational sweep (exclusive phase): walks every chunk against
    /// the GC mark bitmap and returns `(live_ids, per_var_free_lists)`.
    /// Chunks with no survivors are released (cells and sidecar dropped,
    /// index recycled); mixed chunks whose survivors share one variable are
    /// re-owned to it and lose their sidecar; dead cells of surviving
    /// chunks are homed under the chunk's final owner.  See the module docs
    /// for the soundness argument.
    pub(crate) fn sweep(&mut self, marked: &[bool]) -> (Vec<u32>, Vec<Vec<u32>>) {
        let num_vars = self.active.len();
        let watermark = self.watermark.load(Ordering::Relaxed);
        let mut live_ids = Vec::new();
        let mut free = vec![Vec::new(); num_vars];
        let mut to_release = Vec::new();
        let mut to_reown: Vec<(u32, u32)> = Vec::new();
        for chunk in 1..watermark {
            let Some(slot) = self.chunk_slot_opt(chunk) else {
                continue;
            };
            if slot.cells.get().is_none() {
                continue;
            }
            let used = (slot.used.load(Ordering::Relaxed) as usize).min(CHUNK_LEN);
            let base = chunk << CHUNK_BITS;
            let live_before = live_ids.len();
            let mut shared_var: Option<u32> = None;
            let mut mixed_live = false;
            for offset in 0..used as u32 {
                let id = base | offset;
                if marked[id as usize] {
                    live_ids.push(id);
                    if slot.vars.get().is_some() {
                        let var = self.var_of(id);
                        match shared_var {
                            None => shared_var = Some(var),
                            Some(v) if v != var => mixed_live = true,
                            Some(_) => {}
                        }
                    }
                }
            }
            if live_ids.len() == live_before {
                // No survivors: the whole generation is handed back.
                to_release.push(chunk);
                continue;
            }
            let mut owner = slot.owner.load(Ordering::Relaxed);
            if slot.vars.get().is_some() && !mixed_live {
                // The survivors agree on one variable: restore the compact
                // single-owner form.
                to_reown.push((chunk, shared_var.expect("chunk has survivors")));
                owner = shared_var.expect("chunk has survivors");
            }
            for offset in 0..used as u32 {
                let id = base | offset;
                if !marked[id as usize] {
                    free[owner as usize].push(id);
                }
            }
        }
        for (chunk, new_owner) in to_reown {
            let (group, idx) = group_of(chunk);
            let slot = &mut self.groups[group].get_mut().expect("live chunk")[idx];
            if slot.vars.take().is_some() {
                self.mem.sub(CHUNK_LEN * 4);
            }
            let old_owner = *slot.owner.get_mut();
            *slot.owner.get_mut() = new_owner;
            if old_owner != new_owner {
                // The old owner's bump path must not keep filling a chunk
                // that now belongs to another variable.
                let active = self.active[old_owner as usize].get_mut();
                if *active == chunk {
                    *active = NO_CHUNK;
                }
            }
        }
        for chunk in to_release {
            self.release_chunk(chunk);
        }
        (live_ids, free)
    }

    /// Releases one chunk: drops its arrays (returning the memory), clears
    /// the owner's stale active pointer, poisons `used` so no stale bump
    /// fast path could ever mint an id here, and recycles the index.
    fn release_chunk(&mut self, chunk: u32) {
        let (group, idx) = group_of(chunk);
        let slot = &mut self.groups[group].get_mut().expect("live chunk")[idx];
        if slot.cells.take().is_some() {
            self.mem.sub(CHUNK_LEN * 8);
        }
        if slot.vars.take().is_some() {
            self.mem.sub(CHUNK_LEN * 4);
        }
        let owner = *slot.owner.get_mut();
        *slot.used.get_mut() = CHUNK_LEN as u32;
        *slot.owner.get_mut() = NO_OWNER;
        if (owner as usize) < self.active.len() {
            let active = self.active[owner as usize].get_mut();
            if *active == chunk {
                *active = NO_CHUNK;
            }
        }
        self.chunk_state
            .get_mut()
            .expect("chunk directory lock")
            .recycled
            .push(chunk);
        self.chunks_reclaimed += 1;
    }
}

impl Clone for NodeArena {
    fn clone(&self) -> Self {
        let (next, recycled) = {
            let state = self.chunk_state.lock().expect("chunk directory lock");
            (state.next, state.recycled.clone())
        };
        let arena = Self {
            groups: std::array::from_fn(|_| OnceLock::new()),
            active: self
                .active
                .iter()
                .map(|a| AtomicU32::new(a.load(Ordering::Relaxed)))
                .collect(),
            watermark: AtomicU32::new(next),
            chunk_state: Mutex::new(ChunkState { next, recycled }),
            mem: MemTracker::new(),
            chunks_reclaimed: self.chunks_reclaimed,
        };
        for chunk in 0..next {
            let Some(src) = self.chunk_slot_opt(chunk) else {
                continue;
            };
            let dst = arena.ensure_chunk(chunk);
            dst.owner
                .store(src.owner.load(Ordering::Relaxed), Ordering::Relaxed);
            dst.used
                .store(src.used.load(Ordering::Relaxed), Ordering::Relaxed);
            if let Some(cells) = src.cells.get() {
                let copied: Box<[AtomicU64]> = cells
                    .iter()
                    .map(|c| AtomicU64::new(c.load(Ordering::Relaxed)))
                    .collect();
                let _ = dst.cells.set(copied);
            }
            if let Some(vars) = src.vars.get() {
                let copied: Box<[AtomicU32]> = vars
                    .iter()
                    .map(|v| AtomicU32::new(v.load(Ordering::Relaxed)))
                    .collect();
                let _ = dst.vars.set(copied);
            }
        }
        // The byte totals carry over verbatim (they also cover subtable and
        // cache charges the clone's other fields replicate size-for-size).
        arena.mem.copy_from(&self.mem);
        arena
    }
}

// ---------------------------------------------------------------------- //
// Per-variable unique subtables (the unique-table shards)
// ---------------------------------------------------------------------- //

/// Sentinel id marking an empty unique-table slot (regular node ids never
/// reach bit 31, so this cannot collide with a live id).
pub(crate) const EMPTY_SLOT: u32 = u32::MAX;

/// Initial per-variable subtable capacity (slots, power of two).
const SUBTABLE_INITIAL_CAPACITY: usize = 1 << 3;

/// Bytes of one subtable's slot array at `capacity`.
pub(crate) fn subtable_slot_bytes(capacity: usize) -> usize {
    capacity * std::mem::size_of::<AtomicU32>()
}

/// The hash-consing shard of one variable: an open-addressed, linear-probed
/// power-of-two array of atomic node ids — 4 bytes per slot; the probe key
/// is re-derived from the arena (`children_of`, one 8-byte load) instead of
/// a stored hash tag.  Lookups and CAS inserts share the `RwLock`'s read
/// side; only growth (doubling) takes the write side.  Deletion
/// (backward-shift, needed by reordering) and wholesale rebuilds are
/// exclusive-phase operations.
#[derive(Debug)]
pub(crate) struct SubTable {
    slots: RwLock<Box<[AtomicU32]>>,
    len: AtomicUsize,
}

fn empty_slots(capacity: usize) -> Box<[AtomicU32]> {
    (0..capacity).map(|_| AtomicU32::new(EMPTY_SLOT)).collect()
}

/// Outcome of [`SubTable::find_or_publish`].
pub(crate) enum Consed {
    /// The key resolved to a canonical node.  `created` says whether the
    /// caller's speculative node won the publication; `rollback` carries a
    /// speculative id that lost the race and must be returned to the free
    /// list by the caller (it was never published, so nothing can
    /// reference it).
    Done {
        id: u32,
        created: bool,
        rollback: Option<u32>,
    },
    /// The probe wrapped the entire slot array without finding the key or
    /// an empty slot.  Possible only transiently, when concurrent inserts
    /// fill the table faster than the post-insert growth keeps up: the
    /// caller must release, grow the subtable and retry (re-passing the
    /// speculative id so at most one node is ever allocated per `mk`).
    TableFull { speculative: Option<u32> },
}

impl SubTable {
    pub(crate) fn new() -> Self {
        Self {
            slots: RwLock::new(empty_slots(SUBTABLE_INITIAL_CAPACITY)),
            len: AtomicUsize::new(0),
        }
    }

    /// The initial slot-array bytes a fresh subtable retains (charged by
    /// the manager, which owns the tracker).
    pub(crate) fn initial_bytes() -> usize {
        subtable_slot_bytes(SUBTABLE_INITIAL_CAPACITY)
    }

    /// Number of live nodes labelled with this subtable's variable.
    pub(crate) fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// The current slot-array capacity in bytes.
    pub(crate) fn slot_bytes(&self) -> usize {
        subtable_slot_bytes(self.slots.read().expect("subtable lock").len())
    }

    /// Looks up the node with the given packed children.
    pub(crate) fn lookup(&self, arena: &NodeArena, children: u64) -> Option<u32> {
        let slots = self.slots.read().expect("subtable lock");
        let mask = slots.len() - 1;
        let mut idx = mix64(children) as usize & mask;
        loop {
            let id = slots[idx].load(Ordering::Acquire);
            if id == EMPTY_SLOT {
                return None;
            }
            if arena.children_of(id) == children {
                return Some(id);
            }
            idx = (idx + 1) & mask;
        }
    }

    /// The concurrent hash-consing step: finds `children`, or publishes the
    /// node `alloc()` allocates for it.  `alloc` is called at most once
    /// across retries — lazily, only when an empty slot is reached and no
    /// `speculative` id from an earlier [`Consed::TableFull`] attempt is
    /// supplied — and its node must carry exactly these children.  The
    /// probe is bounded by the slot count: a wrap without resolution (a
    /// transiently 100%-full table under concurrent insertion) returns
    /// [`Consed::TableFull`] *after releasing the read guard*, so the
    /// caller's grow — and every other thread's — can always make
    /// progress.  See the module docs for the race argument.
    pub(crate) fn find_or_publish(
        &self,
        arena: &NodeArena,
        children: u64,
        speculative_in: Option<u32>,
        alloc: impl FnOnce() -> u32,
        stats: &StatShard,
    ) -> Consed {
        let slots = self.slots.read().expect("subtable lock");
        let mask = slots.len() - 1;
        let mut idx = mix64(children) as usize & mask;
        let mut probed = 0usize;
        let mut speculative: Option<u32> = speculative_in;
        let mut alloc = Some(alloc);
        loop {
            let found = slots[idx].load(Ordering::Acquire);
            if found == EMPTY_SLOT {
                let id = match speculative {
                    Some(id) => id,
                    None => {
                        let id = (alloc.take().expect("alloc is called once"))();
                        speculative = Some(id);
                        id
                    }
                };
                match slots[idx].compare_exchange(
                    EMPTY_SLOT,
                    id,
                    Ordering::Release,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        self.len.fetch_add(1, Ordering::Relaxed);
                        return Consed::Done {
                            id,
                            created: true,
                            rollback: None,
                        };
                    }
                    Err(_) => {
                        // Another thread claimed this slot; re-inspect it.
                        bump(&stats.unique_cas_retries);
                        continue;
                    }
                }
            }
            if arena.children_of(found) == children {
                return Consed::Done {
                    id: found,
                    created: false,
                    rollback: speculative,
                };
            }
            idx = (idx + 1) & mask;
            probed += 1;
            if probed > mask {
                // Visited every slot: the table filled up under us.
                return Consed::TableFull { speculative };
            }
        }
    }

    /// The serial-flavour hash-consing step: one probe walk that remembers
    /// the first empty slot and plain-stores the new id into it on a miss —
    /// no speculation, no CAS, no rollback (the allocator runs only once
    /// the miss is certain, so a node is never allocated for an existing
    /// key).  Returns `(id, created)`, or `None` when the walk wrapped the
    /// full slot array without finding the key or an empty slot (the caller
    /// grows and retries, exactly like the shared path).  Sound only under
    /// the single-thread contract of the serial kernel flavour (see the
    /// module docs).
    pub(crate) fn find_or_insert_serial(
        &self,
        arena: &NodeArena,
        children: u64,
        alloc: impl FnOnce() -> u32,
    ) -> Option<(u32, bool)> {
        let slots = self.slots.read().expect("subtable lock");
        let mask = slots.len() - 1;
        let mut idx = mix64(children) as usize & mask;
        let mut probed = 0usize;
        loop {
            let found = slots[idx].load(Ordering::Relaxed);
            if found == EMPTY_SLOT {
                let id = alloc();
                slots[idx].store(id, Ordering::Relaxed);
                let len = self.len.load(Ordering::Relaxed);
                self.len.store(len + 1, Ordering::Relaxed);
                return Some((id, true));
            }
            if arena.children_of(found) == children {
                return Some((found, false));
            }
            idx = (idx + 1) & mask;
            probed += 1;
            if probed > mask {
                return None;
            }
        }
    }

    /// Whether the subtable is past its 3/4 load factor (growth is the
    /// caller's job, *after* releasing any probe in flight).
    pub(crate) fn overloaded(&self) -> bool {
        let capacity = self.slots.read().expect("subtable lock").len();
        (self.len() + 1) * 4 > capacity * 3
    }

    /// Pre-grows the slot array until `additional` further inserts cannot
    /// push the table past its load factor.  The parallel reorder batch
    /// reserves its worst case up front so the probe sessions
    /// ([`SubTable::probe_session`]) never need a growth path.
    pub(crate) fn grow_for(&self, arena: &NodeArena, additional: usize) {
        let needed = (self.len() + additional + 1) * 4;
        let mut slots = self.slots.write().expect("subtable lock");
        let mut capacity = slots.len();
        if needed <= capacity * 3 {
            return;
        }
        let before = capacity;
        while needed > capacity * 3 {
            capacity *= 2;
        }
        arena
            .mem()
            .add(subtable_slot_bytes(capacity) - subtable_slot_bytes(before));
        let bigger = empty_slots(capacity);
        let mask = capacity - 1;
        for slot in slots.iter() {
            let id = slot.load(Ordering::Relaxed);
            if id == EMPTY_SLOT {
                continue;
            }
            let hash = mix64(arena.children_of(id));
            let mut idx = hash as usize & mask;
            while bigger[idx].load(Ordering::Relaxed) != EMPTY_SLOT {
                idx = (idx + 1) & mask;
            }
            bigger[idx].store(id, Ordering::Relaxed);
        }
        *slots = bigger;
    }

    /// Runs `f` with a probe handle that re-uses a **single** read-guard
    /// acquisition for every cons under it.  The per-call `RwLock` read in
    /// [`SubTable::find_or_publish`] is two RMWs on one cache line — cheap
    /// uncontended, but the line ping-pongs when the parallel reorder
    /// batch conses thousands of nodes into the *same* subtable from every
    /// worker.  The caller must have [`SubTable::grow_for`]-reserved
    /// enough headroom first: the handle has no growth path (growing
    /// needs the write lock the session is read-holding).
    pub(crate) fn probe_session<R>(&self, f: impl FnOnce(&SubTableProber) -> R) -> R {
        let slots = self.slots.read().expect("subtable lock");
        f(&SubTableProber { slots: &slots })
    }

    /// Applies a batch of deferred length updates (see
    /// [`SubTableProber::find_or_publish`]).
    pub(crate) fn len_add(&self, n: usize) {
        self.len.fetch_add(n, Ordering::Relaxed);
    }

    /// Doubles the slot array, rehashing every live entry.  Takes the write
    /// lock, so it waits for in-flight probes and blocks new ones.  Returns
    /// `false` when a racing grow already did the job.
    #[cold]
    pub(crate) fn grow(&self, arena: &NodeArena) -> bool {
        let mut slots = self.slots.write().expect("subtable lock");
        if (self.len() + 1) * 4 <= slots.len() * 3 {
            return false;
        }
        arena.mem().add(subtable_slot_bytes(slots.len()));
        let doubled = empty_slots(slots.len() * 2);
        let mask = doubled.len() - 1;
        for slot in slots.iter() {
            let id = slot.load(Ordering::Relaxed);
            if id == EMPTY_SLOT {
                continue;
            }
            let hash = mix64(arena.children_of(id));
            let mut idx = hash as usize & mask;
            while doubled[idx].load(Ordering::Relaxed) != EMPTY_SLOT {
                idx = (idx + 1) & mask;
            }
            doubled[idx].store(id, Ordering::Relaxed);
        }
        *slots = doubled;
        true
    }

    // ------------------------------------------------------------------ //
    // Exclusive-phase operations (&mut Manager ⇒ sole access)
    // ------------------------------------------------------------------ //

    /// Inserts `(children, id)`, which must not already be present
    /// (exclusive phase: GC rebuild, reordering).
    pub(crate) fn insert_exclusive(&mut self, arena: &NodeArena, children: u64, id: u32) {
        if (self.len() + 1) * 4 > self.slots.get_mut().expect("subtable lock").len() * 3 {
            self.grow(arena);
        }
        let slots = self.slots.get_mut().expect("subtable lock");
        let mask = slots.len() - 1;
        let mut idx = mix64(children) as usize & mask;
        while slots[idx].load(Ordering::Relaxed) != EMPTY_SLOT {
            idx = (idx + 1) & mask;
        }
        slots[idx].store(id, Ordering::Relaxed);
        self.len.fetch_add(1, Ordering::Relaxed);
    }

    /// Removes the entry for `children` (which must be present) by
    /// backward-shift deletion: subsequent probe-chain entries are moved up
    /// while doing so keeps them reachable from their home slot, so lookups
    /// never need tombstones.  Exclusive phase only (reordering).
    pub(crate) fn remove_exclusive(&mut self, arena: &NodeArena, children: u64) {
        let slots = self.slots.get_mut().expect("subtable lock");
        let mask = slots.len() - 1;
        let mut idx = mix64(children) as usize & mask;
        loop {
            let id = slots[idx].load(Ordering::Relaxed);
            debug_assert!(
                id != EMPTY_SLOT,
                "removing a key that is not in the subtable"
            );
            if id != EMPTY_SLOT && arena.children_of(id) == children {
                break;
            }
            idx = (idx + 1) & mask;
        }
        let mut hole = idx;
        let mut probe = idx;
        loop {
            probe = (probe + 1) & mask;
            let id = slots[probe].load(Ordering::Relaxed);
            if id == EMPTY_SLOT {
                break;
            }
            // The entry at `probe` may move into the hole iff its home slot
            // is not cyclically inside (hole, probe] — otherwise the move
            // would put it before its home and break its probe chain.
            let home = mix64(arena.children_of(id)) as usize & mask;
            let in_gap = if hole <= probe {
                home > hole && home <= probe
            } else {
                home > hole || home <= probe
            };
            if !in_gap {
                slots[hole].store(id, Ordering::Relaxed);
                hole = probe;
            }
        }
        slots[hole].store(EMPTY_SLOT, Ordering::Relaxed);
        self.len.fetch_sub(1, Ordering::Relaxed);
    }

    /// Empties the subtable, keeping its capacity (exclusive phase).
    pub(crate) fn clear_exclusive(&mut self) {
        for slot in self.slots.get_mut().expect("subtable lock").iter_mut() {
            *slot.get_mut() = EMPTY_SLOT;
        }
        self.len.store(0, Ordering::Relaxed);
    }

    /// The live node ids in the subtable, collected under the read lock.
    pub(crate) fn ids(&self) -> Vec<u32> {
        self.slots
            .read()
            .expect("subtable lock")
            .iter()
            .map(|slot| slot.load(Ordering::Relaxed))
            .filter(|&id| id != EMPTY_SLOT)
            .collect()
    }
}

impl Clone for SubTable {
    fn clone(&self) -> Self {
        let slots = self.slots.read().expect("subtable lock");
        // Acquire loads pair with the publication CAS, so every id the
        // cloned slots carry has fully visible node fields even if the
        // clone races a shared-phase insert.
        let copied: Box<[AtomicU32]> = slots
            .iter()
            .map(|slot| AtomicU32::new(slot.load(Ordering::Acquire)))
            .collect();
        let len = copied
            .iter()
            .filter(|slot| slot.load(Ordering::Relaxed) != EMPTY_SLOT)
            .count();
        Self {
            slots: RwLock::new(copied),
            len: AtomicUsize::new(len),
        }
    }
}

/// A probe handle over one subtable's slot array that amortises the read
/// guard across a whole batch of cons calls (see
/// [`SubTable::probe_session`]).  Safe only after a matching
/// [`SubTable::grow_for`] reservation: with headroom guaranteed, a probe
/// walk can never wrap, so the handle needs no growth (or [`Consed`]
/// retry) path.
pub(crate) struct SubTableProber<'a> {
    slots: &'a [AtomicU32],
}

impl SubTableProber<'_> {
    /// The shared-flavour hash-consing step without the per-call guard
    /// acquisition or length update: finds `children` or CAS-publishes the
    /// node `alloc()` allocates for it.  Returns `(id, created,
    /// rollback)`; a `Some(rollback)` id lost a publication race and must
    /// be returned to the free list.  The caller batches the subtable
    /// length update ([`SubTable::len_add`]) from its `created` count.
    pub(crate) fn find_or_publish(
        &self,
        arena: &NodeArena,
        children: u64,
        alloc: impl FnOnce() -> u32,
        stats: &StatShard,
    ) -> (u32, bool, Option<u32>) {
        let slots = self.slots;
        let mask = slots.len() - 1;
        let mut idx = mix64(children) as usize & mask;
        let mut probed = 0usize;
        let mut speculative: Option<u32> = None;
        let mut alloc = Some(alloc);
        loop {
            let found = slots[idx].load(Ordering::Acquire);
            if found == EMPTY_SLOT {
                let id = match speculative {
                    Some(id) => id,
                    None => {
                        let id = (alloc.take().expect("alloc is called once"))();
                        speculative = Some(id);
                        id
                    }
                };
                match slots[idx].compare_exchange(
                    EMPTY_SLOT,
                    id,
                    Ordering::Release,
                    Ordering::Acquire,
                ) {
                    Ok(_) => return (id, true, None),
                    Err(_) => {
                        // Another thread claimed this slot; re-inspect it.
                        bump(&stats.unique_cas_retries);
                        continue;
                    }
                }
            }
            if arena.children_of(found) == children {
                return (found, false, speculative);
            }
            idx = (idx + 1) & mask;
            probed += 1;
            assert!(
                probed <= mask,
                "probe session wrapped: the batch was not grow_for-reserved"
            );
        }
    }
}

// ---------------------------------------------------------------------- //
// Seqlock-protected lossy operation caches
// ---------------------------------------------------------------------- //

/// Initial entry count (log2) of the direct-mapped caches.
pub(crate) const CACHE_INITIAL_LOG2: u32 = 12;
/// Default growth cap (log2): a fully grown cache stays at a couple of MiB.
pub(crate) const CACHE_DEFAULT_MAX_LOG2: u32 = 16;
/// Absolute cap (log2) the GC-time auto-tuner may raise the limit to.
pub(crate) const CACHE_HARD_MAX_LOG2: u32 = 20;

/// A lossy direct-mapped memoisation cache safe for concurrent use.
///
/// Entry layouts (`width = stride + 1` words per entry):
/// * stride 2 (`and`/`xor`, `cofactor`, `flip`): `[seq, key, epoch<<32|result]`
/// * stride 3 (`ite`, `xor3`, `maj`, `mux`): `[seq, k0, k1, epoch<<32|result]`
///
/// The leading `seq` word is a per-entry seqlock: writers claim the entry by
/// CASing an even sequence to odd (claim failure just drops the store — a
/// lossy cache may always forget), write the data words relaxed, and release
/// with `seq + 2`.  Readers verify the sequence word is even and unchanged
/// around their reads; any torn read is a miss.  Entries never lie.
///
/// Growth is *deferred*: misses decrement `grow_budget`, and the manager
/// doubles exhausted caches during the next exclusive phase
/// ([`crate::Manager::maybe_grow_caches`]); until then the cache keeps
/// serving at its current size.
#[derive(Debug)]
pub(crate) struct DirectCache {
    words: Box<[AtomicU64]>,
    /// Entry-index mask (entry count − 1).  Mutated only in the exclusive
    /// phase, in lockstep with `words`.
    mask: usize,
    /// Data words per entry (2 or 3); the stored width is `stride + 1`.
    stride: usize,
    /// Misses remaining until the next doubling is requested; at most 0
    /// means "grow at the next exclusive phase".
    grow_budget: std::sync::atomic::AtomicI64,
    /// Current growth cap (log2 entries); raised by the GC auto-tuner.
    pub(crate) max_log2: u32,
}

#[inline]
fn meta(epoch: u32, result: NodeId) -> u64 {
    ((epoch as u64) << 32) | result.to_bits() as u64
}

#[inline]
fn meta_epoch(word: u64) -> u32 {
    (word >> 32) as u32
}

#[inline]
fn meta_result(word: u64) -> NodeId {
    NodeId::from_bits(word as u32)
}

fn zero_words(entries: usize, width: usize) -> Box<[AtomicU64]> {
    (0..entries * width).map(|_| AtomicU64::new(0)).collect()
}

impl DirectCache {
    pub(crate) fn new(stride: usize) -> Self {
        let entries = 1usize << CACHE_INITIAL_LOG2;
        Self {
            words: zero_words(entries, stride + 1),
            mask: entries - 1,
            stride,
            grow_budget: std::sync::atomic::AtomicI64::new(entries as i64),
            max_log2: CACHE_DEFAULT_MAX_LOG2,
        }
    }

    /// The retained bytes of the word array (byte-budget accounting).
    pub(crate) fn bytes(&self) -> usize {
        self.words.len() * 8
    }

    #[inline]
    fn base(&self, hash: u64) -> usize {
        (hash as usize & self.mask) * (self.stride + 1)
    }

    /// Called once per store (= once per miss): requests a doubling when
    /// the miss volume since the last resize exceeds the current capacity.
    #[inline]
    fn note_miss(&self) {
        self.grow_budget.fetch_sub(1, Ordering::Relaxed);
    }

    /// Serial-flavour miss accounting: a load/store pair instead of
    /// `fetch_sub` (single-thread contract, see the module docs).
    #[inline]
    fn note_miss_serial(&self) {
        let budget = self.grow_budget.load(Ordering::Relaxed);
        self.grow_budget.store(budget - 1, Ordering::Relaxed);
    }

    /// Whether the miss budget ran out (the exclusive phase grows then).
    pub(crate) fn wants_growth(&self) -> bool {
        self.grow_budget.load(Ordering::Relaxed) <= 0 && self.mask + 1 < (1usize << self.max_log2)
    }

    /// Raises the growth cap (GC-time auto-tuning).  A cache that had
    /// saturated its previous cap gets its miss budget re-armed so renewed
    /// pressure can trigger the next doubling.
    pub(crate) fn raise_cap(&mut self, max_log2: u32) {
        if max_log2 > self.max_log2 {
            self.max_log2 = max_log2;
            if *self.grow_budget.get_mut() == i64::MAX {
                *self.grow_budget.get_mut() = (self.mask + 1) as i64;
            }
        }
    }

    /// Doubles the entry count (exclusive phase), rehashing live entries
    /// into the new array (every entry stores its full key, so nothing warm
    /// is lost; colliding pairs resolve lossily as usual).
    #[cold]
    pub(crate) fn grow(&mut self) {
        let entries = self.mask + 1;
        if entries >= (1usize << self.max_log2) {
            self.grow_budget.store(i64::MAX, Ordering::Relaxed);
            return;
        }
        let width = self.stride + 1;
        let doubled = entries * 2;
        let mask = doubled - 1;
        let words = zero_words(doubled, width);
        for base in (0..self.words.len()).step_by(width) {
            let meta_word = self.words[base + width - 1].load(Ordering::Relaxed);
            if meta_word == 0 {
                continue;
            }
            let k0 = self.words[base + 1].load(Ordering::Relaxed);
            let hash = if self.stride == 2 {
                mix64(k0)
            } else {
                mix64(k0 ^ mix64(self.words[base + 2].load(Ordering::Relaxed)))
            };
            let new_base = (hash as usize & mask) * width;
            for offset in 0..width {
                words[new_base + offset].store(
                    self.words[base + offset].load(Ordering::Relaxed),
                    Ordering::Relaxed,
                );
            }
        }
        self.words = words;
        self.mask = mask;
        self.grow_budget.store(doubled as i64, Ordering::Relaxed);
    }

    /// Zeroes every entry (exclusive phase; epoch-wrap fallback).
    pub(crate) fn reset(&mut self) {
        for word in self.words.iter_mut() {
            *word.get_mut() = 0;
        }
    }

    /// Looks up a stride-2 entry.
    #[inline]
    pub(crate) fn probe2(&self, epoch: u32, key: u64) -> Option<NodeId> {
        let base = self.base(mix64(key));
        let seq = self.words[base].load(Ordering::Acquire);
        if seq & 1 == 1 {
            return None;
        }
        let found_key = self.words[base + 1].load(Ordering::Relaxed);
        let found_meta = self.words[base + 2].load(Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::Acquire);
        if self.words[base].load(Ordering::Relaxed) != seq {
            return None;
        }
        if found_key == key && meta_epoch(found_meta) == epoch {
            Some(meta_result(found_meta))
        } else {
            None
        }
    }

    /// Stores a stride-2 entry, counting lossy overwrites (and dropped
    /// stores, when the entry is claimed by a racing writer) into `stats`.
    #[inline]
    pub(crate) fn store2(
        &self,
        stats: &AtomicCacheStats,
        shard: &StatShard,
        epoch: u32,
        key: u64,
        result: NodeId,
    ) {
        let base = self.base(mix64(key));
        self.note_miss();
        let seq = self.words[base].load(Ordering::Relaxed);
        if seq & 1 == 1
            || self.words[base]
                .compare_exchange(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
        {
            bump(&shard.cache_write_skips);
            return;
        }
        let old_key = self.words[base + 1].load(Ordering::Relaxed);
        let old_meta = self.words[base + 2].load(Ordering::Relaxed);
        if meta_epoch(old_meta) == epoch && old_key != key {
            bump(&stats.evictions);
        }
        self.words[base + 1].store(key, Ordering::Relaxed);
        self.words[base + 2].store(meta(epoch, result), Ordering::Relaxed);
        self.words[base].store(seq + 2, Ordering::Release);
    }

    /// Serial-flavour stride-2 lookup: reads the key/value words directly
    /// and ignores the per-entry sequence word (a quiescent entry is always
    /// released, so the words are consistent — see the module docs).
    #[inline]
    pub(crate) fn probe2_serial(&self, epoch: u32, key: u64) -> Option<NodeId> {
        let base = self.base(mix64(key));
        let found_key = self.words[base + 1].load(Ordering::Relaxed);
        let found_meta = self.words[base + 2].load(Ordering::Relaxed);
        if found_key == key && meta_epoch(found_meta) == epoch {
            Some(meta_result(found_meta))
        } else {
            None
        }
    }

    /// Serial-flavour stride-2 store: writes the key/value words directly,
    /// leaving the sequence word untouched (it stays even, so later
    /// shared-phase probes still validate normally).
    #[inline]
    pub(crate) fn store2_serial(
        &self,
        stats: &AtomicCacheStats,
        epoch: u32,
        key: u64,
        result: NodeId,
    ) {
        let base = self.base(mix64(key));
        self.note_miss_serial();
        let old_key = self.words[base + 1].load(Ordering::Relaxed);
        let old_meta = self.words[base + 2].load(Ordering::Relaxed);
        if meta_epoch(old_meta) == epoch && old_key != key {
            bump(&stats.evictions);
        }
        self.words[base + 1].store(key, Ordering::Relaxed);
        self.words[base + 2].store(meta(epoch, result), Ordering::Relaxed);
    }

    /// Looks up a stride-3 entry.
    #[inline]
    pub(crate) fn probe3(&self, epoch: u32, key_fg: u64, key_h: u64) -> Option<NodeId> {
        let base = self.base(mix64(key_fg ^ mix64(key_h)));
        let seq = self.words[base].load(Ordering::Acquire);
        if seq & 1 == 1 {
            return None;
        }
        let found_fg = self.words[base + 1].load(Ordering::Relaxed);
        let found_h = self.words[base + 2].load(Ordering::Relaxed);
        let found_meta = self.words[base + 3].load(Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::Acquire);
        if self.words[base].load(Ordering::Relaxed) != seq {
            return None;
        }
        if found_fg == key_fg && found_h == key_h && meta_epoch(found_meta) == epoch {
            Some(meta_result(found_meta))
        } else {
            None
        }
    }

    /// Stores a stride-3 entry.
    #[inline]
    pub(crate) fn store3(
        &self,
        stats: &AtomicCacheStats,
        shard: &StatShard,
        epoch: u32,
        key_fg: u64,
        key_h: u64,
        result: NodeId,
    ) {
        let base = self.base(mix64(key_fg ^ mix64(key_h)));
        self.note_miss();
        let seq = self.words[base].load(Ordering::Relaxed);
        if seq & 1 == 1
            || self.words[base]
                .compare_exchange(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
        {
            bump(&shard.cache_write_skips);
            return;
        }
        let old_fg = self.words[base + 1].load(Ordering::Relaxed);
        let old_h = self.words[base + 2].load(Ordering::Relaxed);
        let old_meta = self.words[base + 3].load(Ordering::Relaxed);
        if meta_epoch(old_meta) == epoch && (old_fg != key_fg || old_h != key_h) {
            bump(&stats.evictions);
        }
        self.words[base + 1].store(key_fg, Ordering::Relaxed);
        self.words[base + 2].store(key_h, Ordering::Relaxed);
        self.words[base + 3].store(meta(epoch, result), Ordering::Relaxed);
        self.words[base].store(seq + 2, Ordering::Release);
    }

    /// Serial-flavour stride-3 lookup (see [`DirectCache::probe2_serial`]).
    #[inline]
    pub(crate) fn probe3_serial(&self, epoch: u32, key_fg: u64, key_h: u64) -> Option<NodeId> {
        let base = self.base(mix64(key_fg ^ mix64(key_h)));
        let found_fg = self.words[base + 1].load(Ordering::Relaxed);
        let found_h = self.words[base + 2].load(Ordering::Relaxed);
        let found_meta = self.words[base + 3].load(Ordering::Relaxed);
        if found_fg == key_fg && found_h == key_h && meta_epoch(found_meta) == epoch {
            Some(meta_result(found_meta))
        } else {
            None
        }
    }

    /// Serial-flavour stride-3 store (see [`DirectCache::store2_serial`]).
    #[inline]
    pub(crate) fn store3_serial(
        &self,
        stats: &AtomicCacheStats,
        epoch: u32,
        key_fg: u64,
        key_h: u64,
        result: NodeId,
    ) {
        let base = self.base(mix64(key_fg ^ mix64(key_h)));
        self.note_miss_serial();
        let old_fg = self.words[base + 1].load(Ordering::Relaxed);
        let old_h = self.words[base + 2].load(Ordering::Relaxed);
        let old_meta = self.words[base + 3].load(Ordering::Relaxed);
        if meta_epoch(old_meta) == epoch && (old_fg != key_fg || old_h != key_h) {
            bump(&stats.evictions);
        }
        self.words[base + 1].store(key_fg, Ordering::Relaxed);
        self.words[base + 2].store(key_h, Ordering::Relaxed);
        self.words[base + 3].store(meta(epoch, result), Ordering::Relaxed);
    }
}

impl Clone for DirectCache {
    fn clone(&self) -> Self {
        Self {
            words: self
                .words
                .iter()
                .map(|word| AtomicU64::new(word.load(Ordering::Relaxed)))
                .collect(),
            mask: self.mask,
            stride: self.stride,
            grow_budget: std::sync::atomic::AtomicI64::new(
                self.grow_budget.load(Ordering::Relaxed),
            ),
            max_log2: self.max_log2,
        }
    }
}

// ---------------------------------------------------------------------- //
// Thread-sharded statistics
// ---------------------------------------------------------------------- //

/// Number of statistic shards (power of two).
pub(crate) const STAT_SHARDS: usize = 16;

/// Increments a statistics counter with a plain load/store pair instead of
/// an atomic read-modify-write.  Each thread is pinned to one shard, so a
/// shard counter has a single writer and the racy increment is exact up to
/// [`STAT_SHARDS`] concurrent threads (beyond that, slot collisions may
/// drop a *statistics* increment — never anything load-bearing).  On x86
/// this removes a `lock xadd` from every hot-path counter bump.
#[inline]
pub(crate) fn bump(counter: &AtomicU64) {
    counter.store(counter.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
}

/// Hit/miss/eviction counters of one operation cache, atomic flavour.
#[derive(Debug, Default)]
pub(crate) struct AtomicCacheStats {
    pub(crate) hits: AtomicU64,
    pub(crate) misses: AtomicU64,
    pub(crate) evictions: AtomicU64,
}

/// One shard of the hot-path counters, padded to its own cache lines so
/// concurrent threads do not bounce a shared line per increment.
#[derive(Debug, Default)]
#[repr(align(128))]
pub(crate) struct StatShard {
    /// Indexed like [`crate::ManagerStats::caches`]: and, xor, ite,
    /// cofactor, xor3, maj, flip, mux.
    pub(crate) caches: [AtomicCacheStats; 8],
    pub(crate) not_ops: AtomicU64,
    pub(crate) complement_flips: AtomicU64,
    pub(crate) created_nodes: AtomicU64,
    /// Unique-table CAS attempts that lost a slot to a racing insert.
    pub(crate) unique_cas_retries: AtomicU64,
    /// `mk` races lost outright: a speculative node was rolled back because
    /// another thread published the same key first.
    pub(crate) unique_dup_races: AtomicU64,
    /// Cache stores dropped because the entry was claimed by another writer.
    pub(crate) cache_write_skips: AtomicU64,
}

impl StatShard {
    fn clone_values(&self) -> StatShard {
        let shard = StatShard::default();
        for (src, dst) in self.caches.iter().zip(shard.caches.iter()) {
            dst.hits
                .store(src.hits.load(Ordering::Relaxed), Ordering::Relaxed);
            dst.misses
                .store(src.misses.load(Ordering::Relaxed), Ordering::Relaxed);
            dst.evictions
                .store(src.evictions.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        for (src, dst) in [
            (&self.not_ops, &shard.not_ops),
            (&self.complement_flips, &shard.complement_flips),
            (&self.created_nodes, &shard.created_nodes),
            (&self.unique_cas_retries, &shard.unique_cas_retries),
            (&self.unique_dup_races, &shard.unique_dup_races),
            (&self.cache_write_skips, &shard.cache_write_skips),
        ] {
            dst.store(src.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        shard
    }
}

/// The sharded counter block of one manager.
#[derive(Debug)]
pub(crate) struct StatShards {
    shards: Box<[StatShard]>,
}

impl StatShards {
    pub(crate) fn new() -> Self {
        Self {
            shards: (0..STAT_SHARDS).map(|_| StatShard::default()).collect(),
        }
    }

    /// The current thread's shard.
    #[inline]
    pub(crate) fn local(&self) -> &StatShard {
        &self.shards[stat_slot()]
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = &StatShard> {
        self.shards.iter()
    }
}

impl Clone for StatShards {
    fn clone(&self) -> Self {
        Self {
            shards: self.shards.iter().map(StatShard::clone_values).collect(),
        }
    }
}

/// Source of thread stat-slot assignments (round-robin over the shards).
static NEXT_STAT_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static STAT_SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// The calling thread's statistics shard index.
#[inline]
fn stat_slot() -> usize {
    STAT_SLOT.with(|slot| {
        let current = slot.get();
        if current != usize::MAX {
            return current;
        }
        let assigned = NEXT_STAT_SLOT.fetch_add(1, Ordering::Relaxed) & (STAT_SHARDS - 1);
        slot.set(assigned);
        assigned
    })
}

// ---------------------------------------------------------------------- //
// Per-variable free lists
// ---------------------------------------------------------------------- //

/// One variable's free stack: a mutex-protected vector with a relaxed
/// length mirror so the empty case — the common one on the `mk` hot path —
/// skips the lock entirely.
#[derive(Debug, Default)]
struct FreeShard {
    stack: Mutex<Vec<u32>>,
    len: AtomicUsize,
}

/// The arena's free lists, segregated by variable to match the
/// level-segregated allocator.  **Homing invariant**: `lists[v]` holds only
/// ids whose chunk owner is `v`, so a reused id never turns a single-owner
/// chunk mixed.  The invariant is maintained by construction — `mk(var, …)`
/// rolls back ids it popped (or bumped) for `var`, and the exclusive-phase
/// producers (sweep, reorder reclamation) home ids through
/// [`NodeArena::chunk_owner`].
#[derive(Debug)]
pub(crate) struct FreeTable {
    lists: Vec<FreeShard>,
}

impl FreeTable {
    pub(crate) fn new(num_vars: usize) -> Self {
        Self {
            lists: (0..num_vars).map(|_| FreeShard::default()).collect(),
        }
    }

    /// Appends shards for `extra` fresh variables (exclusive phase).
    pub(crate) fn add_vars(&mut self, extra: usize) {
        for _ in 0..extra {
            self.lists.push(FreeShard::default());
        }
    }

    /// Total free ids across all variables (integrity checks, GC
    /// bookkeeping; not on the hot path).
    pub(crate) fn len(&self) -> usize {
        self.lists
            .iter()
            .map(|shard| shard.len.load(Ordering::Relaxed))
            .sum()
    }

    /// Pops a free id homed under `var`, if any.
    pub(crate) fn pop(&self, var: u32) -> Option<u32> {
        let shard = &self.lists[var as usize];
        if shard.len.load(Ordering::Relaxed) == 0 {
            return None;
        }
        let mut stack = shard.stack.lock().expect("free list lock");
        let id = stack.pop();
        if id.is_some() {
            shard.len.fetch_sub(1, Ordering::Relaxed);
        }
        id
    }

    /// Returns a free id to `var`'s list (rollbacks, reorder reclamation).
    pub(crate) fn push(&self, var: u32, id: u32) {
        let shard = &self.lists[var as usize];
        let mut stack = shard.stack.lock().expect("free list lock");
        stack.push(id);
        shard.len.fetch_add(1, Ordering::Relaxed);
    }

    /// Pops up to `n` ids homed under `var` in one lock acquisition.  The
    /// parallel reorder batch hands each worker chunk its own slice of
    /// pre-popped ids so the racing cons calls never touch the mutex.
    pub(crate) fn pop_many(&self, var: u32, n: usize) -> Vec<u32> {
        let shard = &self.lists[var as usize];
        if n == 0 || shard.len.load(Ordering::Relaxed) == 0 {
            return Vec::new();
        }
        let mut stack = shard.stack.lock().expect("free list lock");
        let take = n.min(stack.len());
        let split_at = stack.len() - take;
        let ids = stack.split_off(split_at);
        shard.len.fetch_sub(take, Ordering::Relaxed);
        ids
    }

    /// Returns unused pre-popped ids in one lock acquisition.
    pub(crate) fn push_many(&self, var: u32, ids: &[u32]) {
        if ids.is_empty() {
            return;
        }
        let shard = &self.lists[var as usize];
        let mut stack = shard.stack.lock().expect("free list lock");
        stack.extend_from_slice(ids);
        shard.len.fetch_add(ids.len(), Ordering::Relaxed);
    }

    /// Replaces every per-variable stack (exclusive phase: the GC sweep
    /// hands back its owner-homed free lists).
    pub(crate) fn replace_all(&mut self, lists: Vec<Vec<u32>>) {
        debug_assert_eq!(lists.len(), self.lists.len(), "one list per variable");
        for (shard, ids) in self.lists.iter_mut().zip(lists) {
            shard.len.store(ids.len(), Ordering::Relaxed);
            *shard.stack.get_mut().expect("free list lock") = ids;
        }
    }

    /// A flat snapshot of every free id (integrity checks, GC / reorder
    /// bookkeeping).
    pub(crate) fn snapshot(&self) -> Vec<u32> {
        let mut out = Vec::new();
        for shard in &self.lists {
            out.extend_from_slice(&shard.stack.lock().expect("free list lock"));
        }
        out
    }
}

impl Clone for FreeTable {
    fn clone(&self) -> Self {
        Self {
            lists: self
                .lists
                .iter()
                .map(|shard| {
                    let stack = shard.stack.lock().expect("free list lock").clone();
                    let len = stack.len();
                    FreeShard {
                        stack: Mutex::new(stack),
                        len: AtomicUsize::new(len),
                    }
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_directory_roundtrips() {
        // Every chunk index maps into its directory group and back.
        for chunk in [0u32, 1, 2, 3, 6, 7, 1023, 1024, MAX_CHUNKS - 1] {
            let (group, idx) = group_of(chunk);
            assert!(group < CHUNK_GROUPS, "group in range for {chunk}");
            assert!(idx < (1usize << group), "index in range for {chunk}");
            assert_eq!((1u32 << group) - 1 + idx as u32, chunk, "roundtrip");
        }
    }

    #[test]
    fn arena_segregates_by_variable_and_spans_chunks() {
        let arena = NodeArena::new(7);
        let mut ids = Vec::new();
        for i in 0..10_000u32 {
            let var = i % 5;
            let id = arena.bump(var);
            arena.write(
                id,
                Node {
                    var,
                    low: NodeId::TRUE,
                    high: NodeId::FALSE,
                },
            );
            ids.push((id, var));
        }
        for (id, var) in ids {
            assert_eq!(arena.var_of(id), var);
            assert_eq!(arena.chunk_owner(id), var, "chunks are single-owner");
            assert_eq!(arena.high_of(id), NodeId::FALSE);
        }
        assert_eq!(arena.var_of(0), 7, "terminal sentinel kept");
        assert_eq!(arena.allocated_slots(), 10_000);
        assert!(arena.mem().bytes() > 0, "chunk bytes are tracked");
    }

    #[test]
    fn sweep_releases_empty_chunks_and_recycles_them() {
        let mut arena = NodeArena::new(3);
        // Fill two full chunks of variable 0 and a partial chunk of var 1.
        for _ in 0..2 * CHUNK_LEN {
            let id = arena.bump(0);
            arena.write(
                id,
                Node {
                    var: 0,
                    low: NodeId::TRUE,
                    high: NodeId::FALSE,
                },
            );
        }
        let keeper = arena.bump(1);
        arena.write(
            keeper,
            Node {
                var: 1,
                low: NodeId::TRUE,
                high: NodeId::FALSE,
            },
        );
        let bytes_before = arena.mem().bytes();
        // Only the var-1 node survives.
        let mut marked = vec![false; arena.id_bound()];
        marked[0] = true;
        marked[keeper as usize] = true;
        let (live, free) = arena.sweep(&marked);
        assert_eq!(live, vec![keeper]);
        assert_eq!(arena.chunks_reclaimed(), 2, "both var-0 chunks released");
        assert!(
            arena.mem().bytes() + 2 * CHUNK_LEN * 8 <= bytes_before,
            "released chunk bytes are uncharged"
        );
        assert!(free[0].is_empty(), "released ids are not on the free list");
        assert!(free[1].is_empty(), "survivor chunk has no dead cells yet");
        // The released chunks are recycled before the watermark grows.
        let bound_before = arena.id_bound();
        for _ in 0..CHUNK_LEN {
            arena.bump(2);
        }
        assert_eq!(arena.id_bound(), bound_before, "recycled, not grown");
    }

    #[test]
    fn relabel_creates_and_sweep_drops_the_sidecar() {
        let mut arena = NodeArena::new(4);
        let a = arena.bump(0);
        arena.write(
            a,
            Node {
                var: 0,
                low: NodeId::TRUE,
                high: NodeId::FALSE,
            },
        );
        let b = arena.bump(0);
        arena.write(
            b,
            Node {
                var: 0,
                low: NodeId::FALSE,
                high: NodeId::TRUE,
            },
        );
        // Relabel one node: the chunk turns mixed and gets a sidecar.
        let bytes_before = arena.mem().bytes();
        arena.write_relabel(
            b,
            Node {
                var: 2,
                low: NodeId::FALSE,
                high: NodeId::TRUE,
            },
        );
        assert_eq!(arena.var_of(a), 0, "other nodes keep their label");
        assert_eq!(arena.var_of(b), 2, "relabelled node reads the sidecar");
        assert_eq!(arena.mem().bytes(), bytes_before + CHUNK_LEN * 4);
        // Sweep with only the relabelled node live: the chunk re-owns to
        // var 2, drops the sidecar, and homes the dead cell under var 2.
        let mut marked = vec![false; arena.id_bound()];
        marked[0] = true;
        marked[b as usize] = true;
        let (live, free) = arena.sweep(&marked);
        assert_eq!(live, vec![b]);
        assert_eq!(arena.chunk_owner(b), 2, "chunk re-owned to the survivor");
        assert_eq!(arena.var_of(b), 2, "label survives the sidecar drop");
        assert_eq!(free[2], vec![a], "dead cell homed under the new owner");
        assert_eq!(arena.mem().bytes(), bytes_before, "sidecar bytes returned");
    }

    #[test]
    fn mem_tracker_budget_is_nonsticky() {
        let tracker = MemTracker::new();
        assert!(!tracker.over_budget(), "unlimited by default");
        tracker.set_limit(Some(100));
        tracker.add(150);
        assert!(tracker.over_budget());
        assert_eq!(tracker.peak(), 150);
        tracker.sub(100);
        assert!(!tracker.over_budget(), "recovering clears the breach");
        assert_eq!(tracker.peak(), 150, "peak is sticky");
        tracker.set_limit(None);
        tracker.add(1 << 30);
        assert!(!tracker.over_budget());
    }

    #[test]
    fn free_table_homes_ids_per_variable() {
        let free = FreeTable::new(3);
        free.push(0, 1024);
        free.push(1, 2048);
        free.push(1, 2049);
        assert_eq!(free.len(), 3);
        assert_eq!(free.pop(2), None, "other variables see nothing");
        assert_eq!(free.pop(0), Some(1024));
        assert_eq!(free.pop_many(1, 8), vec![2048, 2049]);
        assert_eq!(free.len(), 0);
    }

    #[test]
    fn subtable_find_or_publish_is_canonical() {
        let arena = NodeArena::new(3);
        let table = SubTable::new();
        let shard = StatShard::default();
        let mut published = Vec::new();
        for i in 0..100u64 {
            let children = pack_children(NodeId::TRUE, NodeId::from_bits(i as u32 + 1));
            let id = arena.bump(0);
            arena.write(
                id,
                Node {
                    var: 0,
                    low: NodeId::TRUE,
                    high: NodeId::from_bits(i as u32 + 1),
                },
            );
            match table.find_or_publish(&arena, children, None, || id, &shard) {
                Consed::Done {
                    id: got, created, ..
                } => {
                    assert!(created, "fresh key must publish");
                    assert_eq!(got, id);
                }
                Consed::TableFull { .. } => panic!("serial insert cannot fill the table"),
            }
            published.push((children, id));
            // Growth is the caller's responsibility (mk does exactly this).
            if table.overloaded() {
                table.grow(&arena);
            }
        }
        for (children, id) in published {
            assert_eq!(table.lookup(&arena, children), Some(id));
            // Re-publishing the same key finds the canonical node without
            // calling the allocator.
            match table.find_or_publish(&arena, children, None, || panic!("no alloc"), &shard) {
                Consed::Done {
                    id: got, created, ..
                } => {
                    assert!(!created, "existing key must be found");
                    assert_eq!(got, id);
                }
                Consed::TableFull { .. } => panic!("table has room"),
            }
        }
        assert_eq!(table.len(), 100);
    }

    #[test]
    fn subtable_growth_charges_the_tracker() {
        let arena = NodeArena::new(2);
        let table = SubTable::new();
        let before = arena.mem().bytes();
        table.grow_for(&arena, 1000);
        let grown = arena.mem().bytes() - before;
        assert_eq!(
            grown,
            table.slot_bytes() - SubTable::initial_bytes(),
            "grow_for charges exactly the capacity delta"
        );
    }

    #[test]
    fn cache_seqlock_roundtrip() {
        let cache = DirectCache::new(2);
        let stats = AtomicCacheStats::default();
        let shard = StatShard::default();
        cache.store2(&stats, &shard, 1, 42, NodeId::TRUE);
        assert_eq!(cache.probe2(1, 42), Some(NodeId::TRUE));
        // A different epoch is a miss, not a stale hit.
        assert_eq!(cache.probe2(2, 42), None);
    }
}
