//! Concurrency primitives of the sharded BDD kernel: the chunked atomic
//! node arena, the per-variable unique subtables with lock-free CAS
//! insertion, the seqlock-protected operation caches and the thread-sharded
//! statistics counters.
//!
//! # Synchronization design
//!
//! The manager distinguishes two phases, and the Rust borrow checker is the
//! phase switch:
//!
//! * **Shared phase** (`&Manager`): every apply recursion (`and`, `xor`,
//!   `ite`, `xor3`, `maj`, `flip_var`, `mux_var`, `cofactor`) and the node
//!   constructor `mk` take `&self`, so any number of threads may run them
//!   concurrently on one manager.  All mutation in this phase goes through
//!   the atomic structures in this module.
//! * **Exclusive phase** (`&mut Manager`): garbage collection, variable
//!   reordering, cache growth/invalidation, root-registry updates and
//!   `add_vars` take `&mut self`.  Holding `&mut Manager` *proves* no apply
//!   recursion is in flight — the stop-the-world property is enforced at
//!   compile time, not by a runtime flag.  The simulator enters this phase
//!   only at gate boundaries.
//!
//! ## Why canonical hash-consing stays sound under concurrent insertion
//!
//! Canonicity requires that `(var, low, high)` maps to exactly one node id
//! for the manager's lifetime (between exclusive phases).  The concurrent
//! `mk` guarantees this with a *speculate-then-publish* protocol on the
//! open-addressed subtable of `var`:
//!
//! 1. The inserting thread probes the subtable.  If it finds an entry whose
//!    children match, that node is the canonical one — done, no node was
//!    allocated.
//! 2. On a miss it allocates a fresh id from the arena, writes the node
//!    fields, and publishes the id into the first empty slot of the probe
//!    chain with a `compare_exchange` (release ordering).  **The CAS is the
//!    single linearization point**: whichever thread wins owns the canonical
//!    node for that key.
//! 3. A thread whose CAS fails re-reads the slot.  If the winner inserted
//!    the *same* key, the loser rolls its speculative node back onto the
//!    free list (the node was never published, so nothing can reference it)
//!    and adopts the winner's id.  Otherwise a different key claimed the
//!    slot and the loser simply continues down the probe chain.
//!
//! Because entries are only ever *added* during the shared phase (deletion
//! and rehashing are exclusive-phase operations), a probe that started
//! before a concurrent insert either sees the new entry (and adopts it) or
//! reaches an empty slot later in the chain and CASes there — in both cases
//! the key maps to one id.  Readers load slots with acquire ordering, which
//! pairs with the publishing CAS's release ordering, so the node fields
//! written in step 2 are visible to any thread that observes the id.
//!
//! Subtable *growth* swaps the slot array and therefore cannot run under
//! concurrent probes: each subtable wraps its slots in an `RwLock` whose
//! read side is taken (uncontended in the common case, shared across all
//! probing threads) for lookups and CAS inserts, and whose write side is
//! taken only for the occasional doubling.  The lock is per *variable*, so
//! this is the sharding: threads working at different levels of the diagram
//! never touch the same lock.
//!
//! The operation caches are lossy, so they only have to be *atomic*, never
//! lossless: each entry is guarded by a per-entry sequence word (a seqlock).
//! Writers claim the entry with a CAS to an odd sequence number (a claimed
//! entry is simply skipped by other writers — dropping a memoisation is
//! always safe), write the key/value words, and release with an even
//! sequence number.  Readers re-check the sequence word after reading; a
//! torn read is treated as a miss.  Cache *growth* is deferred to the
//! exclusive phase: misses decrement an atomic budget, and the manager
//! doubles any cache whose budget ran out at the next gate boundary.
//!
//! The node arena is append-only during the shared phase: a chunked array
//! (doubling chunk sizes, lazily initialised through `OnceLock`) with an
//! atomic bump allocator, so node ids are stable pointers that never move.
//! The free list is a mutex-protected stack popped on allocation — the
//! mutex is taken once per *created node*, not per lookup.  It is a **leaf
//! lock**: `mk` does acquire it while holding a subtable's read lock (the
//! allocation happens inside the probe), but nothing ever blocks while
//! holding the free-list mutex itself, so the lock order
//! `subtable → free list` is acyclic.
//!
//! Statistics counters are sharded 16 ways and indexed by a thread-local
//! slot, so hot-path increments do not bounce one cache line between
//! cores; [`crate::ManagerStats`] snapshots are the shard sums.
//!
//! ## The phase-typed serial flavour
//!
//! A manager whose session runs on one thread never has a concurrent
//! reader or writer, yet the structures above still charge it the full
//! synchronization toll: a seqlock claim/release CAS per cache store, a
//! speculate-then-publish CAS per node creation, and an atomic
//! read-modify-write per arena bump.  The kernel therefore compiles every
//! apply recursion in **two flavours** (a `const SERIAL: bool` parameter in
//! [`crate::Manager`]), and this module provides the serial counterparts:
//!
//! * [`DirectCache::probe2_serial`]/[`DirectCache::store2_serial`] (and the
//!   stride-3 twins) read and write the key/value words directly and leave
//!   the per-entry sequence word **untouched**.  This is sound in both
//!   directions: a quiescent shared-phase entry always has an even, stable
//!   sequence word (a claim either fails without changing it or releases
//!   back to even before the phase can end), so a serial probe that ignores
//!   it reads exactly what a shared probe would; and a serial store that
//!   skips the claim leaves the even word in place, so later shared-phase
//!   probes validate the entry normally.
//! * [`SubTable::find_or_insert_serial`] replaces speculate-then-publish
//!   with a single probe walk that remembers the first empty slot and
//!   plain-stores the new id into it — no CAS, no rollback, and the
//!   allocator runs only after the miss is certain.
//! * [`NodeArena::bump_serial`] and the `*_serial` counter updates replace
//!   `fetch_add` with load/store pairs.
//!
//! All of these remain *atomic* operations on the same atomics (this crate
//! stays free of `unsafe`); what the serial flavour drops is the
//! *coordination* — CAS loops, seqlock claims, read-modify-write cycles.
//! The contract is single-threaded access: the serial flavour is selected
//! only by [`crate::Manager::set_kernel_mode`], which takes `&mut self`, so
//! switching flavours is itself an exclusive-phase action, and the
//! happens-before edge that hands the manager to another thread (spawn,
//! join, channel, mutex — any way a `&mut` or ownership transfer can move
//! between threads) makes every relaxed serial store visible before shared
//! operation can resume.  Violating the contract — running the serial
//! flavour from two threads at once — cannot corrupt memory (everything is
//! still an atomic access), but it can lose an insert and break canonicity,
//! which is why [`crate::KernelMode::Shared`] is the default and the serial
//! flavour is opt-in per session.

use crate::hash::mix64;
use crate::manager::{pack_children, NodeId};
use std::cell::Cell;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, RwLock};

// ---------------------------------------------------------------------- //
// Chunked atomic node arena
// ---------------------------------------------------------------------- //

/// log2 of the first chunk's capacity (4096 nodes).
const ARENA_BASE_BITS: u32 = 12;
/// Number of chunks; sizes double, so the arena addresses
/// `4096 · (2²⁰ − 1) > 2³¹` node ids — beyond the id space itself.
const ARENA_CHUNKS: usize = 20;

/// One node's storage.  Fields are written relaxed by the allocating thread
/// and become visible to others through the release/acquire pair on the
/// subtable slot (or cache entry) that publishes the id.
#[derive(Debug)]
pub(crate) struct NodeCell {
    pub(crate) var: AtomicU32,
    pub(crate) low: AtomicU32,
    pub(crate) high: AtomicU32,
}

/// A plain (non-atomic) node value, the unit the rest of the kernel reads
/// and writes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Node {
    pub(crate) var: u32,
    pub(crate) low: NodeId,
    pub(crate) high: NodeId,
}

/// Chunk index and offset of a node id.
#[inline]
fn locate(id: u32) -> (usize, usize) {
    let shifted = (id >> ARENA_BASE_BITS) + 1;
    let chunk = (31 - shifted.leading_zeros()) as usize;
    let base = ((1u32 << chunk) - 1) << ARENA_BASE_BITS;
    (chunk, (id - base) as usize)
}

/// Capacity of chunk `chunk`.
#[inline]
fn chunk_len(chunk: usize) -> usize {
    1usize << (chunk as u32 + ARENA_BASE_BITS)
}

/// Append-only chunked node storage with an atomic bump allocator.  Node
/// ids are never relocated, so `&NodeCell` references handed out while the
/// arena grows stay valid (growth only initialises a *new* chunk).
#[derive(Debug)]
pub(crate) struct NodeArena {
    chunks: [OnceLock<Box<[NodeCell]>>; ARENA_CHUNKS],
    /// Total ids ever allocated (terminal included); the bump pointer.
    next: AtomicU32,
}

impl NodeArena {
    /// An arena containing only the terminal node (id 0) with the given
    /// sentinel variable index.
    pub(crate) fn new(terminal_var: u32) -> Self {
        let arena = Self {
            chunks: std::array::from_fn(|_| OnceLock::new()),
            next: AtomicU32::new(1),
        };
        arena.ensure_chunk(0);
        arena.write(
            0,
            Node {
                var: terminal_var,
                low: NodeId::TRUE,
                high: NodeId::TRUE,
            },
        );
        arena
    }

    /// Number of ids ever allocated (freed ids included).
    pub(crate) fn len(&self) -> usize {
        self.next.load(Ordering::Relaxed) as usize
    }

    fn ensure_chunk(&self, id: u32) {
        let (chunk, _) = locate(id);
        self.chunks[chunk].get_or_init(|| {
            (0..chunk_len(chunk))
                .map(|_| NodeCell {
                    var: AtomicU32::new(0),
                    low: AtomicU32::new(0),
                    high: AtomicU32::new(0),
                })
                .collect()
        });
    }

    /// Bump-allocates a fresh id (the caller handles the free list) and
    /// makes sure its chunk exists.
    pub(crate) fn bump(&self) -> u32 {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        assert!(id & (1 << 31) == 0, "node arena overflow (2^31 nodes)");
        self.ensure_chunk(id);
        id
    }

    /// Serial-flavour bump: a load/store pair instead of `fetch_add`.
    /// Sound only under the single-thread contract of the serial kernel
    /// flavour (see the module docs).
    pub(crate) fn bump_serial(&self) -> u32 {
        let id = self.next.load(Ordering::Relaxed);
        assert!(id & (1 << 31) == 0, "node arena overflow (2^31 nodes)");
        self.next.store(id + 1, Ordering::Relaxed);
        self.ensure_chunk(id);
        id
    }

    #[inline]
    pub(crate) fn cell(&self, id: u32) -> &NodeCell {
        let (chunk, offset) = locate(id);
        // The chunk exists for every allocated id: the allocator initialises
        // it before handing the id out, and ids reach other threads only
        // through release/acquire publication.
        &self.chunks[chunk].get().expect("chunk of a live id")[offset]
    }

    #[inline]
    pub(crate) fn var_of(&self, id: u32) -> u32 {
        self.cell(id).var.load(Ordering::Relaxed)
    }

    #[inline]
    pub(crate) fn low_of(&self, id: u32) -> NodeId {
        NodeId::from_bits(self.cell(id).low.load(Ordering::Relaxed))
    }

    #[inline]
    pub(crate) fn high_of(&self, id: u32) -> NodeId {
        NodeId::from_bits(self.cell(id).high.load(Ordering::Relaxed))
    }

    #[inline]
    pub(crate) fn get(&self, id: u32) -> Node {
        let cell = self.cell(id);
        Node {
            var: cell.var.load(Ordering::Relaxed),
            low: NodeId::from_bits(cell.low.load(Ordering::Relaxed)),
            high: NodeId::from_bits(cell.high.load(Ordering::Relaxed)),
        }
    }

    #[inline]
    pub(crate) fn children_of(&self, id: u32) -> u64 {
        let cell = self.cell(id);
        pack_children(
            NodeId::from_bits(cell.low.load(Ordering::Relaxed)),
            NodeId::from_bits(cell.high.load(Ordering::Relaxed)),
        )
    }

    /// Writes a node's fields.  Safe in the shared phase only for ids that
    /// have not been published yet (the speculative half of `mk`); the
    /// exclusive phase (reordering) may rewrite any node.
    #[inline]
    pub(crate) fn write(&self, id: u32, node: Node) {
        let cell = self.cell(id);
        cell.var.store(node.var, Ordering::Relaxed);
        cell.low.store(node.low.to_bits(), Ordering::Relaxed);
        cell.high.store(node.high.to_bits(), Ordering::Relaxed);
    }
}

impl Clone for NodeArena {
    fn clone(&self) -> Self {
        let len = self.next.load(Ordering::Relaxed);
        let arena = Self {
            chunks: std::array::from_fn(|_| OnceLock::new()),
            next: AtomicU32::new(len),
        };
        for id in 0..len {
            arena.ensure_chunk(id);
            arena.write(id, self.get(id));
        }
        arena
    }
}

// ---------------------------------------------------------------------- //
// Per-variable unique subtables (the unique-table shards)
// ---------------------------------------------------------------------- //

/// Sentinel id marking an empty unique-table slot (regular node ids never
/// reach bit 31, so this cannot collide with a live id).
pub(crate) const EMPTY_SLOT: u32 = u32::MAX;

/// An empty slot word: low 32 bits are [`EMPTY_SLOT`].
const EMPTY_WORD: u64 = u64::MAX;

/// Initial per-variable subtable capacity (slots, power of two).
const SUBTABLE_INITIAL_CAPACITY: usize = 1 << 3;

#[inline]
fn slot_word(tag: u32, id: u32) -> u64 {
    ((tag as u64) << 32) | id as u64
}

#[inline]
pub(crate) fn slot_id(word: u64) -> u32 {
    word as u32
}

#[inline]
fn slot_tag(word: u64) -> u32 {
    (word >> 32) as u32
}

/// The hash-consing shard of one variable: an open-addressed, linear-probed
/// power-of-two array of atomic slot words `tag ‖ id`.  The tag is the high
/// half of the key hash — probes only dereference the arena when the tag
/// matches, so a probe step is usually one cache line.  Lookups and CAS
/// inserts share the `RwLock`'s read side; only growth (doubling) takes the
/// write side.  Deletion (backward-shift, needed by reordering) and
/// wholesale rebuilds are exclusive-phase operations.
#[derive(Debug)]
pub(crate) struct SubTable {
    slots: RwLock<Box<[AtomicU64]>>,
    len: AtomicUsize,
}

fn empty_slots(capacity: usize) -> Box<[AtomicU64]> {
    (0..capacity).map(|_| AtomicU64::new(EMPTY_WORD)).collect()
}

/// Outcome of [`SubTable::find_or_publish`].
pub(crate) enum Consed {
    /// The key resolved to a canonical node.  `created` says whether the
    /// caller's speculative node won the publication; `rollback` carries a
    /// speculative id that lost the race and must be returned to the free
    /// list by the caller (it was never published, so nothing can
    /// reference it).
    Done {
        id: u32,
        created: bool,
        rollback: Option<u32>,
    },
    /// The probe wrapped the entire slot array without finding the key or
    /// an empty slot.  Possible only transiently, when concurrent inserts
    /// fill the table faster than the post-insert growth keeps up: the
    /// caller must release, grow the subtable and retry (re-passing the
    /// speculative id so at most one node is ever allocated per `mk`).
    TableFull { speculative: Option<u32> },
}

impl SubTable {
    pub(crate) fn new() -> Self {
        Self {
            slots: RwLock::new(empty_slots(SUBTABLE_INITIAL_CAPACITY)),
            len: AtomicUsize::new(0),
        }
    }

    /// Number of live nodes labelled with this subtable's variable.
    pub(crate) fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Looks up the node with the given packed children.
    pub(crate) fn lookup(&self, arena: &NodeArena, children: u64) -> Option<u32> {
        let slots = self.slots.read().expect("subtable lock");
        let mask = slots.len() - 1;
        let hash = mix64(children);
        let tag = (hash >> 32) as u32;
        let mut idx = hash as usize & mask;
        loop {
            let word = slots[idx].load(Ordering::Acquire);
            if slot_id(word) == EMPTY_SLOT {
                return None;
            }
            if slot_tag(word) == tag && arena.children_of(slot_id(word)) == children {
                return Some(slot_id(word));
            }
            idx = (idx + 1) & mask;
        }
    }

    /// The concurrent hash-consing step: finds `children`, or publishes the
    /// node `alloc()` allocates for it.  `alloc` is called at most once
    /// across retries — lazily, only when an empty slot is reached and no
    /// `speculative` id from an earlier [`Consed::TableFull`] attempt is
    /// supplied — and its node must carry exactly these children.  The
    /// probe is bounded by the slot count: a wrap without resolution (a
    /// transiently 100%-full table under concurrent insertion) returns
    /// [`Consed::TableFull`] *after releasing the read guard*, so the
    /// caller's grow — and every other thread's — can always make
    /// progress.  See the module docs for the race argument.
    pub(crate) fn find_or_publish(
        &self,
        arena: &NodeArena,
        children: u64,
        speculative_in: Option<u32>,
        alloc: impl FnOnce() -> u32,
        stats: &StatShard,
    ) -> Consed {
        let slots = self.slots.read().expect("subtable lock");
        let mask = slots.len() - 1;
        let hash = mix64(children);
        let tag = (hash >> 32) as u32;
        let mut idx = hash as usize & mask;
        let mut probed = 0usize;
        let mut speculative: Option<u32> = speculative_in;
        let mut alloc = Some(alloc);
        loop {
            let word = slots[idx].load(Ordering::Acquire);
            if slot_id(word) == EMPTY_SLOT {
                let id = match speculative {
                    Some(id) => id,
                    None => {
                        let id = (alloc.take().expect("alloc is called once"))();
                        speculative = Some(id);
                        id
                    }
                };
                match slots[idx].compare_exchange(
                    EMPTY_WORD,
                    slot_word(tag, id),
                    Ordering::Release,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        self.len.fetch_add(1, Ordering::Relaxed);
                        return Consed::Done {
                            id,
                            created: true,
                            rollback: None,
                        };
                    }
                    Err(_) => {
                        // Another thread claimed this slot; re-inspect it.
                        bump(&stats.unique_cas_retries);
                        continue;
                    }
                }
            }
            if slot_tag(word) == tag && arena.children_of(slot_id(word)) == children {
                return Consed::Done {
                    id: slot_id(word),
                    created: false,
                    rollback: speculative,
                };
            }
            idx = (idx + 1) & mask;
            probed += 1;
            if probed > mask {
                // Visited every slot: the table filled up under us.
                return Consed::TableFull { speculative };
            }
        }
    }

    /// The serial-flavour hash-consing step: one probe walk that remembers
    /// the first empty slot and plain-stores the new id into it on a miss —
    /// no speculation, no CAS, no rollback (the allocator runs only once
    /// the miss is certain, so a node is never allocated for an existing
    /// key).  Returns `(id, created)`, or `None` when the walk wrapped the
    /// full slot array without finding the key or an empty slot (the caller
    /// grows and retries, exactly like the shared path).  Sound only under
    /// the single-thread contract of the serial kernel flavour (see the
    /// module docs).
    pub(crate) fn find_or_insert_serial(
        &self,
        arena: &NodeArena,
        children: u64,
        alloc: impl FnOnce() -> u32,
    ) -> Option<(u32, bool)> {
        let slots = self.slots.read().expect("subtable lock");
        let mask = slots.len() - 1;
        let hash = mix64(children);
        let tag = (hash >> 32) as u32;
        let mut idx = hash as usize & mask;
        let mut probed = 0usize;
        loop {
            let word = slots[idx].load(Ordering::Relaxed);
            if slot_id(word) == EMPTY_SLOT {
                let id = alloc();
                slots[idx].store(slot_word(tag, id), Ordering::Relaxed);
                let len = self.len.load(Ordering::Relaxed);
                self.len.store(len + 1, Ordering::Relaxed);
                return Some((id, true));
            }
            if slot_tag(word) == tag && arena.children_of(slot_id(word)) == children {
                return Some((slot_id(word), false));
            }
            idx = (idx + 1) & mask;
            probed += 1;
            if probed > mask {
                return None;
            }
        }
    }

    /// Whether the subtable is past its 3/4 load factor (growth is the
    /// caller's job, *after* releasing any probe in flight).
    pub(crate) fn overloaded(&self) -> bool {
        let capacity = self.slots.read().expect("subtable lock").len();
        (self.len() + 1) * 4 > capacity * 3
    }

    /// Pre-grows the slot array until `additional` further inserts cannot
    /// push the table past its load factor.  The parallel reorder batch
    /// reserves its worst case up front so the probe sessions
    /// ([`SubTable::probe_session`]) never need a growth path.
    pub(crate) fn grow_for(&self, arena: &NodeArena, additional: usize) {
        let needed = (self.len() + additional + 1) * 4;
        let mut slots = self.slots.write().expect("subtable lock");
        let mut capacity = slots.len();
        if needed <= capacity * 3 {
            return;
        }
        while needed > capacity * 3 {
            capacity *= 2;
        }
        let bigger = empty_slots(capacity);
        let mask = capacity - 1;
        for slot in slots.iter() {
            let word = slot.load(Ordering::Relaxed);
            if slot_id(word) == EMPTY_SLOT {
                continue;
            }
            let hash = mix64(arena.children_of(slot_id(word)));
            let mut idx = hash as usize & mask;
            while slot_id(bigger[idx].load(Ordering::Relaxed)) != EMPTY_SLOT {
                idx = (idx + 1) & mask;
            }
            bigger[idx].store(word, Ordering::Relaxed);
        }
        *slots = bigger;
    }

    /// Runs `f` with a probe handle that re-uses a **single** read-guard
    /// acquisition for every cons under it.  The per-call `RwLock` read in
    /// [`SubTable::find_or_publish`] is two RMWs on one cache line — cheap
    /// uncontended, but the line ping-pongs when the parallel reorder
    /// batch conses thousands of nodes into the *same* subtable from every
    /// worker.  The caller must have [`SubTable::grow_for`]-reserved
    /// enough headroom first: the handle has no growth path (growing
    /// needs the write lock the session is read-holding).
    pub(crate) fn probe_session<R>(&self, f: impl FnOnce(&SubTableProber) -> R) -> R {
        let slots = self.slots.read().expect("subtable lock");
        f(&SubTableProber { slots: &slots })
    }

    /// Applies a batch of deferred length updates (see
    /// [`SubTableProber::find_or_publish`]).
    pub(crate) fn len_add(&self, n: usize) {
        self.len.fetch_add(n, Ordering::Relaxed);
    }

    /// Doubles the slot array, rehashing every live entry.  Takes the write
    /// lock, so it waits for in-flight probes and blocks new ones.  Returns
    /// `false` when a racing grow already did the job.
    #[cold]
    pub(crate) fn grow(&self, arena: &NodeArena) -> bool {
        let mut slots = self.slots.write().expect("subtable lock");
        if (self.len() + 1) * 4 <= slots.len() * 3 {
            return false;
        }
        let doubled = empty_slots(slots.len() * 2);
        let mask = doubled.len() - 1;
        for slot in slots.iter() {
            let word = slot.load(Ordering::Relaxed);
            if slot_id(word) == EMPTY_SLOT {
                continue;
            }
            let hash = mix64(arena.children_of(slot_id(word)));
            let mut idx = hash as usize & mask;
            while slot_id(doubled[idx].load(Ordering::Relaxed)) != EMPTY_SLOT {
                idx = (idx + 1) & mask;
            }
            doubled[idx].store(word, Ordering::Relaxed);
        }
        *slots = doubled;
        true
    }

    // ------------------------------------------------------------------ //
    // Exclusive-phase operations (&mut Manager ⇒ sole access)
    // ------------------------------------------------------------------ //

    /// Inserts `(children, id)`, which must not already be present
    /// (exclusive phase: GC rebuild, reordering).
    pub(crate) fn insert_exclusive(&mut self, arena: &NodeArena, children: u64, id: u32) {
        if (self.len() + 1) * 4 > self.slots.get_mut().expect("subtable lock").len() * 3 {
            self.grow(arena);
        }
        let slots = self.slots.get_mut().expect("subtable lock");
        let mask = slots.len() - 1;
        let hash = mix64(children);
        let tag = (hash >> 32) as u32;
        let mut idx = hash as usize & mask;
        while slot_id(slots[idx].load(Ordering::Relaxed)) != EMPTY_SLOT {
            idx = (idx + 1) & mask;
        }
        slots[idx].store(slot_word(tag, id), Ordering::Relaxed);
        self.len.fetch_add(1, Ordering::Relaxed);
    }

    /// Removes the entry for `children` (which must be present) by
    /// backward-shift deletion: subsequent probe-chain entries are moved up
    /// while doing so keeps them reachable from their home slot, so lookups
    /// never need tombstones.  Exclusive phase only (reordering).
    pub(crate) fn remove_exclusive(&mut self, arena: &NodeArena, children: u64) {
        let slots = self.slots.get_mut().expect("subtable lock");
        let mask = slots.len() - 1;
        let hash = mix64(children);
        let tag = (hash >> 32) as u32;
        let mut idx = hash as usize & mask;
        loop {
            let word = slots[idx].load(Ordering::Relaxed);
            debug_assert!(
                slot_id(word) != EMPTY_SLOT,
                "removing a key that is not in the subtable"
            );
            if slot_tag(word) == tag && arena.children_of(slot_id(word)) == children {
                break;
            }
            idx = (idx + 1) & mask;
        }
        let mut hole = idx;
        let mut probe = idx;
        loop {
            probe = (probe + 1) & mask;
            let word = slots[probe].load(Ordering::Relaxed);
            if slot_id(word) == EMPTY_SLOT {
                break;
            }
            // The entry at `probe` may move into the hole iff its home slot
            // is not cyclically inside (hole, probe] — otherwise the move
            // would put it before its home and break its probe chain.
            let home = mix64(arena.children_of(slot_id(word))) as usize & mask;
            let in_gap = if hole <= probe {
                home > hole && home <= probe
            } else {
                home > hole || home <= probe
            };
            if !in_gap {
                slots[hole].store(word, Ordering::Relaxed);
                hole = probe;
            }
        }
        slots[hole].store(EMPTY_WORD, Ordering::Relaxed);
        self.len.fetch_sub(1, Ordering::Relaxed);
    }

    /// Empties the subtable, keeping its capacity (exclusive phase).
    pub(crate) fn clear_exclusive(&mut self) {
        for slot in self.slots.get_mut().expect("subtable lock").iter_mut() {
            *slot.get_mut() = EMPTY_WORD;
        }
        self.len.store(0, Ordering::Relaxed);
    }

    /// The live node ids in the subtable, collected under the read lock.
    pub(crate) fn ids(&self) -> Vec<u32> {
        self.slots
            .read()
            .expect("subtable lock")
            .iter()
            .map(|slot| slot_id(slot.load(Ordering::Relaxed)))
            .filter(|&id| id != EMPTY_SLOT)
            .collect()
    }
}

impl Clone for SubTable {
    fn clone(&self) -> Self {
        let slots = self.slots.read().expect("subtable lock");
        // Acquire loads pair with the publication CAS, so every id the
        // cloned slots carry has fully visible node fields even if the
        // clone races a shared-phase insert.
        let copied: Box<[AtomicU64]> = slots
            .iter()
            .map(|slot| AtomicU64::new(slot.load(Ordering::Acquire)))
            .collect();
        let len = copied
            .iter()
            .filter(|slot| slot_id(slot.load(Ordering::Relaxed)) != EMPTY_SLOT)
            .count();
        Self {
            slots: RwLock::new(copied),
            len: AtomicUsize::new(len),
        }
    }
}

/// A probe handle over one subtable's slot array that amortises the read
/// guard across a whole batch of cons calls (see
/// [`SubTable::probe_session`]).  Safe only after a matching
/// [`SubTable::grow_for`] reservation: with headroom guaranteed, a probe
/// walk can never wrap, so the handle needs no growth (or [`Consed`]
/// retry) path.
pub(crate) struct SubTableProber<'a> {
    slots: &'a [AtomicU64],
}

impl SubTableProber<'_> {
    /// The shared-flavour hash-consing step without the per-call guard
    /// acquisition or length update: finds `children` or CAS-publishes the
    /// node `alloc()` allocates for it.  Returns `(id, created,
    /// rollback)`; a `Some(rollback)` id lost a publication race and must
    /// be returned to the free list.  The caller batches the subtable
    /// length update ([`SubTable::len_add`]) from its `created` count.
    pub(crate) fn find_or_publish(
        &self,
        arena: &NodeArena,
        children: u64,
        alloc: impl FnOnce() -> u32,
        stats: &StatShard,
    ) -> (u32, bool, Option<u32>) {
        let slots = self.slots;
        let mask = slots.len() - 1;
        let hash = mix64(children);
        let tag = (hash >> 32) as u32;
        let mut idx = hash as usize & mask;
        let mut probed = 0usize;
        let mut speculative: Option<u32> = None;
        let mut alloc = Some(alloc);
        loop {
            let word = slots[idx].load(Ordering::Acquire);
            if slot_id(word) == EMPTY_SLOT {
                let id = match speculative {
                    Some(id) => id,
                    None => {
                        let id = (alloc.take().expect("alloc is called once"))();
                        speculative = Some(id);
                        id
                    }
                };
                match slots[idx].compare_exchange(
                    EMPTY_WORD,
                    slot_word(tag, id),
                    Ordering::Release,
                    Ordering::Acquire,
                ) {
                    Ok(_) => return (id, true, None),
                    Err(_) => {
                        // Another thread claimed this slot; re-inspect it.
                        bump(&stats.unique_cas_retries);
                        continue;
                    }
                }
            }
            if slot_tag(word) == tag && arena.children_of(slot_id(word)) == children {
                return (slot_id(word), false, speculative);
            }
            idx = (idx + 1) & mask;
            probed += 1;
            assert!(
                probed <= mask,
                "probe session wrapped: the batch was not grow_for-reserved"
            );
        }
    }
}

// ---------------------------------------------------------------------- //
// Seqlock-protected lossy operation caches
// ---------------------------------------------------------------------- //

/// Initial entry count (log2) of the direct-mapped caches.
pub(crate) const CACHE_INITIAL_LOG2: u32 = 12;
/// Default growth cap (log2): a fully grown cache stays at a couple of MiB.
pub(crate) const CACHE_DEFAULT_MAX_LOG2: u32 = 16;
/// Absolute cap (log2) the GC-time auto-tuner may raise the limit to.
pub(crate) const CACHE_HARD_MAX_LOG2: u32 = 20;

/// A lossy direct-mapped memoisation cache safe for concurrent use.
///
/// Entry layouts (`width = stride + 1` words per entry):
/// * stride 2 (`and`/`xor`, `cofactor`, `flip`): `[seq, key, epoch<<32|result]`
/// * stride 3 (`ite`, `xor3`, `maj`, `mux`): `[seq, k0, k1, epoch<<32|result]`
///
/// The leading `seq` word is a per-entry seqlock: writers claim the entry by
/// CASing an even sequence to odd (claim failure just drops the store — a
/// lossy cache may always forget), write the data words relaxed, and release
/// with `seq + 2`.  Readers verify the sequence word is even and unchanged
/// around their reads; any torn read is a miss.  Entries never lie.
///
/// Growth is *deferred*: misses decrement `grow_budget`, and the manager
/// doubles exhausted caches during the next exclusive phase
/// ([`crate::Manager::maybe_grow_caches`]); until then the cache keeps
/// serving at its current size.
#[derive(Debug)]
pub(crate) struct DirectCache {
    words: Box<[AtomicU64]>,
    /// Entry-index mask (entry count − 1).  Mutated only in the exclusive
    /// phase, in lockstep with `words`.
    mask: usize,
    /// Data words per entry (2 or 3); the stored width is `stride + 1`.
    stride: usize,
    /// Misses remaining until the next doubling is requested; at most 0
    /// means "grow at the next exclusive phase".
    grow_budget: std::sync::atomic::AtomicI64,
    /// Current growth cap (log2 entries); raised by the GC auto-tuner.
    pub(crate) max_log2: u32,
}

#[inline]
fn meta(epoch: u32, result: NodeId) -> u64 {
    ((epoch as u64) << 32) | result.to_bits() as u64
}

#[inline]
fn meta_epoch(word: u64) -> u32 {
    (word >> 32) as u32
}

#[inline]
fn meta_result(word: u64) -> NodeId {
    NodeId::from_bits(word as u32)
}

fn zero_words(entries: usize, width: usize) -> Box<[AtomicU64]> {
    (0..entries * width).map(|_| AtomicU64::new(0)).collect()
}

impl DirectCache {
    pub(crate) fn new(stride: usize) -> Self {
        let entries = 1usize << CACHE_INITIAL_LOG2;
        Self {
            words: zero_words(entries, stride + 1),
            mask: entries - 1,
            stride,
            grow_budget: std::sync::atomic::AtomicI64::new(entries as i64),
            max_log2: CACHE_DEFAULT_MAX_LOG2,
        }
    }

    #[inline]
    fn base(&self, hash: u64) -> usize {
        (hash as usize & self.mask) * (self.stride + 1)
    }

    /// Called once per store (= once per miss): requests a doubling when
    /// the miss volume since the last resize exceeds the current capacity.
    #[inline]
    fn note_miss(&self) {
        self.grow_budget.fetch_sub(1, Ordering::Relaxed);
    }

    /// Serial-flavour miss accounting: a load/store pair instead of
    /// `fetch_sub` (single-thread contract, see the module docs).
    #[inline]
    fn note_miss_serial(&self) {
        let budget = self.grow_budget.load(Ordering::Relaxed);
        self.grow_budget.store(budget - 1, Ordering::Relaxed);
    }

    /// Whether the miss budget ran out (the exclusive phase grows then).
    pub(crate) fn wants_growth(&self) -> bool {
        self.grow_budget.load(Ordering::Relaxed) <= 0 && self.mask + 1 < (1usize << self.max_log2)
    }

    /// Raises the growth cap (GC-time auto-tuning).  A cache that had
    /// saturated its previous cap gets its miss budget re-armed so renewed
    /// pressure can trigger the next doubling.
    pub(crate) fn raise_cap(&mut self, max_log2: u32) {
        if max_log2 > self.max_log2 {
            self.max_log2 = max_log2;
            if *self.grow_budget.get_mut() == i64::MAX {
                *self.grow_budget.get_mut() = (self.mask + 1) as i64;
            }
        }
    }

    /// Doubles the entry count (exclusive phase), rehashing live entries
    /// into the new array (every entry stores its full key, so nothing warm
    /// is lost; colliding pairs resolve lossily as usual).
    #[cold]
    pub(crate) fn grow(&mut self) {
        let entries = self.mask + 1;
        if entries >= (1usize << self.max_log2) {
            self.grow_budget.store(i64::MAX, Ordering::Relaxed);
            return;
        }
        let width = self.stride + 1;
        let doubled = entries * 2;
        let mask = doubled - 1;
        let words = zero_words(doubled, width);
        for base in (0..self.words.len()).step_by(width) {
            let meta_word = self.words[base + width - 1].load(Ordering::Relaxed);
            if meta_word == 0 {
                continue;
            }
            let k0 = self.words[base + 1].load(Ordering::Relaxed);
            let hash = if self.stride == 2 {
                mix64(k0)
            } else {
                mix64(k0 ^ mix64(self.words[base + 2].load(Ordering::Relaxed)))
            };
            let new_base = (hash as usize & mask) * width;
            for offset in 0..width {
                words[new_base + offset].store(
                    self.words[base + offset].load(Ordering::Relaxed),
                    Ordering::Relaxed,
                );
            }
        }
        self.words = words;
        self.mask = mask;
        self.grow_budget.store(doubled as i64, Ordering::Relaxed);
    }

    /// Zeroes every entry (exclusive phase; epoch-wrap fallback).
    pub(crate) fn reset(&mut self) {
        for word in self.words.iter_mut() {
            *word.get_mut() = 0;
        }
    }

    /// Looks up a stride-2 entry.
    #[inline]
    pub(crate) fn probe2(&self, epoch: u32, key: u64) -> Option<NodeId> {
        let base = self.base(mix64(key));
        let seq = self.words[base].load(Ordering::Acquire);
        if seq & 1 == 1 {
            return None;
        }
        let found_key = self.words[base + 1].load(Ordering::Relaxed);
        let found_meta = self.words[base + 2].load(Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::Acquire);
        if self.words[base].load(Ordering::Relaxed) != seq {
            return None;
        }
        if found_key == key && meta_epoch(found_meta) == epoch {
            Some(meta_result(found_meta))
        } else {
            None
        }
    }

    /// Stores a stride-2 entry, counting lossy overwrites (and dropped
    /// stores, when the entry is claimed by a racing writer) into `stats`.
    #[inline]
    pub(crate) fn store2(
        &self,
        stats: &AtomicCacheStats,
        shard: &StatShard,
        epoch: u32,
        key: u64,
        result: NodeId,
    ) {
        let base = self.base(mix64(key));
        self.note_miss();
        let seq = self.words[base].load(Ordering::Relaxed);
        if seq & 1 == 1
            || self.words[base]
                .compare_exchange(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
        {
            bump(&shard.cache_write_skips);
            return;
        }
        let old_key = self.words[base + 1].load(Ordering::Relaxed);
        let old_meta = self.words[base + 2].load(Ordering::Relaxed);
        if meta_epoch(old_meta) == epoch && old_key != key {
            bump(&stats.evictions);
        }
        self.words[base + 1].store(key, Ordering::Relaxed);
        self.words[base + 2].store(meta(epoch, result), Ordering::Relaxed);
        self.words[base].store(seq + 2, Ordering::Release);
    }

    /// Serial-flavour stride-2 lookup: reads the key/value words directly
    /// and ignores the per-entry sequence word (a quiescent entry is always
    /// released, so the words are consistent — see the module docs).
    #[inline]
    pub(crate) fn probe2_serial(&self, epoch: u32, key: u64) -> Option<NodeId> {
        let base = self.base(mix64(key));
        let found_key = self.words[base + 1].load(Ordering::Relaxed);
        let found_meta = self.words[base + 2].load(Ordering::Relaxed);
        if found_key == key && meta_epoch(found_meta) == epoch {
            Some(meta_result(found_meta))
        } else {
            None
        }
    }

    /// Serial-flavour stride-2 store: writes the key/value words directly,
    /// leaving the sequence word untouched (it stays even, so later
    /// shared-phase probes still validate normally).
    #[inline]
    pub(crate) fn store2_serial(
        &self,
        stats: &AtomicCacheStats,
        epoch: u32,
        key: u64,
        result: NodeId,
    ) {
        let base = self.base(mix64(key));
        self.note_miss_serial();
        let old_key = self.words[base + 1].load(Ordering::Relaxed);
        let old_meta = self.words[base + 2].load(Ordering::Relaxed);
        if meta_epoch(old_meta) == epoch && old_key != key {
            bump(&stats.evictions);
        }
        self.words[base + 1].store(key, Ordering::Relaxed);
        self.words[base + 2].store(meta(epoch, result), Ordering::Relaxed);
    }

    /// Looks up a stride-3 entry.
    #[inline]
    pub(crate) fn probe3(&self, epoch: u32, key_fg: u64, key_h: u64) -> Option<NodeId> {
        let base = self.base(mix64(key_fg ^ mix64(key_h)));
        let seq = self.words[base].load(Ordering::Acquire);
        if seq & 1 == 1 {
            return None;
        }
        let found_fg = self.words[base + 1].load(Ordering::Relaxed);
        let found_h = self.words[base + 2].load(Ordering::Relaxed);
        let found_meta = self.words[base + 3].load(Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::Acquire);
        if self.words[base].load(Ordering::Relaxed) != seq {
            return None;
        }
        if found_fg == key_fg && found_h == key_h && meta_epoch(found_meta) == epoch {
            Some(meta_result(found_meta))
        } else {
            None
        }
    }

    /// Stores a stride-3 entry.
    #[inline]
    pub(crate) fn store3(
        &self,
        stats: &AtomicCacheStats,
        shard: &StatShard,
        epoch: u32,
        key_fg: u64,
        key_h: u64,
        result: NodeId,
    ) {
        let base = self.base(mix64(key_fg ^ mix64(key_h)));
        self.note_miss();
        let seq = self.words[base].load(Ordering::Relaxed);
        if seq & 1 == 1
            || self.words[base]
                .compare_exchange(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
        {
            bump(&shard.cache_write_skips);
            return;
        }
        let old_fg = self.words[base + 1].load(Ordering::Relaxed);
        let old_h = self.words[base + 2].load(Ordering::Relaxed);
        let old_meta = self.words[base + 3].load(Ordering::Relaxed);
        if meta_epoch(old_meta) == epoch && (old_fg != key_fg || old_h != key_h) {
            bump(&stats.evictions);
        }
        self.words[base + 1].store(key_fg, Ordering::Relaxed);
        self.words[base + 2].store(key_h, Ordering::Relaxed);
        self.words[base + 3].store(meta(epoch, result), Ordering::Relaxed);
        self.words[base].store(seq + 2, Ordering::Release);
    }

    /// Serial-flavour stride-3 lookup (see [`DirectCache::probe2_serial`]).
    #[inline]
    pub(crate) fn probe3_serial(&self, epoch: u32, key_fg: u64, key_h: u64) -> Option<NodeId> {
        let base = self.base(mix64(key_fg ^ mix64(key_h)));
        let found_fg = self.words[base + 1].load(Ordering::Relaxed);
        let found_h = self.words[base + 2].load(Ordering::Relaxed);
        let found_meta = self.words[base + 3].load(Ordering::Relaxed);
        if found_fg == key_fg && found_h == key_h && meta_epoch(found_meta) == epoch {
            Some(meta_result(found_meta))
        } else {
            None
        }
    }

    /// Serial-flavour stride-3 store (see [`DirectCache::store2_serial`]).
    #[inline]
    pub(crate) fn store3_serial(
        &self,
        stats: &AtomicCacheStats,
        epoch: u32,
        key_fg: u64,
        key_h: u64,
        result: NodeId,
    ) {
        let base = self.base(mix64(key_fg ^ mix64(key_h)));
        self.note_miss_serial();
        let old_fg = self.words[base + 1].load(Ordering::Relaxed);
        let old_h = self.words[base + 2].load(Ordering::Relaxed);
        let old_meta = self.words[base + 3].load(Ordering::Relaxed);
        if meta_epoch(old_meta) == epoch && (old_fg != key_fg || old_h != key_h) {
            bump(&stats.evictions);
        }
        self.words[base + 1].store(key_fg, Ordering::Relaxed);
        self.words[base + 2].store(key_h, Ordering::Relaxed);
        self.words[base + 3].store(meta(epoch, result), Ordering::Relaxed);
    }
}

impl Clone for DirectCache {
    fn clone(&self) -> Self {
        Self {
            words: self
                .words
                .iter()
                .map(|word| AtomicU64::new(word.load(Ordering::Relaxed)))
                .collect(),
            mask: self.mask,
            stride: self.stride,
            grow_budget: std::sync::atomic::AtomicI64::new(
                self.grow_budget.load(Ordering::Relaxed),
            ),
            max_log2: self.max_log2,
        }
    }
}

// ---------------------------------------------------------------------- //
// Thread-sharded statistics
// ---------------------------------------------------------------------- //

/// Number of statistic shards (power of two).
pub(crate) const STAT_SHARDS: usize = 16;

/// Increments a statistics counter with a plain load/store pair instead of
/// an atomic read-modify-write.  Each thread is pinned to one shard, so a
/// shard counter has a single writer and the racy increment is exact up to
/// [`STAT_SHARDS`] concurrent threads (beyond that, slot collisions may
/// drop a *statistics* increment — never anything load-bearing).  On x86
/// this removes a `lock xadd` from every hot-path counter bump.
#[inline]
pub(crate) fn bump(counter: &AtomicU64) {
    counter.store(counter.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
}

/// Hit/miss/eviction counters of one operation cache, atomic flavour.
#[derive(Debug, Default)]
pub(crate) struct AtomicCacheStats {
    pub(crate) hits: AtomicU64,
    pub(crate) misses: AtomicU64,
    pub(crate) evictions: AtomicU64,
}

/// One shard of the hot-path counters, padded to its own cache lines so
/// concurrent threads do not bounce a shared line per increment.
#[derive(Debug, Default)]
#[repr(align(128))]
pub(crate) struct StatShard {
    /// Indexed like [`crate::ManagerStats::caches`]: and, xor, ite,
    /// cofactor, xor3, maj, flip, mux.
    pub(crate) caches: [AtomicCacheStats; 8],
    pub(crate) not_ops: AtomicU64,
    pub(crate) complement_flips: AtomicU64,
    pub(crate) created_nodes: AtomicU64,
    /// Unique-table CAS attempts that lost a slot to a racing insert.
    pub(crate) unique_cas_retries: AtomicU64,
    /// `mk` races lost outright: a speculative node was rolled back because
    /// another thread published the same key first.
    pub(crate) unique_dup_races: AtomicU64,
    /// Cache stores dropped because the entry was claimed by another writer.
    pub(crate) cache_write_skips: AtomicU64,
}

impl StatShard {
    fn clone_values(&self) -> StatShard {
        let shard = StatShard::default();
        for (src, dst) in self.caches.iter().zip(shard.caches.iter()) {
            dst.hits
                .store(src.hits.load(Ordering::Relaxed), Ordering::Relaxed);
            dst.misses
                .store(src.misses.load(Ordering::Relaxed), Ordering::Relaxed);
            dst.evictions
                .store(src.evictions.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        for (src, dst) in [
            (&self.not_ops, &shard.not_ops),
            (&self.complement_flips, &shard.complement_flips),
            (&self.created_nodes, &shard.created_nodes),
            (&self.unique_cas_retries, &shard.unique_cas_retries),
            (&self.unique_dup_races, &shard.unique_dup_races),
            (&self.cache_write_skips, &shard.cache_write_skips),
        ] {
            dst.store(src.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        shard
    }
}

/// The sharded counter block of one manager.
#[derive(Debug)]
pub(crate) struct StatShards {
    shards: Box<[StatShard]>,
}

impl StatShards {
    pub(crate) fn new() -> Self {
        Self {
            shards: (0..STAT_SHARDS).map(|_| StatShard::default()).collect(),
        }
    }

    /// The current thread's shard.
    #[inline]
    pub(crate) fn local(&self) -> &StatShard {
        &self.shards[stat_slot()]
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = &StatShard> {
        self.shards.iter()
    }
}

impl Clone for StatShards {
    fn clone(&self) -> Self {
        Self {
            shards: self.shards.iter().map(StatShard::clone_values).collect(),
        }
    }
}

/// Source of thread stat-slot assignments (round-robin over the shards).
static NEXT_STAT_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static STAT_SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// The calling thread's statistics shard index.
#[inline]
fn stat_slot() -> usize {
    STAT_SLOT.with(|slot| {
        let current = slot.get();
        if current != usize::MAX {
            return current;
        }
        let assigned = NEXT_STAT_SLOT.fetch_add(1, Ordering::Relaxed) & (STAT_SHARDS - 1);
        slot.set(assigned);
        assigned
    })
}

/// The free list of the arena: a mutex-protected stack with a relaxed
/// length mirror so the empty case skips the lock entirely.
#[derive(Debug, Default)]
pub(crate) struct FreeList {
    stack: Mutex<Vec<u32>>,
    len: AtomicUsize,
}

impl FreeList {
    pub(crate) fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    pub(crate) fn pop(&self) -> Option<u32> {
        if self.len() == 0 {
            return None;
        }
        let mut stack = self.stack.lock().expect("free list lock");
        let id = stack.pop();
        if id.is_some() {
            self.len.fetch_sub(1, Ordering::Relaxed);
        }
        id
    }

    pub(crate) fn push(&self, id: u32) {
        let mut stack = self.stack.lock().expect("free list lock");
        stack.push(id);
        self.len.fetch_add(1, Ordering::Relaxed);
    }

    /// Pops up to `n` ids in one lock acquisition.  The parallel reorder
    /// batch hands each worker chunk its own slice of pre-popped ids so
    /// the racing cons calls never touch this mutex.
    pub(crate) fn pop_many(&self, n: usize) -> Vec<u32> {
        if n == 0 || self.len() == 0 {
            return Vec::new();
        }
        let mut stack = self.stack.lock().expect("free list lock");
        let take = n.min(stack.len());
        let split_at = stack.len() - take;
        let ids = stack.split_off(split_at);
        self.len.fetch_sub(take, Ordering::Relaxed);
        ids
    }

    /// Returns unused pre-popped ids in one lock acquisition.
    pub(crate) fn push_many(&self, ids: &[u32]) {
        if ids.is_empty() {
            return;
        }
        let mut stack = self.stack.lock().expect("free list lock");
        stack.extend_from_slice(ids);
        self.len.fetch_add(ids.len(), Ordering::Relaxed);
    }

    /// Replaces the whole stack (exclusive phase: GC rebuild).
    pub(crate) fn replace(&mut self, ids: Vec<u32>) {
        self.len.store(ids.len(), Ordering::Relaxed);
        *self.stack.get_mut().expect("free list lock") = ids;
    }

    /// A snapshot of the stack (integrity checks, GC / reorder bookkeeping).
    pub(crate) fn snapshot(&self) -> Vec<u32> {
        self.stack.lock().expect("free list lock").clone()
    }
}

impl Clone for FreeList {
    fn clone(&self) -> Self {
        let stack = self.stack.lock().expect("free list lock").clone();
        let len = stack.len();
        Self {
            stack: Mutex::new(stack),
            len: AtomicUsize::new(len),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_locate_is_consistent() {
        // Every id maps to a (chunk, offset) whose base + offset returns it.
        for id in [0u32, 1, 4095, 4096, 12287, 12288, 1 << 20, (1 << 31) - 1] {
            let (chunk, offset) = locate(id);
            let base = ((1u32 << chunk) - 1) << ARENA_BASE_BITS;
            assert!(offset < chunk_len(chunk), "offset in range for {id}");
            assert_eq!(base + offset as u32, id, "roundtrip for {id}");
        }
    }

    #[test]
    fn arena_allocates_across_chunk_boundaries() {
        let arena = NodeArena::new(7);
        let mut ids = Vec::new();
        for i in 0..10_000u32 {
            let id = arena.bump();
            arena.write(
                id,
                Node {
                    var: i % 5,
                    low: NodeId::TRUE,
                    high: NodeId::FALSE,
                },
            );
            ids.push((id, i % 5));
        }
        for (id, var) in ids {
            assert_eq!(arena.var_of(id), var);
            assert_eq!(arena.high_of(id), NodeId::FALSE);
        }
        assert_eq!(arena.var_of(0), 7, "terminal sentinel kept");
    }

    #[test]
    fn subtable_find_or_publish_is_canonical() {
        let arena = NodeArena::new(3);
        let table = SubTable::new();
        let shard = StatShard::default();
        let mut published = Vec::new();
        for i in 0..100u64 {
            let children = pack_children(NodeId::TRUE, NodeId::from_bits(i as u32 + 1));
            let id = arena.bump();
            arena.write(
                id,
                Node {
                    var: 0,
                    low: NodeId::TRUE,
                    high: NodeId::from_bits(i as u32 + 1),
                },
            );
            match table.find_or_publish(&arena, children, None, || id, &shard) {
                Consed::Done {
                    id: got, created, ..
                } => {
                    assert!(created, "fresh key must publish");
                    assert_eq!(got, id);
                }
                Consed::TableFull { .. } => panic!("serial insert cannot fill the table"),
            }
            published.push((children, id));
            // Growth is the caller's responsibility (mk does exactly this).
            if table.overloaded() {
                table.grow(&arena);
            }
        }
        for (children, id) in published {
            assert_eq!(table.lookup(&arena, children), Some(id));
            // Re-publishing the same key finds the canonical node without
            // calling the allocator.
            match table.find_or_publish(&arena, children, None, || panic!("no alloc"), &shard) {
                Consed::Done {
                    id: got, created, ..
                } => {
                    assert!(!created, "existing key must be found");
                    assert_eq!(got, id);
                }
                Consed::TableFull { .. } => panic!("table has room"),
            }
        }
        assert_eq!(table.len(), 100);
    }

    #[test]
    fn cache_seqlock_roundtrip() {
        let cache = DirectCache::new(2);
        let stats = AtomicCacheStats::default();
        let shard = StatShard::default();
        cache.store2(&stats, &shard, 1, 42, NodeId::TRUE);
        assert_eq!(cache.probe2(1, 42), Some(NodeId::TRUE));
        // A different epoch is a miss, not a stale hit.
        assert_eq!(cache.probe2(2, 42), None);
    }
}
