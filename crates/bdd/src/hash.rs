//! A small, fast, non-cryptographic hasher for the unique table and the
//! operation caches.
//!
//! The default `SipHash` used by `std::collections::HashMap` is noticeably
//! slow for the tiny fixed-size keys (a few `u32`s) that dominate BDD
//! manipulation.  This is a minimal FxHash-style multiplicative hasher; it is
//! not DoS-resistant, which is irrelevant for keys we generate ourselves.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher for small integer keys.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.mix(value as u64);
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.mix(value);
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.mix(value as u64);
    }

    #[inline]
    fn write_u8(&mut self, value: u8) {
        self.mix(value as u64);
    }
}

/// `BuildHasher` for [`FxHasher`], for use with `HashMap::with_hasher`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A strong 64-bit finalizer (the murmur3/splitmix64 avalanche step).
///
/// Used by the manager's open-addressed unique table and direct-mapped
/// operation caches, where every bit of the index must depend on every bit of
/// the packed key — a plain multiplicative hash leaves the low bits (the only
/// ones a power-of-two table uses) too correlated with the node ids.
///
/// Both flavours of the phase-typed kernel (the shared CAS/seqlock paths and
/// the serial fast paths) index through this same function, so a subtable
/// entry or warm cache line written in one [`crate::KernelMode`] is found at
/// the same slot by the other — switching modes never requires invalidation
/// or rehashing.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^ (x >> 33)
}

/// A `HashMap` keyed with the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashes_are_deterministic_and_spread() {
        let mut map: FxHashMap<(u32, u32, u32), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            map.insert((i, i.wrapping_mul(7), i ^ 0xdead), i);
        }
        assert_eq!(map.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(map[&(i, i.wrapping_mul(7), i ^ 0xdead)], i);
        }
    }

    #[test]
    fn different_keys_hash_differently_in_practice() {
        use std::hash::BuildHasher;
        let bh = FxBuildHasher::default();
        let hash = |k: (u32, u32, u32)| bh.hash_one(k);
        assert_ne!(hash((1, 2, 3)), hash((3, 2, 1)));
        assert_ne!(hash((0, 0, 1)), hash((0, 1, 0)));
    }
}
