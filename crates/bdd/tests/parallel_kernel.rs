//! Concurrency stress tests of the sharded kernel: many threads hammer
//! `and`/`xor`/`or`/`ite`/`xor3`/`maj` and the hash-consing `mk` path on
//! **one** shared manager, then every invariant is checked post hoc:
//!
//! * `Manager::check_integrity` (canonical form, subtable consistency,
//!   order invariant) passes after the storm,
//! * every formula a thread built is *canonical*: rebuilding it serially on
//!   the same manager returns the identical `NodeId` without allocating a
//!   single new node (so no duplicate nodes slipped through any CAS race),
//! * every formula is *correct*: it evaluates exactly like the same
//!   formula built on an independent serial manager,
//! * interleaving exclusive phases (GC, sifting) between storms never
//!   invalidates registered roots.
//!
//! The generator is a deterministic splitmix-style sequence per thread, so
//! the serial replay performs byte-for-byte the same operation stream.

use sliq_bdd::{Manager, NodeId};

const NVARS: usize = 12;

fn split_mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds a deterministic population of formulas through shared apply
/// operations.  Pure function of `seed`, so replays are identical.
fn build_population(mgr: &Manager, seed: u64, rounds: usize) -> Vec<NodeId> {
    let mut rng = seed;
    let mut pool: Vec<NodeId> = (0..NVARS).map(|v| mgr.var(v)).collect();
    for _ in 0..rounds {
        let a = pool[(split_mix(&mut rng) as usize) % pool.len()];
        let b = pool[(split_mix(&mut rng) as usize) % pool.len()];
        let c = pool[(split_mix(&mut rng) as usize) % pool.len()];
        let f = match split_mix(&mut rng) % 7 {
            0 => mgr.and(a, b),
            1 => mgr.xor(a, b),
            2 => mgr.or(a, b),
            3 => mgr.ite(a, b, c),
            4 => mgr.xor3(a, b, c),
            5 => mgr.maj(a, b, c),
            _ => mgr.not(a),
        };
        pool.push(f);
    }
    pool
}

/// Runs `build_population` for every seed concurrently on `mgr`.
fn storm(mgr: &Manager, seeds: &[u64], rounds: usize) -> Vec<Vec<NodeId>> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .iter()
            .map(|&seed| scope.spawn(move || build_population(mgr, seed, rounds)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// A deterministic set of assignments covering every variable pattern the
/// populations can distinguish cheaply.
fn probe_assignments() -> Vec<Vec<bool>> {
    let mut rng = 0xDEAD_BEEFu64;
    let mut out = Vec::new();
    for _ in 0..64 {
        let bits = split_mix(&mut rng);
        out.push((0..NVARS).map(|v| bits >> v & 1 == 1).collect());
    }
    out
}

#[test]
fn concurrent_storm_is_canonical_and_correct() {
    let mgr = Manager::new(NVARS);
    let seeds: Vec<u64> = (0..8).map(|t| 1000 + t as u64).collect();
    let populations = storm(&mgr, &seeds, 400);
    mgr.check_integrity().expect("integrity after the storm");

    // Canonicity: a serial replay of every thread's stream finds every node
    // already present — identical edges, zero allocation.
    let created_after_storm = mgr.stats().created_nodes;
    for (&seed, population) in seeds.iter().zip(&populations) {
        let replay = build_population(&mgr, seed, 400);
        assert_eq!(&replay, population, "replay of seed {seed} is canonical");
    }
    assert_eq!(
        mgr.stats().created_nodes,
        created_after_storm,
        "serial replays must not allocate: every node was hash-consed"
    );

    // Correctness: an independent serial manager agrees on every formula.
    let serial = Manager::new(NVARS);
    let assignments = probe_assignments();
    for &seed in &seeds {
        let serial_population = build_population(&serial, seed, 400);
        let concurrent_population = &populations[(seed - 1000) as usize];
        for (f, g) in concurrent_population.iter().zip(&serial_population) {
            for a in &assignments {
                assert_eq!(
                    mgr.eval(*f, a),
                    serial.eval(*g, a),
                    "seed {seed} diverged from the serial kernel"
                );
            }
        }
    }
}

#[test]
fn storms_interleaved_with_gc_and_sifting_keep_roots_valid() {
    let mut mgr = Manager::new(NVARS);
    let seeds: Vec<u64> = (0..4).map(|t| 77 + t as u64).collect();
    let assignments = probe_assignments();

    // First storm, then pin one root per thread.
    let populations = storm(&mgr, &seeds, 250);
    let pinned: Vec<NodeId> = populations.iter().map(|p| *p.last().unwrap()).collect();
    let truth: Vec<Vec<bool>> = pinned
        .iter()
        .map(|&f| assignments.iter().map(|a| mgr.eval(f, a)).collect())
        .collect();
    let slots: Vec<_> = pinned.iter().map(|&f| mgr.register_root(f)).collect();

    for round in 0..3 {
        // Exclusive phase: reclaim the unpinned storm garbage and sift.
        mgr.collect_garbage_registered();
        mgr.reorder();
        mgr.check_integrity()
            .unwrap_or_else(|e| panic!("integrity after exclusive round {round}: {e}"));
        for (slot, &f) in slots.iter().zip(&pinned) {
            assert_eq!(mgr.root(*slot), f, "pinned root survived round {round}");
        }
        for (&f, expected) in pinned.iter().zip(&truth) {
            let now: Vec<bool> = assignments.iter().map(|a| mgr.eval(f, a)).collect();
            assert_eq!(&now, expected, "pinned function unchanged in round {round}");
        }
        // Next shared phase: another storm against recycled ids and the
        // permuted order.
        let next_seeds: Vec<u64> = seeds.iter().map(|s| s + 1000 * (round + 1)).collect();
        let _ = storm(&mgr, &next_seeds, 150);
        mgr.check_integrity()
            .unwrap_or_else(|e| panic!("integrity after storm round {round}: {e}"));
    }
}

#[test]
fn hammering_one_fresh_subtable_from_many_threads_cannot_wedge() {
    // Regression test for the transient 100%-full subtable: every thread
    // creates *distinct* nodes labelled with variable 0 (via `mux_var`)
    // starting from the tiny initial 8-slot shard, so concurrent inserts
    // race the post-insert growth as hard as possible.  The kernel must
    // neither deadlock (probe spinning inside the read guard would block
    // every grower) nor lose canonicity.
    for round in 0..8u64 {
        let mgr = Manager::new(NVARS);
        let results: Vec<Vec<NodeId>> = std::thread::scope(|scope| {
            let mgr = &mgr;
            let handles: Vec<_> = (0..8u64)
                .map(|t| {
                    scope.spawn(move || {
                        let mut rng = round * 1000 + t;
                        let mut out = Vec::new();
                        for _ in 0..200 {
                            let a = (split_mix(&mut rng) as usize % (NVARS - 1)) + 1;
                            let b = (split_mix(&mut rng) as usize % (NVARS - 1)) + 1;
                            let fa = mgr.var(a);
                            let fb = mgr.nvar(b);
                            let g = mgr.xor(fa, fb);
                            // A fresh var-0-labelled node per distinct (g, fa).
                            out.push(mgr.mux_var(0, g, fa));
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        mgr.check_integrity()
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        // Canonicity: serial replay returns identical edges.
        for (t, population) in results.iter().enumerate() {
            let mut rng = round * 1000 + t as u64;
            for &f in population {
                let a = (split_mix(&mut rng) as usize % (NVARS - 1)) + 1;
                let b = (split_mix(&mut rng) as usize % (NVARS - 1)) + 1;
                let fa = mgr.var(a);
                let fb = mgr.nvar(b);
                let g = mgr.xor(fa, fb);
                assert_eq!(mgr.mux_var(0, g, fa), f, "round {round}, thread {t}");
            }
        }
    }
}

#[test]
fn worker_pool_fanout_matches_inline_results() {
    // The pool used by the simulator fan-out, driven directly: mapping a
    // BDD workload over the pool must equal the inline map exactly.
    let mgr = Manager::new(NVARS);
    let inputs: Vec<NodeId> = (0..NVARS).map(|v| mgr.var(v)).collect();
    let pool = sliq_bdd::pool::global(4);
    let op = |mgr: &Manager, i: usize| {
        let a = inputs[i];
        let b = inputs[(i + 3) % inputs.len()];
        let x = mgr.xor(a, b);
        mgr.ite(x, a, b)
    };
    let pooled = pool.map(inputs.len(), |i| op(&mgr, i));
    let inline: Vec<NodeId> = (0..inputs.len()).map(|i| op(&mgr, i)).collect();
    assert_eq!(pooled, inline, "hash consing makes results identical edges");
    mgr.check_integrity().expect("integrity after pool fan-out");
}
