//! Property-based tests: BDD operations must agree with a brute-force
//! truth-table oracle on random Boolean expressions over a small variable
//! set, and the complement-edge manager must match a regular-edge reference
//! manager *node for node* — on random formulas and on random
//! Clifford+T-shaped kernel-op workloads — while maintaining the canonical
//! form (no stored low edge is ever complemented, `¬¬f` is the identical
//! edge without any allocation).

use proptest::prelude::*;
use sliq_bdd::{Manager, NodeId};

const NVARS: usize = 5;

/// A random Boolean expression AST.
#[derive(Debug, Clone)]
enum Expr {
    Const(bool),
    Var(usize),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(Expr::Const),
        (0..NVARS).prop_map(Expr::Var),
    ];
    leaf.prop_recursive(4, 64, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner).prop_map(|(a, b, c)| Expr::Ite(
                Box::new(a),
                Box::new(b),
                Box::new(c)
            )),
        ]
    })
}

fn eval_expr(e: &Expr, assignment: &[bool]) -> bool {
    match e {
        Expr::Const(b) => *b,
        Expr::Var(v) => assignment[*v],
        Expr::Not(a) => !eval_expr(a, assignment),
        Expr::And(a, b) => eval_expr(a, assignment) && eval_expr(b, assignment),
        Expr::Or(a, b) => eval_expr(a, assignment) || eval_expr(b, assignment),
        Expr::Xor(a, b) => eval_expr(a, assignment) ^ eval_expr(b, assignment),
        Expr::Ite(a, b, c) => {
            if eval_expr(a, assignment) {
                eval_expr(b, assignment)
            } else {
                eval_expr(c, assignment)
            }
        }
    }
}

fn build_bdd(mgr: &Manager, e: &Expr) -> NodeId {
    match e {
        Expr::Const(b) => mgr.constant(*b),
        Expr::Var(v) => mgr.var(*v),
        Expr::Not(a) => {
            let fa = build_bdd(mgr, a);
            mgr.not(fa)
        }
        Expr::And(a, b) => {
            let fa = build_bdd(mgr, a);
            let fb = build_bdd(mgr, b);
            mgr.and(fa, fb)
        }
        Expr::Or(a, b) => {
            let fa = build_bdd(mgr, a);
            let fb = build_bdd(mgr, b);
            mgr.or(fa, fb)
        }
        Expr::Xor(a, b) => {
            let fa = build_bdd(mgr, a);
            let fb = build_bdd(mgr, b);
            mgr.xor(fa, fb)
        }
        Expr::Ite(a, b, c) => {
            let fa = build_bdd(mgr, a);
            let fb = build_bdd(mgr, b);
            let fc = build_bdd(mgr, c);
            mgr.ite(fa, fb, fc)
        }
    }
}

fn assignments() -> impl Iterator<Item = Vec<bool>> {
    (0..(1u32 << NVARS)).map(|bits| (0..NVARS).map(|v| bits >> v & 1 == 1).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bdd_matches_truth_table(e in expr_strategy()) {
        let mgr = Manager::new(NVARS);
        let f = build_bdd(&mgr, &e);
        for a in assignments() {
            prop_assert_eq!(mgr.eval(f, &a), eval_expr(&e, &a));
        }
    }

    #[test]
    fn sat_count_matches_truth_table(e in expr_strategy()) {
        let mgr = Manager::new(NVARS);
        let f = build_bdd(&mgr, &e);
        let expected = assignments().filter(|a| eval_expr(&e, a)).count() as u64;
        prop_assert_eq!(mgr.sat_count(f, NVARS), sliq_bignum::UBig::from(expected));
        prop_assert_eq!(mgr.sat_count_f64(f, NVARS), expected as f64);
    }

    #[test]
    fn semantically_equal_expressions_share_one_node(e in expr_strategy()) {
        // Canonicity: building ¬¬e and e must give the identical NodeId.
        let mgr = Manager::new(NVARS);
        let f = build_bdd(&mgr, &e);
        let g = build_bdd(&mgr, &Expr::Not(Box::new(Expr::Not(Box::new(e)))));
        prop_assert_eq!(f, g);
    }

    #[test]
    fn cofactor_matches_restricted_truth_table(e in expr_strategy(), var in 0..NVARS, value in any::<bool>()) {
        let mgr = Manager::new(NVARS);
        let f = build_bdd(&mgr, &e);
        let cf = mgr.cofactor(f, var, value);
        for mut a in assignments() {
            a[var] = value;
            prop_assert_eq!(mgr.eval(cf, &a), eval_expr(&e, &a));
        }
        // The cofactor never depends on the restricted variable.
        prop_assert!(!mgr.support(cf).contains(&var));
    }

    #[test]
    fn shannon_expansion_reconstructs_function(e in expr_strategy(), var in 0..NVARS) {
        let mgr = Manager::new(NVARS);
        let f = build_bdd(&mgr, &e);
        let f0 = mgr.cofactor(f, var, false);
        let f1 = mgr.cofactor(f, var, true);
        let x = mgr.var(var);
        let rebuilt = mgr.ite(x, f1, f0);
        prop_assert_eq!(rebuilt, f);
    }

    #[test]
    fn gc_preserves_roots(e1 in expr_strategy(), e2 in expr_strategy()) {
        let mut mgr = Manager::new(NVARS);
        let f1 = build_bdd(&mgr, &e1);
        let f2 = build_bdd(&mgr, &e2);
        // Drop f2 (treat as garbage), keep f1.
        mgr.collect_garbage(&[f1]);
        for a in assignments() {
            prop_assert_eq!(mgr.eval(f1, &a), eval_expr(&e1, &a));
        }
        // Rebuilding e2 after GC still yields a correct function.
        let f2b = build_bdd(&mgr, &e2);
        for a in assignments() {
            prop_assert_eq!(mgr.eval(f2b, &a), eval_expr(&e2, &a));
        }
        let _ = f2;
    }

    #[test]
    fn specialized_applies_equal_their_ite_encodings(e1 in expr_strategy(), e2 in expr_strategy()) {
        // The dedicated two-operand recursions must return the *identical*
        // node (not merely an equivalent function) as the generic ITE
        // formulations they replace — BDD canonicity makes this an equality
        // on NodeIds.
        let mgr = Manager::new(NVARS);
        let f = build_bdd(&mgr, &e1);
        let g = build_bdd(&mgr, &e2);

        let and_direct = mgr.and(f, g);
        let and_ite = mgr.ite(f, g, NodeId::FALSE);
        prop_assert_eq!(and_direct, and_ite);

        let or_direct = mgr.or(f, g);
        let or_ite = mgr.ite(f, NodeId::TRUE, g);
        prop_assert_eq!(or_direct, or_ite);

        let xor_direct = mgr.xor(f, g);
        let ng = mgr.not(g);
        let xor_ite = mgr.ite(f, ng, g);
        prop_assert_eq!(xor_direct, xor_ite);

        let not_direct = mgr.not(f);
        let not_ite = mgr.ite(f, NodeId::FALSE, NodeId::TRUE);
        prop_assert_eq!(not_direct, not_ite);
    }

    #[test]
    fn three_operand_applies_equal_their_ite_encodings(
        e1 in expr_strategy(),
        e2 in expr_strategy(),
        e3 in expr_strategy(),
        var in 0..NVARS,
    ) {
        let mgr = Manager::new(NVARS);
        let f = build_bdd(&mgr, &e1);
        let g = build_bdd(&mgr, &e2);
        let h = build_bdd(&mgr, &e3);

        // xor3 = f ⊕ g ⊕ h via chained two-operand xors.
        let xor3_direct = mgr.xor3(f, g, h);
        let fg = mgr.xor(f, g);
        let xor3_chained = mgr.xor(fg, h);
        prop_assert_eq!(xor3_direct, xor3_chained);

        // maj = f·g ∨ (f ∨ g)·h, the full-adder carry.
        let maj_direct = mgr.maj(f, g, h);
        let fg_and = mgr.and(f, g);
        let fg_or = mgr.or(f, g);
        let propagate = mgr.and(fg_or, h);
        let maj_chained = mgr.or(fg_and, propagate);
        prop_assert_eq!(maj_direct, maj_chained);

        // mux_var = ite(x_var, g, h) with the literal materialised.
        let mux_direct = mgr.mux_var(var, g, h);
        let x = mgr.var(var);
        let mux_ite = mgr.ite(x, g, h);
        prop_assert_eq!(mux_direct, mux_ite);

        // flip_var = ite(x_var, f|_{var=0}, f|_{var=1}).
        let flip_direct = mgr.flip_var(f, var);
        let f0 = mgr.cofactor(f, var, false);
        let f1 = mgr.cofactor(f, var, true);
        let flip_ite = mgr.ite(x, f0, f1);
        prop_assert_eq!(flip_direct, flip_ite);
    }

    #[test]
    fn exists_matches_truth_table(e in expr_strategy(), var in 0..NVARS) {
        let mgr = Manager::new(NVARS);
        let f = build_bdd(&mgr, &e);
        let ex = mgr.exists(f, var);
        for a in assignments() {
            let mut a0 = a.clone();
            a0[var] = false;
            let mut a1 = a.clone();
            a1[var] = true;
            let expected = eval_expr(&e, &a0) || eval_expr(&e, &a1);
            prop_assert_eq!(mgr.eval(ex, &a), expected);
        }
    }

    // ------------------------------------------------------------------ //
    // Reordering: swaps and sifting are pure representation changes
    // ------------------------------------------------------------------ //

    #[test]
    fn random_swap_sequences_preserve_semantics(
        e1 in expr_strategy(),
        e2 in expr_strategy(),
        swaps in proptest::collection::vec(0..NVARS - 1, 0..24),
    ) {
        let mut mgr = Manager::new(NVARS);
        let f = build_bdd(&mgr, &e1);
        let g = build_bdd(&mgr, &e2);
        let slot_f = mgr.register_root(f);
        let slot_g = mgr.register_root(g);
        let count_f = mgr.sat_count(f, NVARS);
        let count_g = mgr.sat_count(g, NVARS);
        for &level in &swaps {
            mgr.swap_adjacent_levels(level);
            // Canonicity invariants hold after every swap (stored low
            // edges regular, no redundant or duplicate nodes, consistent
            // subtables and permutation arrays).
            if let Err(violation) = mgr.check_integrity() {
                prop_assert!(false, "integrity after swap at {}: {}", level, violation);
            }
            if let Err(msg) = assert_low_edges_regular(&mgr, f) {
                prop_assert!(false, "{}", msg);
            }
        }
        // The registered handles are untouched and still denote the same
        // functions (eval is in variable space, so the truth tables are
        // directly comparable).
        prop_assert_eq!(mgr.root(slot_f), f);
        prop_assert_eq!(mgr.root(slot_g), g);
        for a in assignments() {
            prop_assert_eq!(mgr.eval(f, &a), eval_expr(&e1, &a));
            prop_assert_eq!(mgr.eval(g, &a), eval_expr(&e2, &a));
        }
        prop_assert_eq!(mgr.sat_count(f, NVARS), count_f);
        prop_assert_eq!(mgr.sat_count(g, NVARS), count_g);
    }

    #[test]
    fn swap_followed_by_its_inverse_restores_the_exact_node_count(
        e1 in expr_strategy(),
        e2 in expr_strategy(),
        level in 0..NVARS - 1,
    ) {
        let mut mgr = Manager::new(NVARS);
        let f = build_bdd(&mgr, &e1);
        let g = build_bdd(&mgr, &e2);
        let _sf = mgr.register_root(f);
        let _sg = mgr.register_root(g);
        // Start from a garbage-free diagram so sizes are canonical.
        mgr.collect_garbage_registered();
        let count = mgr.allocated_nodes();
        let order = mgr.current_order();
        mgr.swap_adjacent_levels(level);
        mgr.swap_adjacent_levels(level);
        prop_assert_eq!(mgr.allocated_nodes(), count);
        prop_assert_eq!(mgr.current_order(), order);
    }

    #[test]
    fn full_sifting_preserves_semantics_and_never_grows_the_bdd(
        e1 in expr_strategy(),
        e2 in expr_strategy(),
        converge in any::<bool>(),
    ) {
        let mut mgr = Manager::new(NVARS);
        let f = build_bdd(&mgr, &e1);
        let g = build_bdd(&mgr, &e2);
        let _sf = mgr.register_root(f);
        let _sg = mgr.register_root(g);
        let count_f = mgr.sat_count(f, NVARS);
        mgr.set_converging_sifting(converge);
        let stats = mgr.reorder();
        prop_assert!(
            stats.size_after <= stats.size_before,
            "sifting parks every variable at its best seen position"
        );
        if let Err(violation) = mgr.check_integrity() {
            prop_assert!(false, "integrity after sifting: {}", violation);
        }
        for a in assignments() {
            prop_assert_eq!(mgr.eval(f, &a), eval_expr(&e1, &a));
            prop_assert_eq!(mgr.eval(g, &a), eval_expr(&e2, &a));
        }
        prop_assert_eq!(mgr.sat_count(f, NVARS), count_f);
        // Operations keep working against the permuted order (the op
        // caches were epoch-invalidated by the reorder).
        let h = mgr.and(f, g);
        for a in assignments() {
            prop_assert_eq!(mgr.eval(h, &a), eval_expr(&e1, &a) && eval_expr(&e2, &a));
        }
    }
}

// ---------------------------------------------------------------------- //
// Complement-edge oracle: a minimal *regular-edge* ROBDD manager (the
// pre-complement-edge kernel distilled to its semantics) that the
// complement-edge manager is compared against node-for-node.
// ---------------------------------------------------------------------- //

mod reference {
    use std::collections::HashMap;

    const TERM_LEVEL: u32 = u32::MAX;
    /// Reference false terminal.
    pub const R_FALSE: usize = 0;
    /// Reference true terminal.
    pub const R_TRUE: usize = 1;

    /// A hash-consed ROBDD manager *without* complement edges: two terminal
    /// nodes, ITE-based operations, no operation sharing between a function
    /// and its negation.  Deliberately simple — correctness oracle only.
    pub struct RefManager {
        /// `(level, low, high)`; entries 0 and 1 are the terminals.
        pub nodes: Vec<(u32, usize, usize)>,
        unique: HashMap<(u32, usize, usize), usize>,
        ite_memo: HashMap<(usize, usize, usize), usize>,
    }

    impl RefManager {
        pub fn new() -> Self {
            Self {
                nodes: vec![(TERM_LEVEL, 0, 0), (TERM_LEVEL, 1, 1)],
                unique: HashMap::new(),
                ite_memo: HashMap::new(),
            }
        }

        fn mk(&mut self, level: u32, low: usize, high: usize) -> usize {
            if low == high {
                return low;
            }
            *self.unique.entry((level, low, high)).or_insert_with(|| {
                self.nodes.push((level, low, high));
                self.nodes.len() - 1
            })
        }

        fn level(&self, f: usize) -> u32 {
            self.nodes[f].0
        }

        fn split(&self, f: usize, level: u32) -> (usize, usize) {
            let (l, low, high) = self.nodes[f];
            if l == level {
                (low, high)
            } else {
                (f, f)
            }
        }

        pub fn var(&mut self, v: usize) -> usize {
            self.mk(v as u32, R_FALSE, R_TRUE)
        }

        pub fn ite(&mut self, f: usize, g: usize, h: usize) -> usize {
            if f == R_TRUE {
                return g;
            }
            if f == R_FALSE {
                return h;
            }
            if g == h {
                return g;
            }
            if let Some(&r) = self.ite_memo.get(&(f, g, h)) {
                return r;
            }
            let top = self.level(f).min(self.level(g)).min(self.level(h));
            let (f0, f1) = self.split(f, top);
            let (g0, g1) = self.split(g, top);
            let (h0, h1) = self.split(h, top);
            let low = self.ite(f0, g0, h0);
            let high = self.ite(f1, g1, h1);
            let r = self.mk(top, low, high);
            self.ite_memo.insert((f, g, h), r);
            r
        }

        pub fn not(&mut self, f: usize) -> usize {
            self.ite(f, R_FALSE, R_TRUE)
        }

        pub fn and(&mut self, f: usize, g: usize) -> usize {
            self.ite(f, g, R_FALSE)
        }

        pub fn or(&mut self, f: usize, g: usize) -> usize {
            self.ite(f, R_TRUE, g)
        }

        pub fn xor(&mut self, f: usize, g: usize) -> usize {
            let ng = self.not(g);
            self.ite(f, ng, g)
        }

        pub fn restrict(&mut self, f: usize, var: usize, value: bool) -> usize {
            let (level, low, high) = self.nodes[f];
            if level > var as u32 {
                return f;
            }
            if level == var as u32 {
                return if value { high } else { low };
            }
            let l = self.restrict(low, var, value);
            let h = self.restrict(high, var, value);
            self.mk(level, l, h)
        }

        pub fn node_count(&self, f: usize) -> usize {
            let mut seen = std::collections::HashSet::new();
            let mut stack = vec![f];
            while let Some(g) = stack.pop() {
                if g <= 1 || !seen.insert(g) {
                    continue;
                }
                let (_, low, high) = self.nodes[g];
                stack.push(low);
                stack.push(high);
            }
            seen.len()
        }
    }
}

use reference::{RefManager, R_FALSE, R_TRUE};
use std::collections::{HashMap, HashSet};

fn build_ref(r: &mut RefManager, e: &Expr) -> usize {
    match e {
        Expr::Const(b) => {
            if *b {
                R_TRUE
            } else {
                R_FALSE
            }
        }
        Expr::Var(v) => r.var(*v),
        Expr::Not(a) => {
            let fa = build_ref(r, a);
            r.not(fa)
        }
        Expr::And(a, b) => {
            let fa = build_ref(r, a);
            let fb = build_ref(r, b);
            r.and(fa, fb)
        }
        Expr::Or(a, b) => {
            let fa = build_ref(r, a);
            let fb = build_ref(r, b);
            r.or(fa, fb)
        }
        Expr::Xor(a, b) => {
            let fa = build_ref(r, a);
            let fb = build_ref(r, b);
            r.xor(fa, fb)
        }
        Expr::Ite(a, b, c) => {
            let fa = build_ref(r, a);
            let fb = build_ref(r, b);
            let fc = build_ref(r, c);
            r.ite(fa, fb, fc)
        }
    }
}

/// Node-for-node comparison: unfolding the complement bits of `f` must give
/// exactly the regular-edge BDD rooted at `rf` — same levels, same branch
/// structure, same terminals on every path.
fn structurally_equal(
    mgr: &Manager,
    f: NodeId,
    r: &RefManager,
    rf: usize,
    memo: &mut HashMap<(NodeId, usize), bool>,
) -> bool {
    if f.is_true() {
        return rf == R_TRUE;
    }
    if f.is_false() {
        return rf == R_FALSE;
    }
    if rf <= 1 {
        return false;
    }
    if let Some(&cached) = memo.get(&(f, rf)) {
        return cached;
    }
    let (level, low, high) = mgr.node(f).expect("non-terminal");
    let (rlevel, rlow, rhigh) = r.nodes[rf];
    let equal = rlevel != u32::MAX
        && level == rlevel as usize
        && structurally_equal(mgr, low, r, rlow, memo)
        && structurally_equal(mgr, high, r, rhigh, memo);
    memo.insert((f, rf), equal);
    equal
}

/// Walks every node reachable from `f` asserting the canonical form: no
/// stored low edge carries the complement bit.
fn assert_low_edges_regular(mgr: &Manager, f: NodeId) -> Result<(), String> {
    let mut seen: HashSet<NodeId> = HashSet::new();
    let mut stack = vec![f.regular()];
    while let Some(g) = stack.pop() {
        if g.is_terminal() || !seen.insert(g) {
            continue;
        }
        // `g` is regular, so node() returns the stored edges verbatim.
        let (_, low, high) = mgr.node(g).expect("non-terminal");
        if low.is_complemented() {
            return Err(format!("node {:?} stores a complemented low edge", g));
        }
        stack.push(low);
        stack.push(high.regular());
    }
    Ok(())
}

/// One step of a random Clifford+T-shaped workload over a pool of slice
/// functions, expressed in the kernel ops the gate formulas of
/// `sliq-core::gates` actually use (flip for X, mux for CX, XOR for the
/// conditional phase flip, cofactor + XOR3/MAJ full-adder steps for H).
#[derive(Debug, Clone)]
enum CtOp {
    X { t: usize },
    Cx { c: usize, t: usize },
    Phase { t: usize, slice: usize },
    H { t: usize, slice: usize },
}

fn ct_op_strategy() -> impl Strategy<Value = CtOp> {
    let distinct = (0..NVARS, 0..NVARS).prop_filter("distinct", |(a, b)| a != b);
    prop_oneof![
        (0..NVARS).prop_map(|t| CtOp::X { t }),
        distinct.prop_map(|(c, t)| CtOp::Cx { c, t }),
        (0..NVARS, 0..4usize).prop_map(|(t, slice)| CtOp::Phase { t, slice }),
        (0..NVARS, 0..4usize).prop_map(|(t, slice)| CtOp::H { t, slice }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn complement_manager_matches_regular_edge_reference(e in expr_strategy()) {
        let mgr = Manager::new(NVARS);
        let f = build_bdd(&mgr, &e);
        let mut r = RefManager::new();
        let rf = build_ref(&mut r, &e);
        let mut memo = HashMap::new();
        prop_assert!(
            structurally_equal(&mgr, f, &r, rf, &mut memo),
            "complement-edge BDD does not unfold to the regular-edge reference"
        );
        // Sharing a function with its negation can only shrink the graph.
        prop_assert!(mgr.node_count(f) <= r.node_count(rf));
        // And the negation is the *same* comparison against the reference
        // negation, through the identical shared nodes.
        let nf = mgr.not(f);
        let nrf = r.not(rf);
        let mut memo = HashMap::new();
        prop_assert!(structurally_equal(&mgr, nf, &r, nrf, &mut memo));
    }

    #[test]
    fn canonicity_invariants_hold_on_random_formulas(e in expr_strategy()) {
        let mgr = Manager::new(NVARS);
        let f = build_bdd(&mgr, &e);
        if let Err(msg) = assert_low_edges_regular(&mgr, f) {
            prop_assert!(false, "{}", msg);
        }
        // not is an O(1) involution: no allocation, no cache traffic.
        let created = mgr.stats().created_nodes;
        let cache_total = mgr.stats().total_cache();
        let nf = mgr.not(f);
        let back = mgr.not(nf);
        prop_assert_eq!(back, f);
        prop_assert_eq!(mgr.stats().created_nodes, created);
        let cache_after = mgr.stats().total_cache();
        prop_assert_eq!(cache_after.hits, cache_total.hits);
        prop_assert_eq!(cache_after.misses, cache_total.misses);
    }

    #[test]
    fn clifford_t_shaped_workload_matches_reference(
        ops in proptest::collection::vec(ct_op_strategy(), 1..24)
    ) {
        // A pool of four "slice" functions seeded with the literals the
        // bit-sliced state starts from, evolved by the same kernel-op
        // recipes the gate layer uses, mirrored onto the reference manager
        // with ITE-only regular-edge operations.
        let mgr = Manager::new(NVARS);
        let mut r = RefManager::new();
        let mut pool: Vec<NodeId> = Vec::new();
        let mut rpool: Vec<usize> = Vec::new();
        for v in 0..4 {
            pool.push(mgr.var(v % NVARS));
            rpool.push(r.var(v % NVARS));
        }
        for op in &ops {
            match *op {
                CtOp::X { t } => {
                    for (f, rf) in pool.iter_mut().zip(rpool.iter_mut()) {
                        *f = mgr.flip_var(*f, t);
                        let r0 = r.restrict(*rf, t, false);
                        let r1 = r.restrict(*rf, t, true);
                        let x = r.var(t);
                        *rf = r.ite(x, r0, r1);
                    }
                }
                CtOp::Cx { c, t } => {
                    for (f, rf) in pool.iter_mut().zip(rpool.iter_mut()) {
                        let swapped = mgr.flip_var(*f, t);
                        *f = mgr.mux_var(c, swapped, *f);
                        let r0 = r.restrict(*rf, t, false);
                        let r1 = r.restrict(*rf, t, true);
                        let x = r.var(t);
                        let rswapped = r.ite(x, r0, r1);
                        let qc = r.var(c);
                        *rf = r.ite(qc, rswapped, *rf);
                    }
                }
                CtOp::Phase { t, slice } => {
                    let i = slice % pool.len();
                    let qt = mgr.var(t);
                    pool[i] = mgr.xor(pool[i], qt);
                    let rqt = r.var(t);
                    rpool[i] = r.xor(rpool[i], rqt);
                }
                CtOp::H { t, slice } => {
                    // One full-adder step of the Hadamard formula: sum and
                    // carry of (F|₀, F|₁ ⊕ qₜ, qₜ).
                    let i = slice % pool.len();
                    let qt = mgr.var(t);
                    let f0 = mgr.cofactor(pool[i], t, false);
                    let f1 = mgr.cofactor(pool[i], t, true);
                    let second = mgr.xor(f1, qt);
                    let sum = mgr.xor3(f0, second, qt);
                    let carry = mgr.maj(f0, second, qt);
                    pool[i] = sum;
                    pool[(i + 1) % 4] = carry;

                    let rqt = r.var(t);
                    let rf0 = r.restrict(rpool[i], t, false);
                    let rf1 = r.restrict(rpool[i], t, true);
                    let rsecond = r.xor(rf1, rqt);
                    let s1 = r.xor(rf0, rsecond);
                    let rsum = r.xor(s1, rqt);
                    let ab = r.and(rf0, rsecond);
                    let ab_or = r.or(rf0, rsecond);
                    let prop_c = r.and(ab_or, rqt);
                    let rcarry = r.or(ab, prop_c);
                    rpool[i] = rsum;
                    rpool[(i + 1) % 4] = rcarry;
                }
            }
        }
        // Node-for-node agreement of every live slice, plus canonicity.
        for (f, rf) in pool.iter().zip(rpool.iter()) {
            let mut memo = HashMap::new();
            prop_assert!(
                structurally_equal(&mgr, *f, &r, *rf, &mut memo),
                "slice diverged from the regular-edge reference"
            );
            if let Err(msg) = assert_low_edges_regular(&mgr, *f) {
                prop_assert!(false, "{}", msg);
            }
        }
    }
}

// ---------------------------------------------------------------------- //
// Interleaved parallel apply + GC + reordering: the sharded kernel's phase
// discipline.  Shared phases run apply recursions from several threads on
// one `&Manager`; exclusive phases (GC, swaps, auto-reorder) run on `&mut
// Manager`, which the borrow checker guarantees cannot overlap an in-flight
// apply — this test exercises the full cycle and then holds the result to
// the regular-edge oracle node-for-node.
// ---------------------------------------------------------------------- //

/// `e` with every variable substituted through `map` — used to express the
/// oracle in *level* space after a reordering, so the node-for-node
/// structural comparison stays valid under any variable order.
fn remap_expr(e: &Expr, map: &[usize]) -> Expr {
    match e {
        Expr::Const(b) => Expr::Const(*b),
        Expr::Var(v) => Expr::Var(map[*v]),
        Expr::Not(a) => Expr::Not(Box::new(remap_expr(a, map))),
        Expr::And(a, b) => Expr::And(Box::new(remap_expr(a, map)), Box::new(remap_expr(b, map))),
        Expr::Or(a, b) => Expr::Or(Box::new(remap_expr(a, map)), Box::new(remap_expr(b, map))),
        Expr::Xor(a, b) => Expr::Xor(Box::new(remap_expr(a, map)), Box::new(remap_expr(b, map))),
        Expr::Ite(a, b, c) => Expr::Ite(
            Box::new(remap_expr(a, map)),
            Box::new(remap_expr(b, map)),
            Box::new(remap_expr(c, map)),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_apply_interleaved_with_gc_and_reorder_matches_oracle(
        base in expr_strategy(),
        others in proptest::collection::vec(expr_strategy(), 4..5),
        swaps in proptest::collection::vec(0..NVARS - 1, 0..6),
    ) {
        // Shared phase 1: one thread per expression builds through a single
        // `&Manager`; the shared `base` sub-expression forces cross-thread
        // hash-consing collisions.
        let mgr = Manager::new(NVARS);
        let roots: Vec<NodeId> = std::thread::scope(|scope| {
            let mgr = &mgr;
            let base = &base;
            let handles: Vec<_> = others
                .iter()
                .map(|e| {
                    scope.spawn(move || {
                        let fb = build_bdd(mgr, base);
                        let fe = build_bdd(mgr, e);
                        mgr.xor(fb, fe)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Exclusive phase: GC, explicit swaps and an auto-reorder pass —
        // stop-the-world by construction (`&mut Manager`).
        let mut mgr = mgr;
        let slots: Vec<_> = roots.iter().map(|&f| mgr.register_root(f)).collect();
        mgr.collect_garbage_registered();
        for &level in &swaps {
            mgr.swap_adjacent_levels(level);
        }
        mgr.set_auto_reorder(true);
        mgr.set_reorder_threshold(1);
        mgr.maybe_reorder();
        if let Err(violation) = mgr.check_integrity() {
            prop_assert!(false, "integrity after exclusive phase: {}", violation);
        }
        for (slot, &f) in slots.iter().zip(roots.iter()) {
            prop_assert_eq!(mgr.root(*slot), f, "registered roots survive the exclusive phase");
        }
        // Shared phase 2: conjoin every root with a literal, again from
        // several threads, now against the permuted order and the recycled
        // node ids the exclusive phase produced.
        let mgr = mgr;
        let conjoined: Vec<NodeId> = std::thread::scope(|scope| {
            let mgr = &mgr;
            let handles: Vec<_> = roots
                .iter()
                .enumerate()
                .map(|(i, &f)| {
                    scope.spawn(move || {
                        let lit = mgr.var(i % NVARS);
                        mgr.and(f, lit)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        if let Err(violation) = mgr.check_integrity() {
            prop_assert!(false, "integrity after shared phase 2: {}", violation);
        }
        // Oracle comparison, node-for-node in *level* space (the order may
        // have changed, so the reference is built over remapped variables).
        let level_of: Vec<usize> = (0..NVARS).map(|v| mgr.level_of_var(v)).collect();
        for (i, (&f, &g)) in roots.iter().zip(conjoined.iter()).enumerate() {
            let expr = Expr::Xor(Box::new(base.clone()), Box::new(others[i].clone()));
            let full = Expr::And(Box::new(expr.clone()), Box::new(Expr::Var(i % NVARS)));
            for a in assignments() {
                prop_assert_eq!(mgr.eval(f, &a), eval_expr(&expr, &a));
                prop_assert_eq!(mgr.eval(g, &a), eval_expr(&full, &a));
            }
            let mut r = RefManager::new();
            let rf = build_ref(&mut r, &remap_expr(&expr, &level_of));
            let rg = build_ref(&mut r, &remap_expr(&full, &level_of));
            let mut memo = HashMap::new();
            prop_assert!(
                structurally_equal(&mgr, f, &r, rf, &mut memo),
                "root {} diverged from the oracle node-for-node", i
            );
            prop_assert!(
                structurally_equal(&mgr, g, &r, rg, &mut memo),
                "conjunction {} diverged from the oracle node-for-node", i
            );
            if let Err(msg) = assert_low_edges_regular(&mgr, g) {
                prop_assert!(false, "{}", msg);
            }
        }
    }
}
