//! Property-based tests: BDD operations must agree with a brute-force
//! truth-table oracle on random Boolean expressions over a small variable set.

use proptest::prelude::*;
use sliq_bdd::{Manager, NodeId};

const NVARS: usize = 5;

/// A random Boolean expression AST.
#[derive(Debug, Clone)]
enum Expr {
    Const(bool),
    Var(usize),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(Expr::Const),
        (0..NVARS).prop_map(Expr::Var),
    ];
    leaf.prop_recursive(4, 64, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner).prop_map(|(a, b, c)| Expr::Ite(
                Box::new(a),
                Box::new(b),
                Box::new(c)
            )),
        ]
    })
}

fn eval_expr(e: &Expr, assignment: &[bool]) -> bool {
    match e {
        Expr::Const(b) => *b,
        Expr::Var(v) => assignment[*v],
        Expr::Not(a) => !eval_expr(a, assignment),
        Expr::And(a, b) => eval_expr(a, assignment) && eval_expr(b, assignment),
        Expr::Or(a, b) => eval_expr(a, assignment) || eval_expr(b, assignment),
        Expr::Xor(a, b) => eval_expr(a, assignment) ^ eval_expr(b, assignment),
        Expr::Ite(a, b, c) => {
            if eval_expr(a, assignment) {
                eval_expr(b, assignment)
            } else {
                eval_expr(c, assignment)
            }
        }
    }
}

fn build_bdd(mgr: &mut Manager, e: &Expr) -> NodeId {
    match e {
        Expr::Const(b) => mgr.constant(*b),
        Expr::Var(v) => mgr.var(*v),
        Expr::Not(a) => {
            let fa = build_bdd(mgr, a);
            mgr.not(fa)
        }
        Expr::And(a, b) => {
            let fa = build_bdd(mgr, a);
            let fb = build_bdd(mgr, b);
            mgr.and(fa, fb)
        }
        Expr::Or(a, b) => {
            let fa = build_bdd(mgr, a);
            let fb = build_bdd(mgr, b);
            mgr.or(fa, fb)
        }
        Expr::Xor(a, b) => {
            let fa = build_bdd(mgr, a);
            let fb = build_bdd(mgr, b);
            mgr.xor(fa, fb)
        }
        Expr::Ite(a, b, c) => {
            let fa = build_bdd(mgr, a);
            let fb = build_bdd(mgr, b);
            let fc = build_bdd(mgr, c);
            mgr.ite(fa, fb, fc)
        }
    }
}

fn assignments() -> impl Iterator<Item = Vec<bool>> {
    (0..(1u32 << NVARS)).map(|bits| (0..NVARS).map(|v| bits >> v & 1 == 1).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bdd_matches_truth_table(e in expr_strategy()) {
        let mut mgr = Manager::new(NVARS);
        let f = build_bdd(&mut mgr, &e);
        for a in assignments() {
            prop_assert_eq!(mgr.eval(f, &a), eval_expr(&e, &a));
        }
    }

    #[test]
    fn sat_count_matches_truth_table(e in expr_strategy()) {
        let mut mgr = Manager::new(NVARS);
        let f = build_bdd(&mut mgr, &e);
        let expected = assignments().filter(|a| eval_expr(&e, a)).count() as u64;
        prop_assert_eq!(mgr.sat_count(f, NVARS), sliq_bignum::UBig::from(expected));
        prop_assert_eq!(mgr.sat_count_f64(f, NVARS), expected as f64);
    }

    #[test]
    fn semantically_equal_expressions_share_one_node(e in expr_strategy()) {
        // Canonicity: building ¬¬e and e must give the identical NodeId.
        let mut mgr = Manager::new(NVARS);
        let f = build_bdd(&mut mgr, &e);
        let g = build_bdd(&mut mgr, &Expr::Not(Box::new(Expr::Not(Box::new(e)))));
        prop_assert_eq!(f, g);
    }

    #[test]
    fn cofactor_matches_restricted_truth_table(e in expr_strategy(), var in 0..NVARS, value in any::<bool>()) {
        let mut mgr = Manager::new(NVARS);
        let f = build_bdd(&mut mgr, &e);
        let cf = mgr.cofactor(f, var, value);
        for mut a in assignments() {
            a[var] = value;
            prop_assert_eq!(mgr.eval(cf, &a), eval_expr(&e, &a));
        }
        // The cofactor never depends on the restricted variable.
        prop_assert!(!mgr.support(cf).contains(&var));
    }

    #[test]
    fn shannon_expansion_reconstructs_function(e in expr_strategy(), var in 0..NVARS) {
        let mut mgr = Manager::new(NVARS);
        let f = build_bdd(&mut mgr, &e);
        let f0 = mgr.cofactor(f, var, false);
        let f1 = mgr.cofactor(f, var, true);
        let x = mgr.var(var);
        let rebuilt = mgr.ite(x, f1, f0);
        prop_assert_eq!(rebuilt, f);
    }

    #[test]
    fn gc_preserves_roots(e1 in expr_strategy(), e2 in expr_strategy()) {
        let mut mgr = Manager::new(NVARS);
        let f1 = build_bdd(&mut mgr, &e1);
        let f2 = build_bdd(&mut mgr, &e2);
        // Drop f2 (treat as garbage), keep f1.
        mgr.collect_garbage(&[f1]);
        for a in assignments() {
            prop_assert_eq!(mgr.eval(f1, &a), eval_expr(&e1, &a));
        }
        // Rebuilding e2 after GC still yields a correct function.
        let f2b = build_bdd(&mut mgr, &e2);
        for a in assignments() {
            prop_assert_eq!(mgr.eval(f2b, &a), eval_expr(&e2, &a));
        }
        let _ = f2;
    }

    #[test]
    fn specialized_applies_equal_their_ite_encodings(e1 in expr_strategy(), e2 in expr_strategy()) {
        // The dedicated two-operand recursions must return the *identical*
        // node (not merely an equivalent function) as the generic ITE
        // formulations they replace — BDD canonicity makes this an equality
        // on NodeIds.
        let mut mgr = Manager::new(NVARS);
        let f = build_bdd(&mut mgr, &e1);
        let g = build_bdd(&mut mgr, &e2);

        let and_direct = mgr.and(f, g);
        let and_ite = mgr.ite(f, g, NodeId::FALSE);
        prop_assert_eq!(and_direct, and_ite);

        let or_direct = mgr.or(f, g);
        let or_ite = mgr.ite(f, NodeId::TRUE, g);
        prop_assert_eq!(or_direct, or_ite);

        let xor_direct = mgr.xor(f, g);
        let ng = mgr.not(g);
        let xor_ite = mgr.ite(f, ng, g);
        prop_assert_eq!(xor_direct, xor_ite);

        let not_direct = mgr.not(f);
        let not_ite = mgr.ite(f, NodeId::FALSE, NodeId::TRUE);
        prop_assert_eq!(not_direct, not_ite);
    }

    #[test]
    fn three_operand_applies_equal_their_ite_encodings(
        e1 in expr_strategy(),
        e2 in expr_strategy(),
        e3 in expr_strategy(),
        var in 0..NVARS,
    ) {
        let mut mgr = Manager::new(NVARS);
        let f = build_bdd(&mut mgr, &e1);
        let g = build_bdd(&mut mgr, &e2);
        let h = build_bdd(&mut mgr, &e3);

        // xor3 = f ⊕ g ⊕ h via chained two-operand xors.
        let xor3_direct = mgr.xor3(f, g, h);
        let fg = mgr.xor(f, g);
        let xor3_chained = mgr.xor(fg, h);
        prop_assert_eq!(xor3_direct, xor3_chained);

        // maj = f·g ∨ (f ∨ g)·h, the full-adder carry.
        let maj_direct = mgr.maj(f, g, h);
        let fg_and = mgr.and(f, g);
        let fg_or = mgr.or(f, g);
        let propagate = mgr.and(fg_or, h);
        let maj_chained = mgr.or(fg_and, propagate);
        prop_assert_eq!(maj_direct, maj_chained);

        // mux_var = ite(x_var, g, h) with the literal materialised.
        let mux_direct = mgr.mux_var(var, g, h);
        let x = mgr.var(var);
        let mux_ite = mgr.ite(x, g, h);
        prop_assert_eq!(mux_direct, mux_ite);

        // flip_var = ite(x_var, f|_{var=0}, f|_{var=1}).
        let flip_direct = mgr.flip_var(f, var);
        let f0 = mgr.cofactor(f, var, false);
        let f1 = mgr.cofactor(f, var, true);
        let flip_ite = mgr.ite(x, f0, f1);
        prop_assert_eq!(flip_direct, flip_ite);
    }

    #[test]
    fn exists_matches_truth_table(e in expr_strategy(), var in 0..NVARS) {
        let mut mgr = Manager::new(NVARS);
        let f = build_bdd(&mut mgr, &e);
        let ex = mgr.exists(f, var);
        for a in assignments() {
            let mut a0 = a.clone();
            a0[var] = false;
            let mut a1 = a.clone();
            a1[var] = true;
            let expected = eval_expr(&e, &a0) || eval_expr(&e, &a1);
            prop_assert_eq!(mgr.eval(ex, &a), expected);
        }
    }
}
