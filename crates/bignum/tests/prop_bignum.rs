//! Property-based tests: big-integer arithmetic must agree with native
//! 128-bit arithmetic wherever the latter applies, and structural identities
//! must hold for arbitrarily large values.

use proptest::prelude::*;
use sliq_bignum::{IBig, Sqrt2Big, UBig};

proptest! {
    #[test]
    fn ubig_add_sub_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let (x, y) = (UBig::from(a), UBig::from(b));
        prop_assert_eq!(UBig::add(&x, &y), UBig::from(a as u128 + b as u128));
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        prop_assert_eq!(UBig::sub(&UBig::from(hi), &UBig::from(lo)), UBig::from(hi - lo));
    }

    #[test]
    fn ubig_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(
            UBig::mul(&UBig::from(a), &UBig::from(b)),
            UBig::from(a as u128 * b as u128)
        );
        prop_assert_eq!(UBig::from(a).mul_u64(b), UBig::from(a as u128 * b as u128));
    }

    #[test]
    fn ubig_shift_is_mul_by_pow2(a in any::<u64>(), s in 0usize..200) {
        prop_assert_eq!(UBig::from(a).shl(s), UBig::mul(&UBig::from(a), &UBig::pow2(s)));
    }

    #[test]
    fn ubig_div_rem_roundtrip(a in any::<u128>(), d in 1u64..) {
        let x = UBig::from(a);
        let (q, r) = x.div_rem_u64(d);
        prop_assert!(r < d);
        prop_assert_eq!(UBig::add(&q.mul_u64(d), &UBig::from(r)), x);
    }

    #[test]
    fn ubig_display_matches_u128(a in any::<u128>()) {
        prop_assert_eq!(UBig::from(a).to_string(), a.to_string());
    }

    #[test]
    fn ibig_arithmetic_matches_i128(a in -(1i128<<100)..(1i128<<100), b in -(1i128<<100)..(1i128<<100)) {
        prop_assert_eq!(IBig::from(a) + IBig::from(b), IBig::from(a + b));
        prop_assert_eq!(IBig::from(a) - IBig::from(b), IBig::from(a - b));
        prop_assert_eq!(IBig::from(a).cmp_big(&IBig::from(b)), a.cmp(&b));
    }

    #[test]
    fn ibig_mul_matches_i128(a in -(1i128<<60)..(1i128<<60), b in -(1i128<<60)..(1i128<<60)) {
        prop_assert_eq!(IBig::from(a) * IBig::from(b), IBig::from(a * b));
    }

    #[test]
    fn ibig_add_is_commutative_associative(
        a in -(1i128<<100)..(1i128<<100),
        b in -(1i128<<100)..(1i128<<100),
        c in -(1i128<<100)..(1i128<<100),
    ) {
        let (x, y, z) = (IBig::from(a), IBig::from(b), IBig::from(c));
        prop_assert_eq!(x.clone() + y.clone(), y.clone() + x.clone());
        prop_assert_eq!((x.clone() + y.clone()) + z.clone(), x + (y + z));
    }

    #[test]
    fn sqrt2big_tracks_floats(a in -1000i64..1000, b in -1000i64..1000, c in -1000i64..1000, d in -1000i64..1000) {
        let x = Sqrt2Big::new(IBig::from(a), IBig::from(b));
        let y = Sqrt2Big::new(IBig::from(c), IBig::from(d));
        let sum = x.clone() + y.clone();
        prop_assert!((sum.to_f64() - (x.to_f64() + y.to_f64())).abs() < 1e-6);
    }

    #[test]
    fn to_f64_exp_is_consistent(a in any::<u128>()) {
        let x = UBig::from(a);
        let (m, e) = x.to_f64_exp();
        if a == 0 {
            prop_assert_eq!(m, 0.0);
        } else {
            prop_assert!((0.5..1.0).contains(&m));
            let reconstructed = m * 2f64.powi(e as i32);
            let rel = (reconstructed - a as f64).abs() / (a as f64);
            prop_assert!(rel < 1e-12);
        }
    }
}
