//! Exact reals of the form `x + y·√2` with arbitrary-precision coefficients.
//!
//! Squared magnitudes of algebraic amplitudes summed over up to 2ⁿ basis
//! states live in this ring; the coefficients can exceed any fixed-width
//! integer, so [`IBig`] coefficients are used.  Only the final conversion to
//! a probability (`f64`) rounds.

use crate::ibig::IBig;
use std::fmt;
use std::ops::{Add, AddAssign, Neg, Sub};

/// An exact real `int + sqrt2·√2` with arbitrary-precision coefficients.
///
/// ```
/// use sliq_bignum::{IBig, Sqrt2Big};
/// let x = Sqrt2Big::new(IBig::from(1i64), IBig::from(1i64));
/// let y = x.clone() + x.clone();
/// assert_eq!(y, Sqrt2Big::new(IBig::from(2i64), IBig::from(2i64)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Sqrt2Big {
    /// Rational (integer) part.
    pub int: IBig,
    /// Coefficient of √2.
    pub sqrt2: IBig,
}

impl Sqrt2Big {
    /// Creates the value `int + sqrt2·√2`.
    pub fn new(int: IBig, sqrt2: IBig) -> Self {
        Self { int, sqrt2 }
    }

    /// The value zero.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Returns `true` if the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.int.is_zero() && self.sqrt2.is_zero()
    }

    /// Exact equality with the integer `2^exp` (used to check that the total
    /// probability equals `2ᵏ` before the `1/2ᵏ` scaling is applied).
    pub fn eq_pow2(&self, exp: usize) -> bool {
        self.sqrt2.is_zero() && self.int == IBig::pow2(exp)
    }

    /// Shifts both coefficients left by `bits` (multiplication by `2^bits`).
    pub fn shl(&self, bits: usize) -> Self {
        Self::new(self.int.shl(bits), self.sqrt2.shl(bits))
    }

    /// Converts `self / 2^k_div` to `f64` without overflowing on huge
    /// intermediate coefficients: each coefficient is reduced via its
    /// mantissa/exponent decomposition first.
    pub fn to_f64_div_pow2(&self, k_div: i64) -> f64 {
        fn part(x: &IBig, k_div: i64) -> f64 {
            let (m, e) = x.to_f64_exp();
            m * 2f64.powi((e - k_div).clamp(i32::MIN as i64, i32::MAX as i64) as i32)
        }
        part(&self.int, k_div) + part(&self.sqrt2, k_div) * std::f64::consts::SQRT_2
    }

    /// Converts to `f64` (lossy).
    pub fn to_f64(&self) -> f64 {
        self.to_f64_div_pow2(0)
    }
}

impl Add for Sqrt2Big {
    type Output = Sqrt2Big;
    fn add(self, rhs: Sqrt2Big) -> Sqrt2Big {
        Sqrt2Big::new(self.int + rhs.int, self.sqrt2 + rhs.sqrt2)
    }
}

impl AddAssign for Sqrt2Big {
    fn add_assign(&mut self, rhs: Sqrt2Big) {
        *self = std::mem::take(self) + rhs;
    }
}

impl Sub for Sqrt2Big {
    type Output = Sqrt2Big;
    fn sub(self, rhs: Sqrt2Big) -> Sqrt2Big {
        Sqrt2Big::new(self.int - rhs.int, self.sqrt2 - rhs.sqrt2)
    }
}

impl Neg for Sqrt2Big {
    type Output = Sqrt2Big;
    fn neg(self) -> Sqrt2Big {
        Sqrt2Big::new(-self.int, -self.sqrt2)
    }
}

impl fmt::Display for Sqrt2Big {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} + {}·√2", self.int, self.sqrt2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_matches_floats() {
        let x = Sqrt2Big::new(IBig::from(3i64), IBig::from(-2i64));
        let y = Sqrt2Big::new(IBig::from(-1i64), IBig::from(5i64));
        let s = x.clone() + y.clone();
        assert!((s.to_f64() - (x.to_f64() + y.to_f64())).abs() < 1e-9);
        let d = x.clone() - y.clone();
        assert!((d.to_f64() - (x.to_f64() - y.to_f64())).abs() < 1e-9);
        assert!(((-x.clone()).to_f64() + x.to_f64()).abs() < 1e-12);
    }

    #[test]
    fn pow2_equality_check() {
        let v = Sqrt2Big::new(IBig::pow2(100), IBig::zero());
        assert!(v.eq_pow2(100));
        assert!(!v.eq_pow2(99));
        assert!(!Sqrt2Big::new(IBig::pow2(100), IBig::one()).eq_pow2(100));
    }

    #[test]
    fn division_by_large_power_of_two() {
        // (2^200) / 2^200 == 1.0 exactly even though 2^200 overflows f64... no,
        // 2^200 is representable; use 2^2000 to be sure.
        let v = Sqrt2Big::new(IBig::pow2(2000), IBig::zero());
        assert!((v.to_f64_div_pow2(2000) - 1.0).abs() < 1e-12);
        let w = Sqrt2Big::new(IBig::zero(), IBig::pow2(2000));
        assert!((w.to_f64_div_pow2(2000) - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn shift_multiplies_by_power_of_two() {
        let x = Sqrt2Big::new(IBig::from(3i64), IBig::from(1i64));
        assert!((x.shl(4).to_f64() - 16.0 * x.to_f64()).abs() < 1e-9);
    }
}
