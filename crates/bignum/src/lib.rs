//! # sliq-bignum
//!
//! Minimal arbitrary-precision integer arithmetic used by the SliQ bit-sliced
//! BDD simulator for *exact* SAT counting and probability accumulation.
//!
//! The simulator routinely handles Boolean functions over thousands of qubit
//! variables, whose satisfying-assignment counts exceed 2¹⁰⁰⁰⁰; accumulating
//! those counts in floating point would defeat the accuracy guarantee that is
//! the point of the paper.  This crate provides exactly the operations needed
//! (and nothing more): addition, subtraction, comparison, shifts, schoolbook
//! multiplication and careful conversion to `f64`.
//!
//! ```
//! use sliq_bignum::{IBig, UBig};
//! let huge = UBig::pow2(4096);
//! assert_eq!(huge.clone() + UBig::one() - huge, UBig::one());
//! assert_eq!(IBig::from(-3i64) + IBig::from(5i64), IBig::from(2i64));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ibig;
mod sqrt2big;
mod ubig;

pub use ibig::IBig;
pub use sqrt2big::Sqrt2Big;
pub use ubig::UBig;
