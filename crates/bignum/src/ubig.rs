//! Arbitrary-precision unsigned integers.
//!
//! The simulator needs exact SAT counts of Boolean functions over up to tens
//! of thousands of variables, i.e. integers up to 2^10000 and beyond.  Only a
//! small set of operations is required (addition, subtraction, comparison,
//! shifts, schoolbook multiplication, conversion to floating point), so a
//! compact little-endian limb vector is used instead of an external crate.

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer (little-endian `u64` limbs).
///
/// ```
/// use sliq_bignum::UBig;
/// let x = UBig::pow2(100);
/// assert_eq!(x.bit_len(), 101);
/// assert_eq!((x.clone() + UBig::from(1u64)) - x, UBig::from(1u64));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct UBig {
    /// Little-endian limbs with no trailing zeros (canonical form).
    limbs: Vec<u64>,
}

impl UBig {
    /// The value zero.
    pub fn zero() -> Self {
        Self { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        Self { limbs: vec![1] }
    }

    /// The power of two `2^exp`.
    pub fn pow2(exp: usize) -> Self {
        let mut limbs = vec![0u64; exp / 64 + 1];
        limbs[exp / 64] = 1u64 << (exp % 64);
        let mut r = Self { limbs };
        r.normalize();
        r
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// The number of significant bits (0 for the value zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => 64 * (self.limbs.len() - 1) + (64 - top.leading_zeros() as usize),
        }
    }

    /// Access to the raw little-endian limbs.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Adds `other` to `self`.
    pub fn add(&self, other: &UBig) -> UBig {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &limb) in long.iter().enumerate() {
            let a = limb as u128;
            let b = *short.get(i).unwrap_or(&0) as u128;
            let s = a + b + carry as u128;
            out.push(s as u64);
            carry = (s >> 64) as u64;
        }
        if carry != 0 {
            out.push(carry);
        }
        let mut r = UBig { limbs: out };
        r.normalize();
        r
    }

    /// Subtracts `other` from `self`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn sub(&self, other: &UBig) -> UBig {
        assert!(
            self.cmp_big(other) != Ordering::Less,
            "UBig::sub would underflow"
        );
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i128;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i] as i128;
            let b = *other.limbs.get(i).unwrap_or(&0) as i128;
            let mut d = a - b - borrow;
            if d < 0 {
                d += 1i128 << 64;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(d as u64);
        }
        let mut r = UBig { limbs: out };
        r.normalize();
        r
    }

    /// Total ordering.
    pub fn cmp_big(&self, other: &UBig) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        Ordering::Equal
    }

    /// Multiplies by a single limb.
    pub fn mul_u64(&self, factor: u64) -> UBig {
        if factor == 0 || self.is_zero() {
            return UBig::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &l in &self.limbs {
            let p = l as u128 * factor as u128 + carry;
            out.push(p as u64);
            carry = p >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        let mut r = UBig { limbs: out };
        r.normalize();
        r
    }

    /// Full schoolbook multiplication.
    pub fn mul(&self, other: &UBig) -> UBig {
        if self.is_zero() || other.is_zero() {
            return UBig::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + a as u128 * b as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut r = UBig { limbs: out };
        r.normalize();
        r
    }

    /// Shifts left by `bits`.
    pub fn shl(&self, bits: usize) -> UBig {
        if self.is_zero() {
            return UBig::zero();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        let mut r = UBig { limbs: out };
        r.normalize();
        r
    }

    /// Divides by a single limb, returning `(quotient, remainder)`.
    pub fn div_rem_u64(&self, divisor: u64) -> (UBig, u64) {
        assert!(divisor != 0, "division by zero");
        let mut out = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            out[i] = (cur / divisor as u128) as u64;
            rem = cur % divisor as u128;
        }
        let mut q = UBig { limbs: out };
        q.normalize();
        (q, rem as u64)
    }

    /// Returns `(mantissa, exponent)` such that the value is
    /// `mantissa · 2^exponent` with `mantissa ∈ [0.5, 1)` (or `(0, 0)` for
    /// zero).  Unlike [`UBig::to_f64`] this never overflows to infinity.
    pub fn to_f64_exp(&self) -> (f64, i64) {
        if self.is_zero() {
            return (0.0, 0);
        }
        let bits = self.bit_len();
        // Take the top (up to) 64 bits as the mantissa.
        let top = self.limbs.len() - 1;
        let mut mant = self.limbs[top] as u128;
        let mut mant_bits = 64 - self.limbs[top].leading_zeros() as usize;
        if top > 0 {
            mant = (mant << 64) | self.limbs[top - 1] as u128;
            mant_bits += 64;
        }
        (mant as f64 / 2f64.powi(mant_bits as i32), bits as i64)
    }

    /// Converts to `f64` (may be `inf` for huge values).
    pub fn to_f64(&self) -> f64 {
        let (m, e) = self.to_f64_exp();
        if e > 1023 {
            f64::INFINITY
        } else {
            m * 2f64.powi(e as i32)
        }
    }
}

impl From<u64> for UBig {
    fn from(value: u64) -> Self {
        let mut r = UBig { limbs: vec![value] };
        r.normalize();
        r
    }
}

impl From<u128> for UBig {
    fn from(value: u128) -> Self {
        let mut r = UBig {
            limbs: vec![value as u64, (value >> 64) as u64],
        };
        r.normalize();
        r
    }
}

impl std::ops::Add for UBig {
    type Output = UBig;
    fn add(self, rhs: UBig) -> UBig {
        UBig::add(&self, &rhs)
    }
}

impl std::ops::Sub for UBig {
    type Output = UBig;
    fn sub(self, rhs: UBig) -> UBig {
        UBig::sub(&self, &rhs)
    }
}

impl PartialOrd for UBig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for UBig {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_big(other)
    }
}

impl fmt::Display for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut digits = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(10_000_000_000_000_000_000);
            digits.push(r);
            cur = q;
        }
        write!(f, "{}", digits.pop().expect("non-zero value has digits"))?;
        for d in digits.iter().rev() {
            write!(f, "{d:019}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_arithmetic_matches_u128() {
        let a = UBig::from(123_456_789_012_345_678u64);
        let b = UBig::from(987_654_321_098_765_432u64);
        assert_eq!(
            UBig::add(&a, &b),
            UBig::from(123_456_789_012_345_678u128 + 987_654_321_098_765_432u128)
        );
        assert_eq!(
            UBig::sub(&b, &a),
            UBig::from(987_654_321_098_765_432u64 - 123_456_789_012_345_678u64)
        );
        assert_eq!(
            UBig::mul(&a, &b),
            UBig::from(123_456_789_012_345_678u128 * 987_654_321_098_765_432_u128)
        );
    }

    #[test]
    fn pow2_and_shift_agree() {
        for e in [0usize, 1, 63, 64, 65, 127, 128, 1000] {
            assert_eq!(UBig::pow2(e), UBig::one().shl(e));
            assert_eq!(UBig::pow2(e).bit_len(), e + 1);
        }
    }

    #[test]
    fn huge_values_do_not_lose_structure() {
        // 2^10000 + 1 minus 2^10000 is 1 even though f64 cannot represent it.
        let big = UBig::pow2(10_000);
        let bigger = UBig::add(&big, &UBig::one());
        assert_eq!(UBig::sub(&bigger, &big), UBig::one());
        assert!(big.to_f64().is_infinite());
        let (m, e) = big.to_f64_exp();
        assert_eq!(e, 10_001);
        assert!((m - 0.5).abs() < 1e-15);
    }

    #[test]
    fn decimal_display() {
        assert_eq!(UBig::zero().to_string(), "0");
        assert_eq!(UBig::from(42u64).to_string(), "42");
        assert_eq!(
            UBig::from(12345678901234567890123456789012345678u128).to_string(),
            "12345678901234567890123456789012345678"
        );
        assert_eq!(UBig::pow2(64).to_string(), "18446744073709551616");
    }

    #[test]
    fn division_by_small() {
        let x = UBig::from(1_000_000_000_007u64);
        let (q, r) = x.div_rem_u64(13);
        assert_eq!(q, UBig::from(1_000_000_000_007u64 / 13));
        assert_eq!(r, 1_000_000_000_007u64 % 13);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = UBig::sub(&UBig::one(), &UBig::from(2u64));
    }

    #[test]
    fn to_f64_accuracy_for_moderate_values() {
        let x = UBig::mul(&UBig::from(3u64), &UBig::pow2(70));
        let expected = 3.0 * 2f64.powi(70);
        assert!((x.to_f64() - expected).abs() / expected < 1e-12);
    }
}
