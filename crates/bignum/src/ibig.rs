//! Signed arbitrary-precision integers built on [`UBig`].

use crate::ubig::UBig;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A signed arbitrary-precision integer (sign + magnitude).
///
/// ```
/// use sliq_bignum::IBig;
/// let x = IBig::from(-5i64) + IBig::from(12i64);
/// assert_eq!(x, IBig::from(7i64));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct IBig {
    negative: bool,
    mag: UBig,
}

impl IBig {
    /// The value zero.
    pub fn zero() -> Self {
        Self {
            negative: false,
            mag: UBig::zero(),
        }
    }

    /// The value one.
    pub fn one() -> Self {
        Self {
            negative: false,
            mag: UBig::one(),
        }
    }

    /// Creates a signed value from a sign and a magnitude.
    pub fn from_sign_magnitude(negative: bool, mag: UBig) -> Self {
        if mag.is_zero() {
            Self::zero()
        } else {
            Self { negative, mag }
        }
    }

    /// The signed power of two `±2^exp`.
    pub fn pow2(exp: usize) -> Self {
        Self::from_sign_magnitude(false, UBig::pow2(exp))
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.mag.is_zero()
    }

    /// Returns `true` if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.negative
    }

    /// The magnitude `|self|`.
    pub fn magnitude(&self) -> &UBig {
        &self.mag
    }

    /// Shifts left by `bits` (multiplication by `2^bits`).
    pub fn shl(&self, bits: usize) -> IBig {
        Self::from_sign_magnitude(self.negative, self.mag.shl(bits))
    }

    /// Returns `(mantissa, exponent)` with value = `mantissa · 2^exponent`,
    /// `|mantissa| ∈ [0.5, 1)`; `(0, 0)` for zero.
    pub fn to_f64_exp(&self) -> (f64, i64) {
        let (m, e) = self.mag.to_f64_exp();
        (if self.negative { -m } else { m }, e)
    }

    /// Converts to `f64` (lossy; may overflow to ±inf for huge values).
    pub fn to_f64(&self) -> f64 {
        let v = self.mag.to_f64();
        if self.negative {
            -v
        } else {
            v
        }
    }

    /// Total ordering of the represented values.
    pub fn cmp_big(&self, other: &IBig) -> Ordering {
        match (self.negative, other.negative) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (false, false) => self.mag.cmp_big(&other.mag),
            (true, true) => other.mag.cmp_big(&self.mag),
        }
    }
}

impl From<i64> for IBig {
    fn from(value: i64) -> Self {
        Self::from_sign_magnitude(value < 0, UBig::from(value.unsigned_abs()))
    }
}

impl From<i128> for IBig {
    fn from(value: i128) -> Self {
        Self::from_sign_magnitude(value < 0, UBig::from(value.unsigned_abs()))
    }
}

impl From<UBig> for IBig {
    fn from(mag: UBig) -> Self {
        Self::from_sign_magnitude(false, mag)
    }
}

impl Neg for IBig {
    type Output = IBig;
    fn neg(self) -> IBig {
        IBig::from_sign_magnitude(!self.negative, self.mag)
    }
}

impl Add for IBig {
    type Output = IBig;
    fn add(self, rhs: IBig) -> IBig {
        if self.negative == rhs.negative {
            IBig::from_sign_magnitude(self.negative, UBig::add(&self.mag, &rhs.mag))
        } else {
            match self.mag.cmp_big(&rhs.mag) {
                Ordering::Equal => IBig::zero(),
                Ordering::Greater => {
                    IBig::from_sign_magnitude(self.negative, UBig::sub(&self.mag, &rhs.mag))
                }
                Ordering::Less => {
                    IBig::from_sign_magnitude(rhs.negative, UBig::sub(&rhs.mag, &self.mag))
                }
            }
        }
    }
}

impl AddAssign for IBig {
    fn add_assign(&mut self, rhs: IBig) {
        *self = std::mem::take(self) + rhs;
    }
}

impl Sub for IBig {
    type Output = IBig;
    fn sub(self, rhs: IBig) -> IBig {
        self + (-rhs)
    }
}

impl Mul for IBig {
    type Output = IBig;
    fn mul(self, rhs: IBig) -> IBig {
        IBig::from_sign_magnitude(
            self.negative != rhs.negative,
            UBig::mul(&self.mag, &rhs.mag),
        )
    }
}

impl PartialOrd for IBig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IBig {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_big(other)
    }
}

impl fmt::Display for IBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negative {
            write!(f, "-")?;
        }
        write!(f, "{}", self.mag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_arithmetic_matches_i128() {
        let cases: &[(i128, i128)] = &[
            (0, 0),
            (5, -3),
            (-5, 3),
            (-7, -9),
            (i64::MAX as i128, i64::MAX as i128),
            (-(1i128 << 100), 1i128 << 90),
        ];
        for &(x, y) in cases {
            assert_eq!(IBig::from(x) + IBig::from(y), IBig::from(x + y), "{x}+{y}");
            assert_eq!(IBig::from(x) - IBig::from(y), IBig::from(x - y), "{x}-{y}");
            if let Some(p) = x.checked_mul(y) {
                assert_eq!(IBig::from(x) * IBig::from(y), IBig::from(p), "{x}*{y}");
            }
            assert_eq!(
                IBig::from(x).cmp_big(&IBig::from(y)),
                x.cmp(&y),
                "cmp {x} {y}"
            );
        }
    }

    #[test]
    fn negation_and_zero_canonicalisation() {
        assert_eq!(-IBig::zero(), IBig::zero());
        assert!(!(-IBig::zero()).is_negative());
        assert_eq!(-IBig::from(4i64), IBig::from(-4i64));
    }

    #[test]
    fn display_includes_sign() {
        assert_eq!(IBig::from(-12345i64).to_string(), "-12345");
        assert_eq!(IBig::from(12345i64).to_string(), "12345");
        assert_eq!(IBig::zero().to_string(), "0");
    }

    #[test]
    fn shifted_values() {
        assert_eq!(IBig::from(-3i64).shl(10), IBig::from(-3072i64));
        let (m, e) = IBig::from(-1i64).shl(200).to_f64_exp();
        assert_eq!(e, 201);
        assert!((m + 0.5).abs() < 1e-15);
    }

    #[test]
    fn to_f64_signs() {
        assert_eq!(IBig::from(-8i64).to_f64(), -8.0);
        assert_eq!(IBig::from(8i64).to_f64(), 8.0);
    }
}
