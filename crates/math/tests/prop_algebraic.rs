//! Property-based tests: the exact algebraic arithmetic must agree with
//! double-precision complex arithmetic on every operation.

use proptest::prelude::*;
use sliq_math::{Algebraic, Complex};

fn small_alg() -> impl Strategy<Value = Algebraic> {
    (-20i64..=20, -20i64..=20, -20i64..=20, -20i64..=20, 0i32..=6)
        .prop_map(|(a, b, c, d, k)| Algebraic::new(a, b, c, d, k))
}

fn close(x: Complex, y: Complex) -> bool {
    x.approx_eq(&y, 1e-7)
}

proptest! {
    #[test]
    fn addition_matches_complex(x in small_alg(), y in small_alg()) {
        prop_assert!(close((x + y).to_complex(), x.to_complex() + y.to_complex()));
    }

    #[test]
    fn subtraction_matches_complex(x in small_alg(), y in small_alg()) {
        prop_assert!(close((x - y).to_complex(), x.to_complex() - y.to_complex()));
    }

    #[test]
    fn multiplication_matches_complex(x in small_alg(), y in small_alg()) {
        prop_assert!(close((x * y).to_complex(), x.to_complex() * y.to_complex()));
    }

    #[test]
    fn omega_multiplication_is_a_phase(x in small_alg()) {
        let rotated = x.mul_omega();
        let expected = x.to_complex() * Complex::from_polar(1.0, std::f64::consts::FRAC_PI_4);
        prop_assert!(close(rotated.to_complex(), expected));
        // A phase never changes the magnitude, exactly:
        prop_assert_eq!(rotated.norm_sqr_exact(), x.norm_sqr_exact());
    }

    #[test]
    fn norm_sqr_exact_matches_complex(x in small_alg()) {
        let exact = x.norm_sqr();
        let float = x.to_complex().norm_sqr();
        prop_assert!((exact - float).abs() < 1e-7);
    }

    #[test]
    fn reduction_preserves_value(x in small_alg()) {
        prop_assert!(close(x.reduced().to_complex(), x.to_complex()));
    }

    #[test]
    fn conjugation_is_involutive(x in small_alg()) {
        prop_assert_eq!(x.conj().conj(), x);
        prop_assert!(close(x.conj().to_complex(), x.to_complex().conj()));
    }

    #[test]
    fn with_k_preserves_value(x in small_alg(), extra in 0i32..4) {
        let lifted = x.with_k(x.k + extra);
        prop_assert!(close(lifted.to_complex(), x.to_complex()));
        prop_assert!(lifted.value_eq(&x));
    }

    #[test]
    fn multiplication_is_commutative_and_associative(
        x in small_alg(), y in small_alg(), z in small_alg()
    ) {
        prop_assert_eq!(x * y, y * x);
        prop_assert!(((x * y) * z).value_eq(&(x * (y * z))));
    }

    #[test]
    fn distributivity(x in small_alg(), y in small_alg(), z in small_alg()) {
        prop_assert!((x * (y + z)).value_eq(&(x * y + x * z)));
    }
}
