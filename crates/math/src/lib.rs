//! # sliq-math
//!
//! Exact and floating-point scalar arithmetic shared by the SliQ quantum
//! circuit simulators:
//!
//! * [`Complex`] — a minimal double-precision complex number used by the
//!   array-based (`sliq-dense`) and QMDD-based (`sliq-qmdd`) baselines.
//! * [`Algebraic`] — the exact amplitude representation
//!   `(a·ω³ + b·ω² + c·ω + d)/√2ᵏ` from the paper (Eq. 5), closed under the
//!   Clifford+T / Toffoli+Hadamard gate set.
//! * [`Sqrt2Int`] — exact reals `x + y·√2`, the form taken by squared
//!   magnitudes of algebraic amplitudes.
//!
//! ```
//! use sliq_math::{Algebraic, Complex};
//! // ω⁸ = 1 exactly, no rounding involved:
//! let mut x = Algebraic::one();
//! for _ in 0..8 { x = x.mul_omega(); }
//! assert_eq!(x, Algebraic::one());
//! // ... and the floating point view agrees:
//! assert!(x.to_complex().approx_eq(&Complex::one(), 1e-12));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algebraic;
mod complex;
mod sqrt2;

pub use algebraic::Algebraic;
pub use complex::Complex;
pub use sqrt2::Sqrt2Int;

/// The floating point value of `1/√2`, shared by the baseline simulators.
pub const FRAC_1_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algebraic_and_complex_agree_on_hadamard_entries() {
        let h = Algebraic::one().div_sqrt2();
        assert!((h.to_complex().re - FRAC_1_SQRT_2).abs() < 1e-12);
    }
}
