//! A minimal double-precision complex number.
//!
//! The crate deliberately avoids external numeric dependencies; the handful of
//! operations needed by the dense and QMDD simulators are implemented here.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// ```
/// use sliq_math::Complex;
/// let i = Complex::i();
/// assert_eq!(i * i, Complex::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from its real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The additive identity `0`.
    pub const fn zero() -> Self {
        Self::new(0.0, 0.0)
    }

    /// The multiplicative identity `1`.
    pub const fn one() -> Self {
        Self::new(1.0, 0.0)
    }

    /// The imaginary unit `i`.
    pub const fn i() -> Self {
        Self::new(0.0, 1.0)
    }

    /// `e^{iθ}` for a phase angle `θ` in radians.
    pub fn from_polar(magnitude: f64, theta: f64) -> Self {
        Self::new(magnitude * theta.cos(), magnitude * theta.sin())
    }

    /// The squared magnitude `|z|² = re² + im²`.
    pub fn norm_sqr(&self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The magnitude `|z|`.
    pub fn norm(&self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// The complex conjugate.
    pub fn conj(&self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Multiplies by a real scalar.
    pub fn scale(&self, s: f64) -> Self {
        Self::new(self.re * s, self.im * s)
    }

    /// Returns `true` if both components are within `eps` of `other`.
    pub fn approx_eq(&self, other: &Self, eps: f64) -> bool {
        (self.re - other.re).abs() <= eps && (self.im - other.im).abs() <= eps
    }

    /// Returns `true` if the magnitude is within `eps` of zero.
    pub fn is_approx_zero(&self, eps: f64) -> bool {
        self.norm_sqr() <= eps * eps
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.5, -2.0);
        let b = Complex::new(-0.5, 3.0);
        assert_eq!(a + b, Complex::new(1.0, 1.0));
        assert_eq!(a - b, Complex::new(2.0, -5.0));
        assert_eq!(a * Complex::one(), a);
        assert_eq!(a + Complex::zero(), a);
        assert!((a * b / b).approx_eq(&a, 1e-12));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex::i() * Complex::i(), Complex::new(-1.0, 0.0));
    }

    #[test]
    fn conjugate_and_norm() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.norm(), 5.0);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
        assert!((z * z.conj()).approx_eq(&Complex::new(25.0, 0.0), 1e-12));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_4);
        assert!((z.norm() - 2.0).abs() < 1e-12);
        assert!((z.re - z.im).abs() < 1e-12);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
    }
}
