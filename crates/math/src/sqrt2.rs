//! Exact arithmetic over the real quadratic ring `Z[√2]`.
//!
//! Squared magnitudes of algebraic amplitudes are always of the form
//! `x + y·√2` with integers `x, y`; keeping them in this exact form lets the
//! simulator check normalisation (`Σ|αᵢ|² = 1`) as an integer identity instead
//! of a floating point comparison.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// An exact real number `int + sqrt2·√2` with `i128` coefficients.
///
/// ```
/// use sliq_math::Sqrt2Int;
/// let x = Sqrt2Int::new(1, 1);           // 1 + √2
/// let y = x * x;                         // 3 + 2√2
/// assert_eq!(y, Sqrt2Int::new(3, 2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Sqrt2Int {
    /// Rational (integer) part.
    pub int: i128,
    /// Coefficient of √2.
    pub sqrt2: i128,
}

impl Sqrt2Int {
    /// Creates the value `int + sqrt2·√2`.
    pub const fn new(int: i128, sqrt2: i128) -> Self {
        Self { int, sqrt2 }
    }

    /// The value zero.
    pub const fn zero() -> Self {
        Self::new(0, 0)
    }

    /// The value one.
    pub const fn one() -> Self {
        Self::new(1, 0)
    }

    /// Returns `true` if the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.int == 0 && self.sqrt2 == 0
    }

    /// Multiplies by √2 exactly: `(x + y√2)·√2 = 2y + x√2`.
    pub fn mul_sqrt2(&self) -> Self {
        Self::new(2 * self.sqrt2, self.int)
    }

    /// Converts to `f64` (lossy).
    pub fn to_f64(&self) -> f64 {
        self.int as f64 + self.sqrt2 as f64 * std::f64::consts::SQRT_2
    }

    /// Exact comparison against an integer constant.
    pub fn eq_int(&self, value: i128) -> bool {
        self.sqrt2 == 0 && self.int == value
    }
}

impl Add for Sqrt2Int {
    type Output = Sqrt2Int;
    fn add(self, rhs: Sqrt2Int) -> Sqrt2Int {
        Sqrt2Int::new(self.int + rhs.int, self.sqrt2 + rhs.sqrt2)
    }
}

impl AddAssign for Sqrt2Int {
    fn add_assign(&mut self, rhs: Sqrt2Int) {
        *self = *self + rhs;
    }
}

impl Sub for Sqrt2Int {
    type Output = Sqrt2Int;
    fn sub(self, rhs: Sqrt2Int) -> Sqrt2Int {
        Sqrt2Int::new(self.int - rhs.int, self.sqrt2 - rhs.sqrt2)
    }
}

impl Neg for Sqrt2Int {
    type Output = Sqrt2Int;
    fn neg(self) -> Sqrt2Int {
        Sqrt2Int::new(-self.int, -self.sqrt2)
    }
}

impl Mul for Sqrt2Int {
    type Output = Sqrt2Int;
    fn mul(self, rhs: Sqrt2Int) -> Sqrt2Int {
        Sqrt2Int::new(
            self.int * rhs.int + 2 * self.sqrt2 * rhs.sqrt2,
            self.int * rhs.sqrt2 + self.sqrt2 * rhs.int,
        )
    }
}

impl fmt::Display for Sqrt2Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} + {}·√2", self.int, self.sqrt2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_arithmetic() {
        let x = Sqrt2Int::new(1, 1);
        let y = Sqrt2Int::new(3, -2);
        assert_eq!(x + y, Sqrt2Int::new(4, -1));
        assert_eq!(x - y, Sqrt2Int::new(-2, 3));
        assert_eq!(x * y, Sqrt2Int::new(3 - 4, -2 + 3));
        assert!((x * y).to_f64() - x.to_f64() * y.to_f64() < 1e-12);
    }

    #[test]
    fn sqrt2_multiplication() {
        let x = Sqrt2Int::new(3, 5);
        assert_eq!(x.mul_sqrt2(), Sqrt2Int::new(10, 3));
        assert!((x.mul_sqrt2().to_f64() - x.to_f64() * std::f64::consts::SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn zero_and_one() {
        assert!(Sqrt2Int::zero().is_zero());
        assert!(Sqrt2Int::one().eq_int(1));
        assert_eq!(Sqrt2Int::one() * Sqrt2Int::new(7, -3), Sqrt2Int::new(7, -3));
    }
}
